//! Causal-trace acceptance: drive the real `feves` binary through a traced
//! farm run and prove the observability contract end to end — the merged
//! trace parses into a valid span DAG, per-job critical-path buckets tile
//! each job's wall time, a chaos-killed job routes its retry through
//! checkpoint→resume edges, tracing never changes output bytes, and the
//! what-if projector predicts a genuinely perturbed re-run. A proptest
//! fuzzes the DAG invariants and a golden pins the trace line schema.
//!
//! The schema golden lives at `tests/golden/trace.schema` — one key path
//! per line (arrays generalized to `[]`), sorted. Regenerate after an
//! intentional format change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test trace
//! ```

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;
use std::time::Instant;

use feves::core::prelude::*;
use feves::core::Perturbation;
use feves::obs::critical::{busiest_device, frame_samples_from_flight, what_if_device};
use feves::obs::trace::fnv1a64;
use feves::obs::{
    validate_dag, CriticalReport, EdgeKind, TraceCollector, TraceCtx, TraceLog, TraceSink,
};
use feves::video::synth::{SynthConfig, SynthSequence};
use feves::video::y4m::{Y4mHeader, Y4mWriter};
use proptest::prelude::*;
use serde::Value;

fn feves_bin() -> PathBuf {
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // <profile>/
    p.push(format!("feves{}", std::env::consts::EXE_SUFFIX));
    p
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("feves-trace-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn write_input(path: &Path, seed: u64, frames: usize) {
    let mut seq = SynthSequence::new(SynthConfig {
        resolution: Resolution::QCIF,
        seed,
        objects: 4,
        pan: (1.0, 0.5),
        noise: 2,
    });
    let frames = seq.take_frames(frames);
    let header = Y4mHeader {
        resolution: frames[0].resolution(),
        fps: (25, 1),
    };
    let mut w = Y4mWriter::new(Vec::new(), header);
    for f in &frames {
        w.write_frame(f).unwrap();
    }
    fs::write(path, w.finish().unwrap()).unwrap();
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(feves_bin())
        .args(args)
        .output()
        .expect("spawn feves binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const COMMON: &[&str] = &["--platform", "syshk", "--sa", "16", "--refs", "2"];

fn submit(spool: &str, input: &str, output: &str, id: &str, extra: &[&str]) {
    let mut args = vec!["submit", spool, input, output, "--id", id];
    args.extend_from_slice(COMMON);
    args.extend_from_slice(extra);
    let (ok, stdout, stderr) = run(&args);
    assert!(ok, "submit {id} failed:\n{stdout}\n{stderr}");
}

fn serve(spool: &str, extra: &[&str]) -> String {
    let mut args = vec![
        "serve",
        spool,
        "--exit-when-idle",
        "--poll-ms",
        "10",
        "--checkpoint-every",
        "2",
    ];
    args.extend_from_slice(COMMON);
    args.extend_from_slice(extra);
    let (ok, stdout, stderr) = run(&args);
    assert!(ok, "serve failed:\n{stdout}\n{stderr}");
    stdout
}

// ---- Farm acceptance ----

/// Three jobs through one traced daemon, one chaos-killed mid-encode and
/// retried: the merged trace is a valid DAG, each job's critical-path
/// buckets tile its wall time within 1%, and the retried job's trace
/// routes through a checkpoint→resume edge.
#[test]
fn traced_farm_run_yields_valid_critical_path_attribution() {
    let dir = scratch("farm");
    let spool = dir.join("spool");
    fs::create_dir_all(&spool).unwrap();
    let spool_s = spool.to_str().unwrap().to_string();
    let input = dir.join("in.y4m");
    write_input(&input, 0x7A3C, 6);
    let input = input.to_str().unwrap().to_string();

    for (id, extra) in [
        ("t0", &[][..]),
        ("t1", &["--chaos-kill-at", "3", "--chaos-device", "0"][..]),
        ("t2", &[][..]),
    ] {
        let out = dir.join(format!("{id}.y4m"));
        submit(&spool_s, &input, out.to_str().unwrap(), id, extra);
    }
    let trace_path = dir.join("trace.jsonl");
    let stdout = serve(&spool_s, &["--trace-out", trace_path.to_str().unwrap()]);
    assert!(stdout.contains("3 completed"), "farm summary:\n{stdout}");

    let text = fs::read_to_string(&trace_path).expect("trace log written");
    assert!(
        TraceLog::sniff(&text),
        "trace log carries the schema header"
    );
    let log = TraceLog::parse_jsonl(&text).expect("trace log parses");
    validate_dag(&log).expect("span DAG validates");
    assert_eq!(log.trace_ids().len(), 3, "one trace per job");

    let crit = CriticalReport::from_log(&log).expect("critical-path analysis");
    assert_eq!(crit.jobs.len(), 3);
    for j in &crit.jobs {
        assert!(j.wall_us > 0.0, "{}: wall time recorded", j.name);
        let sum = j.bucket_sum_us();
        assert!(
            (sum - j.wall_us).abs() <= j.wall_us * 0.01 + 1.0,
            "{}: bucket sum {sum} µs vs wall {} µs drifts over 1%",
            j.name,
            j.wall_us
        );
    }

    // The chaos-killed job resumed from its durable checkpoint: its trace
    // must say so causally, not just statistically.
    let killed = fnv1a64(b"t1");
    assert!(
        log.edges
            .iter()
            .any(|e| e.trace_id == killed && e.kind == EdgeKind::CheckpointResume),
        "retried job carries a checkpoint→resume edge"
    );
    let jt1 = crit
        .jobs
        .iter()
        .find(|j| j.trace_id == killed)
        .expect("killed job analyzed");
    assert!(jt1.resume_edges > 0, "report counts the resume");
    // Clean jobs took the queue→admit path only.
    assert!(log
        .edges
        .iter()
        .any(|e| e.trace_id == fnv1a64(b"t0") && e.kind == EdgeKind::QueueAdmit));
    // Per-frame spans from inside the sessions made it into the farm log.
    assert!(log.spans.iter().any(|s| s.cat == "frame"));
    assert!(log.spans.iter().any(|s| s.cat == "checkpoint"));

    // `feves trace <log>` renders the same analysis; `--perfetto` converts.
    let (ok, stdout, _) = run(&["trace", trace_path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("critical path · 3 job(s)"), "{stdout}");
    assert!(stdout.contains("job:t1"), "{stdout}");
    let perfetto = dir.join("perfetto.json");
    let (ok, _, stderr) = run(&[
        "trace",
        trace_path.to_str().unwrap(),
        "--perfetto",
        perfetto.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    let json = fs::read_to_string(&perfetto).unwrap();
    let v = serde_json::value_from_str(&json).expect("perfetto JSON parses");
    let events = v
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
}

/// Tracing is observability, not a different execution: the same job
/// served with and without `--trace-out` produces byte-identical output.
#[test]
fn tracing_does_not_change_output_bytes() {
    let dir = scratch("bytes");
    let input = dir.join("in.y4m");
    write_input(&input, 0xBEEF, 5);
    let input = input.to_str().unwrap().to_string();

    let mut outs = Vec::new();
    for (tag, traced) in [("plain", false), ("traced", true)] {
        let spool = dir.join(format!("spool-{tag}"));
        fs::create_dir_all(&spool).unwrap();
        let spool_s = spool.to_str().unwrap().to_string();
        let out = dir.join(format!("{tag}.y4m"));
        submit(
            &spool_s,
            &input,
            out.to_str().unwrap(),
            "same-job",
            &["--chaos-kill-at", "3", "--chaos-device", "0"],
        );
        let trace_path = dir.join(format!("{tag}.trace.jsonl"));
        let extra: Vec<&str> = if traced {
            vec!["--trace-out", trace_path.to_str().unwrap()]
        } else {
            vec![]
        };
        let stdout = serve(&spool_s, &extra);
        assert!(stdout.contains("1 completed"), "{stdout}");
        outs.push(fs::read(&out).unwrap());
    }
    assert_eq!(outs[0], outs[1], "tracing changed the bitstream");
}

// ---- What-if projection ----

/// The analyzer's waterfill projection is grounded against reality: speed
/// one device up by an actual perturbed re-run and the projection from the
/// *baseline* samples must land within 5% of the measured result.
#[test]
fn what_if_projection_matches_perturbed_rerun() {
    let frames = 16;
    let params = EncodeParams {
        search_area: SearchArea(32),
        n_ref: 2,
        qp: 28,
        qp_intra: 27,
    };
    let mut cfg = EncoderConfig::full_hd(params);
    cfg.noise_amp = 0.0; // deterministic device timings
    let speedup = 1.3;

    let mut base = FevesEncoder::new(Platform::sys_hk(), cfg.clone()).unwrap();
    base.enable_flight(frames);
    base.run_timing(frames);
    let records: Vec<_> = base.flight().unwrap().records().cloned().collect();
    // Skip the characterization warmup: the LP is still converging there.
    let skip = records.len() - 8;
    let samples = frame_samples_from_flight(&records[skip..]);
    let device = busiest_device(&samples).expect("a busiest device exists");
    let projected = what_if_device(&samples, device, speedup).expect("projection");

    let mut fast = FevesEncoder::new(Platform::sys_hk(), cfg).unwrap();
    fast.add_perturbation(Perturbation {
        device,
        frames: 1..frames + 1,
        factor: speedup,
    });
    fast.enable_flight(frames);
    fast.run_timing(frames);
    let fast_records: Vec<_> = fast.flight().unwrap().records().cloned().collect();
    let measured_us: f64 = fast_records[skip..]
        .iter()
        .map(|r| r.measured_tau.tau_tot_ms * 1e3)
        .sum();

    assert!(projected.projected_us < projected.baseline_us);
    let err = (projected.projected_us - measured_us).abs() / measured_us;
    assert!(
        err <= 0.05,
        "what-if projected {:.1} µs, perturbed re-run measured {measured_us:.1} µs \
         ({:.1}% off, device {device} ×{speedup})",
        projected.projected_us,
        err * 100.0
    );
}

// ---- DAG invariants ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random span trees recorded through the real `TraceSink` API always
    /// validate (single root, all spans reachable, acyclic with causal
    /// edges) and survive a JSONL round trip intact.
    #[test]
    fn random_span_trees_validate_and_roundtrip(
        parents in proptest::collection::vec(0usize..64, 1..48),
        edge_stride in 2usize..6,
    ) {
        let collector = Arc::new(TraceCollector::new());
        let ctx = TraceCtx::for_job("fuzz");
        let root_sink = TraceSink::new(
            collector.clone(),
            TraceCtx { trace_id: ctx.trace_id, parent_span: 0 },
            Instant::now(),
        );
        let root = root_sink.record("job:fuzz", "job", 0.0, 1000.0);
        let mut ids = vec![root];
        for (i, p) in parents.iter().enumerate() {
            let parent = ids[p % ids.len()];
            let sink = root_sink.under(parent);
            ids.push(sink.record(&format!("s{i}"), "phase", i as f64, 1.0));
        }
        // Causal edges along insertion order mirror real emission (cause
        // recorded before effect), so the graph must stay acyclic.
        for w in ids.windows(2).step_by(edge_stride) {
            root_sink.link(w[0], w[1], EdgeKind::PipelineOverlap);
        }
        let log = collector.snapshot();
        prop_assert!(validate_dag(&log).is_ok());
        let back = TraceLog::parse_jsonl(&collector.to_jsonl()).expect("round trip");
        prop_assert_eq!(&back.spans, &log.spans);
        prop_assert_eq!(&back.edges, &log.edges);
    }
}

/// The validator rejects the corruptions the analyzer cannot survive:
/// orphaned parents and causal cycles.
#[test]
fn validator_rejects_orphans_and_cycles() {
    let collector = Arc::new(TraceCollector::new());
    let ctx = TraceCtx::for_job("bad");
    let root_sink = TraceSink::new(
        collector.clone(),
        TraceCtx {
            trace_id: ctx.trace_id,
            parent_span: 0,
        },
        Instant::now(),
    );
    let root = root_sink.record("job:bad", "job", 0.0, 100.0);
    let sink = root_sink.under(root);
    let a = sink.record("attempt0", "attempt", 0.0, 50.0);
    let mut log = collector.snapshot();
    validate_dag(&log).expect("well-formed log validates");

    // A causal edge back up the tree closes a cycle.
    let mut cyclic = log.clone();
    cyclic.edges.push(feves::obs::TraceEdge {
        trace_id: ctx.trace_id,
        from_span: a,
        to_span: root,
        kind: EdgeKind::QueueAdmit,
    });
    assert!(validate_dag(&cyclic).is_err(), "cycle must be rejected");

    // A span pointing at a parent that was never recorded is an orphan.
    log.spans[1].parent = Some(0xDEAD_BEEF);
    assert!(validate_dag(&log).is_err(), "orphan must be rejected");
}

// ---- Golden line schema ----

/// Collect every leaf key path of `v`, arrays generalized to `[]`.
fn key_paths(v: &Value, prefix: &str, out: &mut BTreeSet<String>) {
    match v {
        Value::Object(fields) => {
            for (k, child) in fields.iter() {
                key_paths(child, &format!("{prefix}/{k}"), out);
            }
        }
        Value::Array(items) => {
            for child in items.iter() {
                key_paths(child, &format!("{prefix}[]"), out);
            }
        }
        _ => {
            out.insert(prefix.to_string());
        }
    }
}

/// A synthetic trace exercising every line shape: the header, a full
/// lifecycle span set, a frame span with device slices and args, and one
/// edge of each kind.
fn synthetic_trace_jsonl() -> String {
    use feves::obs::trace::{DeviceSlice, TraceArg};
    let collector = Arc::new(TraceCollector::new());
    let ctx = TraceCtx::for_job("schema");
    let root_sink = TraceSink::new(
        collector.clone(),
        TraceCtx {
            trace_id: ctx.trace_id,
            parent_span: 0,
        },
        Instant::now(),
    );
    let root = root_sink.record("job:schema", "job", 0.0, 1000.0);
    let sink = root_sink.under(root);
    sink.record("admission", "admission", 0.0, 0.0);
    let q = sink.record("queue", "queue", 0.0, 10.0);
    let a0 = sink.record("attempt0", "attempt", 10.0, 400.0);
    sink.link(q, a0, EdgeKind::QueueAdmit);
    let at = sink.under(a0);
    let ck = at.record("ckpt2", "checkpoint", 300.0, 20.0);
    let f0 = at.record_full(
        "frame1",
        "frame",
        10.0,
        100.0,
        vec![DeviceSlice {
            device: 0,
            rows: 68,
            busy_ms: 0.08,
        }],
        vec![TraceArg {
            k: "tau_tot_ms".into(),
            v: 0.1,
        }],
    );
    let fs0 = at.under(f0);
    fs0.record("phase1", "phase", 10.0, 40.0);
    fs0.record("kernels:fast", "kernel", 10.0, 80.0);
    let f1 = at.record("frame2", "frame", 110.0, 100.0);
    at.link(f0, f1, EdgeKind::PipelineOverlap);
    let r1 = sink.record("retry1", "retry", 410.0, 50.0);
    let a1 = sink.record("attempt1", "attempt", 460.0, 400.0);
    sink.link(ck, a1, EdgeKind::CheckpointResume);
    let _ = r1;
    sink.record("drain", "drain", 860.0, 140.0);
    collector.to_jsonl()
}

#[test]
fn trace_jsonl_matches_golden_schema() {
    let text = synthetic_trace_jsonl();
    let mut paths = BTreeSet::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let v = serde_json::value_from_str(line).expect("trace line parses");
        key_paths(&v, "", &mut paths);
    }
    let mut actual: String = paths.into_iter().collect::<Vec<_>>().join("\n");
    actual.push('\n');
    let golden_path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trace.schema");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&golden_path, &actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", golden_path.display()));
    assert_eq!(
        actual, expected,
        "trace line schema drifted; run UPDATE_GOLDEN=1 cargo test --test trace \
         if the change is intentional"
    );
}
