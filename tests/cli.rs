//! Integration tests of the `feves` CLI binary (spawned as a subprocess,
//! the way a user drives it).

use std::path::PathBuf;
use std::process::Command;

fn feves_bin() -> PathBuf {
    // target/<profile>/feves next to the test executable's directory.
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // <profile>/
    p.push(format!("feves{}", std::env::consts::EXE_SUFFIX));
    p
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(feves_bin())
        .args(args)
        .output()
        .expect("spawn feves binary (build it with the workspace)");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn platforms_lists_the_paper_systems() {
    let (ok, stdout, _) = run(&["platforms"]);
    assert!(ok);
    for name in ["SysHK", "SysNF", "SysNFF", "GPU_K", "CPU_N"] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
    assert!(stdout.contains("3072 MiB"), "Kepler memory missing");
}

#[test]
fn simulate_reports_realtime_verdict() {
    let (ok, stdout, _) = run(&[
        "simulate",
        "--platform",
        "syshk",
        "--sa",
        "32",
        "--refs",
        "1",
        "--frames",
        "6",
    ]);
    assert!(ok);
    assert!(
        stdout.contains("REAL-TIME"),
        "expected real-time verdict:\n{stdout}"
    );
    assert!(stdout.contains("steady state"));
}

#[test]
fn trace_prints_gantt() {
    let (ok, stdout, _) = run(&["trace", "--platform", "sysnff", "--frames", "4"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("tau_tot"));
    assert!(stdout.contains("legend:"));
}

#[test]
fn bad_arguments_fail_with_usage() {
    let (ok, _, stderr) = run(&["simulate", "--platform", "nonsense"]);
    assert!(!ok);
    assert!(stderr.contains("unknown platform"));
    let (ok2, _, stderr2) = run(&["frobnicate"]);
    assert!(!ok2);
    assert!(stderr2.contains("usage:"));
}

#[test]
fn encode_roundtrips_a_y4m_file() {
    // Generate a tiny input with the library, encode it via the CLI.
    use feves::video::y4m::{Y4mHeader, Y4mWriter};
    use feves::video::{Resolution, SynthConfig, SynthSequence};
    let dir = std::env::temp_dir().join("feves_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("in.y4m");
    let output = dir.join("out.y4m");
    let mut synth = SynthConfig::tiny_test();
    synth.resolution = Resolution::QCIF;
    let mut seq = SynthSequence::new(synth);
    let mut w = Y4mWriter::new(
        std::io::BufWriter::new(std::fs::File::create(&input).unwrap()),
        Y4mHeader {
            resolution: Resolution::QCIF,
            fps: (25, 1),
        },
    );
    for _ in 0..3 {
        w.write_frame(&seq.next_frame()).unwrap();
    }
    w.finish().unwrap();

    let (ok, stdout, stderr) = run(&[
        "encode",
        input.to_str().unwrap(),
        output.to_str().unwrap(),
        "--sa",
        "16",
        "--refs",
        "1",
    ]);
    assert!(ok, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("PSNR-Y"));
    assert!(output.exists(), "reconstruction file written");
    // The reconstruction parses as Y4M with the right frame count.
    let mut r = feves::video::y4m::Y4mReader::new(std::io::BufReader::new(
        std::fs::File::open(&output).unwrap(),
    ))
    .unwrap();
    assert_eq!(r.read_all().unwrap().len(), 3);
}

#[test]
fn inject_fault_recovers_and_reports_counters() {
    let (ok, stdout, stderr) = run(&[
        "simulate",
        "--platform",
        "sysnff",
        "--frames",
        "10",
        "--inject-fault",
        "0:death@4",
    ]);
    assert!(ok, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(
        stdout.contains("faults:") && stdout.contains("re-solve"),
        "fault summary missing:\n{stdout}"
    );
    assert!(stdout.contains("1 injected"), "counter missing:\n{stdout}");

    // A malformed spec fails cleanly with the grammar in the message.
    let (ok2, _, stderr2) = run(&["simulate", "--inject-fault", "0:frazzle@4"]);
    assert!(!ok2);
    assert!(
        stderr2.contains("fault"),
        "parse error surfaced:\n{stderr2}"
    );
}

#[test]
fn export_platform_roundtrips_through_platform_file() {
    let dir = std::env::temp_dir().join("feves_cli_platform");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("hk.json");
    let (ok, json, _) = run(&["export-platform", "sysnff"]);
    assert!(ok);
    std::fs::write(&path, &json).unwrap();
    let (ok2, stdout, stderr) = run(&[
        "simulate",
        "--platform-file",
        path.to_str().unwrap(),
        "--frames",
        "6",
    ]);
    assert!(ok2, "{stderr}");
    assert!(stdout.contains("SysNFF"), "loaded platform name:\n{stdout}");

    // A corrupted platform file fails cleanly.
    std::fs::write(&path, "{broken").unwrap();
    let (ok3, _, stderr3) = run(&["simulate", "--platform-file", path.to_str().unwrap()]);
    assert!(!ok3);
    assert!(stderr3.contains("error"));
}

#[test]
fn flight_report_and_compare_workflow() {
    let dir = std::env::temp_dir().join("feves_cli_flight");
    std::fs::create_dir_all(&dir).unwrap();
    let flight = dir.join("flight.jsonl");
    let html = dir.join("report.html");

    // Record a flight log from a short simulation.
    let (ok, _, stderr) = run(&[
        "simulate",
        "--frames",
        "8",
        "--flight-out",
        flight.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("flight log written"), "{stderr}");
    let text = std::fs::read_to_string(&flight).unwrap();
    assert_eq!(text.lines().count(), 8, "one JSONL record per inter frame");

    // Text audit report.
    let (ok, stdout, _) = run(&["report", flight.to_str().unwrap()]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("flight audit"), "{stdout}");
    assert!(stdout.contains("dev0"), "{stdout}");

    // Self-contained HTML report.
    let (ok, _, stderr) = run(&[
        "report",
        flight.to_str().unwrap(),
        "--html",
        "--out",
        html.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    let page = std::fs::read_to_string(&html).unwrap();
    assert!(
        page.contains("<svg") && page.contains("</html>"),
        "not an HTML report"
    );
    assert!(
        !page.contains("http://") && !page.contains("https://"),
        "must be self-contained"
    );

    // Comparing a flight log against itself passes (exit 0).
    let (ok, stdout, _) = run(&[
        "compare",
        flight.to_str().unwrap(),
        flight.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("PASS"), "{stdout}");
}

#[test]
fn compare_gates_on_injected_regression() {
    // Synthesize a >=10 % tau_tot regression into a copied e2e summary: the
    // gate must fail with a non-zero exit and name the metric — and must
    // NOT print the usage banner (a regression is not a CLI error).
    let dir = std::env::temp_dir().join("feves_cli_compare");
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("base.json");
    let slow = dir.join("slow.json");
    std::fs::write(
        &base,
        r#"{"resolution":"1080p","frames":30,"scalar_ms":100.0,"fast_ms":50.0,"speedup":2.0,"outputs_identical":true}"#,
    )
    .unwrap();
    std::fs::write(
        &slow,
        r#"{"resolution":"1080p","frames":30,"scalar_ms":100.0,"fast_ms":56.0,"speedup":1.8,"outputs_identical":true}"#,
    )
    .unwrap();

    let (ok, stdout, stderr) = run(&[
        "compare",
        base.to_str().unwrap(),
        slow.to_str().unwrap(),
        "--threshold",
        "0.10",
    ]);
    assert!(
        !ok,
        "a 12% fast_ms regression must fail the gate:\n{stdout}"
    );
    assert!(
        stdout.contains("REGRESSION") && stdout.contains("e2e.fast_ms"),
        "{stdout}"
    );
    assert!(stdout.contains("FAIL"), "{stdout}");
    assert!(
        !stderr.contains("usage:"),
        "gate failure is not a usage error:\n{stderr}"
    );

    // A generous threshold lets the same pair through.
    let (ok, stdout, _) = run(&[
        "compare",
        base.to_str().unwrap(),
        slow.to_str().unwrap(),
        "--threshold",
        "0.5",
    ]);
    assert!(ok, "{stdout}");

    // Unreadable input is a runtime error: one line, non-zero exit, no
    // usage banner (the invocation itself was well-formed).
    let (ok, _, stderr) = run(&["compare", "/nonexistent.json", base.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("error"), "{stderr}");
    assert!(!stderr.contains("usage:"), "{stderr}");
}

/// Like [`run`], but surfacing the raw exit code.
fn run_code(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(feves_bin())
        .args(args)
        .output()
        .expect("spawn feves binary");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn exit_codes_distinguish_usage_from_runtime_failures() {
    // Usage errors (malformed invocation): exit 2 with the banner.
    let (code, _, stderr) = run_code(&["simulate", "--bogus-flag"]);
    assert_eq!(code, Some(2), "unknown flag is a usage error:\n{stderr}");
    assert!(
        stderr.contains("error: unknown option --bogus-flag"),
        "{stderr}"
    );
    assert!(stderr.contains("usage:"), "{stderr}");

    let (code, _, stderr) = run_code(&[]);
    assert_eq!(code, Some(2), "no command is a usage error");
    assert!(stderr.contains("usage:"), "{stderr}");

    let (code, _, stderr) = run_code(&["encode"]);
    assert_eq!(code, Some(2), "missing positional is a usage error");
    assert!(stderr.contains("usage:"), "{stderr}");

    // Runtime errors (well-formed invocation, failing work): exit 1 with a
    // single `error:` line and NO banner.
    for args in [
        &["encode", "/nonexistent/input.y4m"][..],
        &["resume", "/nonexistent/dir.ckpt"][..],
        &["report", "/nonexistent/flight.jsonl"][..],
    ] {
        let (code, _, stderr) = run_code(args);
        assert_eq!(code, Some(1), "{args:?}:\n{stderr}");
        assert_eq!(
            stderr.lines().count(),
            1,
            "exactly one diagnostic line for {args:?}:\n{stderr}"
        );
        assert!(stderr.starts_with("error: "), "{args:?}:\n{stderr}");
        assert!(!stderr.contains("usage:"), "{args:?}:\n{stderr}");
    }
}

#[test]
fn checkpointed_encode_then_resume_completes_the_tail() {
    use feves::video::y4m::{Y4mHeader, Y4mWriter};
    use feves::video::{Resolution, SynthConfig, SynthSequence};
    let dir = std::env::temp_dir().join("feves_cli_ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("in.y4m");
    let output = dir.join("out.y4m");
    let ckdir = dir.join("ckpts");
    let mut synth = SynthConfig::tiny_test();
    synth.resolution = Resolution::QCIF;
    let mut seq = SynthSequence::new(synth);
    let mut w = Y4mWriter::new(
        std::io::BufWriter::new(std::fs::File::create(&input).unwrap()),
        Y4mHeader {
            resolution: Resolution::QCIF,
            fps: (25, 1),
        },
    );
    for _ in 0..6 {
        w.write_frame(&seq.next_frame()).unwrap();
    }
    w.finish().unwrap();

    // A full (uninterrupted) checkpointed encode: generations appear, and
    // retention caps them at --checkpoint-keep.
    let (ok, _, stderr) = run(&[
        "encode",
        input.to_str().unwrap(),
        output.to_str().unwrap(),
        "--sa",
        "16",
        "--checkpoint-every",
        "2",
        "--checkpoint-keep",
        "1",
        "--checkpoint-dir",
        ckdir.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("checkpoint"), "{stderr}");
    let gens: Vec<_> = std::fs::read_dir(&ckdir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".ckpt"))
        .collect();
    assert_eq!(
        gens.len(),
        1,
        "retention must prune to --checkpoint-keep: {gens:?}"
    );
    let full = std::fs::read(&output).unwrap();

    // Resuming the *completed* session from its last generation re-encodes
    // the tail and reproduces the very same output file.
    let (ok, stdout, stderr) = run(&["resume", ckdir.to_str().unwrap()]);
    assert!(ok, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stderr.contains("resuming from"), "{stderr}");
    assert!(stdout.contains("PSNR-Y"), "{stdout}");
    assert_eq!(
        std::fs::read(&output).unwrap(),
        full,
        "resume of a finished session must reproduce the same bytes"
    );
}

#[test]
fn live_out_snapshot_drives_top_stats_and_report() {
    let dir = std::env::temp_dir().join("feves_cli_live");
    std::fs::create_dir_all(&dir).unwrap();
    let live = dir.join("live.json");
    let live_s = live.to_str().unwrap();

    let (ok, _, stderr) = run(&[
        "simulate",
        "--platform",
        "syshk",
        "--frames",
        "20",
        "--live-out",
        live_s,
        "--live-every",
        "20",
    ]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("live snapshot written"), "{stderr}");

    // The final snapshot parses and renders in all three surfaces.
    // (--allow-stale: this test checks rendering, not producer liveness,
    // and a loaded test host can take >2x the period to get here.)
    let (ok, stdout, stderr) = run(&["top", "--once", live_s, "--allow-stale"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("FEVES live"), "{stdout}");
    assert!(stdout.contains("simulate"), "{stdout}");
    assert!(stdout.contains("busy"), "{stdout}");

    let (ok, stdout, _) = run(&["stats", live_s]);
    assert!(ok);
    assert!(stdout.contains("frames.encoded"), "{stdout}");
    assert!(stdout.contains("obs.bus_events"), "{stdout}");

    let (ok, stdout, _) = run(&["report", live_s]);
    assert!(ok);
    assert!(stdout.contains("telemetry bus"), "{stdout}");
    assert!(stdout.contains("devices"), "{stdout}");

    // A live snapshot cannot drive the HTML flight report.
    let (ok, _, stderr) = run(&["report", live_s, "--html"]);
    assert!(!ok);
    assert!(stderr.contains("flight log"), "{stderr}");
}

#[test]
fn top_once_gates_on_snapshot_staleness() {
    // `feves top --once` is the farm's health probe: a snapshot older than
    // twice the producer's period means the producer is gone, and the probe
    // must say so with a non-zero exit — unless --allow-stale opts out.
    let dir = std::env::temp_dir().join("feves_cli_stale");
    std::fs::create_dir_all(&dir).unwrap();
    let live = dir.join("live.json");
    let live_s = live.to_str().unwrap();
    let _ = std::fs::remove_file(&live);

    // Missing snapshot: runtime error (exit 1), not a usage banner.
    let (code, _, stderr) = run_code(&["top", "--once", live_s]);
    assert_eq!(code, Some(1), "missing snapshot must exit 1:\n{stderr}");
    assert!(stderr.contains("error:"), "{stderr}");
    assert!(!stderr.contains("usage:"), "{stderr}");

    let (ok, _, stderr) = run(&[
        "simulate",
        "--platform",
        "syshk",
        "--frames",
        "2",
        "--live-out",
        live_s,
        "--live-every",
        "20",
    ]);
    assert!(ok, "{stderr}");

    // Age the snapshot past 2x the declared period (2 * 100ms).
    std::thread::sleep(std::time::Duration::from_millis(450));
    let (code, _, stderr) = run_code(&["top", "--once", live_s, "--live-every", "100"]);
    assert_eq!(code, Some(1), "stale snapshot must exit 1:\n{stderr}");
    assert!(stderr.contains("stale"), "{stderr}");
    assert!(stderr.contains("--allow-stale"), "hint missing:\n{stderr}");

    // The escape hatch still renders it.
    let (ok, stdout, stderr) = run(&[
        "top",
        "--once",
        live_s,
        "--live-every",
        "100",
        "--allow-stale",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("FEVES live"), "{stdout}");
}
