//! Integration tests of the `feves` CLI binary (spawned as a subprocess,
//! the way a user drives it).

use std::path::PathBuf;
use std::process::Command;

fn feves_bin() -> PathBuf {
    // target/<profile>/feves next to the test executable's directory.
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // <profile>/
    p.push(format!("feves{}", std::env::consts::EXE_SUFFIX));
    p
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(feves_bin())
        .args(args)
        .output()
        .expect("spawn feves binary (build it with the workspace)");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn platforms_lists_the_paper_systems() {
    let (ok, stdout, _) = run(&["platforms"]);
    assert!(ok);
    for name in ["SysHK", "SysNF", "SysNFF", "GPU_K", "CPU_N"] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
    assert!(stdout.contains("3072 MiB"), "Kepler memory missing");
}

#[test]
fn simulate_reports_realtime_verdict() {
    let (ok, stdout, _) = run(&[
        "simulate",
        "--platform",
        "syshk",
        "--sa",
        "32",
        "--refs",
        "1",
        "--frames",
        "6",
    ]);
    assert!(ok);
    assert!(
        stdout.contains("REAL-TIME"),
        "expected real-time verdict:\n{stdout}"
    );
    assert!(stdout.contains("steady state"));
}

#[test]
fn trace_prints_gantt() {
    let (ok, stdout, _) = run(&["trace", "--platform", "sysnff", "--frames", "4"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("tau_tot"));
    assert!(stdout.contains("legend:"));
}

#[test]
fn bad_arguments_fail_with_usage() {
    let (ok, _, stderr) = run(&["simulate", "--platform", "nonsense"]);
    assert!(!ok);
    assert!(stderr.contains("unknown platform"));
    let (ok2, _, stderr2) = run(&["frobnicate"]);
    assert!(!ok2);
    assert!(stderr2.contains("usage:"));
}

#[test]
fn encode_roundtrips_a_y4m_file() {
    // Generate a tiny input with the library, encode it via the CLI.
    use feves::video::y4m::{Y4mHeader, Y4mWriter};
    use feves::video::{Resolution, SynthConfig, SynthSequence};
    let dir = std::env::temp_dir().join("feves_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("in.y4m");
    let output = dir.join("out.y4m");
    let mut synth = SynthConfig::tiny_test();
    synth.resolution = Resolution::QCIF;
    let mut seq = SynthSequence::new(synth);
    let mut w = Y4mWriter::new(
        std::io::BufWriter::new(std::fs::File::create(&input).unwrap()),
        Y4mHeader {
            resolution: Resolution::QCIF,
            fps: (25, 1),
        },
    );
    for _ in 0..3 {
        w.write_frame(&seq.next_frame()).unwrap();
    }
    w.finish().unwrap();

    let (ok, stdout, stderr) = run(&[
        "encode",
        input.to_str().unwrap(),
        output.to_str().unwrap(),
        "--sa",
        "16",
        "--refs",
        "1",
    ]);
    assert!(ok, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("PSNR-Y"));
    assert!(output.exists(), "reconstruction file written");
    // The reconstruction parses as Y4M with the right frame count.
    let mut r = feves::video::y4m::Y4mReader::new(std::io::BufReader::new(
        std::fs::File::open(&output).unwrap(),
    ))
    .unwrap();
    assert_eq!(r.read_all().unwrap().len(), 3);
}

#[test]
fn inject_fault_recovers_and_reports_counters() {
    let (ok, stdout, stderr) = run(&[
        "simulate",
        "--platform",
        "sysnff",
        "--frames",
        "10",
        "--inject-fault",
        "0:death@4",
    ]);
    assert!(ok, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(
        stdout.contains("faults:") && stdout.contains("re-solve"),
        "fault summary missing:\n{stdout}"
    );
    assert!(stdout.contains("1 injected"), "counter missing:\n{stdout}");

    // A malformed spec fails cleanly with the grammar in the message.
    let (ok2, _, stderr2) = run(&["simulate", "--inject-fault", "0:frazzle@4"]);
    assert!(!ok2);
    assert!(
        stderr2.contains("fault"),
        "parse error surfaced:\n{stderr2}"
    );
}

#[test]
fn export_platform_roundtrips_through_platform_file() {
    let dir = std::env::temp_dir().join("feves_cli_platform");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("hk.json");
    let (ok, json, _) = run(&["export-platform", "sysnff"]);
    assert!(ok);
    std::fs::write(&path, &json).unwrap();
    let (ok2, stdout, stderr) = run(&[
        "simulate",
        "--platform-file",
        path.to_str().unwrap(),
        "--frames",
        "6",
    ]);
    assert!(ok2, "{stderr}");
    assert!(stdout.contains("SysNFF"), "loaded platform name:\n{stdout}");

    // A corrupted platform file fails cleanly.
    std::fs::write(&path, "{broken").unwrap();
    let (ok3, _, stderr3) = run(&["simulate", "--platform-file", path.to_str().unwrap()]);
    assert!(!ok3);
    assert!(stderr3.contains("error"));
}
