//! Differential equivalence suite for `--pipeline off|on`.
//!
//! The pipeline overlaps frame N+1's ME/INT phase with frame N's drain on
//! the *virtual* clock only — graph construction, the LP, and every
//! functional kernel are untouched. This suite pins that contract: every
//! acceptance scenario (chaos kills, silent drift, rate control, GOP,
//! CABAC, farm sessions) must produce **byte-identical** bitstreams and
//! reconstructions under both modes, and the timing path must differ only
//! by the recovered stall time.

use feves::core::framework::Perturbation;
use feves::core::prelude::*;
use feves::ft::{FaultKind, FaultSpec};
use feves::obs::Metric;
use feves::serve::session::run_session;
use feves::serve::JobSpec;
use feves::video::y4m::{Y4mHeader, Y4mWriter};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn functional_config(pipeline: bool) -> EncoderConfig {
    let mut cfg = EncoderConfig::full_hd(EncodeParams {
        search_area: SearchArea(16),
        n_ref: 2,
        ..Default::default()
    });
    cfg.resolution = Resolution::QCIF;
    cfg.mode = ExecutionMode::Functional;
    cfg.pipeline = pipeline;
    cfg
}

fn test_frames(n: usize) -> Vec<feves::video::frame::Frame> {
    let mut cfg = SynthConfig::tiny_test();
    cfg.resolution = Resolution::QCIF;
    SynthSequence::new(cfg).take_frames(n)
}

/// Functional signature of one scenario: per-frame bit counts, the final
/// reconstruction plane, and the fault-tolerance counters.
fn signature(
    pipeline: bool,
    scenario: &dyn Fn(&mut EncoderConfig, &mut Vec<Perturbation>),
) -> (Vec<Option<u64>>, Vec<u8>, FtStats) {
    let frames = test_frames(6);
    let mut cfg = functional_config(pipeline);
    let mut perturbations = Vec::new();
    scenario(&mut cfg, &mut perturbations);
    let mut enc = FevesEncoder::new(Platform::sys_nff(), cfg).unwrap();
    for p in perturbations {
        enc.add_perturbation(p);
    }
    let rep = enc.encode_sequence(&frames);
    let bits = rep.inter_frames().map(|f| f.bits).collect();
    let recon = enc.last_reconstruction().unwrap().as_slice().to_vec();
    (bits, recon, enc.ft_stats())
}

fn assert_differential(name: &str, scenario: &dyn Fn(&mut EncoderConfig, &mut Vec<Perturbation>)) {
    let (bits_off, recon_off, ft_off) = signature(false, scenario);
    let (bits_on, recon_on, ft_on) = signature(true, scenario);
    assert_eq!(
        bits_off, bits_on,
        "{name}: per-frame bits diverge between --pipeline off and on"
    );
    assert_eq!(
        recon_off, recon_on,
        "{name}: reconstructions diverge between --pipeline off and on"
    );
    assert_eq!(
        ft_off, ft_on,
        "{name}: fault-tolerance counters diverge between modes"
    );
}

#[test]
fn plain_encode_is_mode_invariant() {
    assert_differential("plain", &|_, _| {});
}

#[test]
fn chaos_kill_of_every_accelerator_is_mode_invariant() {
    for device in 0..Platform::sys_nff().n_accel {
        assert_differential(&format!("death@{device}"), &move |cfg, _| {
            cfg.faults = vec![FaultSpec {
                device,
                frame: 3,
                kind: FaultKind::Death,
            }];
        });
    }
}

#[test]
fn transfer_fault_and_stall_are_mode_invariant() {
    assert_differential("xfer", &|cfg, _| {
        cfg.faults = vec![FaultSpec {
            device: 0,
            frame: 4,
            kind: FaultKind::TransferError,
        }];
    });
    assert_differential("stall", &|cfg, _| {
        cfg.faults = vec![FaultSpec {
            device: 1,
            frame: 3,
            kind: FaultKind::Stall { frames: 2 },
        }];
    });
}

#[test]
fn silent_drift_is_mode_invariant() {
    assert_differential("drift", &|cfg, perts| {
        cfg.ewma = feves::sched::Ewma(0.1);
        perts.push(Perturbation {
            device: 0,
            frames: 3..1000,
            factor: 0.5,
        });
    });
}

#[test]
fn rate_control_gop_and_cabac_are_mode_invariant() {
    assert_differential("rate-control", &|cfg, _| {
        cfg.rate_control = Some(RateControlConfig {
            target_kbps: 400.0,
            fps: 25.0,
        });
    });
    assert_differential("gop", &|cfg, _| {
        cfg.gop = Some(3);
    });
    assert_differential("cabac", &|cfg, _| {
        cfg.entropy = feves::codec::cabac::EntropyBackend::Cabac;
    });
}

#[test]
fn health_jittered_lease_session_is_mode_invariant() {
    // The farm decorrelates re-admission probes per job; the jitter is
    // scheduling-only and must stay so under the pipeline.
    assert_differential("lease-jitter", &|cfg, _| {
        cfg.health_jitter = Some(0xFEE7);
        cfg.faults = vec![FaultSpec {
            device: 0,
            frame: 2,
            kind: FaultKind::Death,
        }];
    });
}

/// The timing path: both modes must *measure* identical schedules (the
/// perf-characterization stream is shared state with the LP), while the
/// pipelined report may only shrink by the recovered stall time.
#[test]
fn timing_run_measures_identically_and_only_reported_times_shrink() {
    fn flights(pipeline: bool) -> (Vec<feves::obs::FlightRecord>, f64, String) {
        let mut cfg = EncoderConfig::full_hd(EncodeParams::default());
        cfg.noise_amp = 0.0;
        cfg.pipeline = pipeline;
        let mut enc = FevesEncoder::new(Platform::sys_hk(), cfg).unwrap();
        enc.enable_flight(16);
        let rep = enc.run_timing(10);
        let total: f64 = rep.inter_frames().map(|f| f.tau_tot).sum();
        let recorder = enc.flight().unwrap();
        let jsonl = recorder.to_jsonl();
        (recorder.to_vec(), total, jsonl)
    }
    let (off, total_off, jsonl_off) = flights(false);
    let (on, total_on, jsonl_on) = flights(true);
    // Exported *before* the asserts so a differential failure leaves both
    // flight logs behind for CI to upload as build artifacts.
    if let Ok(dir) = std::env::var("FEVES_PIPELINE_ARTIFACT") {
        std::fs::create_dir_all(&dir).expect("artifact dir");
        std::fs::write(Path::new(&dir).join("flight-off.jsonl"), &jsonl_off).unwrap();
        std::fs::write(Path::new(&dir).join("flight-on.jsonl"), &jsonl_on).unwrap();
    }
    assert_eq!(off.len(), on.len());
    for (a, b) in off.iter().zip(&on) {
        assert_eq!(
            a.measured_tau, b.measured_tau,
            "frame {}: measured schedule diverged between modes",
            a.frame
        );
        assert_eq!(a.predicted_tau, b.predicted_tau, "frame {}", a.frame);
    }
    assert!(
        total_on <= total_off + 1e-9,
        "pipelined reported time must never exceed lockstep ({total_on} > {total_off})"
    );
    // Depth telemetry: lockstep never holds a generation across frames,
    // the pipeline holds exactly one extra in steady state.
    assert!(off.iter().all(|r| r.inflight_depth <= 1));
    assert!(on.iter().skip(1).any(|r| r.inflight_depth == 2));
}

#[test]
fn pipeline_metrics_fire_only_when_enabled() {
    fn overlap_count(pipeline: bool) -> (u64, f64) {
        let rec = Arc::new(feves::obs::MemoryRecorder::new());
        let mut cfg = EncoderConfig::full_hd(EncodeParams::default());
        cfg.noise_amp = 0.0;
        cfg.pipeline = pipeline;
        let mut enc = FevesEncoder::new(Platform::sys_hk(), cfg).unwrap();
        enc.set_recorder(rec.clone());
        enc.run_timing(10);
        let h = rec.histogram(Metric::PipelineStallRecoveredUs);
        (h.count(), h.sum())
    }
    let (off_n, _) = overlap_count(false);
    assert_eq!(off_n, 0, "lockstep must not report pipeline metrics");
    let (on_n, on_sum) = overlap_count(true);
    assert!(
        on_n > 0,
        "pipelined run must report stall-recovered samples"
    );
    assert!(
        on_sum > 0.0,
        "SysHK is heterogeneous: some stall time must be recovered"
    );
}

// ---- farm differential ---------------------------------------------------

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("feves-pipeeq-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_input(path: &Path, n_frames: usize) {
    let mut seq = SynthSequence::new(SynthConfig {
        resolution: Resolution::QCIF,
        seed: 7,
        objects: 4,
        pan: (1.0, 0.5),
        noise: 2,
    });
    let frames = seq.take_frames(n_frames);
    let header = Y4mHeader {
        resolution: frames[0].resolution(),
        fps: (25, 1),
    };
    let mut w = Y4mWriter::new(Vec::new(), header);
    for f in &frames {
        w.write_frame(f).unwrap();
    }
    std::fs::write(path, w.finish().unwrap()).unwrap();
}

#[test]
fn farm_session_output_is_mode_invariant() {
    let dir = scratch("farm");
    write_input(&dir.join("in.y4m"), 6);
    let mut outputs = Vec::new();
    for (tag, pipeline) in [("off", false), ("on", true)] {
        let job = JobSpec {
            id: format!("pipe-{tag}"),
            input: dir.join("in.y4m").to_string_lossy().into_owned(),
            output: dir
                .join(format!("out-{tag}.y4m"))
                .to_string_lossy()
                .into_owned(),
            sa: 16,
            refs: 2,
            checkpoint_every: 2,
            pipeline,
            ..JobSpec::default()
        };
        let ctl = Arc::new(SessionCtl::new());
        let rep = run_session(&job, &ctl, feves::obs::hub().session(&job.id), 0, None).unwrap();
        assert_eq!(rep.frames_done, 6);
        outputs.push(std::fs::read(&job.output).unwrap());
    }
    assert_eq!(
        outputs[0], outputs[1],
        "farm session output must be bit-identical across pipeline modes"
    );
}

#[test]
fn chaos_killed_pipelined_farm_job_recovers_mode_invariant() {
    let dir = scratch("farmchaos");
    write_input(&dir.join("in.y4m"), 6);
    let mut outputs = Vec::new();
    for (tag, pipeline) in [("off", false), ("on", true)] {
        let job = JobSpec {
            id: format!("chaos-{tag}"),
            input: dir.join("in.y4m").to_string_lossy().into_owned(),
            output: dir
                .join(format!("out-{tag}.y4m"))
                .to_string_lossy()
                .into_owned(),
            sa: 16,
            refs: 2,
            checkpoint_every: 2,
            chaos_kill_at: Some(4),
            pipeline,
            ..JobSpec::default()
        };
        let ctl = Arc::new(SessionCtl::new());
        let killed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_session(&job, &ctl, feves::obs::hub().session(&job.id), 0, None)
        }));
        assert!(killed.is_err(), "{tag}: attempt 0 must hit the chaos kill");
        let rep = run_session(&job, &ctl, feves::obs::hub().session(&job.id), 1, None).unwrap();
        assert_eq!(rep.frames_done, 6, "{tag}: retry must complete");
        outputs.push(std::fs::read(&job.output).unwrap());
    }
    assert_eq!(
        outputs[0], outputs[1],
        "chaos-killed farm recovery must be bit-identical across pipeline modes"
    );
}
