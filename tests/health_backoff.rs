//! Exponential-backoff re-admission timing of the device health tracker,
//! frame by frame: blacklist → (backoff expires) → probation → (clean
//! frames) → healthy, with the backoff doubling on repeat offenders and
//! resetting only after a full probation graduation.

use feves::ft::{DeviceHealth, HealthTracker};

/// Drive the tracker exactly as the framework does — `tick(frame)` first,
/// then success/fault records — and return the per-frame states of device 0.
fn drive(
    tracker: &mut HealthTracker,
    frames: std::ops::Range<usize>,
    fault_at: &[usize],
) -> Vec<(usize, DeviceHealth)> {
    let mut log = Vec::new();
    for frame in frames {
        tracker.tick(frame);
        if fault_at.contains(&frame) {
            tracker.record_fault(0, frame);
        } else if tracker.is_available(0) {
            tracker.record_success(0);
        }
        log.push((frame, tracker.state(0)));
    }
    log
}

#[test]
fn first_fault_readmits_after_base_backoff_exactly() {
    let base = 2;
    let probation = 3;
    let mut t = HealthTracker::new(2, base, probation);
    // Fault at frame 5 → blacklisted through frames 5..5+base, probation
    // starts at exactly frame 5+base.
    let log = drive(&mut t, 1..20, &[5]);
    let state_at = |f: usize| log.iter().find(|(fr, _)| *fr == f).unwrap().1;
    assert_eq!(state_at(5), DeviceHealth::Blacklisted);
    assert_eq!(
        state_at(6),
        DeviceHealth::Blacklisted,
        "backoff not elapsed"
    );
    assert_eq!(
        state_at(7),
        DeviceHealth::Probation,
        "re-admission must land exactly at fault_frame + base_backoff"
    );
    // Probation graduates after exactly `probation` clean frames.
    assert_eq!(state_at(8), DeviceHealth::Probation);
    assert_eq!(state_at(9), DeviceHealth::Healthy);
    assert_eq!(state_at(19), DeviceHealth::Healthy);
}

#[test]
fn repeat_offender_backoff_doubles_each_time() {
    let mut t = HealthTracker::new(1, 2, 2);
    // Fault the device every time it comes back: gaps must be 2, 4, 8, ...
    let mut frame = 1;
    let mut gaps = Vec::new();
    for _ in 0..5 {
        t.record_fault(0, frame);
        let readmit = t.readmit_at(0);
        gaps.push(readmit - frame);
        // Walk the clock forward to the re-admission frame.
        while frame < readmit {
            frame += 1;
            t.tick(frame);
            assert_eq!(
                t.state(0),
                if frame < readmit {
                    DeviceHealth::Blacklisted
                } else {
                    DeviceHealth::Probation
                },
                "frame {frame} readmit {readmit}"
            );
        }
        // Immediately fault again on the re-admission frame.
    }
    assert_eq!(gaps, vec![2, 4, 8, 16, 32], "exponential backoff sequence");
}

#[test]
fn backoff_caps_and_resets_only_after_probation_graduation() {
    let mut t = HealthTracker::new(1, 2, 3);
    // Hammer faults until the backoff saturates at the cap (64).
    let mut frame = 1;
    for _ in 0..8 {
        t.record_fault(0, frame);
        frame = t.readmit_at(0);
        t.tick(frame);
    }
    assert_eq!(t.backoff(0), 64, "backoff must rail at the cap");
    // A fault mid-probation does NOT reset the backoff...
    t.record_fault(0, frame);
    assert_eq!(t.readmit_at(0) - frame, 64, "capped gap");
    frame = t.readmit_at(0);
    t.tick(frame);
    assert_eq!(t.state(0), DeviceHealth::Probation);
    // One clean frame is not graduation (probation is 3 frames)...
    t.record_success(0);
    assert_eq!(t.state(0), DeviceHealth::Probation);
    assert_eq!(t.backoff(0), 64, "backoff intact until graduation");
    // ...but full graduation resets the backoff to base.
    t.record_success(0);
    t.record_success(0);
    assert_eq!(t.state(0), DeviceHealth::Healthy);
    assert_eq!(t.backoff(0), 2, "graduation resets the backoff to base");
    // And the next fault starts the ladder from the base again.
    t.record_fault(0, 100);
    assert_eq!(t.readmit_at(0), 102);
}

#[test]
fn jitter_bounds_and_determinism() {
    // With a seed, re-admission lands in [backoff, backoff + backoff/2];
    // the same seed replays the exact same timeline.
    let readmit_gaps = |seed: u64| -> Vec<usize> {
        let mut t = HealthTracker::new(1, 4, 2);
        t.set_jitter_seed(Some(seed));
        let mut frame = 1;
        let mut gaps = Vec::new();
        for _ in 0..5 {
            t.record_fault(0, frame);
            let readmit = t.readmit_at(0);
            gaps.push(readmit - frame);
            frame = readmit;
            t.tick(frame);
        }
        gaps
    };
    let a = readmit_gaps(0xFE0E5);
    let b = readmit_gaps(0xFE0E5);
    assert_eq!(a, b, "same seed must replay the exact timeline");
    // Each gap stays within [backoff, backoff + backoff/2] for the doubling
    // backoff sequence 4, 8, 16, 32, 64.
    for (k, gap) in a.iter().enumerate() {
        let backoff = (4usize << k).min(64);
        assert!(
            (backoff..=backoff + backoff / 2).contains(gap),
            "gap {gap} outside jitter band for backoff {backoff}"
        );
    }
}

#[test]
fn jitter_seeds_decorrelate_sessions() {
    // Two sessions probing the same recovered device with different seeds
    // must not re-admit in lockstep on every fault (thundering herd).
    let timeline = |seed: u64| -> Vec<usize> {
        let mut t = HealthTracker::new(1, 8, 2);
        t.set_jitter_seed(Some(seed));
        let mut frame = 1;
        let mut readmits = Vec::new();
        for _ in 0..6 {
            t.record_fault(0, frame);
            frame = t.readmit_at(0);
            readmits.push(frame);
            t.tick(frame);
        }
        readmits
    };
    assert_ne!(
        timeline(1),
        timeline(2),
        "different seeds must produce different re-admission timelines"
    );
}

#[test]
fn jitter_off_by_default_and_none_restores_exact_timing() {
    let mut jittered = HealthTracker::new(1, 2, 2);
    jittered.set_jitter_seed(Some(99));
    jittered.set_jitter_seed(None);
    let mut plain = HealthTracker::new(1, 2, 2);
    for (frame, t) in [(5, &mut jittered), (5, &mut plain)] {
        t.record_fault(0, frame);
    }
    assert_eq!(jittered.readmit_at(0), plain.readmit_at(0));
    assert_eq!(jittered.readmit_at(0), 7, "exact base backoff, no jitter");
}

#[test]
fn unavailable_while_blacklisted_available_in_probation() {
    let mut t = HealthTracker::new(3, 2, 2);
    t.record_fault(1, 4);
    assert!(!t.is_available(1));
    assert_eq!(t.available(), vec![true, false, true]);
    assert_eq!(t.blacklisted(), vec![1]);
    assert_eq!(t.n_available(), 2);
    t.tick(6);
    assert!(
        t.is_available(1),
        "probation devices are schedulable (trusted but watched)"
    );
    assert_eq!(t.blacklisted(), Vec::<usize>::new());
    assert_eq!(t.fault_count(1), 1);
}
