//! Process-kill chaos harness: spawn the `feves` CLI, kill it abruptly at
//! randomized frames and checkpoint phases (via `FEVES_CRASH_AT` aborts and
//! a real `SIGKILL`), and prove that `feves resume` completes the session
//! with output **bit-identical** to an uninterrupted run. Torn, corrupted,
//! and stale checkpoints must be rejected with a typed one-line error (or
//! fall back to the previous generation when one survives).

use std::fs;
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

use feves::video::synth::{SynthConfig, SynthSequence};
use feves::video::y4m::{Y4mHeader, Y4mWriter};
use feves::Resolution;

const N_FRAMES: usize = 8;
const EVERY: usize = 2;

fn feves_bin() -> PathBuf {
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // <profile>/
    p.push(format!("feves{}", std::env::consts::EXE_SUFFIX));
    p
}

/// Fresh scratch directory for one test case.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("feves-crash-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Write a small deterministic QCIF Y4M input.
fn write_input(path: &Path, seed: u64) {
    let mut seq = SynthSequence::new(SynthConfig {
        resolution: Resolution::QCIF,
        seed,
        objects: 4,
        pan: (1.0, 0.5),
        noise: 2,
    });
    let frames = seq.take_frames(N_FRAMES);
    let header = Y4mHeader {
        resolution: frames[0].resolution(),
        fps: (25, 1),
    };
    let mut w = Y4mWriter::new(Vec::new(), header);
    for f in &frames {
        w.write_frame(f).unwrap();
    }
    fs::write(path, w.finish().unwrap()).unwrap();
}

fn run(args: &[&str], envs: &[(&str, &str)]) -> (bool, String, String) {
    let mut cmd = Command::new(feves_bin());
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn feves binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn encode_args<'a>(input: &'a str, output: &'a str) -> Vec<&'a str> {
    vec![
        "encode",
        input,
        output,
        "--platform",
        "syshk",
        "--sa",
        "16",
        "--refs",
        "2",
    ]
}

/// Uninterrupted reference encode (no checkpointing) → output bytes.
fn baseline(dir: &Path, input: &str) -> Vec<u8> {
    let out = dir.join("baseline.y4m");
    let out = out.to_str().unwrap().to_string();
    let (ok, _, stderr) = run(&encode_args(input, &out), &[]);
    assert!(ok, "baseline encode failed:\n{stderr}");
    fs::read(out).unwrap()
}

/// One crash+resume cycle: run a checkpointed encode with `crash_at` armed
/// (must die), then `feves resume` on the checkpoint dir (must succeed),
/// and return the recovered output bytes.
fn crash_then_resume(dir: &Path, input: &str, crash_at: &str, extra: &[&str]) -> Vec<u8> {
    let out = dir.join(format!("out-{}.y4m", crash_at.replace(['@', '-'], "_")));
    let out = out.to_str().unwrap().to_string();
    let ckdir = format!("{out}.ckpt");
    let every = EVERY.to_string();
    let mut args = encode_args(input, &out);
    args.extend_from_slice(&["--checkpoint-every", &every, "--checkpoint-dir", &ckdir]);
    args.extend_from_slice(extra);
    let (ok, _, _) = run(&args, &[("FEVES_CRASH_AT", crash_at)]);
    assert!(!ok, "encode with FEVES_CRASH_AT={crash_at} must die");

    let mut rargs = vec!["resume", ckdir.as_str()];
    rargs.extend_from_slice(extra);
    let (ok, stdout, stderr) = run(&rargs, &[]);
    assert!(
        ok,
        "resume after {crash_at} failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stderr.contains("resuming from"),
        "resume banner missing:\n{stderr}"
    );
    fs::read(&out).unwrap()
}

#[test]
fn kill_before_every_frame_resume_is_bit_identical() {
    let dir = scratch("frames");
    let input = dir.join("in.y4m");
    write_input(&input, 0x5EED);
    let input = input.to_str().unwrap();
    let want = baseline(&dir, input);
    // The first checkpoint lands after frame 1 (EVERY = 2), so a kill
    // before any frame from 2 on must be recoverable.
    for k in 2..N_FRAMES {
        let got = crash_then_resume(&dir, input, &format!("frame@{k}"), &[]);
        assert_eq!(
            got, want,
            "recovered output differs from uninterrupted run (killed before frame {k})"
        );
    }
}

#[test]
fn kill_before_first_checkpoint_is_a_typed_error() {
    // Dying before any checkpoint was committed leaves nothing to resume —
    // that must be a one-line typed error, not a panic or a usage banner.
    let dir = scratch("first");
    let input = dir.join("in.y4m");
    write_input(&input, 0x5EED);
    let input = input.to_str().unwrap();
    let out = dir.join("out.y4m");
    let out = out.to_str().unwrap().to_string();
    let ckdir = format!("{out}.ckpt");
    let mut args = encode_args(input, &out);
    args.extend_from_slice(&["--checkpoint-every", "2", "--checkpoint-dir", &ckdir]);
    let (ok, _, _) = run(&args, &[("FEVES_CRASH_AT", "frame@1")]);
    assert!(!ok);
    let (ok, _, stderr) = run(&["resume", &ckdir], &[]);
    assert!(!ok, "resume with no committed checkpoint must fail");
    assert!(stderr.contains("error:"), "typed error line:\n{stderr}");
    assert!(!stderr.contains("usage:"), "not a usage error:\n{stderr}");
}

#[test]
fn kill_inside_the_checkpoint_writer_itself() {
    // The checkpoint protocol's own windows: mid temp-file write, after the
    // temp fsync before the rename, and after the rename before the dir
    // fsync. Each must recover (from the previous generation for the first
    // two, the just-renamed one for the third) bit-identically.
    let dir = scratch("ckptwin");
    let input = dir.join("in.y4m");
    write_input(&input, 0x5EED);
    let input = input.to_str().unwrap();
    let want = baseline(&dir, input);
    for point in ["ckpt-mid-write@2", "ckpt-temp@2", "ckpt-rename@2"] {
        let got = crash_then_resume(&dir, input, point, &[]);
        assert_eq!(got, want, "recovered output differs after {point}");
        // Recovery + subsequent checkpoints must also have swept any torn
        // temp file the crash left behind.
        let out = dir.join(format!("out-{}.y4m", point.replace(['@', '-'], "_")));
        let ckdir = PathBuf::from(format!("{}.ckpt", out.display()));
        let leftovers: Vec<_> = fs::read_dir(&ckdir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "torn temp files survived: {leftovers:?}"
        );
    }
}

#[test]
fn corrupted_newest_generation_falls_back_to_previous() {
    let dir = scratch("fallback");
    let input = dir.join("in.y4m");
    write_input(&input, 0x5EED);
    let input = input.to_str().unwrap();
    let want = baseline(&dir, input);

    let out = dir.join("out.y4m");
    let out = out.to_str().unwrap().to_string();
    let ckdir = format!("{out}.ckpt");
    let mut args = encode_args(input, &out);
    args.extend_from_slice(&["--checkpoint-every", "2", "--checkpoint-dir", &ckdir]);
    // Die before frame 6: generations ckpt-000004 and ckpt-000006 survive
    // (retention keeps two).
    let (ok, _, _) = run(&args, &[("FEVES_CRASH_AT", "frame@6")]);
    assert!(!ok);

    // Bit-rot the newest generation.
    let mut gens: Vec<_> = fs::read_dir(&ckdir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "ckpt"))
        .collect();
    gens.sort();
    assert!(
        gens.len() >= 2,
        "need two generations to test fallback: {gens:?}"
    );
    let newest = gens.last().unwrap().clone();
    let mut bytes = fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(&newest, bytes).unwrap();

    let (ok, _, stderr) = run(&["resume", &ckdir], &[]);
    assert!(ok, "fallback resume failed:\n{stderr}");
    assert!(
        stderr.contains("warning:"),
        "skipped generation must be reported:\n{stderr}"
    );
    assert_eq!(fs::read(&out).unwrap(), want, "fallback recovery diverged");
}

#[test]
fn all_generations_corrupted_is_a_typed_rejection() {
    let dir = scratch("allcorrupt");
    let input = dir.join("in.y4m");
    write_input(&input, 0x5EED);
    let input = input.to_str().unwrap();
    let out = dir.join("out.y4m");
    let out = out.to_str().unwrap().to_string();
    let ckdir = format!("{out}.ckpt");
    let mut args = encode_args(input, &out);
    args.extend_from_slice(&["--checkpoint-every", "2", "--checkpoint-dir", &ckdir]);
    let (ok, _, _) = run(&args, &[("FEVES_CRASH_AT", "frame@6")]);
    assert!(!ok);

    for e in fs::read_dir(&ckdir).unwrap() {
        let p = e.unwrap().path();
        if p.extension().is_some_and(|x| x == "ckpt") {
            let mut b = fs::read(&p).unwrap();
            let mid = b.len() / 2;
            b[mid] ^= 0xFF;
            fs::write(&p, b).unwrap();
        }
    }
    let (ok, _, stderr) = run(&["resume", &ckdir], &[]);
    assert!(!ok, "resume over all-corrupt generations must fail");
    assert!(
        stderr.contains("error:") && stderr.contains("checkpoint"),
        "typed checkpoint error expected:\n{stderr}"
    );
    assert!(!stderr.contains("usage:"), "runtime, not usage:\n{stderr}");
}

#[test]
fn changed_input_is_rejected_as_stale() {
    let dir = scratch("stale");
    let input = dir.join("in.y4m");
    write_input(&input, 0x5EED);
    let input_s = input.to_str().unwrap().to_string();
    let out = dir.join("out.y4m");
    let out = out.to_str().unwrap().to_string();
    let ckdir = format!("{out}.ckpt");
    let mut args = encode_args(&input_s, &out);
    args.extend_from_slice(&["--checkpoint-every", "2", "--checkpoint-dir", &ckdir]);
    let (ok, _, _) = run(&args, &[("FEVES_CRASH_AT", "frame@5")]);
    assert!(!ok);

    // Replace the input with a different (same-shape) sequence.
    write_input(&input, 0xBAD5EED);
    let (ok, _, stderr) = run(&["resume", &ckdir], &[]);
    assert!(!ok, "resume over a changed input must fail");
    assert!(
        stderr.contains("error:") && stderr.contains("changed"),
        "stale-input rejection expected:\n{stderr}"
    );
}

#[test]
fn real_sigkill_mid_encode_recovers() {
    // A genuine out-of-band kill (no abort hook): watch the child's stdout
    // until a few frames are done, then SIGKILL it.
    let dir = scratch("sigkill");
    let input = dir.join("in.y4m");
    write_input(&input, 0x5EED);
    let input = input.to_str().unwrap();
    let want = baseline(&dir, input);

    let out = dir.join("out.y4m");
    let out = out.to_str().unwrap().to_string();
    let ckdir = format!("{out}.ckpt");
    let mut args = encode_args(input, &out);
    args.extend_from_slice(&["--checkpoint-every", "2", "--checkpoint-dir", &ckdir]);
    let mut child = Command::new(feves_bin())
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn feves");
    {
        let stdout = child.stdout.take().unwrap();
        let mut lines = std::io::BufReader::new(stdout).lines();
        let mut seen = 0;
        while let Some(Ok(line)) = lines.next() {
            if line.contains("frame") {
                seen += 1;
            }
            if seen >= 5 {
                break;
            }
        }
        child.kill().expect("SIGKILL the encoder");
    }
    let status = child.wait().unwrap();
    assert!(!status.success());

    let (ok, _, stderr) = run(&["resume", &ckdir], &[]);
    assert!(ok, "resume after SIGKILL failed:\n{stderr}");
    assert_eq!(
        fs::read(&out).unwrap(),
        want,
        "SIGKILL recovery must be bit-identical"
    );
}

#[test]
fn chaos_seed_randomizes_the_kill_point() {
    // CI drives this with FEVES_CHAOS_SEED=1..3; the seed picks the kill
    // frame and whether to also tear the checkpoint writer. Any seed must
    // recover bit-identically — and leave a flight log whose resume marker
    // records the restart.
    let seed: u64 = std::env::var("FEVES_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    // xorshift64 — deterministic per seed, no external RNG needed here.
    let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let kill_frame = 2 + (next() as usize % (N_FRAMES - 2));
    let crash_at = if next() % 3 == 0 {
        "ckpt-mid-write@2".to_string()
    } else {
        format!("frame@{kill_frame}")
    };

    let dir = scratch(&format!("seed{seed}"));
    let input = dir.join("in.y4m");
    write_input(&input, 0x5EED ^ seed);
    let input = input.to_str().unwrap();
    let want = baseline(&dir, input);
    let flight = dir.join("flight.jsonl");
    let flight_arg = flight.to_str().unwrap().to_string();
    let extra = ["--flight-out", flight_arg.as_str()];
    let got = crash_then_resume(&dir, input, &crash_at, &extra);
    assert_eq!(got, want, "seed {seed} ({crash_at}) recovery diverged");

    // The recovered flight log marks where the session restarted and still
    // parses through the report pipeline.
    let text = fs::read_to_string(&flight).unwrap();
    assert!(
        text.contains("\"resume_marker\":"),
        "flight log must record the resume point:\n{text}"
    );
    let (ok, stdout, stderr) = run(&["report", flight_arg.as_str()], &[]);
    assert!(ok, "report over recovered flight log failed:\n{stderr}");
    assert!(!stdout.is_empty());

    // CI uploads the recovered flight log as a build artifact.
    if let Ok(dest) = std::env::var("FEVES_CHAOS_ARTIFACT") {
        fs::copy(&flight, dest).expect("export recovered flight log");
    }
}

#[test]
fn pipelined_kill_before_every_frame_resume_is_bit_identical() {
    // The pipeline overlaps frame generations, but checkpoints commit only
    // at quiesced boundaries — so a kill before ANY frame under
    // `--pipeline on` must recover bit-identical to a lockstep baseline.
    let dir = scratch("pipeframes");
    let input = dir.join("in.y4m");
    write_input(&input, 0x5EED);
    let input = input.to_str().unwrap();
    let want = baseline(&dir, input);
    for k in 2..N_FRAMES {
        let got = crash_then_resume(&dir, input, &format!("frame@{k}"), &["--pipeline", "on"]);
        assert_eq!(
            got, want,
            "pipelined recovery differs from lockstep baseline (killed before frame {k})"
        );
    }
}

#[test]
fn pipelined_resume_is_bit_identical_to_lockstep_resume() {
    // Same input, same kill point, two scheduling modes: the recovered
    // bitstreams must agree with each other (and with the clean run).
    let input_bytes = {
        let dir = scratch("piperesume-in");
        let input = dir.join("in.y4m");
        write_input(&input, 0x5EED);
        fs::read(&input).unwrap()
    };
    let mut recovered = Vec::new();
    for (tag, extra) in [
        ("lockstep", &[][..]),
        ("pipelined", &["--pipeline", "on"][..]),
    ] {
        let dir = scratch(&format!("piperesume-{tag}"));
        let input = dir.join("in.y4m");
        fs::write(&input, &input_bytes).unwrap();
        let input = input.to_str().unwrap();
        let want = baseline(&dir, input);
        let got = crash_then_resume(&dir, input, "frame@5", extra);
        assert_eq!(got, want, "{tag} recovery diverged from its clean run");
        recovered.push(got);
    }
    assert_eq!(
        recovered[0], recovered[1],
        "pipelined resume must be bit-identical to lockstep resume"
    );
}

#[test]
fn sigterm_mid_encode_checkpoints_and_resumes_bit_exact() {
    // Graceful preemption, as a process supervisor would do it: TERM (not
    // KILL) a checkpoint-armed encode mid-run. The encoder must commit an
    // off-cadence checkpoint at the frame boundary, flush it atomically,
    // and exit 0 — and `feves resume` must then complete the session
    // bit-identically to an uninterrupted run.
    let dir = scratch("sigterm");
    let input = dir.join("in.y4m");
    write_input(&input, 0x5EED);
    let input = input.to_str().unwrap();
    let want = baseline(&dir, input);

    let out = dir.join("out.y4m");
    let out = out.to_str().unwrap().to_string();
    let ckdir = format!("{out}.ckpt");
    let mut args = encode_args(input, &out);
    args.extend_from_slice(&["--checkpoint-every", "2", "--checkpoint-dir", &ckdir]);
    let mut child = Command::new(feves_bin())
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn feves");
    let stdout = child.stdout.take().unwrap();
    let mut lines = std::io::BufReader::new(stdout).lines();
    let mut seen = 0;
    while let Some(Ok(line)) = lines.next() {
        if line.contains("frame") {
            seen += 1;
        }
        if seen >= 2 {
            break;
        }
    }
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    // Keep draining stdout until the child exits — closing the pipe early
    // would fault the encoder's own progress prints.
    for _ in lines.by_ref() {}
    let output = child.wait_with_output().unwrap();
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "graceful TERM must exit 0, got {}:\n{stderr}",
        output.status
    );
    assert!(
        stderr.contains("interrupted: checkpoint committed"),
        "preemption banner missing:\n{stderr}"
    );

    let (ok, _, stderr) = run(&["resume", &ckdir], &[]);
    assert!(ok, "resume after SIGTERM failed:\n{stderr}");
    assert_eq!(
        fs::read(&out).unwrap(),
        want,
        "SIGTERM preempt + resume must be bit-identical"
    );
}
