//! Farm acceptance: drive the real `feves` binary through the spool
//! protocol — submit, serve, drain — and prove the service-mode
//! guarantees end to end. Every accepted job must finish **byte-identical**
//! to a single-session `feves encode` of the same spec (whatever leases,
//! faults, retries, or drains happened), or fail with typed culprit
//! attribution in its done record. Admission must reject above the high
//! watermark, and a `SIGTERM` drain must exit zero with zero lost jobs.

use std::fs;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

use feves::video::synth::{SynthConfig, SynthSequence};
use feves::video::y4m::{Y4mHeader, Y4mWriter};
use feves::Resolution;

fn feves_bin() -> PathBuf {
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // <profile>/
    p.push(format!("feves{}", std::env::consts::EXE_SUFFIX));
    p
}

/// Fresh scratch directory for one test case.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("feves-farm-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Write a small deterministic QCIF Y4M input.
fn write_input(path: &Path, seed: u64, frames: usize) {
    let mut seq = SynthSequence::new(SynthConfig {
        resolution: Resolution::QCIF,
        seed,
        objects: 4,
        pan: (1.0, 0.5),
        noise: 2,
    });
    let frames = seq.take_frames(frames);
    let header = Y4mHeader {
        resolution: frames[0].resolution(),
        fps: (25, 1),
    };
    let mut w = Y4mWriter::new(Vec::new(), header);
    for f in &frames {
        w.write_frame(f).unwrap();
    }
    fs::write(path, w.finish().unwrap()).unwrap();
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(feves_bin())
        .args(args)
        .output()
        .expect("spawn feves binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// The encode flags every job in this suite shares — both the single-session
/// baseline and the submitted job spec must use exactly these.
const COMMON: &[&str] = &["--platform", "syshk", "--sa", "16", "--refs", "2"];

/// Uninterrupted single-session reference encode → output bytes.
fn baseline(dir: &Path, input: &str, tag: &str, extra: &[&str]) -> Vec<u8> {
    let out = dir.join(format!("baseline-{tag}.y4m"));
    let out = out.to_str().unwrap().to_string();
    let mut args = vec!["encode", input, &out];
    args.extend_from_slice(COMMON);
    args.extend_from_slice(extra);
    let (ok, _, stderr) = run(&args);
    assert!(ok, "baseline encode failed:\n{stderr}");
    fs::read(out).unwrap()
}

fn submit(spool: &str, input: &str, output: &str, id: &str, extra: &[&str]) {
    let mut args = vec!["submit", spool, input, output, "--id", id];
    args.extend_from_slice(COMMON);
    args.extend_from_slice(extra);
    let (ok, stdout, stderr) = run(&args);
    assert!(
        ok,
        "submit {id} failed:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stdout.contains(id), "submit banner missing id:\n{stdout}");
}

fn done_record(spool: &Path, id: &str) -> String {
    let path = spool.join("done").join(format!("{id}.json"));
    fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing done record {}: {e}", path.display()))
}

#[test]
fn farm_serves_jobs_bit_identical_to_single_session() {
    // Three jobs through one daemon — one of them loses a device mid-run
    // (Algorithm-1 fault handling inside the session). Every output must
    // match a single-session encode of the same spec byte for byte.
    let dir = scratch("fleet");
    let spool = dir.join("spool");
    fs::create_dir_all(&spool).unwrap();
    let spool_s = spool.to_str().unwrap();

    let mut want = Vec::new();
    for (i, extra) in [&[][..], &["--inject-fault", "0:death@3"][..], &[][..]]
        .iter()
        .enumerate()
    {
        let input = dir.join(format!("in{i}.y4m"));
        write_input(&input, 0xFA12 + i as u64, 6);
        let input = input.to_str().unwrap().to_string();
        let output = dir.join(format!("out{i}.y4m"));
        let output = output.to_str().unwrap().to_string();
        let id = format!("j{i}");
        want.push((
            id.clone(),
            output.clone(),
            baseline(&dir, &input, &id, extra),
        ));
        submit(spool_s, &input, &output, &id, extra);
    }

    let (ok, stdout, stderr) = run(&[
        "serve",
        spool_s,
        "--platform",
        "syshk",
        "--exit-when-idle",
        "--poll-ms",
        "20",
        "--max-inflight",
        "2",
    ]);
    assert!(ok, "serve failed:\nstdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("3 completed"), "summary line:\n{stdout}");

    for (id, output, bytes) in &want {
        let done = done_record(&spool, id);
        assert!(
            done.contains("\"completed\""),
            "done record for {id}:\n{done}"
        );
        assert_eq!(
            &fs::read(output).unwrap(),
            bytes,
            "farm output for {id} differs from single-session encode"
        );
        assert!(
            !spool.join(format!("{id}.json")).exists(),
            "completed job {id} must leave the spool"
        );
    }
}

#[test]
fn chaos_killed_session_retries_to_bit_exact_completion() {
    // A worker panic mid-session (injected via --chaos-kill-at) must be
    // caught, attributed, retried from the last durable checkpoint, and
    // still converge to the exact single-session bytes.
    let dir = scratch("chaos");
    let spool = dir.join("spool");
    fs::create_dir_all(&spool).unwrap();
    let spool_s = spool.to_str().unwrap();

    let input = dir.join("in.y4m");
    write_input(&input, 0xC0DE, 6);
    let input = input.to_str().unwrap();
    let output = dir.join("out.y4m");
    let output = output.to_str().unwrap();
    let want = baseline(&dir, input, "chaos", &[]);

    submit(
        spool_s,
        input,
        output,
        "jx",
        &[
            "--checkpoint-every",
            "2",
            "--chaos-kill-at",
            "3",
            "--chaos-device",
            "0",
        ],
    );
    let (ok, stdout, _) = run(&[
        "serve",
        spool_s,
        "--platform",
        "syshk",
        "--exit-when-idle",
        "--poll-ms",
        "20",
    ]);
    assert!(ok, "serve failed:\n{stdout}");
    assert!(stdout.contains("1 retried"), "retry count:\n{stdout}");

    let done = done_record(&spool, "jx");
    assert!(done.contains("\"completed\""), "done record:\n{done}");
    assert!(done.contains("\"attempts\": 2"), "attempt count:\n{done}");
    assert_eq!(
        fs::read(output).unwrap(),
        want,
        "retried job must be bit-identical to an undisturbed encode"
    );
}

#[test]
fn exhausted_retry_budget_fails_with_culprit_attribution() {
    let dir = scratch("budget");
    let spool = dir.join("spool");
    fs::create_dir_all(&spool).unwrap();
    let spool_s = spool.to_str().unwrap();

    let input = dir.join("in.y4m");
    write_input(&input, 0xDEAD, 4);
    let input = input.to_str().unwrap();
    let output = dir.join("out.y4m");
    let output = output.to_str().unwrap();

    submit(
        spool_s,
        input,
        output,
        "jf",
        &[
            "--checkpoint-every",
            "2",
            "--chaos-kill-at",
            "2",
            "--chaos-device",
            "0",
        ],
    );
    let (ok, stdout, _) = run(&[
        "serve",
        spool_s,
        "--platform",
        "syshk",
        "--exit-when-idle",
        "--poll-ms",
        "20",
        "--retry-budget",
        "0",
    ]);
    // The daemon survives the job failure — only the job is marked failed.
    assert!(ok, "serve must outlive a failing job:\n{stdout}");
    assert!(stdout.contains("1 failed"), "summary:\n{stdout}");

    let done = done_record(&spool, "jf");
    assert!(done.contains("\"failed\""), "done record:\n{done}");
    assert!(done.contains("panicked"), "failure reason:\n{done}");
    assert!(done.contains("\"culprit\": 0"), "culprit device:\n{done}");
}

#[test]
fn admission_rejects_above_high_watermark() {
    // Five jobs into a queue bounded at two with one session in flight:
    // exactly two may complete, the overflow must be rejected with a typed
    // done record — never silently dropped, never queued past the bound.
    let dir = scratch("admit");
    let spool = dir.join("spool");
    fs::create_dir_all(&spool).unwrap();
    let spool_s = spool.to_str().unwrap();

    let input = dir.join("in.y4m");
    write_input(&input, 0xAD01, 4);
    let input = input.to_str().unwrap();
    for i in 0..5 {
        let output = dir.join(format!("out{i}.y4m"));
        submit(
            spool_s,
            input,
            output.to_str().unwrap(),
            &format!("a{i}"),
            &[],
        );
    }

    let (ok, stdout, _) = run(&[
        "serve",
        spool_s,
        "--platform",
        "syshk",
        "--exit-when-idle",
        "--poll-ms",
        "20",
        "--queue-cap",
        "2",
        "--high-watermark",
        "2",
        "--max-inflight",
        "1",
    ]);
    assert!(ok, "serve failed:\n{stdout}");

    let (mut completed, mut rejected) = (0, 0);
    for i in 0..5 {
        let done = done_record(&spool, &format!("a{i}"));
        if done.contains("\"completed\"") {
            completed += 1;
        } else if done.contains("\"rejected\"") {
            rejected += 1;
            assert!(
                done.contains("queue full"),
                "reject reason for a{i}:\n{done}"
            );
        } else {
            panic!("unexpected done record for a{i}:\n{done}");
        }
    }
    assert_eq!(
        (completed, rejected),
        (2, 3),
        "watermark 2 with one in flight admits exactly two jobs:\n{stdout}"
    );
}

#[test]
fn sigterm_drain_exits_zero_and_loses_no_jobs() {
    // The chaos acceptance scenario: TERM a busy daemon. It must stop
    // admitting, checkpoint what's in flight, exit 0 — and a later daemon
    // on the same spool must finish every job bit-identically.
    let dir = scratch("drain");
    let spool = dir.join("spool");
    fs::create_dir_all(&spool).unwrap();
    let spool_s = spool.to_str().unwrap();

    let mut want = Vec::new();
    for i in 0..2 {
        let input = dir.join(format!("in{i}.y4m"));
        write_input(&input, 0xD5A1 + i as u64, 10);
        let input = input.to_str().unwrap().to_string();
        let output = dir.join(format!("out{i}.y4m"));
        let output = output.to_str().unwrap().to_string();
        let id = format!("d{i}");
        want.push((id.clone(), output.clone(), baseline(&dir, &input, &id, &[])));
        submit(spool_s, &input, &output, &id, &["--checkpoint-every", "2"]);
    }

    // No --exit-when-idle: this daemon runs until told to stop.
    let mut child = Command::new(feves_bin())
        .args([
            "serve",
            spool_s,
            "--platform",
            "syshk",
            "--poll-ms",
            "20",
            "--max-inflight",
            "1",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn feves serve");
    // Let it get into the middle of a session, then TERM it.
    std::thread::sleep(Duration::from_millis(2500));
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let status = child.wait().expect("wait for drained daemon");
    assert!(status.success(), "graceful drain must exit 0, got {status}");
    let mut stdout = String::new();
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut stdout)
        .unwrap();
    assert!(stdout.contains("drained"), "drain summary:\n{stdout}");

    // Zero lost jobs: anything no longer in the spool must have a
    // "completed" done record; everything else is still spooled (queued or
    // checkpointed) and will be picked up by the next daemon.
    for (id, _, _) in &want {
        if !spool.join(format!("{id}.json")).exists() {
            let done = done_record(&spool, id);
            assert!(
                done.contains("\"completed\""),
                "job {id} left the spool without completing:\n{done}"
            );
        }
    }

    // A fresh daemon on the same spool finishes the drained remainder.
    let (ok, stdout, stderr) = run(&[
        "serve",
        spool_s,
        "--platform",
        "syshk",
        "--exit-when-idle",
        "--poll-ms",
        "20",
    ]);
    assert!(
        ok,
        "post-drain serve failed:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    for (id, output, bytes) in &want {
        let done = done_record(&spool, id);
        assert!(
            done.contains("\"completed\""),
            "done record for {id}:\n{done}"
        );
        assert_eq!(
            &fs::read(output).unwrap(),
            bytes,
            "output for {id} after drain+resume differs from single-session encode"
        );
    }
}
