//! Cross-crate integration: synthetic video → collaborative functional
//! encoding → entropy bitstream → decode → reconstruction checks, driving
//! every workspace crate through the umbrella `feves` API.

use feves::codec::entropy::decode_frame;
use feves::core::prelude::*;
use feves::video::metrics::psnr;
use feves::video::y4m::{Y4mHeader, Y4mReader, Y4mWriter};
use std::io::Cursor;

fn frames(n: usize) -> Vec<feves::video::Frame> {
    let mut cfg = SynthConfig::tiny_test();
    cfg.resolution = Resolution::QCIF;
    SynthSequence::new(cfg).take_frames(n)
}

fn functional_cfg() -> EncoderConfig {
    let mut cfg = EncoderConfig::full_hd(EncodeParams {
        search_area: SearchArea(16),
        n_ref: 2,
        ..Default::default()
    });
    cfg.resolution = Resolution::QCIF;
    cfg.mode = ExecutionMode::Functional;
    cfg
}

#[test]
fn synth_to_bitstream_to_decode() {
    let frames = frames(4);
    let mut enc = FevesEncoder::new(Platform::sys_nff(), functional_cfg()).unwrap();
    let report = enc.encode_sequence(&frames);

    // Every inter frame carried bits and decodable structures were produced
    // (the framework's bitstream is validated in-crate; here we re-encode a
    // frame manually through the codec path to prove the full public API
    // composes).
    assert_eq!(report.frames.len(), 4);
    assert!(report.total_bits() > 0);
    assert!(report.mean_psnr().unwrap() > 30.0);

    // Re-run the codec manually and decode its stream.
    let intra = feves::codec::intra::encode_intra_frame(frames[0].y(), 27);
    let mut store = feves::codec::ReferenceStore::new(2);
    store.push(intra.recon);
    let params = EncodeParams {
        search_area: SearchArea(16),
        n_ref: 2,
        ..Default::default()
    };
    let out = feves::codec::encode_inter_frame(frames[1].y(), &store, &params);
    let (modes, coeffs, qp) = decode_frame(&out.bitstream).expect("stream must decode");
    assert_eq!(qp, params.qp);
    assert_eq!(modes.mb_cols(), frames[0].y().width() / 16);
    assert_eq!(coeffs.mb(0, 0), out.coeffs.mb(0, 0));
}

#[test]
fn y4m_in_encode_y4m_out() {
    // Write synthetic frames to Y4M, read them back, encode, write the
    // reconstruction, read it again — the full I/O + codec round trip.
    let src = frames(3);
    let header = Y4mHeader {
        resolution: Resolution::QCIF,
        fps: (25, 1),
    };
    let mut w = Y4mWriter::new(Vec::new(), header);
    for f in &src {
        w.write_frame(f).unwrap();
    }
    let bytes = w.finish().unwrap();

    let mut r = Y4mReader::new(Cursor::new(bytes)).unwrap();
    let loaded = r.read_all().unwrap();
    assert_eq!(loaded, src);

    let mut enc = FevesEncoder::new(Platform::sys_hk(), functional_cfg()).unwrap();
    let mut out = Y4mWriter::new(Vec::new(), header);
    for f in &loaded {
        let _ = enc.encode_frame(f);
        let mut rf = f.clone();
        rf.y_mut().copy_from(enc.last_reconstruction().unwrap());
        out.write_frame(&rf).unwrap();
    }
    let recon_bytes = out.finish().unwrap();
    let mut rr = Y4mReader::new(Cursor::new(recon_bytes)).unwrap();
    let recon = rr.read_all().unwrap();
    assert_eq!(recon.len(), 3);
    // Reconstructions resemble their sources.
    for (a, b) in recon.iter().zip(&loaded) {
        assert!(psnr(a.y(), b.y()) > 30.0);
    }
}

#[test]
fn timing_and_functional_share_schedule_shape() {
    // The same seed must produce the same simulated schedule whether or not
    // the kernels actually run.
    let frames = frames(4);
    let mut timing_cfg = functional_cfg();
    timing_cfg.mode = ExecutionMode::TimingOnly;
    let mut enc_t = FevesEncoder::new(Platform::sys_hk(), timing_cfg).unwrap();
    let mut enc_f = FevesEncoder::new(Platform::sys_hk(), functional_cfg()).unwrap();
    let rep_f = enc_f.encode_sequence(&frames);
    // Drive the timing encoder with the same frames for identical ramps.
    let rep_t = enc_t.encode_sequence(&frames);
    for (a, b) in rep_t.inter_frames().zip(rep_f.inter_frames()) {
        assert_eq!(
            a.tau_tot, b.tau_tot,
            "virtual time must not depend on pixels"
        );
        assert!(b.bits.is_some() && a.bits.is_none());
    }
}

#[test]
fn umbrella_reexports_compose() {
    // Spot-check that the facade exposes all the layers.
    let _plane: feves::video::Plane<u8> = feves::video::Plane::new(16, 16);
    let _mv = feves::codec::Mv::new(1, -1);
    let mut lp = feves::lp::Problem::new(feves::lp::Sense::Minimize);
    let x = lp.add_var("x", 1.0);
    lp.add_constraint(&[(x, 1.0)], feves::lp::Relation::Ge, 3.0);
    assert!((lp.solve().unwrap().value(x) - 3.0).abs() < 1e-9);
    let p = feves::hetsim::Platform::sys_hk();
    assert_eq!(p.len(), 5);
    let d = feves::sched::Distribution::equidistant(68, 5, 0);
    d.validate(68).unwrap();
}
