//! Differential tests for the dispatched hot-kernel fast paths.
//!
//! The SWAR kernels in `feves_codec::kernels::fast` must be **bit-exact**
//! drop-in replacements for the scalar references — `FEVES_KERNELS` may
//! change throughput, never output. This suite checks that at three levels:
//!
//! 1. property-based differentials over random planes/blocks, calling the
//!    `scalar`/`fast` entry points directly (no global state involved);
//! 2. a full encode→decode round trip under `force_kind`: both kernel
//!    families must emit *identical bitstreams*, and the decoder must
//!    reproduce the encoder reconstruction from either stream;
//! 3. robustness: truncated and bit-flipped CABAC streams must surface
//!    `DecodeError` (or decode to garbage syntax), never panic.
//!
//! Also holds the release-mode regression test for the `row_sad` length
//! contract (CI runs this file under `--release` where `debug_assert!`
//! alone would be compiled out).

use std::sync::Mutex;

use feves::codec::inter_loop::{encode_inter_frame, ReferenceStore};
use feves::codec::kernels::{self, KernelKind};
use feves::codec::types::{EncodeParams, SearchArea};
use feves::video::plane::Plane;
use feves::video::synth::{SynthConfig, SynthSequence};
use feves::video::{Frame, Resolution};
use proptest::prelude::*;

/// Serializes tests that flip the process-global kernel dispatch; the guard
/// restores the default (Fast) on drop so direct-call tests running on
/// other threads are unaffected no matter how a holder exits.
static KERNEL_LOCK: Mutex<()> = Mutex::new(());

struct KindGuard<'a> {
    _lock: std::sync::MutexGuard<'a, ()>,
}

impl<'a> KindGuard<'a> {
    fn take() -> Self {
        KindGuard {
            _lock: KERNEL_LOCK.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl Drop for KindGuard<'_> {
    fn drop(&mut self) {
        kernels::force_kind(KernelKind::Fast);
    }
}

fn plane_from_bytes(w: usize, h: usize, bytes: &[u8]) -> Plane<u8> {
    let mut p = Plane::new(w, h);
    for y in 0..h {
        for x in 0..w {
            p.set(x, y, bytes[y * w + x]);
        }
    }
    p
}

proptest! {
    #[test]
    fn prop_row_sad_matches(a in proptest::collection::vec(any::<u8>(), 0..128)) {
        let b: Vec<u8> = a.iter().rev().map(|v| v.wrapping_mul(31)).collect();
        prop_assert_eq!(
            kernels::scalar::row_sad(&a, &b),
            kernels::fast::row_sad(&a, &b)
        );
    }

    #[test]
    fn prop_sad_grid_matches(
        bytes in proptest::collection::vec(any::<u8>(), 48 * 48),
        cx in 0usize..=32, cy in 0usize..=32,
        rx in -20isize..=52, ry in -20isize..=52,
    ) {
        let cur = plane_from_bytes(48, 48, &bytes);
        let rf = plane_from_bytes(48, 48, &bytes[..].iter().map(|v| v.wrapping_add(77)).collect::<Vec<_>>());
        prop_assert_eq!(
            kernels::scalar::sad_grid_16x16(&cur, cx, cy, &rf, rx, ry),
            kernels::fast::sad_grid_16x16(&cur, cx, cy, &rf, rx, ry)
        );
    }

    #[test]
    fn prop_quant_matches(
        block in proptest::collection::vec(-40_000i32..40_000, 16),
        qp in 0u8..=51,
        intra in any::<bool>(),
    ) {
        let base: [i32; 16] = block.try_into().unwrap();
        let (mut a, mut b) = (base, base);
        kernels::scalar::quantize_4x4(&mut a, qp, intra);
        kernels::fast::quantize_4x4(&mut b, qp, intra);
        prop_assert_eq!(a, b);
        let (mut a, mut b) = (base, base);
        kernels::scalar::dequantize_4x4(&mut a, qp);
        kernels::fast::dequantize_4x4(&mut b, qp);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn prop_interpolate_matches(seed in any::<u64>(), w in 1usize..40, h in 1usize..40) {
        let _guard = KindGuard::take();
        let mut p = Plane::new(w, h);
        let mut s = seed | 1;
        for y in 0..h {
            for x in 0..w {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                p.set(x, y, (s >> 56) as u8);
            }
        }
        kernels::force_kind(KernelKind::Scalar);
        let a = feves::codec::interp::interpolate(&p);
        kernels::force_kind(KernelKind::Fast);
        let b = feves::codec::interp::interpolate(&p);
        prop_assert_eq!(a, b);
    }
}

fn test_frames(n: usize) -> Vec<Frame> {
    let mut cfg = SynthConfig::tiny_test();
    cfg.resolution = Resolution::QCIF;
    SynthSequence::new(cfg).take_frames(n)
}

fn params() -> EncodeParams {
    EncodeParams {
        search_area: SearchArea(16),
        n_ref: 2,
        ..Default::default()
    }
}

/// Encode the sequence under `kind`; returns per-frame (bitstream, recon).
fn encode_under(kind: KernelKind, frames: &[Frame]) -> Vec<(Vec<u8>, Plane<u8>)> {
    kernels::force_kind(kind);
    let params = params();
    let intra = feves::codec::intra::encode_intra_frame(frames[0].y(), params.qp_intra);
    let mut store = ReferenceStore::new(params.n_ref);
    store.push(intra.recon);
    let mut out = Vec::new();
    for f in &frames[1..] {
        let enc = encode_inter_frame(f.y(), &store, &params);
        out.push((enc.bitstream.to_vec(), enc.recon.clone()));
        store.push(enc.recon);
    }
    out
}

/// Satellite 3 (round trip): scalar and fast kernels must produce *identical
/// bitstreams*, and decoding either stream must reproduce the encoder
/// reconstruction bit-exactly.
#[test]
fn encode_decode_roundtrip_is_kernel_invariant() {
    let _guard = KindGuard::take();
    let frames = test_frames(5);
    let scalar = encode_under(KernelKind::Scalar, &frames);
    let fast = encode_under(KernelKind::Fast, &frames);
    assert_eq!(scalar.len(), fast.len());

    for (i, ((bs_s, rec_s), (bs_f, rec_f))) in scalar.iter().zip(&fast).enumerate() {
        assert_eq!(bs_s, bs_f, "frame {i}: bitstream differs between kernels");
        assert_eq!(rec_s, rec_f, "frame {i}: reconstruction differs");
    }

    // Decode the shared bitstreams and check the closed loop under both
    // kernel families (the decoder's MC path runs the dispatched kernels
    // too, so run it once per family).
    for kind in [KernelKind::Scalar, KernelKind::Fast] {
        kernels::force_kind(kind);
        let params = params();
        let intra = feves::codec::intra::encode_intra_frame(frames[0].y(), params.qp_intra);
        let mut store = ReferenceStore::new(params.n_ref);
        store.push(intra.recon);
        for (i, (bitstream, recon)) in scalar.iter().enumerate() {
            let dec = feves::codec::decoder::decode_inter_frame(bitstream, &store)
                .unwrap_or_else(|e| panic!("frame {i} must decode under {kind:?}: {e}"));
            assert_eq!(
                &dec.y, recon,
                "frame {i}: decoder/encoder mismatch under {kind:?}"
            );
            store.push(recon.clone());
        }
    }
}

/// Satellite 3 (robustness): corrupted CABAC streams must never panic —
/// truncations and bit flips either surface [`DecodeError`] or decode to
/// in-bounds garbage syntax.
#[test]
fn cabac_corruption_never_panics() {
    use feves::codec::cabac::{decode_frame_cabac, encode_frame_cabac};

    let _guard = KindGuard::take();
    let frames = test_frames(2);
    let params = params();
    let intra = feves::codec::intra::encode_intra_frame(frames[0].y(), params.qp_intra);
    let mut store = ReferenceStore::new(params.n_ref);
    store.push(intra.recon);
    let enc = encode_inter_frame(frames[1].y(), &store, &params);
    let (stream, _) = encode_frame_cabac(&enc.modes, &enc.coeffs, None, params.qp);
    let stream = stream.to_vec();

    // The pristine stream round-trips.
    let (modes, coeffs, chroma, qp) = decode_frame_cabac(&stream).expect("pristine stream");
    assert_eq!(qp, params.qp);
    assert!(chroma.is_none());
    assert_eq!(modes.mb_cols(), enc.modes.mb_cols());
    assert_eq!(coeffs.mb_rows(), enc.coeffs.mb_rows());

    // Empty and header-truncated streams are hard errors.
    assert!(decode_frame_cabac(&[]).is_err(), "empty stream must error");

    // Truncations at every prefix length: Err or garbage, never a panic.
    let mut errs = 0usize;
    for len in 1..stream.len() {
        if decode_frame_cabac(&stream[..len]).is_err() {
            errs += 1;
        }
    }
    assert!(errs > 0, "no truncation surfaced a DecodeError");

    // Single-bit flips across the stream.
    for i in (0..stream.len()).step_by(3) {
        for bit in [0u8, 3, 7] {
            let mut bad = stream.clone();
            bad[i] ^= 1 << bit;
            let _ = decode_frame_cabac(&bad); // must not panic
        }
    }

    // Dense corruption (every byte mangled).
    let mangled: Vec<u8> = stream.iter().map(|b| b ^ 0xA5).collect();
    let _ = decode_frame_cabac(&mangled);
}

/// Satellite 1: mismatched `row_sad` slice lengths are a hard error in
/// *release* builds too (the dispatch wrapper carries a real `assert!`,
/// not just a `debug_assert!`). CI runs this test with `--release`.
#[test]
#[should_panic(expected = "row_sad length mismatch")]
fn row_sad_length_mismatch_panics_in_release() {
    let a = [1u8; 16];
    let b = [2u8; 15];
    feves::codec::sad::row_sad(&a, &b);
}
