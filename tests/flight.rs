//! Flight-recorder integration tests: the JSONL schema is pinned by a
//! golden file, predicted/measured pairs round-trip losslessly, and the
//! drift detector closes the init ↔ iterative loop on a silently degraded
//! device (no fault injected — the fault-tolerance layer must stay quiet).
//!
//! Regenerate the golden after an intentional schema change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test flight
//! ```

use feves::core::framework::Perturbation;
use feves::core::prelude::*;
use feves::obs::{parse_flight_jsonl, DeviceRecord, FlightRecord, FlightRecorder, TauTriple};
use proptest::prelude::*;

fn check_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden; run UPDATE_GOLDEN=1 cargo test --test flight \
         if the change is intentional"
    );
}

/// A fully populated record with fixed values — every field of the schema
/// appears, so any rename/retype/reorder shows up as a golden diff.
fn schema_record() -> FlightRecord {
    FlightRecord {
        frame: 7,
        rstar_device: 1,
        predicted_tau: Some(TauTriple {
            tau1_ms: 10.5,
            tau2_ms: 14.25,
            tau_tot_ms: 21.125,
        }),
        measured_tau: TauTriple {
            tau1_ms: 11.0,
            tau2_ms: 15.0,
            tau_tot_ms: 22.0,
        },
        devices: vec![
            DeviceRecord {
                device: 0,
                me_rows: 40,
                interp_rows: 38,
                sme_rows: 41,
                predicted_busy_ms: Some(18.0),
                compute_busy_ms: 19.5,
                transfer_busy_ms: 3.25,
                residual_pct: Some(8.333333333333332),
                overlap_carried_ms: 2.5,
                blacklisted: false,
            },
            DeviceRecord {
                device: 1,
                me_rows: 28,
                interp_rows: 30,
                sme_rows: 27,
                predicted_busy_ms: None,
                compute_busy_ms: 12.0,
                transfer_busy_ms: 0.0,
                residual_pct: None,
                overlap_carried_ms: 0.0,
                blacklisted: true,
            },
        ],
        inflight_depth: 2,
        bytes_transferred: 1_048_576,
        bytes_reused: 262_144,
        recovery_ms: 1.5,
        drift_devices: vec![0],
        recharacterized: true,
    }
}

#[test]
fn flight_schema_matches_golden() {
    let mut fr = FlightRecorder::new(4);
    fr.push(schema_record());
    check_golden("flight.jsonl", &fr.to_jsonl());
}

#[test]
fn recorded_flight_parses_and_audits() {
    // A real (deterministic) run: record, serialize, parse back, audit.
    let mut cfg = EncoderConfig::full_hd(EncodeParams::default());
    cfg.noise_amp = 0.0;
    let mut enc = FevesEncoder::new(Platform::sys_hk(), cfg).unwrap();
    enc.enable_flight(64);
    enc.run_timing(8);
    let fl = enc.flight().unwrap();
    assert_eq!(fl.len(), 8);
    let back = parse_flight_jsonl(&fl.to_jsonl()).unwrap();
    assert_eq!(back, fl.to_vec());
    // Probe frame 0 carries no prediction; iterative frames do.
    assert!(back[0].predicted_tau.is_none());
    assert!(back.iter().skip(1).all(|r| r.predicted_tau.is_some()));
    let summary = AuditSummary::from_records(&back, 0.5);
    assert_eq!(summary.frames, 8);
    assert_eq!(summary.predicted_frames, 7);
    assert!(summary.mean_tau_tot_ms > 0.0);
    assert!(summary.render_text().contains("dev0"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Predicted/measured pairs survive the JSONL round trip bit-exactly:
    /// the serializer prints shortest-round-trip floats, so any finite f64
    /// comes back equal.
    #[test]
    fn predicted_measured_pairs_round_trip_losslessly(
        frame in 0usize..10_000,
        rstar in 0usize..8,
        pred in proptest::option::of((1e-3f64..1e6, 1e-3f64..1e6, 1e-3f64..1e6)),
        taus in (0.0f64..1e6, 0.0f64..1e6, 0.0f64..1e6),
        busy in proptest::collection::vec(
            (0.0f64..1e5, 0.0f64..1e4, proptest::option::of(-1e4f64..1e4), proptest::bool::ANY),
            1..6,
        ),
        bytes in (0u64..u64::MAX / 2, 0u64..u64::MAX / 2),
        recovery in 0.0f64..1e5,
    ) {
        let rec = FlightRecord {
            frame,
            rstar_device: rstar,
            predicted_tau: pred.map(|(a, b, c)| TauTriple {
                tau1_ms: a,
                tau2_ms: b,
                tau_tot_ms: c,
            }),
            measured_tau: TauTriple {
                tau1_ms: taus.0,
                tau2_ms: taus.1,
                tau_tot_ms: taus.2,
            },
            devices: busy
                .iter()
                .enumerate()
                .map(|(d, &(compute, transfer, residual, black))| DeviceRecord {
                    device: d,
                    me_rows: d * 11,
                    interp_rows: d * 7,
                    sme_rows: d * 13,
                    predicted_busy_ms: residual.map(|_| compute),
                    compute_busy_ms: compute,
                    transfer_busy_ms: transfer,
                    residual_pct: residual,
                    overlap_carried_ms: transfer * 0.5,
                    blacklisted: black,
                })
                .collect(),
            inflight_depth: frame % 3,
            bytes_transferred: bytes.0,
            bytes_reused: bytes.1,
            recovery_ms: recovery,
            drift_devices: (0..busy.len()).filter(|d| d % 2 == 1).collect(),
            recharacterized: busy.len() % 2 == 1,
        };
        let mut fr = FlightRecorder::new(2);
        fr.push(rec.clone());
        let back = parse_flight_jsonl(&fr.to_jsonl()).unwrap();
        prop_assert_eq!(back, vec![rec]);
    }
}

/// The ISSUE acceptance scenario: a device is silently degraded mid-sequence
/// (a perturbation, *not* an injected fault). The residuals leave the band,
/// the drift detector fires `sched.drift`, the framework resets that
/// device's characterization, and the next LP frames are balanced against
/// the measured (degraded) rates — all without the fault-tolerance layer
/// blacklisting anything.
#[test]
fn silent_degradation_triggers_drift_recharacterization() {
    let mut cfg = EncoderConfig::full_hd(EncodeParams::default());
    cfg.noise_amp = 0.0;
    // A sluggish EWMA: the characterization cannot silently absorb the
    // perturbation frame-to-frame, which is exactly when drift detection
    // earns its keep.
    cfg.ewma = feves::sched::Ewma(0.1);
    let mut enc = FevesEncoder::new(Platform::sys_hk(), cfg).unwrap();
    // Device 0 (the GPU) drops to half speed from inter-frame 10 onward.
    enc.add_perturbation(Perturbation {
        device: 0,
        frames: 10..1000,
        factor: 0.5,
    });
    enc.enable_flight(64);
    enc.run_timing(30);

    let records = enc.flight().unwrap().to_vec();
    let fired: Vec<&feves::obs::FlightRecord> =
        records.iter().filter(|r| r.recharacterized).collect();
    assert!(
        !fired.is_empty(),
        "drift detector never fired on a 2x silent degradation"
    );
    let first = fired[0];
    assert!(
        first.frame >= 10,
        "drift fired before the perturbation started (frame {})",
        first.frame
    );
    assert!(
        first.drift_devices.contains(&0),
        "drift fired on the wrong device: {:?}",
        first.drift_devices
    );
    // Re-characterization means the next frame is an equidistant probe
    // (rates reset → LP unavailable → no prediction recorded).
    let probe = records
        .iter()
        .find(|r| r.frame == first.frame + 1)
        .expect("frame after the firing is recorded");
    assert!(
        probe.predicted_tau.is_none(),
        "expected an equidistant probe (no LP prediction) right after drift"
    );
    // After the probe the model reflects the degraded device: the last
    // frames' residuals are back inside the default +-25 % band.
    let last = records.last().unwrap();
    for d in &last.devices {
        if let Some(pct) = d.residual_pct {
            assert!(
                pct.abs() <= 25.0,
                "device {} residual {pct:.1}% still out of band after \
                 re-characterization",
                d.device
            );
        }
    }
    // Silent degradation is a model problem, not a fault: nothing was
    // injected, nothing may be detected or blacklisted.
    let ft = enc.ft_stats();
    assert_eq!(ft.injected, 0);
    assert_eq!(
        ft.detected, 0,
        "a benign 2x slowdown must not trip the deadline policy"
    );
    assert!(enc.health().blacklisted().is_empty());
}
