//! Fault-injection (chaos) suite: the framework must survive device
//! faults, re-dispatch the victim's MB rows to survivors, and — in
//! functional mode — produce bit-exact output versus a fault-free run.
//!
//! `FEVES_CHAOS_SEED` selects the generated schedule (CI runs several);
//! unset it and the suite still runs with seed 1.

use feves::core::prelude::*;
use feves::ft::{FaultKind, FaultSchedule, FaultSpec};

/// Every inter-frame's distribution must account for every MB row exactly
/// once in each balanced module — no row lost, none dispatched twice.
fn assert_rows_conserved(rep: &EncodeReport, n_rows: usize) {
    for f in rep.inter_frames() {
        let d = f.distribution.as_ref().expect("inter frames carry a dist");
        assert_eq!(
            d.me.iter().sum::<usize>(),
            n_rows,
            "ME rows, frame {}",
            f.frame
        );
        assert_eq!(
            d.interp.iter().sum::<usize>(),
            n_rows,
            "INT rows, frame {}",
            f.frame
        );
        assert_eq!(
            d.sme.iter().sum::<usize>(),
            n_rows,
            "SME rows, frame {}",
            f.frame
        );
    }
}

fn timing_config(faults: Vec<FaultSpec>) -> EncoderConfig {
    let mut cfg = EncoderConfig::full_hd(EncodeParams::default());
    cfg.faults = faults;
    cfg
}

fn functional_config(faults: Vec<FaultSpec>) -> EncoderConfig {
    let mut cfg = EncoderConfig::full_hd(EncodeParams {
        search_area: SearchArea(16),
        n_ref: 2,
        ..Default::default()
    });
    cfg.resolution = Resolution::QCIF;
    cfg.mode = ExecutionMode::Functional;
    cfg.faults = faults;
    cfg
}

fn test_frames(n: usize) -> Vec<feves::video::frame::Frame> {
    let mut cfg = SynthConfig::tiny_test();
    cfg.resolution = Resolution::QCIF;
    SynthSequence::new(cfg).take_frames(n)
}

fn functional_signature(faults: Vec<FaultSpec>) -> (Vec<Option<u64>>, Vec<u8>, FtStats) {
    let frames = test_frames(5);
    let mut enc = FevesEncoder::new(Platform::sys_nff(), functional_config(faults)).unwrap();
    let rep = enc.encode_sequence(&frames);
    assert_rows_conserved(&rep, enc.geometry().n_rows);
    let bits = rep.inter_frames().map(|f| f.bits).collect();
    let recon = enc.last_reconstruction().unwrap().as_slice().to_vec();
    (bits, recon, enc.ft_stats())
}

/// The acceptance scenario: killing any single accelerator mid-sequence on
/// SysNFF completes the encode bit-exactly versus a fault-free run, with at
/// least one detected fault, at least one re-solve, and zero lost MB rows.
#[test]
fn killing_any_single_accelerator_is_bit_exact() {
    let (ref_bits, ref_recon, ref_ft) = functional_signature(Vec::new());
    assert_eq!(ref_ft, FtStats::default(), "fault-free run must be silent");
    for device in 0..Platform::sys_nff().n_accel {
        let (bits, recon, ft) = functional_signature(vec![FaultSpec {
            device,
            frame: 3,
            kind: FaultKind::Death,
        }]);
        assert_eq!(bits, ref_bits, "bits diverge after killing device {device}");
        assert_eq!(
            recon, ref_recon,
            "reconstruction diverges after killing device {device}"
        );
        assert!(ft.injected >= 1, "device {device}: fault not injected");
        assert!(ft.detected >= 1, "device {device}: fault not detected");
        assert!(ft.resolves >= 1, "device {device}: no re-solve happened");
        assert!(
            ft.redispatched_rows >= 1,
            "device {device}: no rows re-dispatched"
        );
    }
}

/// A stripe-thread panic is caught at join, the rows recomputed on the
/// host, and the output stays bit-exact.
#[test]
fn injected_kernel_panic_is_caught_and_bit_exact() {
    // The injected panic would otherwise spray a backtrace into the test
    // output; silence exactly that one and forward everything else.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("injected kernel panic"));
        if !injected {
            default_hook(info);
        }
    }));
    let (ref_bits, ref_recon, _) = functional_signature(Vec::new());
    let (bits, recon, ft) = functional_signature(vec![FaultSpec {
        device: 1,
        frame: 2,
        kind: FaultKind::KernelPanic,
    }]);
    let _ = std::panic::take_hook();
    assert_eq!(bits, ref_bits, "bits diverge across an injected panic");
    assert_eq!(recon, ref_recon, "reconstruction diverges across a panic");
    assert!(ft.detected >= 1 && ft.recovered >= 1 && ft.redispatched_rows >= 1);
}

/// Seeded chaos: a generated recoverable schedule (1–3 transient faults on
/// accelerators) must always complete a timing run with every row accounted
/// for, and every detection must come with a matching recovery.
#[test]
fn chaos_schedule_completes_with_rows_conserved() {
    let seed: u64 = std::env::var("FEVES_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let platform = Platform::sys_nff();
    let schedule = FaultSchedule::chaos(seed, platform.n_accel, 10);
    assert!(!schedule.is_empty(), "chaos generator produced no faults");
    let mut enc = FevesEncoder::new(platform, timing_config(schedule.specs)).unwrap();
    let rep = enc.run_timing(16);
    assert_eq!(rep.inter_frames().count(), 16);
    assert_rows_conserved(&rep, enc.geometry().n_rows);
    let ft = enc.ft_stats();
    assert!(ft.injected >= 1);
    assert!(
        ft.resolves <= ft.detected,
        "every re-solve stems from a detection: {ft:?}"
    );
    // Whatever was blacklisted, the run must have kept at least one CPU
    // core alive — CPU-only is the graceful-degradation floor.
    assert!(enc.health().n_available() >= 1);
}

/// Transfer faults take the dedicated H2D/D2H detection path (no deadline
/// involved) and recover the same way.
#[test]
fn transfer_fault_detected_and_recovered() {
    let mut enc = FevesEncoder::new(
        Platform::sys_nff(),
        timing_config(vec![FaultSpec {
            device: 0,
            frame: 4,
            kind: FaultKind::TransferError,
        }]),
    )
    .unwrap();
    let rep = enc.run_timing(10);
    assert_rows_conserved(&rep, enc.geometry().n_rows);
    let ft = enc.ft_stats();
    assert!(ft.detected >= 1 && ft.recovered >= 1 && ft.resolves >= 1);
}

/// Disambiguation (ft.drift_vs_fault): a deadline miss on a device the
/// drift detector had already flagged is counted separately — it is far
/// more likely the same quiet degradation than an independent hard fault.
#[test]
fn deadline_miss_on_drifting_device_counts_as_drift_vs_fault() {
    use feves::core::framework::Perturbation;
    // Phase 1 — silent degradation: device 0 halves its speed at inter
    // frame 5 with a sluggish EWMA, so residuals sit out of band and the
    // drift detector flags it (no fault involved).
    // Phase 2 — a stall lands on the *same* device right after the firing
    // (frame 5+k fires the detector, 5+k+1 is the re-probe, 5+k+2 is the
    // first LP frame with the flag still up): the resulting deadline miss
    // must bump drift_vs_fault.
    let mut cfg = timing_config(vec![FaultSpec {
        device: 0,
        frame: 9,
        kind: FaultKind::Stall { frames: 2 },
    }]);
    cfg.noise_amp = 0.0;
    cfg.ewma = feves::sched::Ewma(0.1);
    let mut enc = FevesEncoder::new(Platform::sys_hk(), cfg).unwrap();
    enc.add_perturbation(Perturbation {
        device: 0,
        frames: 5..100,
        factor: 0.5,
    });
    let rep = enc.run_timing(14);
    assert_rows_conserved(&rep, enc.geometry().n_rows);
    let ft = enc.ft_stats();
    assert!(ft.detected >= 1, "the stall must still be detected: {ft:?}");
    assert!(
        ft.drift_vs_fault >= 1,
        "deadline miss on a drift-flagged device not disambiguated: {ft:?}"
    );

    // Control: the same stall on a *healthy* device is a plain fault.
    let mut cfg = timing_config(vec![FaultSpec {
        device: 0,
        frame: 9,
        kind: FaultKind::Stall { frames: 2 },
    }]);
    cfg.noise_amp = 0.0;
    let mut enc = FevesEncoder::new(Platform::sys_hk(), cfg).unwrap();
    enc.run_timing(14);
    let ft = enc.ft_stats();
    assert!(ft.detected >= 1);
    assert_eq!(
        ft.drift_vs_fault, 0,
        "no drift flag, so no disambiguation: {ft:?}"
    );
}
