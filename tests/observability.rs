//! Golden-file tests for the observability exporters: the deterministic
//! JSONL metrics dump and the Chrome trace-event JSON must stay byte-stable
//! for a noise-free SysHK timing run.
//!
//! The goldens live in `tests/golden/`. To regenerate after an intentional
//! format change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test observability
//! ```
//!
//! These tests use an encoder-local `MemoryRecorder` (never the global
//! slot): the root integration tests run as parallel threads in one
//! process, so a globally installed recorder would pick up metrics from
//! unrelated tests.

use feves::core::prelude::*;
use feves::obs::MemoryRecorder;
use std::sync::Arc;

/// Deterministic SysHK timing config: zero profile noise so every run
/// produces identical virtual-clock timings.
fn quiet_cfg() -> EncoderConfig {
    let mut cfg = EncoderConfig::full_hd(EncodeParams {
        search_area: SearchArea(32),
        n_ref: 2,
        ..Default::default()
    });
    cfg.noise_amp = 0.0;
    cfg
}

fn run(frames: usize) -> (Arc<MemoryRecorder>, FrameTrace) {
    let rec = Arc::new(MemoryRecorder::new());
    let mut enc = FevesEncoder::new(Platform::sys_hk(), quiet_cfg()).unwrap();
    enc.set_recorder(rec.clone());
    enc.run_timing(frames);
    let trace = enc.last_trace().expect("timing run leaves a trace").clone();
    (rec, trace)
}

fn check_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden; run UPDATE_GOLDEN=1 cargo test --test observability \
         if the change is intentional"
    );
}

#[test]
fn jsonl_metrics_match_golden() {
    let (rec, _) = run(6);
    // Deterministic mode: wall-clock metrics and spans excluded.
    check_golden("metrics.jsonl", &rec.to_jsonl(true));
}

#[test]
fn chrome_trace_matches_golden() {
    let (_, trace) = run(6);
    check_golden("trace.chrome.json", &trace.to_chrome_trace().to_json());
}

#[test]
fn exporters_are_deterministic_across_runs() {
    let (rec_a, trace_a) = run(4);
    let (rec_b, trace_b) = run(4);
    assert_eq!(rec_a.to_jsonl(true), rec_b.to_jsonl(true));
    assert_eq!(
        trace_a.to_chrome_trace().to_json(),
        trace_b.to_chrome_trace().to_json()
    );
}

#[test]
fn recorder_counts_match_report() {
    use feves::obs::Metric;
    let rec = Arc::new(MemoryRecorder::new());
    let mut enc = FevesEncoder::new(Platform::sys_hk(), quiet_cfg()).unwrap();
    enc.set_recorder(rec.clone());
    let report = enc.run_timing(5);
    assert_eq!(report.frames.len(), 5);
    assert_eq!(rec.counter(Metric::FramesEncoded), 5);
    // Frame 1 is the uncharacterized equidistant probe; the LP runs on the
    // remaining frames.
    let lp = rec.histogram(Metric::LpIterations);
    assert_eq!(lp.count(), 4);
    // τ measurements arrive once per inter frame and are strictly ordered
    // τ1 ≤ τ2 ≤ τtot.
    let t1 = rec.histogram(Metric::FrameTau1Ms);
    let tt = rec.histogram(Metric::FrameTauTotMs);
    assert_eq!(t1.count(), 5);
    assert_eq!(tt.count(), 5);
    assert!(t1.max() <= tt.max());
    // A HD frame must move data to the GPU.
    assert!(rec.counter(Metric::DamBytesTransferred) > 0);
}
