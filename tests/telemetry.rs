//! Integration tests of the live telemetry pipeline: bounded-bus drop
//! policy (flood proptest), session isolation under concurrency, and the
//! live snapshot's golden key-path schema.
//!
//! The schema golden lives at `tests/golden/live_snapshot.schema` — one
//! key path per line (arrays generalized to `[]`), sorted. Regenerate after
//! an intentional format change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test telemetry
//! ```
//!
//! CI points `FEVES_LIVE_SNAPSHOT` at a snapshot produced by a real
//! `feves simulate --live-out` run; the schema test then validates that
//! file against the same golden instead of a synthetic snapshot.

use feves::obs::{
    build_snapshot, hub, BusController, LiveSnapshot, Metric, TelemetryBus, TelemetryEvent,
};
use proptest::prelude::*;
use serde::Value;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

// ---- Drop policy ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flooding a bounded bus with no consumer: every publish returns
    /// immediately (accepted or not), rejected events are counted, and the
    /// events that do survive come back out in publish order — the
    /// "dropped-and-counted, never blocked, never reordered within a
    /// session" contract.
    #[test]
    fn flooding_the_bus_drops_and_counts(
        cap in 1usize..256,
        total in 1u64..2048,
    ) {
        let bus = TelemetryBus::new(cap);
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for i in 0..total {
            // The payload carries the publish sequence, so ordering is
            // checkable on the consumer side.
            let ok = bus.publish(TelemetryEvent::Add {
                session: 424_242,
                metric: Metric::FramesEncoded,
                delta: i,
            });
            if ok { accepted += 1 } else { rejected += 1 };
        }
        prop_assert_eq!(accepted + rejected, total);
        prop_assert!(bus.depth() <= cap, "depth {} over capacity {cap}", bus.depth());
        let stats = bus.stats();
        // Bus-level drops also include rejected self-metering events, so
        // they can only exceed the session-visible count.
        prop_assert!(stats.dropped >= rejected);
        // Drain it all: session events must be exactly the accepted ones,
        // in strictly increasing publish order.
        let mut seen = 0u64;
        let mut last: Option<u64> = None;
        while let Some(ev) = bus.pop() {
            match ev {
                TelemetryEvent::Add { session, delta, .. } => {
                    prop_assert_eq!(session, 424_242);
                    if let Some(prev) = last {
                        prop_assert!(delta > prev, "reordered: {delta} after {prev}");
                    }
                    last = Some(delta);
                    seen += 1;
                }
                // Sampled self-metering observations ride the same queue.
                TelemetryEvent::Observe { metric, .. } => {
                    prop_assert_eq!(metric, Metric::ObsBusEnqueueNs);
                }
                other => prop_assert!(false, "unexpected event {other:?}"),
            }
        }
        prop_assert_eq!(seen, accepted);
    }

    /// The same contract through a recording scope: a session publishing
    /// into a full bus loses events but never blocks, and `sync_dropped`
    /// folds the exact loss into `obs.dropped_events`.
    #[test]
    fn scope_floods_are_counted_per_session(extra in 1u64..512) {
        let cap = 16usize;
        let scope = hub().session("flood");
        let bus = Arc::new(TelemetryBus::new(cap));
        assert!(scope.attach_bus(bus.clone()));
        let rec = scope.recorder();
        let total = cap as u64 + extra;
        for _ in 0..total {
            rec.add(Metric::FramesEncoded, 1);
        }
        // At most `cap` slots exist and nothing drains: everything else
        // must be in the per-session drop counter.
        let dropped = scope.dropped_events();
        prop_assert!(dropped >= extra.saturating_sub(1), "dropped {dropped}, extra {extra}");
        prop_assert!(dropped < total);
        scope.sync_dropped();
        prop_assert_eq!(scope.metrics().counter(Metric::ObsDroppedEvents), dropped);
        // The registry saw nothing — no drain thread ran.
        prop_assert_eq!(scope.metrics().counter(Metric::FramesEncoded), 0);
    }
}

// ---- Session isolation (acceptance criterion) ----

/// Two sessions recording concurrently through one shared bus must land
/// every event in their own registry — no cross-contamination of counters,
/// histograms, device rows, or frame counts.
#[test]
fn concurrent_sessions_do_not_cross_contaminate() {
    let a = hub().session("iso-a");
    let b = hub().session("iso-b");
    let mut ctl = BusController::start(1 << 16, None);
    assert!(a.attach_bus(ctl.bus()));
    assert!(b.attach_bus(ctl.bus()));
    a.set_device_labels(&["A-GPU"]);
    b.set_device_labels(&["B-CPU"]);
    const N: u64 = 10_000;
    std::thread::scope(|s| {
        let a = a.clone();
        s.spawn(move || {
            let rec = a.recorder();
            for i in 0..N {
                rec.add(Metric::FramesEncoded, 1);
                rec.observe(Metric::FrameTau1Ms, 11.0);
                if i % 100 == 0 {
                    a.device_sample(0, 80.0, Some(1.0), false);
                    a.frame_done();
                }
            }
        });
        let b = b.clone();
        s.spawn(move || {
            let rec = b.recorder();
            for i in 0..N {
                rec.add(Metric::DamBytesTransferred, 3);
                rec.observe(Metric::FrameTau2Ms, 22.0);
                if i % 100 == 0 {
                    b.device_sample(0, 20.0, None, true);
                    b.frame_done();
                }
            }
        });
    });
    ctl.stop();
    // Capacity (65536) exceeds the total event volume, so nothing may drop
    // and the counts must be exact.
    assert_eq!(a.dropped_events(), 0);
    assert_eq!(b.dropped_events(), 0);
    let (ma, mb) = (a.metrics(), b.metrics());
    assert_eq!(ma.counter(Metric::FramesEncoded), N);
    assert_eq!(ma.counter(Metric::DamBytesTransferred), 0);
    assert_eq!(mb.counter(Metric::DamBytesTransferred), 3 * N);
    assert_eq!(mb.counter(Metric::FramesEncoded), 0);
    assert_eq!(ma.histogram(Metric::FrameTau1Ms).count(), N);
    assert_eq!(ma.histogram(Metric::FrameTau2Ms).count(), 0);
    assert_eq!(mb.histogram(Metric::FrameTau2Ms).count(), N);
    assert_eq!(mb.histogram(Metric::FrameTau1Ms).count(), 0);
    assert_eq!(a.frames(), N / 100);
    assert_eq!(b.frames(), N / 100);
    let (da, db) = (a.devices(), b.devices());
    assert_eq!(da[0].name, "A-GPU");
    assert!(!da[0].blacklisted);
    assert_eq!(da[0].residual_pct, Some(1.0));
    assert_eq!(db[0].name, "B-CPU");
    assert!(db[0].blacklisted);
    assert_eq!(db[0].residual_pct, None);
}

// ---- Golden snapshot schema ----

/// Collect every leaf key path of `v`, arrays generalized to `[]`.
fn key_paths(v: &Value, prefix: &str, out: &mut BTreeSet<String>) {
    match v {
        Value::Object(fields) => {
            for (k, child) in fields.iter() {
                key_paths(child, &format!("{prefix}/{k}"), out);
            }
        }
        Value::Array(items) => {
            for child in items.iter() {
                key_paths(child, &format!("{prefix}[]"), out);
            }
        }
        _ => {
            out.insert(prefix.to_string());
        }
    }
}

fn schema_of(v: &Value) -> String {
    let mut paths = BTreeSet::new();
    key_paths(v, "", &mut paths);
    let mut out: String = paths.into_iter().collect::<Vec<_>>().join("\n");
    out.push('\n');
    out
}

/// A synthetic snapshot with every structural feature present: bus stats,
/// one session with devices (one residual set, one cleared+blacklisted).
fn synthetic_snapshot() -> Value {
    let scope = hub().session("schema");
    scope.set_device_labels(&["GPU0", "CPU0"]);
    scope.device_sample(0, 87.0, Some(1.5), false);
    scope.device_sample(1, 40.0, None, true);
    let rec = scope.recorder();
    rec.add(Metric::FramesEncoded, 3);
    rec.observe(Metric::FrameTauTotMs, 33.0);
    scope.frame_done();
    let bus = TelemetryBus::new(64);
    bus.publish(TelemetryEvent::FrameDone {
        session: scope.id(),
    });
    build_snapshot(
        1,
        Duration::from_millis(100),
        Some(&bus.stats()),
        &[scope],
        &[],
    )
}

#[test]
fn live_snapshot_matches_golden_schema() {
    let value = match std::env::var_os("FEVES_LIVE_SNAPSHOT") {
        // CI mode: validate a real snapshot file produced by
        // `feves simulate --live-out` against the same golden.
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("{}: {e}", path.to_string_lossy()));
            LiveSnapshot::parse(&text)
                .expect("snapshot parses")
                .value()
                .clone()
        }
        None => synthetic_snapshot(),
    };
    let actual = schema_of(&value);
    let golden_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/live_snapshot.schema");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", golden_path.display()));
    assert_eq!(
        actual, expected,
        "live snapshot schema drifted; run UPDATE_GOLDEN=1 cargo test --test telemetry \
         if the change is intentional"
    );
}

#[test]
fn snapshot_roundtrip_preserves_session_values() {
    let scope = hub().session("roundtrip");
    let rec = scope.recorder();
    rec.add(Metric::VcmTasksScheduled, 77);
    // An untouched gauge serializes as null, not as a fake zero.
    let early = build_snapshot(
        8,
        Duration::from_secs(1),
        None,
        std::slice::from_ref(&scope),
        &[],
    );
    let early_gauges = early
        .get("sessions")
        .and_then(Value::as_array)
        .and_then(|s| {
            s.iter()
                .find(|s| s.get("id").and_then(Value::as_u64) == Some(scope.id()))
        })
        .and_then(|s| s.get("gauges"))
        .cloned()
        .expect("session gauges present");
    assert_eq!(early_gauges.get("kernel.dispatch"), Some(&Value::Null));
    rec.gauge(Metric::KernelDispatch, 1.0);
    let value = build_snapshot(
        9,
        Duration::from_secs(2),
        None,
        std::slice::from_ref(&scope),
        &[],
    );
    let text = serde_json::to_string(&value).expect("non-finite floats are nulled");
    let snap = LiveSnapshot::parse(&text).expect("parses");
    assert_eq!(snap.seq(), 9);
    let sessions = snap
        .value()
        .get("sessions")
        .and_then(Value::as_array)
        .unwrap();
    let ours = sessions
        .iter()
        .find(|s| s.get("id").and_then(Value::as_u64) == Some(scope.id()))
        .expect("our session is present");
    let counters = ours.get("counters").unwrap();
    assert_eq!(
        counters.get("vcm.tasks_scheduled").and_then(Value::as_u64),
        Some(77)
    );
    let gauges = ours.get("gauges").unwrap();
    assert_eq!(
        gauges.get("kernel.dispatch").and_then(Value::as_f64),
        Some(1.0)
    );
}
