//! Property tests of the pipeline state machine under randomized device
//! speeds and fault schedules: reap order equals submit order, the two
//! in-flight generations never share a DAM buffer slot, recovered stall
//! time is bounded by both the carried stall and the consumer's phase-1
//! work, and a quiesce always drains to a frame boundary — no matter how
//! the submit/complete/reap/quiesce events interleave.

use feves::core::dam::{DataManager, DAM_SLOTS};
use feves::core::pipeline::{FramePipeline, MAX_IN_FLIGHT};
use feves::core::prelude::*;
use feves::ft::{FaultKind, FaultSpec};
use feves::sched::CompletionTracker;
use proptest::prelude::*;

/// Build a tracker from per-device (phase1_finish, total_finish) pairs.
fn tracker_of(times: &[(f64, f64)]) -> CompletionTracker {
    let mut t = CompletionTracker::new(times.len());
    for (d, &(p1, fin)) in times.iter().enumerate() {
        t.record(d, p1, true);
        t.record(d, p1.max(fin), false);
    }
    let barrier = times.iter().map(|&(p1, f)| p1.max(f)).fold(0.0, f64::max);
    t.set_barrier(barrier);
    t
}

fn arb_frame_times(devices: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((1e-3f64..50.0, 1e-3f64..100.0), devices..=devices)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Steady-state streaming: for any random per-frame device times, the
    /// overlap accounting obeys its bounds frame after frame.
    #[test]
    fn overlap_is_bounded_by_carry_and_phase1(
        frames in proptest::collection::vec(arb_frame_times(3), 2..12),
    ) {
        let mut pipe = FramePipeline::new(true);
        let mut prev_stalls: Option<Vec<f64>> = None;
        for times in &frames {
            let gen = pipe.open();
            let tracker = tracker_of(times);
            let stalls_now = tracker.stalls();
            let tau1 = (0..3).map(|d| tracker.phase1_of(d)).fold(0.0, f64::max);
            let overlap = pipe.complete(gen, tracker_of(times));
            // recovered_d <= carried stall_d and <= this frame's phase-1_d.
            for (d, &r) in overlap.recovered_s.iter().enumerate() {
                let carried = prev_stalls.as_ref().map_or(0.0, |s| s[d]);
                prop_assert!(r <= carried + 1e-12, "device {d}: recovered {r} > carried {carried}");
                prop_assert!(r <= times[d].0 + 1e-12, "device {d}: recovered {r} > phase1 {}", times[d].0);
                prop_assert!(r >= 0.0);
            }
            // The frame can never get faster than removing all of phase 1.
            prop_assert!(overlap.saved_s >= 0.0);
            prop_assert!(overlap.saved_s <= tau1 + 1e-12,
                "saved {} > tau1 {tau1}", overlap.saved_s);
            prev_stalls = Some(stalls_now);
            // Lockstep drain down to one generation left in flight.
            while pipe.in_flight_depth() > 1 {
                pipe.reap();
            }
        }
    }

    /// Reap order equals submit order, whatever the completion pattern.
    #[test]
    fn reap_order_equals_submit_order(
        frames in proptest::collection::vec(arb_frame_times(2), 1..20),
        drain_each in proptest::bool::ANY,
    ) {
        let mut pipe = FramePipeline::new(true);
        for times in &frames {
            let gen = pipe.open();
            pipe.complete(gen, tracker_of(times));
            let keep = if drain_each { 0 } else { 1 };
            while pipe.in_flight_depth() > keep {
                pipe.reap();
            }
        }
        pipe.quiesce();
        prop_assert_eq!(pipe.submit_log(), pipe.reap_log(),
            "reap order must equal submit order");
        prop_assert!(pipe.is_quiesced());
    }

    /// The two in-flight generations always own distinct DAM slots, and a
    /// third generation can never begin while both slots are held.
    #[test]
    fn double_buffer_slots_are_isolated(
        n_frames in 1usize..16,
    ) {
        let mut pipe = FramePipeline::new(true);
        let mut dam = DataManager::new(8, 2);
        let mut held: Vec<u64> = Vec::new();
        for _ in 0..n_frames {
            let gen = pipe.open();
            dam.begin_generation(gen).expect("pipeline depth bounds slot occupancy");
            held.push(gen);
            // Both live generations sit in different slots.
            let active = dam.active_generations();
            prop_assert_eq!(active.len(), held.len());
            prop_assert!(active.len() <= DAM_SLOTS);
            if active.len() == 2 {
                prop_assert_ne!(
                    FramePipeline::slot_of(active[0]),
                    FramePipeline::slot_of(active[1]),
                    "two live generations share a DAM slot"
                );
                // A third begin_generation must be refused.
                prop_assert!(dam.begin_generation(gen + 1).is_err());
            }
            pipe.complete(gen, tracker_of(&[(1.0, 2.0), (1.5, 2.0)]));
            while pipe.in_flight_depth() > 1 {
                let g = pipe.reap();
                dam.end_generation(g).expect("reaped generation owns its slot");
                held.retain(|&h| h != g);
            }
        }
        for g in pipe.quiesce() {
            dam.end_generation(g).expect("quiesced generation owns its slot");
            held.retain(|&h| h != g);
        }
        prop_assert!(held.is_empty());
        prop_assert!(dam.active_generations().is_empty());
    }

    /// Quiesce always reaches a frame boundary: the pipeline is empty, the
    /// carry is dropped (the next frame starts cold), and depth never
    /// exceeded the double-buffer bound along the way.
    #[test]
    fn quiesce_always_reaches_a_frame_boundary(
        frames in proptest::collection::vec(arb_frame_times(2), 1..10),
        quiesce_after in 0usize..10,
        complete_last in proptest::bool::ANY,
    ) {
        let mut pipe = FramePipeline::new(true);
        for (i, times) in frames.iter().enumerate() {
            let gen = pipe.open();
            prop_assert!(pipe.in_flight_depth() <= MAX_IN_FLIGHT);
            // A quiesce may land before the newest generation measured —
            // the fault path drains exactly like this.
            if i + 1 < frames.len() || complete_last {
                pipe.complete(gen, tracker_of(times));
            }
            if i == quiesce_after {
                break;
            }
            while pipe.in_flight_depth() > 1 {
                pipe.reap();
            }
        }
        pipe.quiesce();
        prop_assert!(pipe.is_quiesced());
        prop_assert_eq!(pipe.in_flight_depth(), 0);
        prop_assert!(pipe.carry().is_none(), "quiesce must drop the stall carry");
        // Re-opening after a quiesce starts a fresh generation cleanly.
        let g = pipe.open();
        let overlap = pipe.complete(g, tracker_of(&[(1.0, 3.0), (2.0, 3.0)]));
        prop_assert_eq!(overlap.saved_s, 0.0, "post-quiesce frame must start cold");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// End-to-end under random fault schedules: the framework must leave
    /// the pipeline quiesce-able at any frame boundary and keep the
    /// flight-recorded depth within the double-buffer bound.
    #[test]
    fn framework_under_random_faults_keeps_pipeline_invariants(
        fault_frame in 1usize..6,
        fault_device in 0usize..3,
        kind in prop_oneof![
            Just(FaultKind::Death),
            Just(FaultKind::Stall { frames: 2 }),
            Just(FaultKind::TransferError),
        ],
    ) {
        let mut cfg = EncoderConfig::full_hd(EncodeParams::default());
        cfg.noise_amp = 0.0;
        cfg.pipeline = true;
        cfg.faults = vec![FaultSpec {
            device: fault_device,
            frame: fault_frame,
            kind,
        }];
        let mut enc = FevesEncoder::new(Platform::sys_nff(), cfg).unwrap();
        enc.enable_flight(16);
        enc.run_timing(8);
        let records = enc.flight().unwrap().to_vec();
        for r in &records {
            prop_assert!(r.inflight_depth <= MAX_IN_FLIGHT,
                "frame {}: depth {} exceeds the double buffer", r.frame, r.inflight_depth);
            for d in &r.devices {
                prop_assert!(d.overlap_carried_ms >= 0.0);
            }
        }
        // A checkpoint can be taken at this boundary.
        enc.quiesce_pipeline();
        let _ = enc.snapshot();
    }
}
