//! Storage-fault chaos harness: seeded I/O fault schedules over
//! single-session and farm encodes, proving the two invariants the
//! storage-robustness design promises:
//!
//! 1. **Zero lost jobs** — whatever ENOSPC / EIO / short-write / torn-rename
//!    / bit-rot schedule fires, every submitted job either reaches a typed
//!    terminal done record or its spool file survives for the next daemon.
//! 2. **Verify-before-completed** — no job is ever reported `completed`
//!    unless its artifact re-reads byte-exact; corrupt artifacts,
//!    checkpoints and control files are rejected with typed errors, never
//!    crashed on and never blessed.
//!
//! The fault seed comes from `FEVES_IO_SEED` (default 1) so CI can sweep
//! schedules; on failure, set `FEVES_STORAGE_ARTIFACT` to a directory and
//! each test dumps its fault counts + done records there for upload.

use feves::ft::io::{inject, FaultPlan, FaultyIo};
use feves::serve::farm::{self, FarmConfig};
use feves::serve::job::{self, JobSpec};
use feves::serve::session::{run_session, verify_artifact};
use feves::serve::signal;
use feves::video::geometry::Resolution;
use feves::video::synth::{SynthConfig, SynthSequence};
use feves::video::y4m::{Y4mHeader, Y4mWriter};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn io_seed() -> u64 {
    std::env::var("FEVES_IO_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "feves-chaos-{name}-s{}-{}",
        io_seed(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_input(path: &Path, n_frames: usize) {
    let mut seq = SynthSequence::new(SynthConfig {
        resolution: Resolution::QCIF,
        seed: 11,
        objects: 4,
        pan: (1.0, 0.5),
        noise: 2,
    });
    let frames = seq.take_frames(n_frames);
    let header = Y4mHeader {
        resolution: frames[0].resolution(),
        fps: (25, 1),
    };
    let mut w = Y4mWriter::new(Vec::new(), header);
    for f in &frames {
        w.write_frame(f).unwrap();
    }
    std::fs::write(path, w.finish().unwrap()).unwrap();
}

fn job_spec(dir: &Path, id: &str) -> JobSpec {
    JobSpec {
        id: id.into(),
        input: dir.join("in.y4m").to_string_lossy().into_owned(),
        output: dir.join(format!("{id}.y4m")).to_string_lossy().into_owned(),
        sa: 16,
        refs: 2,
        checkpoint_every: 2,
        ..JobSpec::default()
    }
}

fn farm_cfg(dir: &Path) -> FarmConfig {
    FarmConfig {
        spool: dir.join("spool"),
        exit_when_idle: true,
        poll_ms: 10,
        retry_base_ms: 5,
        ..FarmConfig::default()
    }
}

fn done_path(dir: &Path, id: &str) -> PathBuf {
    job::done_dir(&dir.join("spool")).join(format!("{id}.json"))
}

fn done_text(dir: &Path, id: &str) -> Option<String> {
    std::fs::read_to_string(done_path(dir, id)).ok()
}

/// Encode the reference artifact in a fault-free directory: what every
/// completed job's bytes must equal, bit for bit.
fn clean_baseline(dir: &Path) -> Vec<u8> {
    let clean = dir.join("clean");
    std::fs::create_dir_all(&clean).unwrap();
    std::fs::copy(dir.join("in.y4m"), clean.join("in.y4m")).unwrap();
    let base = job_spec(&clean, "baseline");
    let ctl = Arc::new(feves::core::SessionCtl::new());
    let rep = run_session(&base, &ctl, feves::obs::hub().session("baseline"), 0, None).unwrap();
    verify_artifact(&base.output, rep.out_bytes, rep.artifact_crc).unwrap();
    std::fs::read(&base.output).unwrap()
}

/// On request (`FEVES_STORAGE_ARTIFACT=dir`), dump the fault schedule
/// counters and every done record — CI uploads these when a seed fails.
fn dump_artifacts(tag: &str, faulty: &FaultyIo, dir: &Path) {
    let Ok(out) = std::env::var("FEVES_STORAGE_ARTIFACT") else {
        return;
    };
    let out = PathBuf::from(out);
    let _ = std::fs::create_dir_all(&out);
    let mut body = format!("seed {}\ncounts {:?}\n", io_seed(), faulty.counts());
    if let Ok(entries) = std::fs::read_dir(job::done_dir(&dir.join("spool"))) {
        for e in entries.filter_map(|e| e.ok()) {
            if let Ok(text) = std::fs::read_to_string(e.path()) {
                body.push_str(&format!("--- {}\n{text}\n", e.path().display()));
            }
        }
    }
    let _ = std::fs::write(out.join(format!("{tag}-seed{}.txt", io_seed())), body);
}

/// Invariant 1, checked from outside the farm: a submitted job is *lost*
/// only if it has no done record AND no surviving spool file.
fn assert_no_lost_jobs(dir: &Path, ids: &[&str]) {
    for id in ids {
        let spooled = dir.join("spool").join(format!("{id}.json")).exists();
        let done = done_path(dir, id).exists();
        assert!(
            spooled || done,
            "job '{id}' lost: no done record and no spool file"
        );
    }
}

/// Invariant 2: every done record claiming `completed` must name an
/// artifact that re-reads byte-exact against the clean baseline.
fn assert_completed_verify(dir: &Path, ids: &[&str], baseline: &[u8]) {
    for id in ids {
        let Some(text) = done_text(dir, id) else {
            continue;
        };
        if !text.contains("\"completed\"") {
            continue;
        }
        let bytes = std::fs::read(dir.join(format!("{id}.y4m"))).unwrap_or_default();
        assert_eq!(
            bytes, baseline,
            "job '{id}' reported completed but its artifact is not byte-exact"
        );
    }
}

#[test]
fn farm_under_transient_fault_schedule_loses_no_jobs() {
    signal::reset();
    let dir = scratch("farm-transient");
    write_input(&dir.join("in.y4m"), 6);
    let baseline = clean_baseline(&dir);

    let ids = ["t0", "t1", "t2"];
    for id in &ids {
        job::write_job(&dir.join("spool"), &job_spec(&dir, id)).unwrap();
    }

    // Phase 1: the whole scratch dir — spool control files, checkpoints,
    // artifacts — runs on a seeded transient-fault backend. The farm may
    // finish, or abort on an exhausted retry budget; either way nothing
    // may be lost and nothing corrupt may be blessed.
    let faulty = Arc::new(FaultyIo::new(FaultPlan::transient(io_seed())));
    let scope = inject(&dir, faulty.clone());
    let phase1 = farm::run(farm_cfg(&dir));
    dump_artifacts("farm-transient", &faulty, &dir);
    let c = faulty.counts();
    assert!(
        c.transient_eio + c.short_writes + c.torn_renames > 0,
        "schedule fired no faults — chaos harness is not injecting ({c:?})"
    );
    drop(scope);
    assert_no_lost_jobs(&dir, &ids);
    assert_completed_verify(&dir, &ids, &baseline);

    // Phase 2: faults gone, a fresh daemon converges every surviving spool
    // file to a verified completion.
    signal::reset();
    let phase2 = farm::run(farm_cfg(&dir)).unwrap();
    assert!(!phase2.drained);
    assert_no_lost_jobs(&dir, &ids);
    assert_completed_verify(&dir, &ids, &baseline);
    for id in &ids {
        let text = done_text(&dir, id).expect("terminal done record");
        assert!(
            text.contains("\"completed\"") || text.contains("\"failed\""),
            "job '{id}' has no terminal outcome after the clean pass:\n{text}"
        );
    }
    // Across both phases every job either completed (verified above) or
    // failed typed under phase 1's schedule; phase 1's Result itself may be
    // an Err — that is an accounted abort, not data loss.
    let _ = phase1;
}

#[test]
fn rotted_artifact_is_never_reported_completed() {
    signal::reset();
    let dir = scratch("rot");
    write_input(&dir.join("in.y4m"), 6);
    let baseline = clean_baseline(&dir);

    let spec = job_spec(&dir, "rotme");
    job::write_job(&dir.join("spool"), &spec).unwrap();

    // Bit-rot fires on *every* fsync of the artifact file (and only it —
    // checkpoints and control files are clean), so each attempt's output
    // is guaranteed corrupt. The farm must burn its retries and record a
    // typed failure; "completed" would be a lie about corrupt bytes.
    let faulty = Arc::new(FaultyIo::new(FaultPlan {
        seed: io_seed(),
        bitrot_per_mille: 1000,
        ..FaultPlan::default()
    }));
    let scope = inject(PathBuf::from(&spec.output), faulty.clone());
    let cfg = FarmConfig {
        retry_budget: 1,
        ..farm_cfg(&dir)
    };
    let report = farm::run(cfg).unwrap();
    dump_artifacts("rot", &faulty, &dir);
    assert_eq!(
        (report.completed, report.failed),
        (0, 1),
        "a permanently rotting artifact must fail, not complete: {report:?}"
    );
    assert!(report.retried >= 1, "verify failure must trigger a retry");
    let text = done_text(&dir, "rotme").unwrap();
    assert!(text.contains("\"failed\""), "{text}");
    assert!(
        text.contains("checksum") || text.contains("corrupt"),
        "failure must be the typed corruption error:\n{text}"
    );
    assert!(faulty.counts().bitrot > 0);
    drop(scope);

    // Rot cured: a resubmit completes and verifies byte-exact.
    signal::reset();
    job::write_job(&dir.join("spool"), &spec).unwrap();
    let report = farm::run(farm_cfg(&dir)).unwrap();
    assert_eq!(report.completed, 1, "{report:?}");
    assert_eq!(std::fs::read(&spec.output).unwrap(), baseline);
}

#[test]
fn disk_pressure_pauses_admission_and_recovers() {
    signal::reset();
    let dir = scratch("pressure");
    write_input(&dir.join("in.y4m"), 6);
    let baseline = clean_baseline(&dir);

    let spec = job_spec(&dir, "squeezed");
    job::write_job(&dir.join("spool"), &spec).unwrap();

    // The spool filesystem reports 1 KiB free — far below the 1 MiB low
    // watermark — so the farm must hold the job unadmitted in the spool.
    let faulty = Arc::new(FaultyIo::new(FaultPlan::default()));
    faulty.set_free_space(Some(1024));
    let _scope = inject(&dir, faulty.clone());
    let cfg = FarmConfig {
        disk_low_bytes: 1024 * 1024,
        ..farm_cfg(&dir)
    };
    let handle = std::thread::spawn(move || farm::run(cfg));
    std::thread::sleep(std::time::Duration::from_millis(400));
    assert!(
        !handle.is_finished(),
        "farm must not idle-exit while disk pressure holds work back"
    );
    assert!(
        dir.join("spool").join("squeezed.json").exists(),
        "paused admission must leave the spool file in place"
    );
    assert!(
        !done_path(&dir, "squeezed").exists(),
        "no terminal record may exist for an unadmitted job"
    );

    // Space recovers: pressure clears, the job is admitted, completes, and
    // the farm exits idle on its own.
    faulty.set_free_space(None);
    let report = handle.join().unwrap().unwrap();
    dump_artifacts("pressure", &faulty, &dir);
    assert_eq!((report.completed, report.failed), (1, 0), "{report:?}");
    assert_eq!(std::fs::read(&spec.output).unwrap(), baseline);
}

fn feves_bin() -> PathBuf {
    // target/<profile>/feves next to the test executable's directory.
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // <profile>/
    p.push(format!("feves{}", std::env::consts::EXE_SUFFIX));
    p
}

fn run_cli(args: &[&str]) -> (bool, String, String) {
    let out = std::process::Command::new(feves_bin())
        .args(args)
        .output()
        .expect("spawn feves binary (build it with the workspace)");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn verify_subcommand_accepts_pristine_and_rejects_corruption() {
    signal::reset();
    let dir = scratch("verify");
    write_input(&dir.join("in.y4m"), 6);

    // Produce a pristine artifact + checkpoint dir + framed spool/done
    // control files through the real farm.
    let spec = job_spec(&dir, "pristine");
    job::write_job(&dir.join("spool"), &spec).unwrap();
    let report = farm::run(farm_cfg(&dir)).unwrap();
    assert_eq!(report.completed, 1, "{report:?}");
    let artifact = dir.join("pristine.y4m");
    let done = done_path(&dir, "pristine");
    // A spool spec to verify (the farm consumed the original).
    let spool_spec = job::write_job(&dir.join("spool"), &job_spec(&dir, "queued")).unwrap();

    // Pristine everything verifies clean.
    for p in [&artifact, &done, &spool_spec] {
        let (ok, stdout, stderr) = run_cli(&["verify", p.to_str().unwrap()]);
        assert!(ok, "pristine {} must verify: {stderr}", p.display());
        assert!(stdout.contains("ok"), "{stdout}");
    }

    // One flipped byte in each class must flip the verdict to a typed
    // error on stderr and exit nonzero — rejected, not crashed on.
    let corrupt = |src: &Path, name: &str, at_marker: Option<&[u8]>| -> PathBuf {
        let mut bytes = std::fs::read(src).unwrap();
        let at = match at_marker {
            // Break a structural marker: pixel rot is only catchable
            // against a recorded CRC, structure rot by any reader.
            Some(m) => {
                bytes
                    .windows(m.len())
                    .rposition(|w| w == m)
                    .expect("marker present")
                    + 1
            }
            None => bytes.len() / 2,
        };
        bytes[at] ^= 0x40;
        let p = dir.join(name);
        std::fs::write(&p, bytes).unwrap();
        p
    };
    let bad_artifact = corrupt(&artifact, "bad.y4m", Some(b"FRAME"));
    let bad_done = corrupt(&done, "bad-done.json", None);
    let bad_spec = corrupt(&spool_spec, "bad-spec.json", None);
    let ckpt_dir = dir.join("pristine.y4m.ckpt");
    let bad_ckpt = std::fs::read_dir(&ckpt_dir)
        .ok()
        .and_then(|mut d| d.find_map(|e| e.ok().map(|e| e.path())))
        .map(|ck| corrupt(&ck, "bad.ckpt", None));
    for p in [
        Some(&bad_artifact),
        Some(&bad_done),
        Some(&bad_spec),
        bad_ckpt.as_ref(),
    ]
    .into_iter()
    .flatten()
    {
        let (ok, _, stderr) = run_cli(&["verify", p.to_str().unwrap()]);
        assert!(!ok, "corrupted {} must fail verification", p.display());
        assert!(
            stderr.contains("error") || stderr.contains("corrupt") || stderr.contains("checksum"),
            "{}: expected a typed error, got:\n{stderr}",
            p.display()
        );
    }

    // Directory mode: a tree with one rotten file fails as a whole and
    // names the count.
    std::fs::copy(&bad_spec, dir.join("spool").join("zz-bad.json")).unwrap();
    let (ok, _, stderr) = run_cli(&["verify", dir.join("spool").to_str().unwrap()]);
    assert!(!ok, "spool dir containing bad-spec.json must fail");
    assert!(stderr.contains("failed verification"), "{stderr}");
}

#[test]
fn single_session_under_faults_converges_bit_exact() {
    signal::reset();
    let dir = scratch("single");
    write_input(&dir.join("in.y4m"), 6);
    let baseline = clean_baseline(&dir);

    let chaos = dir.join("chaos");
    std::fs::create_dir_all(&chaos).unwrap();
    std::fs::copy(dir.join("in.y4m"), chaos.join("in.y4m")).unwrap();
    let spec = job_spec(&chaos, "solo");
    let faulty = Arc::new(FaultyIo::new(FaultPlan::transient(io_seed() ^ 0x51)));
    let scope = inject(&chaos, faulty.clone());

    // Retry the session under fire, resuming from whatever checkpoint each
    // dead attempt left. Typed failures only — never a panic, never an
    // unverifiable "success".
    let ctl = Arc::new(feves::core::SessionCtl::new());
    let mut verified = false;
    for attempt in 0..20u32 {
        let scope_label = format!("solo-{attempt}");
        match run_session(
            &spec,
            &ctl,
            feves::obs::hub().session(&scope_label),
            attempt,
            None,
        ) {
            Ok(rep) => {
                if verify_artifact(&spec.output, rep.out_bytes, rep.artifact_crc).is_ok() {
                    verified = true;
                    break;
                }
            }
            Err(failure) => {
                assert!(
                    !failure.message.is_empty(),
                    "session failures must carry a typed message"
                );
            }
        }
    }
    drop(scope);
    if !verified {
        // The schedule outlasted 20 attempts; a clean final pass must
        // still converge from the surviving checkpoints.
        let rep = run_session(
            &spec,
            &ctl,
            feves::obs::hub().session("solo-clean"),
            99,
            None,
        )
        .expect("clean session after faults");
        verify_artifact(&spec.output, rep.out_bytes, rep.artifact_crc).unwrap();
    }
    assert_eq!(
        std::fs::read(&spec.output).unwrap(),
        baseline,
        "converged artifact must be bit-identical to the fault-free encode"
    );
}
