//! Property tests of the full per-frame path (DAM plan → VCM graph →
//! simulation) over randomized valid distributions: the schedule must
//! always respect the τ structure and the transfer plan must conserve
//! buffer rows, for any split the balancer could legally emit.

use feves::codec::types::{EncodeParams, SearchArea};
use feves::core::dam::DataManager;
use feves::core::prelude::*;
use feves::core::vcm::{build_frame_graph, FrameGeometry, MeasureKind};
use feves::ft::{FaultKind, FaultSpec};
use feves::hetsim::{simulate, Deterministic, Platform};
use feves::sched::Distribution;
use proptest::prelude::*;

const N: usize = 68;

/// Split `total` into `parts` non-negative counts.
fn arb_split(parts: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..=N, parts - 1).prop_map(move |mut cuts| {
        cuts.push(0);
        cuts.push(N);
        cuts.sort_unstable();
        cuts.windows(2).map(|w| w[1] - w[0]).collect()
    })
}

fn geo() -> FrameGeometry {
    FrameGeometry {
        mb_cols: 120,
        n_rows: N,
        width: 1920,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_valid_distribution_schedules_cleanly(
        me in arb_split(6),
        li in arb_split(6),
        sm in arb_split(6),
        rstar in 0usize..6,
        budget_cap in proptest::option::of(0usize..N),
        data_reuse in proptest::bool::ANY,
        overlap in proptest::bool::ANY,
        sa in prop_oneof![Just(32u16), Just(64)],
        n_ref in 1usize..4,
    ) {
        let platform = Platform::sys_nff(); // 2 GPUs + 4 cores
        let budget = vec![budget_cap.unwrap_or(usize::MAX); platform.len()];
        let dist = Distribution::from_rows(me, li, sm, rstar, &budget, None);
        dist.validate(N).unwrap();

        let mask: Vec<bool> = platform.devices.iter().map(|d| d.is_accelerator()).collect();
        let mut dam = DataManager::new(N, platform.len());
        let params = EncodeParams {
            search_area: SearchArea(sa),
            n_ref,
            ..Default::default()
        };

        // Two consecutive frames so the σʳ carry-over path runs too.
        for _frame in 0..2 {
            let plan = dam.plan(&dist, &mask, data_reuse);
            // Transfer-plan conservation: a non-R* accelerator's SF arrives
            // in exactly three pieces: own INT + Δl, eager σ, deferred σʳ.
            for d in 0..platform.len() {
                if !mask[d] || d == dist.rstar_device {
                    continue;
                }
                if data_reuse {
                    prop_assert_eq!(
                        dist.interp[d] + dist.delta_l[d] + plan[d].sigma_up
                            + dist.sigma_rem[d],
                        N,
                        "SF conservation for device {}", d
                    );
                }
                prop_assert_eq!(plan[d].rf_up, N);
            }
            let fg = build_frame_graph(&dist, &plan, &platform, &params, geo(), overlap);
            let sched = simulate(
                &fg.graph,
                &platform,
                &platform.nominal_speeds(),
                &mut Deterministic,
            );
            let sched = sched.expect("VCM graphs must never deadlock");
            let t1 = sched.finish_of(fg.tau1);
            let t2 = sched.finish_of(fg.tau2);
            let tt = sched.finish_of(fg.tau_tot);
            prop_assert!(t1 > 0.0);
            prop_assert!(t1 <= t2 + 1e-12 && t2 <= tt + 1e-12);
            prop_assert!((tt - sched.makespan).abs() < 1e-12);

            // Measurement coverage: every device with assigned rows has a
            // compute measurement for each balanced module it works on.
            for (d, &rows) in dist.me.iter().enumerate() {
                if rows > 0 {
                    let covered = fg.measures.iter().any(|m| {
                        matches!(m.kind,
                            MeasureKind::Compute { device, module, .. }
                                if device == d
                                    && module == feves::codec::types::Module::Me)
                    });
                    prop_assert!(covered, "no ME measurement for device {}", d);
                }
            }
            dam.commit(&dist, &mask, data_reuse).unwrap();
        }
    }
}

/// A recoverable fault: any kind, restricted to the accelerators (a CPU
/// core can also die, but killing all of them is unrecoverable by design,
/// so the random schedules stay on the accelerator side like real GPU
/// faults do) and starting after the probe frame.
fn arb_fault(n_accel: usize) -> impl Strategy<Value = FaultSpec> {
    let kind = prop_oneof![
        Just(FaultKind::Death),
        (1usize..4).prop_map(|frames| FaultKind::Stall { frames }),
        ((8u32..64), (1usize..4)).prop_map(|(f, frames)| FaultKind::Slowdown {
            factor: f as f64,
            frames,
        }),
        Just(FaultKind::TransferError),
    ];
    (0..n_accel, 2usize..8, kind).prop_map(|(device, frame, kind)| FaultSpec {
        device,
        frame,
        kind,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under any recoverable fault schedule the encoder completes the run
    /// and every frame's distribution still dispatches each MB row exactly
    /// once per module — nothing lost, nothing doubled — while the
    /// fault-tolerance counters stay mutually consistent.
    #[test]
    fn recoverable_faults_lose_no_rows(
        faults in proptest::collection::vec(arb_fault(Platform::sys_nff().n_accel), 1..3),
        deadline_factor in 2.0f64..6.0,
    ) {
        let platform = Platform::sys_nff();
        let mut cfg = EncoderConfig::full_hd(EncodeParams::default());
        cfg.faults = faults;
        cfg.deadline_factor = deadline_factor;
        let mut enc = FevesEncoder::new(platform, cfg).unwrap();
        let rep = enc.run_timing(12);
        let n_rows = enc.geometry().n_rows;
        prop_assert_eq!(rep.inter_frames().count(), 12);
        for f in rep.inter_frames() {
            let d = f.distribution.as_ref().unwrap();
            prop_assert_eq!(d.me.iter().sum::<usize>(), n_rows);
            prop_assert_eq!(d.interp.iter().sum::<usize>(), n_rows);
            prop_assert_eq!(d.sme.iter().sum::<usize>(), n_rows);
            prop_assert!(d.validate(n_rows).is_ok());
        }
        let ft = enc.ft_stats();
        prop_assert!(ft.injected >= 1);
        prop_assert!(ft.resolves <= ft.detected);
        prop_assert!(ft.recovered <= ft.detected);
        // The host must always survive.
        prop_assert!(enc.health().n_available() >= 1);
    }
}
