//! Property tests of the full per-frame path (DAM plan → VCM graph →
//! simulation) over randomized valid distributions: the schedule must
//! always respect the τ structure and the transfer plan must conserve
//! buffer rows, for any split the balancer could legally emit.

use feves::codec::types::{EncodeParams, SearchArea};
use feves::core::dam::DataManager;
use feves::core::vcm::{build_frame_graph, FrameGeometry, MeasureKind};
use feves::hetsim::{simulate, Deterministic, Platform};
use feves::sched::Distribution;
use proptest::prelude::*;

const N: usize = 68;

/// Split `total` into `parts` non-negative counts.
fn arb_split(parts: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..=N, parts - 1).prop_map(move |mut cuts| {
        cuts.push(0);
        cuts.push(N);
        cuts.sort_unstable();
        cuts.windows(2).map(|w| w[1] - w[0]).collect()
    })
}

fn geo() -> FrameGeometry {
    FrameGeometry {
        mb_cols: 120,
        n_rows: N,
        width: 1920,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_valid_distribution_schedules_cleanly(
        me in arb_split(6),
        li in arb_split(6),
        sm in arb_split(6),
        rstar in 0usize..6,
        budget_cap in proptest::option::of(0usize..N),
        data_reuse in proptest::bool::ANY,
        overlap in proptest::bool::ANY,
        sa in prop_oneof![Just(32u16), Just(64)],
        n_ref in 1usize..4,
    ) {
        let platform = Platform::sys_nff(); // 2 GPUs + 4 cores
        let budget = vec![budget_cap.unwrap_or(usize::MAX); platform.len()];
        let dist = Distribution::from_rows(me, li, sm, rstar, &budget, None);
        dist.validate(N).unwrap();

        let mask: Vec<bool> = platform.devices.iter().map(|d| d.is_accelerator()).collect();
        let mut dam = DataManager::new(N, platform.len());
        let params = EncodeParams {
            search_area: SearchArea(sa),
            n_ref,
            ..Default::default()
        };

        // Two consecutive frames so the σʳ carry-over path runs too.
        for _frame in 0..2 {
            let plan = dam.plan(&dist, &mask, data_reuse);
            // Transfer-plan conservation: a non-R* accelerator's SF arrives
            // in exactly three pieces: own INT + Δl, eager σ, deferred σʳ.
            for d in 0..platform.len() {
                if !mask[d] || d == dist.rstar_device {
                    continue;
                }
                if data_reuse {
                    prop_assert_eq!(
                        dist.interp[d] + dist.delta_l[d] + plan[d].sigma_up
                            + dist.sigma_rem[d],
                        N,
                        "SF conservation for device {}", d
                    );
                }
                prop_assert_eq!(plan[d].rf_up, N);
            }
            let fg = build_frame_graph(&dist, &plan, &platform, &params, geo(), overlap);
            let sched = simulate(
                &fg.graph,
                &platform,
                &platform.nominal_speeds(),
                &mut Deterministic,
            );
            let sched = sched.expect("VCM graphs must never deadlock");
            let t1 = sched.finish_of(fg.tau1);
            let t2 = sched.finish_of(fg.tau2);
            let tt = sched.finish_of(fg.tau_tot);
            prop_assert!(t1 > 0.0);
            prop_assert!(t1 <= t2 + 1e-12 && t2 <= tt + 1e-12);
            prop_assert!((tt - sched.makespan).abs() < 1e-12);

            // Measurement coverage: every device with assigned rows has a
            // compute measurement for each balanced module it works on.
            for (d, &rows) in dist.me.iter().enumerate() {
                if rows > 0 {
                    let covered = fg.measures.iter().any(|m| {
                        matches!(m.kind,
                            MeasureKind::Compute { device, module, .. }
                                if device == d
                                    && module == feves::codec::types::Module::Me)
                    });
                    prop_assert!(covered, "no ME measurement for device {}", d);
                }
            }
            dam.commit(&dist, &mask, data_reuse).unwrap();
        }
    }
}
