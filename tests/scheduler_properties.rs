//! Property-based tests of the scheduling stack on randomized platforms:
//! whatever the device mix, Algorithm 2 must produce valid distributions
//! whose predicted makespan never loses to the best single device, and the
//! simulated execution must respect the synchronization structure.

use feves::codec::types::Module;
use feves::hetsim::device::{CopyEngines, DeviceKind, DeviceProfile, LinkProfile, ModuleTable};
use feves::hetsim::platform::Platform;
use feves::hetsim::timeline::{Dir, TransferTag};
use feves::sched::{algorithm2, Centric, Ewma, PerfChar};
use proptest::prelude::*;

/// Build a random accelerator profile from speed knobs.
fn accel(me_ms: f64, sme_ms: f64, bw_gbs: f64, dual: bool) -> DeviceProfile {
    let table = ModuleTable::from_fn(|m| match m {
        Module::Me => me_ms * 1e-3 / (120.0 * 68.0 * 1024.0),
        Module::Interp => me_ms * 0.4e-3 / (120.0 * 68.0),
        Module::Sme => sme_ms * 1e-3 / (120.0 * 68.0),
        _ => 0.5e-3 / (120.0 * 68.0),
    });
    DeviceProfile {
        name: "accel".into(),
        kind: DeviceKind::Accelerator(if dual {
            CopyEngines::Dual
        } else {
            CopyEngines::Single
        }),
        seconds_per_unit: table,
        link: Some(LinkProfile {
            h2d_bytes_per_sec: bw_gbs * 1e9,
            d2h_bytes_per_sec: bw_gbs * 0.9e9,
            latency_s: 10e-6,
        }),
        memory_bytes: None,
    }
}

fn cpu_chip(me_ms: f64) -> DeviceProfile {
    DeviceProfile {
        name: "cpu".into(),
        kind: DeviceKind::CpuCore,
        seconds_per_unit: ModuleTable::from_fn(|m| match m {
            Module::Me => me_ms * 1e-3 / (120.0 * 68.0 * 1024.0),
            Module::Interp => me_ms * 0.3e-3 / (120.0 * 68.0),
            Module::Sme => me_ms * 0.4e-3 / (120.0 * 68.0),
            _ => 1.0e-3 / (120.0 * 68.0),
        }),
        link: None,
        memory_bytes: None,
    }
}

fn characterize(platform: &Platform) -> PerfChar {
    let mut pc = PerfChar::new(platform.len(), Ewma(1.0));
    for (i, dev) in platform.devices.iter().enumerate() {
        pc.record_compute(
            i,
            Module::Me,
            1,
            dev.compute_time(Module::Me, 120.0 * 1024.0, 1.0),
        );
        pc.record_compute(
            i,
            Module::Interp,
            1,
            dev.compute_time(Module::Interp, 120.0, 1.0),
        );
        pc.record_compute(i, Module::Sme, 1, dev.compute_time(Module::Sme, 120.0, 1.0));
        let rstar: f64 = Module::RSTAR
            .iter()
            .map(|&m| dev.compute_time(m, 120.0 * 68.0, 1.0))
            .sum();
        pc.record_rstar(i, rstar);
        if let Some(link) = dev.link {
            use feves::codec::workload::bytes_per_row as bpr;
            for (tag, bytes) in [
                (TransferTag::Cf, bpr::cf(1920)),
                (TransferTag::Rf, bpr::rf(1920)),
                (TransferTag::Sf, bpr::sf(1920)),
                (TransferTag::Mv, bpr::mv(1920)),
            ] {
                pc.record_transfer(i, tag, Dir::H2d, 1, link.transfer_time(bytes, true));
                pc.record_transfer(i, tag, Dir::D2h, 1, link.transfer_time(bytes, false));
            }
        }
    }
    pc
}

/// Body of `lp_beats_single_device`, callable both from the proptest
/// generator and from the pinned regression seeds below. Panics (via
/// `assert!`) on violation so both callers report failures identically.
#[allow(clippy::too_many_arguments)]
fn lp_beats_single_device_case(
    me0: f64,
    me1: f64,
    sme0: f64,
    sme1: f64,
    cpu_me: f64,
    bw: f64,
    dual: bool,
    cores: usize,
) {
    let platform = Platform::build(
        vec![accel(me0, sme0, bw, dual), accel(me1, sme1, bw, !dual)],
        &cpu_chip(cpu_me),
        cores,
    );
    let perf = characterize(&platform);
    let sigma_prev = vec![0usize; platform.len()];
    let dist = algorithm2::solve(68, &platform, &perf, Centric::Gpu(0), &sigma_prev)
        .expect("random platform LPs must be feasible");
    dist.validate(68).unwrap();
    let pred = dist.predicted.unwrap();
    assert!(pred.tau1 <= pred.tau2 + 1e-9 && pred.tau2 <= pred.tau_tot + 1e-9);

    // Compute-only lower bound comparison: the collaborative makespan
    // must not exceed the best device's solo compute time by more than
    // the communication slack.
    let solo = |d: usize| {
        68.0 * (perf.k_me(d).unwrap() + perf.k_sme(d).unwrap())
            + 68.0 * perf.k_int(d).unwrap().max(0.0)
    };
    let best_solo = (0..platform.len()).map(solo).fold(f64::INFINITY, f64::min);
    assert!(
        pred.tau_tot <= best_solo * 1.6 + 0.05,
        "collaboration ({}) much worse than best solo ({})",
        pred.tau_tot,
        best_solo
    );
}

// Past proptest failures, pinned as named deterministic tests (instead of a
// `.proptest-regressions` replay file, which re-shrinks on every run and
// flakes under load). Parameters are the exact shrunk counterexamples.

#[test]
fn lp_regression_slow_cpu_asymmetric_accels() {
    lp_beats_single_device_case(
        55.01986088976605,
        15.791395203176599,
        8.616266429885133,
        2.0,
        358.51213052134887,
        8.141489078690768,
        false,
        3,
    );
}

#[test]
fn lp_regression_fast_accel0_high_bandwidth() {
    lp_beats_single_device_case(
        9.836626128095338,
        20.366490248859485,
        2.72379694502641,
        7.860736379338066,
        192.4757774825777,
        15.917754750746951,
        false,
        2,
    );
}

#[test]
fn lp_regression_fast_cpu_slow_accels() {
    lp_beats_single_device_case(
        37.973184934329474,
        53.75566229519008,
        4.680363346886697,
        2.0,
        72.99362339689038,
        12.63757112243864,
        false,
        2,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For random platforms, Algorithm 2 must return a valid distribution
    /// whose predicted τtot beats (or ties) the fastest accelerator doing
    /// everything alone.
    #[test]
    fn lp_beats_single_device(
        me0 in 5.0f64..60.0,
        me1 in 5.0f64..60.0,
        sme0 in 2.0f64..25.0,
        sme1 in 2.0f64..25.0,
        cpu_me in 40.0f64..400.0,
        bw in 2.0f64..16.0,
        dual in proptest::bool::ANY,
        cores in 1usize..5,
    ) {
        lp_beats_single_device_case(me0, me1, sme0, sme1, cpu_me, bw, dual, cores);
    }

    /// Running the distribution through the DAM + VCM + simulator must keep
    /// the τ ordering and stay within a sane factor of the LP's prediction.
    #[test]
    fn simulated_schedule_respects_prediction(
        me0 in 8.0f64..40.0,
        sme0 in 3.0f64..20.0,
        cpu_me in 60.0f64..300.0,
        bw in 4.0f64..14.0,
        cores in 2usize..5,
    ) {
        use feves::core::dam::DataManager;
        use feves::core::vcm::{build_frame_graph, FrameGeometry};
        use feves::hetsim::{simulate, Deterministic};
        use feves::codec::types::{EncodeParams, SearchArea};

        let platform = Platform::build(
            vec![accel(me0, sme0, bw, true)],
            &cpu_chip(cpu_me),
            cores,
        );
        let perf = characterize(&platform);
        let dist = algorithm2::solve(
            68, &platform, &perf, Centric::Gpu(0), &vec![0; platform.len()],
        ).unwrap();
        let dam = DataManager::new(68, platform.len());
        let mask: Vec<bool> = platform.devices.iter().map(|d| d.is_accelerator()).collect();
        let plan = dam.plan(&dist, &mask, true);
        let params = EncodeParams {
            search_area: SearchArea(32),
            n_ref: 1,
            ..Default::default()
        };
        let geo = FrameGeometry { mb_cols: 120, n_rows: 68, width: 1920 };
        let fg = build_frame_graph(&dist, &plan, &platform, &params, geo, true);
        let sched = simulate(&fg.graph, &platform, &platform.nominal_speeds(), &mut Deterministic)
            .unwrap();
        let t1 = sched.finish_of(fg.tau1);
        let t2 = sched.finish_of(fg.tau2);
        let tt = sched.finish_of(fg.tau_tot);
        prop_assert!(t1 <= t2 + 1e-12 && t2 <= tt + 1e-12);
        let pred = dist.predicted.unwrap();
        // The simulator honours FIFO queues the LP idealizes away, so allow
        // generous slack — but the two must stay in the same ballpark.
        prop_assert!(
            tt <= pred.tau_tot * 2.0 + 0.01 && tt >= pred.tau_tot * 0.4 - 0.01,
            "simulated {} vs predicted {}",
            tt, pred.tau_tot
        );
    }
}
