//! `feves` — command-line front end.
//!
//! ```text
//! feves platforms                          list the built-in platforms
//! feves simulate [options]                 timing-only 1080p run (virtual clock)
//! feves encode <in.y4m> [out.y4m] [opts]   functional encode of a Y4M file
//! feves trace [options]                    print a steady-state frame Gantt
//! feves stats [options]                    run + print the metrics summary
//! feves report <flight.jsonl> [--html]     audit a recorded flight log
//! feves compare <baseline> <new>           regression gate over two summaries
//! ```
//!
//! Options: `--platform syshk|sysnf|sysnff|cpu-n|cpu-h|gpu-f|gpu-k`,
//! `--sa <32|64|128|256>`, `--refs <1..16>`, `--qp <0..51>`,
//! `--frames <n>`, `--balancer feves|proportional|equidistant`,
//! `--metrics-out <path>` (JSONL metrics dump),
//! `--trace-format gantt|chrome` (Chrome JSON loads in Perfetto),
//! `--inject-fault <spec>` (repeatable — e.g. `0:death@5`, `1:stall@3+4`,
//! `1:slow@3+4x10`, `0:xfer@7`, `0:panic@2`), `--deadline-factor <f>`,
//! `--kernels scalar|fast` (hot-kernel family; overrides `FEVES_KERNELS`;
//! CPU device profiles are re-scaled so simulated times match the choice).

use feves::core::prelude::*;
use feves::obs::{compare_reports, parse_flight_jsonl, render_html, MemoryRecorder};
use feves::video::y4m::{Y4mReader, Y4mWriter};
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;
use std::sync::Arc;

struct Options {
    platform: String,
    platform_file: Option<String>,
    sa: u16,
    refs: usize,
    qp: u8,
    frames: usize,
    balancer: String,
    metrics_out: Option<String>,
    trace_format: String,
    faults: Vec<String>,
    deadline_factor: Option<f64>,
    kernels: Option<String>,
    flight_out: Option<String>,
    html: bool,
    out: Option<String>,
    threshold: f64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            platform: "syshk".into(),
            platform_file: None,
            sa: 32,
            refs: 1,
            qp: 28,
            frames: 30,
            balancer: "feves".into(),
            metrics_out: None,
            trace_format: "gantt".into(),
            faults: Vec::new(),
            deadline_factor: None,
            kernels: None,
            flight_out: None,
            html: false,
            out: None,
            threshold: 0.10,
        }
    }
}

fn parse_options(args: &[String]) -> Result<(Options, Vec<String>), String> {
    let mut opts = Options::default();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut grab =
            || -> Result<&String, String> { it.next().ok_or_else(|| format!("{a} needs a value")) };
        match a.as_str() {
            "--platform" => opts.platform = grab()?.to_lowercase(),
            "--platform-file" => opts.platform_file = Some(grab()?.clone()),
            "--sa" => opts.sa = grab()?.parse().map_err(|e| format!("--sa: {e}"))?,
            "--refs" => opts.refs = grab()?.parse().map_err(|e| format!("--refs: {e}"))?,
            "--qp" => opts.qp = grab()?.parse().map_err(|e| format!("--qp: {e}"))?,
            "--frames" => opts.frames = grab()?.parse().map_err(|e| format!("--frames: {e}"))?,
            "--balancer" => opts.balancer = grab()?.to_lowercase(),
            "--metrics-out" => opts.metrics_out = Some(grab()?.clone()),
            "--trace-format" => opts.trace_format = grab()?.to_lowercase(),
            "--inject-fault" => opts.faults.push(grab()?.clone()),
            "--deadline-factor" => {
                opts.deadline_factor = Some(
                    grab()?
                        .parse()
                        .map_err(|e| format!("--deadline-factor: {e}"))?,
                )
            }
            "--kernels" => opts.kernels = Some(grab()?.to_lowercase()),
            "--flight-out" => opts.flight_out = Some(grab()?.clone()),
            "--html" => opts.html = true,
            "--out" => opts.out = Some(grab()?.clone()),
            "--threshold" => {
                opts.threshold = grab()?.parse().map_err(|e| format!("--threshold: {e}"))?
            }
            _ if a.starts_with("--") => return Err(format!("unknown option {a}")),
            _ => positional.push(a.clone()),
        }
    }
    Ok((opts, positional))
}

fn platform_of(name: &str) -> Result<(Platform, BalancerKind), String> {
    use feves::hetsim::profiles::*;
    Ok(match name {
        "syshk" => (Platform::sys_hk(), BalancerKind::Feves),
        "sysnf" => (Platform::sys_nf(), BalancerKind::Feves),
        "sysnff" => (Platform::sys_nff(), BalancerKind::Feves),
        "cpu-n" => (Platform::cpu_only(cpu_nehalem(), 4), BalancerKind::CpuOnly),
        "cpu-h" => (Platform::cpu_only(cpu_haswell(), 4), BalancerKind::CpuOnly),
        "gpu-f" => (
            Platform::gpu_only(gpu_fermi()),
            BalancerKind::SingleAccelerator(0),
        ),
        "gpu-k" => (
            Platform::gpu_only(gpu_kepler()),
            BalancerKind::SingleAccelerator(0),
        ),
        other => {
            return Err(format!(
                "unknown platform '{other}' (see `feves platforms`)"
            ))
        }
    })
}

/// Resolve `--kernels` (falling back to `FEVES_KERNELS` / the default),
/// force the runtime dispatch accordingly, and return the active kind.
fn apply_kernel_choice(opts: &Options) -> Result<feves::codec::KernelKind, String> {
    use feves::codec::kernels;
    let kind = match opts.kernels.as_deref() {
        Some("scalar") => kernels::KernelKind::Scalar,
        Some("fast") => kernels::KernelKind::Fast,
        Some(other) => return Err(format!("--kernels: unknown value '{other}' (scalar|fast)")),
        None => kernels::active_kind(),
    };
    kernels::force_kind(kind);
    Ok(kind)
}

fn config_of(opts: &Options, resolution: Resolution) -> Result<(Platform, EncoderConfig), String> {
    let kernel_kind = apply_kernel_choice(opts)?;
    let (mut platform, default_balancer) = match &opts.platform_file {
        Some(path) => {
            let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            (
                Platform::from_json(&json).map_err(|e| e.to_string())?,
                BalancerKind::Feves,
            )
        }
        None => platform_of(&opts.platform)?,
    };
    // Simulated CPU device times must reflect the kernels the host actually
    // runs (scalar loops are slower than the calibrated SWAR baseline).
    platform.devices = platform
        .devices
        .drain(..)
        .map(|d| feves::hetsim::profiles::scaled_for_kernels(d, kernel_kind))
        .collect();
    let params = EncodeParams {
        search_area: SearchArea(opts.sa),
        n_ref: opts.refs,
        qp: opts.qp,
        qp_intra: opts.qp.saturating_sub(1),
    };
    let mut cfg = EncoderConfig::full_hd(params);
    cfg.resolution = resolution;
    cfg.balancer = match opts.balancer.as_str() {
        "feves" => default_balancer,
        "proportional" => BalancerKind::Proportional,
        "equidistant" => BalancerKind::Equidistant,
        other => return Err(format!("unknown balancer '{other}'")),
    };
    cfg.faults = feves::ft::FaultSchedule::parse(&opts.faults)
        .map_err(|e| e.to_string())?
        .specs;
    if let Some(f) = opts.deadline_factor {
        cfg.deadline_factor = f;
    }
    Ok((platform, cfg))
}

fn cmd_platforms() {
    use feves::hetsim::profiles::*;
    println!("built-in platforms (paper §IV) — export one as a template with");
    println!("`feves export-platform syshk > my_platform.json`, edit it, and");
    println!("pass it anywhere via `--platform-file my_platform.json`:\n");
    for (key, p) in [
        ("syshk", Platform::sys_hk()),
        ("sysnf", Platform::sys_nf()),
        ("sysnff", Platform::sys_nff()),
        ("cpu-n", Platform::cpu_only(cpu_nehalem(), 4)),
        ("cpu-h", Platform::cpu_only(cpu_haswell(), 4)),
        ("gpu-f", Platform::gpu_only(gpu_fermi())),
        ("gpu-k", Platform::gpu_only(gpu_kepler())),
    ] {
        println!(
            "  {key:<7} {} — {} accelerator(s), {} CPU core(s)",
            p.name, p.n_accel, p.n_cores
        );
        for d in &p.devices {
            let mem = d
                .memory_bytes
                .map(|b| format!("{} MiB", b / 1024 / 1024))
                .unwrap_or_else(|| "host".into());
            println!("           - {:<16} [{mem}]", d.name);
        }
    }
}

/// Attach an in-memory recorder to `enc` when `--metrics-out` asked for one.
fn attach_recorder(enc: &mut FevesEncoder, opts: &Options) -> Option<Arc<MemoryRecorder>> {
    opts.metrics_out.as_ref().map(|_| {
        let rec = Arc::new(MemoryRecorder::new());
        enc.set_recorder(rec.clone());
        rec
    })
}

/// Write the recorder's JSONL dump to the `--metrics-out` path.
fn write_metrics(rec: &Option<Arc<MemoryRecorder>>, opts: &Options) -> Result<(), String> {
    if let (Some(rec), Some(path)) = (rec, &opts.metrics_out) {
        std::fs::write(path, rec.to_jsonl(false)).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("metrics written to {path}");
    }
    Ok(())
}

/// Turn on the flight recorder when `--flight-out` asked for one.
fn enable_flight(enc: &mut FevesEncoder, opts: &Options, frames: usize) {
    if opts.flight_out.is_some() {
        enc.enable_flight(frames.max(1));
    }
}

/// Write the flight ring as JSONL to the `--flight-out` path.
fn write_flight(enc: &FevesEncoder, opts: &Options) -> Result<(), String> {
    if let Some(path) = &opts.flight_out {
        let fl = enc.flight().expect("enabled whenever --flight-out is set");
        std::fs::write(path, fl.to_jsonl()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "flight log written to {path} ({} record(s), {} dropped)",
            fl.len(),
            fl.dropped()
        );
    }
    Ok(())
}

/// One-line fault-tolerance summary, printed whenever anything fired.
fn print_ft(enc: &FevesEncoder) {
    let ft = enc.ft_stats();
    if ft != FtStats::default() {
        println!(
            "faults: {} injected, {} detected, {} recovered | {} re-solve(s), {} MB row(s) re-dispatched",
            ft.injected, ft.detected, ft.recovered, ft.resolves, ft.redispatched_rows
        );
    }
}

fn print_rollups(report: &EncodeReport) {
    if let (Some(tau), Some(sched)) = (report.tau_tot_rollup(), report.sched_overhead_rollup()) {
        println!(
            "tau_tot        p50 {:>8.2} ms  p95 {:>8.2} ms  p99 {:>8.2} ms",
            tau.p50, tau.p95, tau.p99
        );
        println!(
            "sched overhead p50 {:>8.1} µs  p95 {:>8.1} µs  p99 {:>8.1} µs",
            sched.p50 * 1e3,
            sched.p95 * 1e3,
            sched.p99 * 1e3
        );
    }
}

fn cmd_simulate(opts: &Options) -> Result<(), String> {
    let (platform, cfg) = config_of(opts, Resolution::FULL_HD)?;
    let mut enc = FevesEncoder::new(platform, cfg).map_err(|e| e.to_string())?;
    let rec = attach_recorder(&mut enc, opts);
    enable_flight(&mut enc, opts, opts.frames);
    let report = enc.run_timing(opts.frames);
    println!(
        "{} | 1080p | SA {}x{} | {} RF | balancer {} | kernels {}",
        report.platform,
        opts.sa,
        opts.sa,
        opts.refs,
        opts.balancer,
        feves::codec::kernels::active_kind().name()
    );
    println!(
        "{:>6} {:>10} {:>8} {:>10} {:>12}",
        "frame", "time[ms]", "fps", "refs", "sched[µs]"
    );
    for f in report.inter_frames() {
        println!(
            "{:>6} {:>10.2} {:>8.1} {:>10} {:>12.1}",
            f.frame,
            f.tau_tot * 1e3,
            f.fps(),
            f.refs_used,
            f.sched_overhead * 1e6
        );
    }
    let skip = (opts.refs + 3).min(opts.frames.saturating_sub(1));
    let fps = report.steady_fps(skip);
    println!(
        "\nsteady state: {:.1} fps — {}",
        fps,
        if fps >= 25.0 {
            "REAL-TIME"
        } else {
            "below real-time"
        }
    );
    print_ft(&enc);
    print_rollups(&report);
    write_flight(&enc, opts)?;
    write_metrics(&rec, opts)
}

fn cmd_stats(opts: &Options) -> Result<(), String> {
    let (platform, cfg) = config_of(opts, Resolution::FULL_HD)?;
    let mut enc = FevesEncoder::new(platform, cfg).map_err(|e| e.to_string())?;
    let rec = Arc::new(MemoryRecorder::new());
    // Install globally too, so spans from the free functions (Algorithm 2,
    // the LP solve, the VCM build, the DAM planner) are captured.
    feves::obs::install(rec.clone());
    enc.set_recorder(rec.clone());
    enable_flight(&mut enc, opts, opts.frames);
    let report = enc.run_timing(opts.frames);
    println!(
        "{} | 1080p | SA {}x{} | {} RF | balancer {} | kernels {} | {} inter-frames\n",
        report.platform,
        opts.sa,
        opts.sa,
        opts.refs,
        opts.balancer,
        feves::codec::kernels::active_kind().name(),
        opts.frames
    );
    print!("{}", rec.render_stats());
    println!();
    print_ft(&enc);
    print_rollups(&report);
    write_flight(&enc, opts)?;
    if let Some(path) = &opts.metrics_out {
        std::fs::write(path, rec.to_jsonl(false)).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("metrics written to {path}");
    }
    Ok(())
}

fn cmd_trace(opts: &Options) -> Result<(), String> {
    let (platform, mut cfg) = config_of(opts, Resolution::FULL_HD)?;
    cfg.noise_amp = 0.0;
    let mut enc = FevesEncoder::new(platform, cfg).map_err(|e| e.to_string())?;
    let rec = attach_recorder(&mut enc, opts);
    for _ in 0..opts.refs + 4 {
        enc.encode_inter_timing();
    }
    let report = enc.encode_inter_timing();
    let trace = enc.last_trace().unwrap();
    match opts.trace_format.as_str() {
        "gantt" => {
            println!("{}", trace.render_gantt(100));
            println!(
                "steady frame: {:.2} ms ({:.1} fps)",
                report.tau_tot * 1e3,
                report.fps()
            );
        }
        "chrome" => {
            // Perfetto/chrome://tracing-loadable trace-event JSON.
            println!("{}", trace.to_chrome_trace().to_json());
        }
        other => return Err(format!("unknown trace format '{other}' (gantt|chrome)")),
    }
    write_metrics(&rec, opts)
}

fn cmd_encode(opts: &Options, input: &str, output: Option<&str>) -> Result<(), String> {
    let file = std::fs::File::open(input).map_err(|e| format!("{input}: {e}"))?;
    let mut reader = Y4mReader::new(BufReader::new(file)).map_err(|e| e.to_string())?;
    let header = reader.header();
    let frames = reader.read_all().map_err(|e| e.to_string())?;
    println!(
        "{input}: {}x{}, {} frames",
        header.resolution.width,
        header.resolution.height,
        frames.len()
    );
    let (platform, mut cfg) = config_of(opts, header.resolution)?;
    cfg.mode = ExecutionMode::Functional;
    let mut enc = FevesEncoder::new(platform, cfg).map_err(|e| e.to_string())?;
    let rec = attach_recorder(&mut enc, opts);
    enable_flight(&mut enc, opts, frames.len());

    let out_path = output
        .map(str::to_string)
        .unwrap_or_else(|| format!("{input}.recon.y4m"));
    let out = std::fs::File::create(&out_path).map_err(|e| format!("{out_path}: {e}"))?;
    let mut writer = Y4mWriter::new(BufWriter::new(out), header);

    let mut reports = Vec::new();
    for f in &frames {
        let rep = enc.encode_frame(f);
        let (y, u, v) = enc.last_reconstruction_yuv().unwrap();
        let mut rf = f.clone();
        rf.y_mut().copy_from(y);
        rf.u_mut().copy_from(u);
        rf.v_mut().copy_from(v);
        writer.write_frame(&rf).map_err(|e| e.to_string())?;
        println!(
            "frame {:>4} ({}) {:>9} bits  PSNR-Y {:>6.2} dB  sim {:>7.2} ms",
            rep.frame,
            if rep.is_intra { "I" } else { "P" },
            rep.bits.unwrap_or(0),
            rep.psnr_y.unwrap_or(f64::NAN),
            rep.tau_tot * 1e3
        );
        reports.push(rep);
    }
    writer.finish().map_err(|e| e.to_string())?;
    let report = EncodeReport::new(opts.platform.clone(), reports);
    println!(
        "\nwrote {out_path} — {} bits total, mean PSNR-Y {:.2} dB",
        report.total_bits(),
        report.mean_psnr().unwrap_or(f64::NAN)
    );
    write_flight(&enc, opts)?;
    write_metrics(&rec, opts)
}

fn cmd_report(opts: &Options, input: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))?;
    let records = parse_flight_jsonl(&text)?;
    // Display parameters match the framework defaults: the drift band for
    // the residual chart, a gentle EWMA for the per-device trend column.
    let band = DriftConfig::default().band_pct;
    let body = if opts.html {
        render_html(&records, 0.2, band)
    } else {
        AuditSummary::from_records(&records, 0.2).render_text()
    };
    match &opts.out {
        Some(path) => {
            std::fs::write(path, &body).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("report written to {path}");
        }
        None => print!("{body}"),
    }
    Ok(())
}

/// Returns whether the comparison passed (the caller maps `false` to a
/// non-zero exit without printing usage — a regression is not a CLI error).
fn cmd_compare(opts: &Options, baseline: &str, candidate: &str) -> Result<bool, String> {
    let base = std::fs::read_to_string(baseline).map_err(|e| format!("{baseline}: {e}"))?;
    let cand = std::fs::read_to_string(candidate).map_err(|e| format!("{candidate}: {e}"))?;
    let outcome = compare_reports(&base, &cand, opts.threshold)?;
    print!("{}", outcome.render_text(opts.threshold));
    Ok(outcome.passed())
}

fn usage() {
    eprintln!(
        "usage: feves <command> [options]\n\n\
         commands:\n\
         \u{20}  platforms                       list built-in platforms\n\
         \u{20}  export-platform [name]          dump a platform as JSON\n\
         \u{20}  simulate [options]              timing-only 1080p run\n\
         \u{20}  encode <in.y4m> [out] [options] functional Y4M encode\n\
         \u{20}  trace [options]                 steady-state frame Gantt\n\
         \u{20}  stats [options]                 run + print the metrics summary\n\
         \u{20}  report <flight.jsonl> [--html] [--out <path>]  audit a flight log\n\
         \u{20}  compare <baseline> <new> [--threshold <f>]     regression gate\n\n\
         options: --platform <name> | --platform-file <json>\n\
         \u{20}        --sa <n> --refs <n> --qp <n>\n\
         \u{20}        --frames <n> --balancer feves|proportional|equidistant\n\
         \u{20}        --metrics-out <path>            JSONL metrics dump\n\
         \u{20}        --flight-out <path>             JSONL flight-recorder dump\n\
         \u{20}        --trace-format gantt|chrome     Perfetto-loadable JSON\n\
         \u{20}        --inject-fault <dev>:<kind>@<frame>  inject a device fault\n\
         \u{20}            kinds: death@f | stall@f+k | slow@f+kxF | xfer@f | panic@f\n\
         \u{20}        --deadline-factor <f>           fault-detection slack (>1, default 3)"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        usage();
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "platforms" => {
            cmd_platforms();
            Ok(())
        }
        "export-platform" => {
            let name = rest.first().map(String::as_str).unwrap_or("syshk");
            platform_of(&name.to_lowercase()).map(|(p, _)| println!("{}", p.to_json()))
        }
        "simulate" => parse_options(rest).and_then(|(o, _)| cmd_simulate(&o)),
        "trace" => parse_options(rest).and_then(|(o, _)| cmd_trace(&o)),
        "stats" => parse_options(rest).and_then(|(o, _)| cmd_stats(&o)),
        "encode" => parse_options(rest).and_then(|(o, pos)| {
            let input = pos.first().ok_or("encode needs an input .y4m")?;
            cmd_encode(&o, input, pos.get(1).map(String::as_str))
        }),
        "report" => parse_options(rest).and_then(|(o, pos)| {
            let input = pos.first().ok_or("report needs a flight JSONL file")?;
            cmd_report(&o, input)
        }),
        "compare" => {
            match parse_options(rest).and_then(|(o, pos)| {
                let (Some(base), Some(cand)) = (pos.first(), pos.get(1)) else {
                    return Err("compare needs <baseline> <candidate>".into());
                };
                cmd_compare(&o, base, cand)
            }) {
                // A regression is a gate failure, not a usage error: exit
                // non-zero without the usage banner.
                Ok(passed) => {
                    return if passed {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::from(1)
                    }
                }
                Err(e) => Err(e),
            }
        }
        "--help" | "-h" | "help" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            ExitCode::from(1)
        }
    }
}
