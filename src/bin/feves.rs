//! `feves` — command-line front end.
//!
//! ```text
//! feves platforms                          list the built-in platforms
//! feves simulate [options]                 timing-only 1080p run (virtual clock)
//! feves encode <in.y4m> [out.y4m] [opts]   functional encode of a Y4M file
//! feves trace [options]                    print a steady-state frame Gantt
//! ```
//!
//! Options: `--platform syshk|sysnf|sysnff|cpu-n|cpu-h|gpu-f|gpu-k`,
//! `--sa <32|64|128|256>`, `--refs <1..16>`, `--qp <0..51>`,
//! `--frames <n>`, `--balancer feves|proportional|equidistant`.

use feves::core::prelude::*;
use feves::video::y4m::{Y4mReader, Y4mWriter};
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

struct Options {
    platform: String,
    platform_file: Option<String>,
    sa: u16,
    refs: usize,
    qp: u8,
    frames: usize,
    balancer: String,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            platform: "syshk".into(),
            platform_file: None,
            sa: 32,
            refs: 1,
            qp: 28,
            frames: 30,
            balancer: "feves".into(),
        }
    }
}

fn parse_options(args: &[String]) -> Result<(Options, Vec<String>), String> {
    let mut opts = Options::default();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut grab = || -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{a} needs a value"))
        };
        match a.as_str() {
            "--platform" => opts.platform = grab()?.to_lowercase(),
            "--platform-file" => opts.platform_file = Some(grab()?.clone()),
            "--sa" => opts.sa = grab()?.parse().map_err(|e| format!("--sa: {e}"))?,
            "--refs" => opts.refs = grab()?.parse().map_err(|e| format!("--refs: {e}"))?,
            "--qp" => opts.qp = grab()?.parse().map_err(|e| format!("--qp: {e}"))?,
            "--frames" => opts.frames = grab()?.parse().map_err(|e| format!("--frames: {e}"))?,
            "--balancer" => opts.balancer = grab()?.to_lowercase(),
            _ if a.starts_with("--") => return Err(format!("unknown option {a}")),
            _ => positional.push(a.clone()),
        }
    }
    Ok((opts, positional))
}

fn platform_of(name: &str) -> Result<(Platform, BalancerKind), String> {
    use feves::hetsim::profiles::*;
    Ok(match name {
        "syshk" => (Platform::sys_hk(), BalancerKind::Feves),
        "sysnf" => (Platform::sys_nf(), BalancerKind::Feves),
        "sysnff" => (Platform::sys_nff(), BalancerKind::Feves),
        "cpu-n" => (Platform::cpu_only(cpu_nehalem(), 4), BalancerKind::CpuOnly),
        "cpu-h" => (Platform::cpu_only(cpu_haswell(), 4), BalancerKind::CpuOnly),
        "gpu-f" => (
            Platform::gpu_only(gpu_fermi()),
            BalancerKind::SingleAccelerator(0),
        ),
        "gpu-k" => (
            Platform::gpu_only(gpu_kepler()),
            BalancerKind::SingleAccelerator(0),
        ),
        other => return Err(format!("unknown platform '{other}' (see `feves platforms`)")),
    })
}

fn config_of(opts: &Options, resolution: Resolution) -> Result<(Platform, EncoderConfig), String> {
    let (platform, default_balancer) = match &opts.platform_file {
        Some(path) => {
            let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            (Platform::from_json(&json)?, BalancerKind::Feves)
        }
        None => platform_of(&opts.platform)?,
    };
    let params = EncodeParams {
        search_area: SearchArea(opts.sa),
        n_ref: opts.refs,
        qp: opts.qp,
        qp_intra: opts.qp.saturating_sub(1),
    };
    let mut cfg = EncoderConfig::full_hd(params);
    cfg.resolution = resolution;
    cfg.balancer = match opts.balancer.as_str() {
        "feves" => default_balancer,
        "proportional" => BalancerKind::Proportional,
        "equidistant" => BalancerKind::Equidistant,
        other => return Err(format!("unknown balancer '{other}'")),
    };
    Ok((platform, cfg))
}

fn cmd_platforms() {
    use feves::hetsim::profiles::*;
    println!("built-in platforms (paper §IV) — export one as a template with");
    println!("`feves export-platform syshk > my_platform.json`, edit it, and");
    println!("pass it anywhere via `--platform-file my_platform.json`:\n");
    for (key, p) in [
        ("syshk", Platform::sys_hk()),
        ("sysnf", Platform::sys_nf()),
        ("sysnff", Platform::sys_nff()),
        ("cpu-n", Platform::cpu_only(cpu_nehalem(), 4)),
        ("cpu-h", Platform::cpu_only(cpu_haswell(), 4)),
        ("gpu-f", Platform::gpu_only(gpu_fermi())),
        ("gpu-k", Platform::gpu_only(gpu_kepler())),
    ] {
        println!("  {key:<7} {} — {} accelerator(s), {} CPU core(s)", p.name, p.n_accel, p.n_cores);
        for d in &p.devices {
            let mem = d
                .memory_bytes
                .map(|b| format!("{} MiB", b / 1024 / 1024))
                .unwrap_or_else(|| "host".into());
            println!("           - {:<16} [{mem}]", d.name);
        }
    }
}

fn cmd_simulate(opts: &Options) -> Result<(), String> {
    let (platform, cfg) = config_of(opts, Resolution::FULL_HD)?;
    let mut enc = FevesEncoder::new(platform, cfg)?;
    let report = enc.run_timing(opts.frames);
    println!(
        "{} | 1080p | SA {}x{} | {} RF | balancer {}",
        report.platform, opts.sa, opts.sa, opts.refs, opts.balancer
    );
    println!(
        "{:>6} {:>10} {:>8} {:>10} {:>12}",
        "frame", "time[ms]", "fps", "refs", "sched[µs]"
    );
    for f in report.inter_frames() {
        println!(
            "{:>6} {:>10.2} {:>8.1} {:>10} {:>12.1}",
            f.frame,
            f.tau_tot * 1e3,
            f.fps(),
            f.refs_used,
            f.sched_overhead * 1e6
        );
    }
    let skip = (opts.refs + 3).min(opts.frames.saturating_sub(1));
    let fps = report.steady_fps(skip);
    println!(
        "\nsteady state: {:.1} fps — {}",
        fps,
        if fps >= 25.0 { "REAL-TIME" } else { "below real-time" }
    );
    Ok(())
}

fn cmd_trace(opts: &Options) -> Result<(), String> {
    let (platform, mut cfg) = config_of(opts, Resolution::FULL_HD)?;
    cfg.noise_amp = 0.0;
    let mut enc = FevesEncoder::new(platform, cfg)?;
    for _ in 0..opts.refs + 4 {
        enc.encode_inter_timing();
    }
    let report = enc.encode_inter_timing();
    println!("{}", enc.last_trace().unwrap().render_gantt(100));
    println!("steady frame: {:.2} ms ({:.1} fps)", report.tau_tot * 1e3, report.fps());
    Ok(())
}

fn cmd_encode(opts: &Options, input: &str, output: Option<&str>) -> Result<(), String> {
    let file = std::fs::File::open(input).map_err(|e| format!("{input}: {e}"))?;
    let mut reader = Y4mReader::new(BufReader::new(file)).map_err(|e| e.to_string())?;
    let header = reader.header();
    let frames = reader.read_all().map_err(|e| e.to_string())?;
    println!(
        "{input}: {}x{}, {} frames",
        header.resolution.width,
        header.resolution.height,
        frames.len()
    );
    let (platform, mut cfg) = config_of(opts, header.resolution)?;
    cfg.mode = ExecutionMode::Functional;
    let mut enc = FevesEncoder::new(platform, cfg)?;

    let out_path = output
        .map(str::to_string)
        .unwrap_or_else(|| format!("{input}.recon.y4m"));
    let out = std::fs::File::create(&out_path).map_err(|e| format!("{out_path}: {e}"))?;
    let mut writer = Y4mWriter::new(BufWriter::new(out), header);

    let mut reports = Vec::new();
    for f in &frames {
        let rep = enc.encode_frame(f);
        let (y, u, v) = enc.last_reconstruction_yuv().unwrap();
        let mut rf = f.clone();
        rf.y_mut().copy_from(y);
        rf.u_mut().copy_from(u);
        rf.v_mut().copy_from(v);
        writer.write_frame(&rf).map_err(|e| e.to_string())?;
        println!(
            "frame {:>4} ({}) {:>9} bits  PSNR-Y {:>6.2} dB  sim {:>7.2} ms",
            rep.frame,
            if rep.is_intra { "I" } else { "P" },
            rep.bits.unwrap_or(0),
            rep.psnr_y.unwrap_or(f64::NAN),
            rep.tau_tot * 1e3
        );
        reports.push(rep);
    }
    writer.finish().map_err(|e| e.to_string())?;
    let report = EncodeReport::new(opts.platform.clone(), reports);
    println!(
        "\nwrote {out_path} — {} bits total, mean PSNR-Y {:.2} dB",
        report.total_bits(),
        report.mean_psnr().unwrap_or(f64::NAN)
    );
    Ok(())
}

fn usage() {
    eprintln!(
        "usage: feves <command> [options]\n\n\
         commands:\n\
         \u{20}  platforms                       list built-in platforms\n\
         \u{20}  export-platform [name]          dump a platform as JSON\n\
         \u{20}  simulate [options]              timing-only 1080p run\n\
         \u{20}  encode <in.y4m> [out] [options] functional Y4M encode\n\
         \u{20}  trace [options]                 steady-state frame Gantt\n\n\
         options: --platform <name> | --platform-file <json>\n\
         \u{20}        --sa <n> --refs <n> --qp <n>\n\
         \u{20}        --frames <n> --balancer feves|proportional|equidistant"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        usage();
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "platforms" => {
            cmd_platforms();
            Ok(())
        }
        "export-platform" => {
            let name = rest.first().map(String::as_str).unwrap_or("syshk");
            platform_of(&name.to_lowercase()).map(|(p, _)| println!("{}", p.to_json()))
        }
        "simulate" => parse_options(rest).and_then(|(o, _)| cmd_simulate(&o)),
        "trace" => parse_options(rest).and_then(|(o, _)| cmd_trace(&o)),
        "encode" => parse_options(rest).and_then(|(o, pos)| {
            let input = pos.first().ok_or("encode needs an input .y4m")?;
            cmd_encode(&o, input, pos.get(1).map(String::as_str))
        }),
        "--help" | "-h" | "help" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            ExitCode::from(1)
        }
    }
}
