//! `feves` — command-line front end.
//!
//! ```text
//! feves platforms                          list the built-in platforms
//! feves simulate [options]                 timing-only 1080p run (virtual clock)
//! feves encode <in.y4m> [out.y4m] [opts]   functional encode of a Y4M file
//! feves resume <ckpt|dir> [options]        continue a crashed encode session
//! feves verify <artifact|ckpt|spool>       validate checksums + container structure
//! feves serve <spool> [options]            supervised encode-farm daemon
//! feves submit <spool> <in.y4m> [out]      drop an encode job into a spool
//! feves drain <spool>                      ask the daemon to drain and exit
//! feves trace [options|trace.jsonl]        steady-state frame Gantt, or analyze
//!                                          a farm causal-trace log
//! feves stats [options|live.json]          run + print the metrics summary
//! feves top <live.json> [--once]           live dashboard over a snapshot file
//! feves report <flight.jsonl|live.json> [--html]  audit a flight log / live run
//! feves compare <baseline> <new>           regression gate over two summaries
//! ```
//!
//! Options: `--platform syshk|sysnf|sysnff|cpu-n|cpu-h|gpu-f|gpu-k`,
//! `--sa <32|64|128|256>`, `--refs <1..16>`, `--qp <0..51>`,
//! `--frames <n>`, `--balancer feves|proportional|equidistant`,
//! `--metrics-out <path>` (JSONL metrics dump),
//! `--trace-format gantt|chrome` (Chrome JSON loads in Perfetto),
//! `--inject-fault <spec>` (repeatable — e.g. `0:death@5`, `1:stall@3+4`,
//! `1:slow@3+4x10`, `0:xfer@7`, `0:panic@2`), `--deadline-factor <f>`,
//! `--kernels scalar|fast` (hot-kernel family; overrides `FEVES_KERNELS`;
//! CPU device profiles are re-scaled so simulated times match the choice),
//! `--checkpoint-every <k>` (encode: durable checkpoint every k frames),
//! `--checkpoint-dir <dir>`, `--checkpoint-keep <n>`,
//! `--live-out <path>` (periodic atomic live snapshots for `feves top`),
//! `--live-every <ms>` (snapshot period, default 250),
//! `--interval <ms>` / `--once` (`top` refresh control),
//! `--strict` (`top --once`: non-zero exit when telemetry events were
//! dropped), `--trace-out <path>` (`serve`: farm-wide causal-trace JSONL),
//! `--no-trace` (`submit`: opt this job out of farm tracing),
//! `--perfetto <out.json>` (`trace <log>`: convert to Perfetto JSON).
//!
//! Exit codes: 0 success, 1 runtime failure (one-line `error:` on stderr,
//! no usage banner) or a failed `compare` gate, 2 usage error (banner
//! shown).

use feves::core::prelude::*;
use feves::ft::ckpt::{crc32, crc32_update, fnv1a64, CKPT_MAGIC, CRC32_INIT};
use feves::ft::crash::crash_point_at;
use feves::ft::io::CrcFile;
use feves::obs::{
    compare_reports, compare_reports_metric, parse_flight_jsonl, render_html, write_atomic,
    BusController, LiveConfig, LiveSnapshot, MemoryRecorder, NoopRecorder, SessionScope,
};
use feves::video::frame::Frame;
use feves::video::y4m::{Y4mHeader, Y4mReader, Y4mWriter};
use std::io::{BufWriter, Seek, SeekFrom};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

/// A bad invocation (unknown command/flag, missing positional, malformed
/// flag value): one line on stderr, then the usage banner, exit 2.
/// Everything that goes wrong *after* a well-formed invocation is
/// `Runtime`: one line on stderr, no banner, exit 1.
enum CliError {
    Usage(String),
    Runtime(String),
}

impl CliError {
    fn usage(e: impl ToString) -> Self {
        CliError::Usage(e.to_string())
    }
    fn runtime(e: impl ToString) -> Self {
        CliError::Runtime(e.to_string())
    }
}

type CliResult<T = ()> = Result<T, CliError>;

struct Options {
    platform: String,
    platform_file: Option<String>,
    sa: u16,
    refs: usize,
    qp: u8,
    frames: usize,
    balancer: String,
    metrics_out: Option<String>,
    trace_format: String,
    faults: Vec<String>,
    deadline_factor: Option<f64>,
    kernels: Option<String>,
    flight_out: Option<String>,
    html: bool,
    out: Option<String>,
    threshold: f64,
    checkpoint_every: usize,
    checkpoint_dir: Option<String>,
    checkpoint_keep: usize,
    live_out: Option<String>,
    live_every_ms: u64,
    interval_ms: u64,
    once: bool,
    allow_stale: bool,
    queue_cap: usize,
    high_watermark: Option<usize>,
    max_inflight: usize,
    retry_budget: u32,
    poll_ms: u64,
    exit_when_idle: bool,
    id: Option<String>,
    chaos_kill_at: Option<usize>,
    chaos_device: Option<usize>,
    pipeline: bool,
    metric: Option<String>,
    trace_out: Option<String>,
    no_trace: bool,
    strict: bool,
    perfetto: Option<String>,
    disk_low_mb: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            platform: "syshk".into(),
            platform_file: None,
            sa: 32,
            refs: 1,
            qp: 28,
            frames: 30,
            balancer: "feves".into(),
            metrics_out: None,
            trace_format: "gantt".into(),
            faults: Vec::new(),
            deadline_factor: None,
            kernels: None,
            flight_out: None,
            html: false,
            out: None,
            threshold: 0.10,
            checkpoint_every: 0,
            checkpoint_dir: None,
            checkpoint_keep: 2,
            live_out: None,
            live_every_ms: 250,
            interval_ms: 1000,
            once: false,
            allow_stale: false,
            queue_cap: 64,
            high_watermark: None,
            max_inflight: 2,
            retry_budget: 2,
            poll_ms: 50,
            exit_when_idle: false,
            id: None,
            chaos_kill_at: None,
            chaos_device: None,
            pipeline: false,
            metric: None,
            trace_out: None,
            no_trace: false,
            strict: false,
            perfetto: None,
            disk_low_mb: 0,
        }
    }
}

fn parse_options(args: &[String]) -> Result<(Options, Vec<String>), String> {
    let mut opts = Options::default();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut grab =
            || -> Result<&String, String> { it.next().ok_or_else(|| format!("{a} needs a value")) };
        match a.as_str() {
            "--platform" => opts.platform = grab()?.to_lowercase(),
            "--platform-file" => opts.platform_file = Some(grab()?.clone()),
            "--sa" => opts.sa = grab()?.parse().map_err(|e| format!("--sa: {e}"))?,
            "--refs" => opts.refs = grab()?.parse().map_err(|e| format!("--refs: {e}"))?,
            "--qp" => opts.qp = grab()?.parse().map_err(|e| format!("--qp: {e}"))?,
            "--frames" => opts.frames = grab()?.parse().map_err(|e| format!("--frames: {e}"))?,
            "--balancer" => opts.balancer = grab()?.to_lowercase(),
            "--metrics-out" => opts.metrics_out = Some(grab()?.clone()),
            "--trace-format" => opts.trace_format = grab()?.to_lowercase(),
            "--inject-fault" => opts.faults.push(grab()?.clone()),
            "--deadline-factor" => {
                opts.deadline_factor = Some(
                    grab()?
                        .parse()
                        .map_err(|e| format!("--deadline-factor: {e}"))?,
                )
            }
            "--kernels" => opts.kernels = Some(grab()?.to_lowercase()),
            "--flight-out" => opts.flight_out = Some(grab()?.clone()),
            "--html" => opts.html = true,
            "--out" => opts.out = Some(grab()?.clone()),
            "--threshold" => {
                opts.threshold = grab()?.parse().map_err(|e| format!("--threshold: {e}"))?
            }
            "--checkpoint-every" => {
                opts.checkpoint_every = grab()?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?
            }
            "--checkpoint-dir" => opts.checkpoint_dir = Some(grab()?.clone()),
            "--checkpoint-keep" => {
                opts.checkpoint_keep = grab()?
                    .parse()
                    .map_err(|e| format!("--checkpoint-keep: {e}"))?
            }
            "--live-out" => opts.live_out = Some(grab()?.clone()),
            "--live-every" => {
                opts.live_every_ms = grab()?.parse().map_err(|e| format!("--live-every: {e}"))?;
                if opts.live_every_ms == 0 {
                    return Err("--live-every: must be >= 1 ms".into());
                }
            }
            "--interval" => {
                opts.interval_ms = grab()?.parse().map_err(|e| format!("--interval: {e}"))?;
                if opts.interval_ms == 0 {
                    return Err("--interval: must be >= 1 ms".into());
                }
            }
            "--once" => opts.once = true,
            "--allow-stale" => opts.allow_stale = true,
            "--queue-cap" => {
                opts.queue_cap = grab()?.parse().map_err(|e| format!("--queue-cap: {e}"))?
            }
            "--high-watermark" => {
                opts.high_watermark = Some(
                    grab()?
                        .parse()
                        .map_err(|e| format!("--high-watermark: {e}"))?,
                )
            }
            "--max-inflight" => {
                opts.max_inflight = grab()?
                    .parse()
                    .map_err(|e| format!("--max-inflight: {e}"))?
            }
            "--retry-budget" => {
                opts.retry_budget = grab()?
                    .parse()
                    .map_err(|e| format!("--retry-budget: {e}"))?
            }
            "--poll-ms" => {
                opts.poll_ms = grab()?.parse().map_err(|e| format!("--poll-ms: {e}"))?;
                if opts.poll_ms == 0 {
                    return Err("--poll-ms: must be >= 1 ms".into());
                }
            }
            "--exit-when-idle" => opts.exit_when_idle = true,
            "--id" => opts.id = Some(grab()?.clone()),
            "--chaos-kill-at" => {
                opts.chaos_kill_at = Some(
                    grab()?
                        .parse()
                        .map_err(|e| format!("--chaos-kill-at: {e}"))?,
                )
            }
            "--chaos-device" => {
                opts.chaos_device = Some(
                    grab()?
                        .parse()
                        .map_err(|e| format!("--chaos-device: {e}"))?,
                )
            }
            "--pipeline" => {
                opts.pipeline = match grab()?.to_lowercase().as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--pipeline: unknown mode '{other}' (on|off)")),
                }
            }
            "--metric" => opts.metric = Some(grab()?.clone()),
            "--trace-out" => opts.trace_out = Some(grab()?.clone()),
            "--no-trace" => opts.no_trace = true,
            "--strict" => opts.strict = true,
            "--perfetto" => opts.perfetto = Some(grab()?.clone()),
            "--disk-low-mb" => {
                opts.disk_low_mb = grab()?.parse().map_err(|e| format!("--disk-low-mb: {e}"))?
            }
            _ if a.starts_with("--") => return Err(format!("unknown option {a}")),
            _ => positional.push(a.clone()),
        }
    }
    Ok((opts, positional))
}

fn platform_of(name: &str) -> Result<(Platform, BalancerKind), String> {
    use feves::hetsim::profiles::*;
    Ok(match name {
        "syshk" => (Platform::sys_hk(), BalancerKind::Feves),
        "sysnf" => (Platform::sys_nf(), BalancerKind::Feves),
        "sysnff" => (Platform::sys_nff(), BalancerKind::Feves),
        "cpu-n" => (Platform::cpu_only(cpu_nehalem(), 4), BalancerKind::CpuOnly),
        "cpu-h" => (Platform::cpu_only(cpu_haswell(), 4), BalancerKind::CpuOnly),
        "gpu-f" => (
            Platform::gpu_only(gpu_fermi()),
            BalancerKind::SingleAccelerator(0),
        ),
        "gpu-k" => (
            Platform::gpu_only(gpu_kepler()),
            BalancerKind::SingleAccelerator(0),
        ),
        other => {
            return Err(format!(
                "unknown platform '{other}' (see `feves platforms`)"
            ))
        }
    })
}

/// Resolve a `--kernels` choice (falling back to `FEVES_KERNELS` / the
/// default), force the runtime dispatch accordingly, and return the kind.
fn apply_kernel_choice(kernels: Option<&str>) -> Result<feves::codec::KernelKind, String> {
    use feves::codec::kernels;
    let kind = match kernels {
        Some("scalar") => kernels::KernelKind::Scalar,
        Some("fast") => kernels::KernelKind::Fast,
        Some(other) => return Err(format!("--kernels: unknown value '{other}' (scalar|fast)")),
        None => kernels::active_kind(),
    };
    kernels::force_kind(kind);
    Ok(kind)
}

/// The flag set that defines an encode job, independent of whether it came
/// from the command line or from a checkpoint's [`ResumeContext`].
struct JobSpec<'a> {
    platform: &'a str,
    /// Platform JSON *content* (already read), when a file was given.
    platform_json: Option<&'a str>,
    sa: u16,
    refs: usize,
    qp: u8,
    balancer: &'a str,
    kernels: Option<&'a str>,
    faults: &'a [String],
    deadline_factor: Option<f64>,
    pipeline: bool,
}

impl<'a> JobSpec<'a> {
    fn from_options(opts: &'a Options, platform_json: Option<&'a str>) -> Self {
        JobSpec {
            platform: &opts.platform,
            platform_json,
            sa: opts.sa,
            refs: opts.refs,
            qp: opts.qp,
            balancer: &opts.balancer,
            kernels: opts.kernels.as_deref(),
            faults: &opts.faults,
            deadline_factor: opts.deadline_factor,
            pipeline: opts.pipeline,
        }
    }

    fn from_context(ctx: &'a ResumeContext) -> Self {
        JobSpec {
            platform: &ctx.platform,
            platform_json: ctx.platform_json.as_deref(),
            sa: ctx.sa,
            refs: ctx.refs,
            qp: ctx.qp,
            balancer: &ctx.balancer,
            kernels: ctx.kernels.as_deref(),
            faults: &ctx.faults,
            deadline_factor: ctx.deadline_factor,
            pipeline: ctx.pipeline,
        }
    }

    /// Build the platform + config this spec describes. This is the single
    /// reconstruction path for both fresh encodes and resumes, so a resumed
    /// session replays exactly the configuration of the original one.
    fn build(&self, resolution: Resolution) -> Result<(Platform, EncoderConfig), String> {
        let kernel_kind = apply_kernel_choice(self.kernels)?;
        let (mut platform, default_balancer) = match self.platform_json {
            Some(json) => (
                Platform::from_json(json).map_err(|e| e.to_string())?,
                BalancerKind::Feves,
            ),
            None => platform_of(self.platform)?,
        };
        // Simulated CPU device times must reflect the kernels the host
        // actually runs (scalar loops are slower than the SWAR baseline).
        platform.devices = platform
            .devices
            .drain(..)
            .map(|d| feves::hetsim::profiles::scaled_for_kernels(d, kernel_kind))
            .collect();
        let params = EncodeParams {
            search_area: SearchArea(self.sa),
            n_ref: self.refs,
            qp: self.qp,
            qp_intra: self.qp.saturating_sub(1),
        };
        let mut cfg = EncoderConfig::full_hd(params);
        cfg.resolution = resolution;
        cfg.balancer = match self.balancer {
            "feves" => default_balancer,
            "proportional" => BalancerKind::Proportional,
            "equidistant" => BalancerKind::Equidistant,
            other => return Err(format!("unknown balancer '{other}'")),
        };
        cfg.faults = feves::ft::FaultSchedule::parse(self.faults)
            .map_err(|e| e.to_string())?
            .specs;
        if let Some(f) = self.deadline_factor {
            cfg.deadline_factor = f;
        }
        cfg.pipeline = self.pipeline;
        Ok((platform, cfg))
    }
}

fn config_of(opts: &Options, resolution: Resolution) -> CliResult<(Platform, EncoderConfig)> {
    let json = match &opts.platform_file {
        Some(path) => Some(
            std::fs::read_to_string(path).map_err(|e| CliError::runtime(format!("{path}: {e}")))?,
        ),
        None => None,
    };
    JobSpec::from_options(opts, json.as_deref())
        .build(resolution)
        .map_err(CliError::usage)
}

fn cmd_platforms() {
    use feves::hetsim::profiles::*;
    println!("built-in platforms (paper §IV) — export one as a template with");
    println!("`feves export-platform syshk > my_platform.json`, edit it, and");
    println!("pass it anywhere via `--platform-file my_platform.json`:\n");
    for (key, p) in [
        ("syshk", Platform::sys_hk()),
        ("sysnf", Platform::sys_nf()),
        ("sysnff", Platform::sys_nff()),
        ("cpu-n", Platform::cpu_only(cpu_nehalem(), 4)),
        ("cpu-h", Platform::cpu_only(cpu_haswell(), 4)),
        ("gpu-f", Platform::gpu_only(gpu_fermi())),
        ("gpu-k", Platform::gpu_only(gpu_kepler())),
    ] {
        println!(
            "  {key:<7} {} — {} accelerator(s), {} CPU core(s)",
            p.name, p.n_accel, p.n_cores
        );
        for d in &p.devices {
            let mem = d
                .memory_bytes
                .map(|b| format!("{} MiB", b / 1024 / 1024))
                .unwrap_or_else(|| "host".into());
            println!("           - {:<16} [{mem}]", d.name);
        }
    }
}

/// Live telemetry for one CLI run. Created when `--metrics-out` or
/// `--live-out` asked for instrumentation: the encoder gets a named
/// [`SessionScope`]; with `--live-out` a bounded telemetry bus + drain
/// thread sits between the encode loop and the registry, and the drain
/// thread writes an atomic live snapshot every `--live-every` ms.
struct Telemetry {
    scope: Option<SessionScope>,
    ctl: Option<BusController>,
    live_out: Option<String>,
}

fn attach_telemetry(enc: &mut FevesEncoder, label: &str, opts: &Options) -> Telemetry {
    if opts.metrics_out.is_none() && opts.live_out.is_none() {
        return Telemetry {
            scope: None,
            ctl: None,
            live_out: None,
        };
    }
    let scope = feves::obs::hub().session(label);
    let ctl = opts.live_out.as_ref().map(|path| {
        let ctl = BusController::start(
            1 << 16,
            Some(LiveConfig {
                path: PathBuf::from(path),
                period: std::time::Duration::from_millis(opts.live_every_ms),
            }),
        );
        scope.attach_bus(ctl.bus());
        ctl
    });
    enc.set_scope(scope.clone());
    Telemetry {
        scope: Some(scope),
        ctl,
        live_out: opts.live_out.clone(),
    }
}

impl Telemetry {
    /// The session's aggregated registry (checkpoint metrics are recorded
    /// straight into it, bypassing the bus — they are not hot-path).
    fn memory(&self) -> Option<Arc<MemoryRecorder>> {
        self.scope.as_ref().map(|s| s.metrics())
    }

    /// Stop the bus (draining every accepted event and writing the final
    /// snapshot), then write `--metrics-out` from the settled registry.
    fn finish(mut self, metrics_out: &Option<String>) -> CliResult {
        if let Some(mut ctl) = self.ctl.take() {
            ctl.stop();
            let stats = ctl.bus().stats();
            if let Some(path) = &self.live_out {
                eprintln!(
                    "live snapshot written to {path} ({} event(s) published, {} dropped)",
                    stats.published, stats.dropped
                );
            }
        }
        if let Some(scope) = &self.scope {
            scope.sync_dropped();
        }
        write_metrics(&self.memory(), metrics_out)
    }
}

/// Attach an in-memory recorder to `enc` when `--metrics-out` asked for one.
fn attach_recorder(enc: &mut FevesEncoder, opts: &Options) -> Option<Arc<MemoryRecorder>> {
    opts.metrics_out.as_ref().map(|_| {
        let rec = Arc::new(MemoryRecorder::new());
        enc.set_recorder(rec.clone());
        rec
    })
}

/// Write the recorder's JSONL dump to the `--metrics-out` path (atomic:
/// a crash mid-write can never leave a torn metrics file).
fn write_metrics(rec: &Option<Arc<MemoryRecorder>>, metrics_out: &Option<String>) -> CliResult {
    if let (Some(rec), Some(path)) = (rec, metrics_out) {
        write_atomic(path, rec.to_jsonl(false))
            .map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
        eprintln!("metrics written to {path}");
    }
    Ok(())
}

/// Turn on the flight recorder when `--flight-out` asked for one.
fn enable_flight(enc: &mut FevesEncoder, flight_out: &Option<String>, frames: usize) {
    if flight_out.is_some() {
        enc.enable_flight(frames.max(1));
    }
}

/// Write the flight ring as JSONL to the `--flight-out` path (atomic).
fn write_flight(enc: &FevesEncoder, flight_out: &Option<String>) -> CliResult {
    if let Some(path) = &flight_out {
        let fl = enc
            .flight()
            .ok_or_else(|| CliError::runtime("flight recorder was never enabled".to_string()))?;
        write_atomic(path, fl.to_jsonl()).map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
        eprintln!(
            "flight log written to {path} ({} record(s), {} dropped)",
            fl.len(),
            fl.dropped()
        );
    }
    Ok(())
}

/// One-line fault-tolerance summary, printed whenever anything fired.
fn print_ft(enc: &FevesEncoder) {
    let ft = enc.ft_stats();
    if ft != FtStats::default() {
        println!(
            "faults: {} injected, {} detected, {} recovered | {} re-solve(s), {} MB row(s) re-dispatched",
            ft.injected, ft.detected, ft.recovered, ft.resolves, ft.redispatched_rows
        );
    }
}

fn print_rollups(report: &EncodeReport) {
    if let (Some(tau), Some(sched)) = (report.tau_tot_rollup(), report.sched_overhead_rollup()) {
        println!(
            "tau_tot        p50 {:>8.2} ms  p95 {:>8.2} ms  p99 {:>8.2} ms",
            tau.p50, tau.p95, tau.p99
        );
        println!(
            "sched overhead p50 {:>8.1} µs  p95 {:>8.1} µs  p99 {:>8.1} µs",
            sched.p50 * 1e3,
            sched.p95 * 1e3,
            sched.p99 * 1e3
        );
    }
}

fn cmd_simulate(opts: &Options) -> CliResult {
    let (platform, cfg) = config_of(opts, Resolution::FULL_HD)?;
    let mut enc = FevesEncoder::new(platform, cfg).map_err(CliError::runtime)?;
    let telemetry = attach_telemetry(&mut enc, "simulate", opts);
    enable_flight(&mut enc, &opts.flight_out, opts.frames);
    let report = enc.run_timing(opts.frames);
    println!(
        "{} | 1080p | SA {}x{} | {} RF | balancer {} | kernels {}",
        report.platform,
        opts.sa,
        opts.sa,
        opts.refs,
        opts.balancer,
        feves::codec::kernels::active_kind().name()
    );
    println!(
        "{:>6} {:>10} {:>8} {:>10} {:>12}",
        "frame", "time[ms]", "fps", "refs", "sched[µs]"
    );
    for f in report.inter_frames() {
        println!(
            "{:>6} {:>10.2} {:>8.1} {:>10} {:>12.1}",
            f.frame,
            f.tau_tot * 1e3,
            f.fps(),
            f.refs_used,
            f.sched_overhead * 1e6
        );
    }
    let skip = (opts.refs + 3).min(opts.frames.saturating_sub(1));
    let fps = report.steady_fps(skip);
    println!(
        "\nsteady state: {:.1} fps — {}",
        fps,
        if fps >= 25.0 {
            "REAL-TIME"
        } else {
            "below real-time"
        }
    );
    print_ft(&enc);
    print_rollups(&report);
    write_flight(&enc, &opts.flight_out)?;
    telemetry.finish(&opts.metrics_out)
}

fn cmd_stats(opts: &Options) -> CliResult {
    let (platform, cfg) = config_of(opts, Resolution::FULL_HD)?;
    let mut enc = FevesEncoder::new(platform, cfg).map_err(CliError::runtime)?;
    let rec = Arc::new(MemoryRecorder::new());
    // Install globally too, so spans from the free functions (Algorithm 2,
    // the LP solve, the VCM build, the DAM planner) are captured.
    feves::obs::install(rec.clone());
    enc.set_recorder(rec.clone());
    enable_flight(&mut enc, &opts.flight_out, opts.frames);
    let report = enc.run_timing(opts.frames);
    println!(
        "{} | 1080p | SA {}x{} | {} RF | balancer {} | kernels {} | {} inter-frames\n",
        report.platform,
        opts.sa,
        opts.sa,
        opts.refs,
        opts.balancer,
        feves::codec::kernels::active_kind().name(),
        opts.frames
    );
    print!("{}", rec.render_stats());
    println!();
    print_ft(&enc);
    print_rollups(&report);
    write_flight(&enc, &opts.flight_out)?;
    if let Some(path) = &opts.metrics_out {
        write_atomic(path, rec.to_jsonl(false))
            .map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
        eprintln!("metrics written to {path}");
    }
    Ok(())
}

fn cmd_trace(opts: &Options) -> CliResult {
    let (platform, mut cfg) = config_of(opts, Resolution::FULL_HD)?;
    cfg.noise_amp = 0.0;
    let mut enc = FevesEncoder::new(platform, cfg).map_err(CliError::runtime)?;
    let rec = attach_recorder(&mut enc, opts);
    for _ in 0..opts.refs + 4 {
        enc.encode_inter_timing();
    }
    let report = enc.encode_inter_timing();
    let trace = enc
        .last_trace()
        .ok_or_else(|| CliError::runtime("no trace recorded for the steady-state frame"))?;
    match opts.trace_format.as_str() {
        "gantt" => {
            println!("{}", trace.render_gantt(100));
            println!(
                "steady frame: {:.2} ms ({:.1} fps)",
                report.tau_tot * 1e3,
                report.fps()
            );
        }
        "chrome" => {
            // Perfetto/chrome://tracing-loadable trace-event JSON.
            println!("{}", trace.to_chrome_trace().to_json());
        }
        other => {
            return Err(CliError::usage(format!(
                "unknown trace format '{other}' (gantt|chrome)"
            )))
        }
    }
    write_metrics(&rec, &opts.metrics_out)
}

/// `feves trace <trace.jsonl>`: analyze a farm's causal-trace log (written
/// by `feves serve --trace-out`) — validate the span DAG, then either print
/// per-job critical-path attribution with what-if projections, or convert
/// the whole log to Perfetto-loadable JSON with `--perfetto <out.json>`.
fn cmd_trace_log(opts: &Options, input: &str) -> CliResult {
    let text =
        std::fs::read_to_string(input).map_err(|e| CliError::runtime(format!("{input}: {e}")))?;
    if !feves::obs::TraceLog::sniff(&text) {
        return Err(CliError::runtime(format!(
            "{input}: not a causal-trace log (missing feves-trace/1 header); \
             `feves serve --trace-out` writes one"
        )));
    }
    let log = feves::obs::TraceLog::parse_jsonl(&text)
        .map_err(|e| CliError::runtime(format!("{input}: {e}")))?;
    feves::obs::validate_dag(&log).map_err(|e| CliError::runtime(format!("{input}: {e}")))?;
    if let Some(path) = &opts.perfetto {
        write_atomic(path, log.to_perfetto().to_json())
            .map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
        eprintln!(
            "perfetto trace written to {path} ({} span(s), {} edge(s))",
            log.spans.len(),
            log.edges.len()
        );
        return Ok(());
    }
    let report = feves::obs::CriticalReport::from_log(&log).map_err(CliError::runtime)?;
    print!("{}", report.render_text(&log));
    Ok(())
}

/// Read a Y4M input entirely, returning its raw bytes' fingerprint plus the
/// parsed header and frames.
fn read_input(input: &str) -> CliResult<(u64, Y4mHeader, Vec<Frame>)> {
    let raw = std::fs::read(input).map_err(|e| CliError::runtime(format!("{input}: {e}")))?;
    let fp = fnv1a64(&raw);
    let mut reader = Y4mReader::new(std::io::Cursor::new(raw))
        .map_err(|e| CliError::runtime(format!("{input}: {e}")))?;
    let header = reader.header();
    let frames = reader
        .read_all()
        .map_err(|e| CliError::runtime(format!("{input}: {e}")))?;
    Ok((fp, header, frames))
}

/// Flush the Y4M buffer, fsync the output so the frame boundary is
/// durable, and commit a checkpoint claiming it.
fn commit_checkpoint(
    writer: &mut Y4mWriter<BufWriter<CrcFile>>,
    out_path: &str,
    enc: &mut FevesEncoder,
    mgr: &CheckpointManager,
    ctx: &mut ResumeContext,
    rec: &Option<Arc<MemoryRecorder>>,
    done: usize,
) -> CliResult<PathBuf> {
    writer
        .flush()
        .map_err(|e| CliError::runtime(format!("{out_path}: {e}")))?;
    let file = writer.get_ref().get_ref();
    file.sync()
        .map_err(|e| CliError::runtime(format!("{out_path}: {e}")))?;
    ctx.frames_done = done;
    ctx.out_bytes = file.bytes();
    // The checkpoint claims the CRC of the prefix it just made durable;
    // `feves resume` refuses a prefix that no longer hashes to it.
    ctx.out_crc = file.crc();
    // Checkpoints commit only at quiesced frame boundaries: drain any
    // in-flight pipeline generation before snapshotting.
    enc.quiesce_pipeline();
    let state = enc.snapshot();
    match rec {
        Some(r) => mgr.write(ctx, &state, r.as_ref()),
        None => mgr.write(ctx, &state, &NoopRecorder),
    }
    .map_err(|e| CliError::runtime(format!("checkpoint {}: {e}", mgr.dir().display())))
}

/// The encode main loop shared by `encode` and `resume`: encode
/// `frames[start..]`, stream reconstructions to `writer`, and (when a
/// manager is armed) durably checkpoint every `ctx.every` frames with the
/// output flushed + fsynced first, so `ctx.out_bytes` is a committed frame
/// boundary. `crash_point_at("frame", i)` fires before each frame for the
/// chaos harness.
///
/// A `SIGTERM`/`SIGINT` is honored at the next frame boundary: with
/// checkpointing armed, a durable checkpoint is committed right there
/// (whatever the cadence) and the loop returns with the `interrupted` flag
/// set so the caller can exit 0 without finishing the output; without
/// checkpointing, the interrupt is a runtime error.
#[allow(clippy::too_many_arguments)]
fn encode_loop(
    enc: &mut FevesEncoder,
    frames: &[Frame],
    start: usize,
    writer: &mut Y4mWriter<BufWriter<CrcFile>>,
    out_path: &str,
    ckpt: Option<(&CheckpointManager, &mut ResumeContext)>,
    rec: &Option<Arc<MemoryRecorder>>,
) -> CliResult<(Vec<feves::core::FrameReport>, bool)> {
    let mut reports = Vec::new();
    let mut ckpt = ckpt;
    for (i, f) in frames.iter().enumerate().skip(start) {
        if feves::serve::signal::shutdown_requested() {
            let Some((mgr, ctx)) = ckpt.as_mut() else {
                return Err(CliError::runtime(
                    "interrupted (no checkpointing armed; partial output left as-is)",
                ));
            };
            commit_checkpoint(writer, out_path, enc, mgr, ctx, rec, i)?;
            eprintln!("interrupted: checkpoint committed at frame {i}");
            return Ok((reports, true));
        }
        crash_point_at("frame", i as u64);
        let rep = enc.encode_frame(f);
        let (y, u, v) = enc
            .last_reconstruction_yuv()
            .ok_or_else(|| CliError::runtime("functional encode produced no reconstruction"))?;
        let mut rf = f.clone();
        rf.y_mut().copy_from(y);
        rf.u_mut().copy_from(u);
        rf.v_mut().copy_from(v);
        writer
            .write_frame(&rf)
            .map_err(|e| CliError::runtime(format!("{out_path}: {e}")))?;
        println!(
            "frame {:>4} ({}) {:>9} bits  PSNR-Y {:>6.2} dB  sim {:>7.2} ms",
            rep.frame,
            if rep.is_intra { "I" } else { "P" },
            rep.bits.unwrap_or(0),
            rep.psnr_y.unwrap_or(f64::NAN),
            rep.tau_tot * 1e3
        );
        reports.push(rep);
        let done = i + 1;
        if let Some((mgr, ctx)) = ckpt.as_mut() {
            if ctx.every > 0 && done.is_multiple_of(ctx.every) && done < frames.len() {
                let written = commit_checkpoint(writer, out_path, enc, mgr, ctx, rec, done)?;
                eprintln!("checkpoint {} (frame {done})", written.display());
            }
        }
    }
    Ok((reports, false))
}

fn print_encode_summary(
    opts_platform: &str,
    out_path: &str,
    reports: Vec<feves::core::FrameReport>,
) {
    let report = EncodeReport::new(opts_platform.to_string(), reports);
    println!(
        "\nwrote {out_path} — {} bits total, mean PSNR-Y {:.2} dB",
        report.total_bits(),
        report.mean_psnr().unwrap_or(f64::NAN)
    );
}

fn cmd_encode(opts: &Options, input: &str, output: Option<&str>) -> CliResult {
    feves::serve::signal::install_handlers();
    let (input_fp, header, frames) = read_input(input)?;
    println!(
        "{input}: {}x{}, {} frames",
        header.resolution.width,
        header.resolution.height,
        frames.len()
    );
    let platform_json = match &opts.platform_file {
        Some(path) => Some(
            std::fs::read_to_string(path).map_err(|e| CliError::runtime(format!("{path}: {e}")))?,
        ),
        None => None,
    };
    let (platform, mut cfg) = JobSpec::from_options(opts, platform_json.as_deref())
        .build(header.resolution)
        .map_err(CliError::usage)?;
    cfg.mode = ExecutionMode::Functional;
    let mut enc = FevesEncoder::new(platform, cfg).map_err(CliError::runtime)?;
    let telemetry = attach_telemetry(&mut enc, "encode", opts);
    let rec = telemetry.memory();
    enable_flight(&mut enc, &opts.flight_out, frames.len());

    let out_path = output
        .map(str::to_string)
        .unwrap_or_else(|| format!("{input}.recon.y4m"));
    let out = CrcFile::create(std::path::Path::new(&out_path))
        .map_err(|e| CliError::runtime(format!("{out_path}: {e}")))?;
    let mut writer = Y4mWriter::new(BufWriter::new(out), header);

    // Arm checkpointing when asked for.
    let mut ckpt_state = if opts.checkpoint_every > 0 {
        let dir = opts
            .checkpoint_dir
            .clone()
            .unwrap_or_else(|| format!("{out_path}.ckpt"));
        let ctx = ResumeContext {
            input: input.to_string(),
            output: out_path.clone(),
            platform: opts.platform.clone(),
            platform_json,
            sa: opts.sa,
            refs: opts.refs,
            qp: opts.qp,
            balancer: opts.balancer.clone(),
            kernels: opts.kernels.clone(),
            faults: opts.faults.clone(),
            deadline_factor: opts.deadline_factor,
            flight_out: opts.flight_out.clone(),
            metrics_out: opts.metrics_out.clone(),
            every: opts.checkpoint_every,
            keep: opts.checkpoint_keep,
            frames_done: 0,
            n_frames: frames.len(),
            out_bytes: 0,
            input_fingerprint: input_fp,
            pipeline: opts.pipeline,
            out_crc: 0,
        };
        Some((CheckpointManager::new(dir, opts.checkpoint_keep), ctx))
    } else {
        None
    };

    let (reports, interrupted) = encode_loop(
        &mut enc,
        &frames,
        0,
        &mut writer,
        &out_path,
        ckpt_state.as_mut().map(|(m, c)| (&*m, c)),
        &rec,
    )?;
    if interrupted {
        // The checkpoint is the committed state; the unfinished output
        // tail past `out_bytes` is `feves resume`'s to truncate.
        return telemetry.finish(&opts.metrics_out);
    }
    finish_output(writer, &out_path)?;
    print_encode_summary(&opts.platform, &out_path, reports);
    write_flight(&enc, &opts.flight_out)?;
    telemetry.finish(&opts.metrics_out)
}

/// Flush, fsync and close the output: the encode only reports success once
/// the artifact is durable.
fn finish_output(writer: Y4mWriter<BufWriter<CrcFile>>, out_path: &str) -> CliResult {
    let io_fail = |e: &dyn std::fmt::Display| CliError::runtime(format!("{out_path}: {e}"));
    let file = writer
        .finish()
        .map_err(|e| io_fail(&e))?
        .into_inner()
        .map_err(|e| io_fail(&e))?;
    file.sync().map_err(|e| io_fail(&e))?;
    Ok(())
}

fn cmd_resume(path: &str) -> CliResult {
    feves::serve::signal::install_handlers();
    // Accept either a checkpoint file or a checkpoint directory (newest
    // usable generation wins; corrupted generations are skipped with a
    // warning each).
    let p = PathBuf::from(path);
    let (ckpt_path, mut ctx, state) = if p.is_dir() {
        let (ckpt_path, ctx, state, warnings) =
            feves::core::load_latest(&p).map_err(CliError::runtime)?;
        for w in warnings {
            eprintln!("warning: {w}");
        }
        (ckpt_path, ctx, state)
    } else {
        let (ctx, state) = feves::core::load_checkpoint_file(&p).map_err(CliError::runtime)?;
        (p, ctx, state)
    };
    eprintln!(
        "resuming from {} — frame {}/{} of {}",
        ckpt_path.display(),
        ctx.frames_done,
        ctx.n_frames,
        ctx.input
    );

    // The input must be byte-identical to the one the checkpoint saw.
    let (input_fp, header, frames) = read_input(&ctx.input)?;
    if input_fp != ctx.input_fingerprint {
        return Err(CliError::runtime(FevesError::CheckpointStale(format!(
            "input {} changed since the checkpoint was taken",
            ctx.input
        ))));
    }
    if frames.len() != ctx.n_frames {
        return Err(CliError::runtime(FevesError::CheckpointStale(format!(
            "input {} has {} frames, checkpoint expects {}",
            ctx.input,
            frames.len(),
            ctx.n_frames
        ))));
    }

    // Truncate the output to the last committed frame boundary: everything
    // past `out_bytes` is a torn frame from the crash. The kept prefix must
    // still hash to what the checkpoint committed — resuming atop bit-rot
    // would launder corrupt bytes into a "complete" artifact.
    let raw = std::fs::read(&ctx.output)
        .map_err(|e| CliError::runtime(format!("{}: {e}", ctx.output)))?;
    let len = raw.len() as u64;
    if len < ctx.out_bytes {
        return Err(CliError::runtime(FevesError::CheckpointStale(format!(
            "output {} is {len} bytes, shorter than the {} committed by the checkpoint",
            ctx.output, ctx.out_bytes
        ))));
    }
    let prefix_crc_state = crc32_update(CRC32_INIT, &raw[..ctx.out_bytes as usize]);
    if ctx.frames_done > 0 && !prefix_crc_state != ctx.out_crc {
        return Err(CliError::runtime(FevesError::CheckpointCorrupt(format!(
            "output {}: committed prefix hashes to {:08x}, checkpoint recorded {:08x} \
             — the artifact rotted on disk; re-encode instead of resuming",
            ctx.output, !prefix_crc_state, ctx.out_crc
        ))));
    }
    drop(raw);
    let out_file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(&ctx.output)
        .map_err(|e| CliError::runtime(format!("{}: {e}", ctx.output)))?;
    out_file
        .set_len(ctx.out_bytes)
        .map_err(|e| CliError::runtime(format!("{}: {e}", ctx.output)))?;
    let mut out_file = out_file;
    out_file
        .seek(SeekFrom::End(0))
        .map_err(|e| CliError::runtime(format!("{}: {e}", ctx.output)))?;
    let out_file = CrcFile::resume(out_file, prefix_crc_state, ctx.out_bytes);

    // Rebuild the platform/config exactly as the original invocation did,
    // and restore the encoder without re-probing.
    let (platform, mut cfg) = JobSpec::from_context(&ctx)
        .build(header.resolution)
        .map_err(CliError::runtime)?;
    cfg.mode = ExecutionMode::Functional;
    // A frame-0 checkpoint (interrupted before any frame) committed no
    // output — not even the Y4M header — so a fresh start is identical
    // and sidesteps resuming into an empty file.
    let fresh = ctx.frames_done == 0;
    let mut enc = if fresh {
        FevesEncoder::new(platform, cfg).map_err(CliError::runtime)?
    } else {
        FevesEncoder::restore(platform, cfg, state).map_err(CliError::runtime)?
    };

    // Re-arm the session-level extras the checkpoint deliberately excludes.
    let rec = ctx.metrics_out.as_ref().map(|_| {
        let rec = Arc::new(MemoryRecorder::new());
        enc.set_recorder(rec.clone());
        rec
    });
    enable_flight(&mut enc, &ctx.flight_out, ctx.n_frames);
    if let Some(fl) = enc.flight_mut() {
        fl.mark_resume(ctx.frames_done);
    }

    let out_path = ctx.output.clone();
    let mut writer = if fresh {
        Y4mWriter::new(BufWriter::new(out_file), header)
    } else {
        Y4mWriter::resume(BufWriter::new(out_file), header)
    };
    let mgr = CheckpointManager::new(
        ckpt_path
            .parent()
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from(".")),
        ctx.keep,
    );
    let start = ctx.frames_done;
    let (reports, interrupted) = encode_loop(
        &mut enc,
        &frames,
        start,
        &mut writer,
        &out_path,
        Some((&mgr, &mut ctx)),
        &rec,
    )?;
    if interrupted {
        return write_metrics(&rec, &ctx.metrics_out);
    }
    finish_output(writer, &out_path)?;
    println!(
        "\nresumed at frame {start}; encoded {} more frame(s) into {out_path}",
        reports.len()
    );
    print_encode_summary(&ctx.platform, &out_path, reports);
    write_flight(&enc, &ctx.flight_out)?;
    write_metrics(&rec, &ctx.metrics_out)
}

/// `feves stats <live.json>`: render a live snapshot as the familiar
/// metrics table instead of running a fresh simulation.
fn cmd_stats_live(input: &str) -> CliResult {
    let text =
        std::fs::read_to_string(input).map_err(|e| CliError::runtime(format!("{input}: {e}")))?;
    let snap =
        LiveSnapshot::parse(&text).map_err(|e| CliError::runtime(format!("{input}: {e}")))?;
    print!("{}", snap.render_stats());
    Ok(())
}

/// `feves top <live.json>`: refreshing terminal dashboard over a running
/// encode's live snapshot file. `--once` renders a single frame (for
/// scripts and CI); otherwise redraws every `--interval` ms until killed.
fn cmd_top(opts: &Options, input: &str) -> CliResult {
    loop {
        // A snapshot that does not exist yet and one the OS refuses to read
        // are different operator situations: "no snapshot yet" means the
        // producer has not published (start it, or check --live-out); any
        // other error carries the OS's reason verbatim.
        let text = match std::fs::read_to_string(input) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(CliError::runtime(format!(
                    "{input}: no snapshot yet — is the producer running with --live-out?"
                )))
            }
            Err(e) => return Err(CliError::runtime(format!("{input}: {e}"))),
        };
        let snap =
            LiveSnapshot::parse(&text).map_err(|e| CliError::runtime(format!("{input}: {e}")))?;
        if opts.once {
            // Scripted checks must not mistake a dead producer for a live
            // one: a snapshot older than two publish periods means nobody
            // is writing it. `--allow-stale` opts out (post-mortem reads).
            if !opts.allow_stale {
                let limit = std::time::Duration::from_millis(opts.live_every_ms.saturating_mul(2));
                let age = std::fs::metadata(input)
                    .and_then(|m| m.modified())
                    .map_err(|e| CliError::runtime(format!("{input}: {e}")))?
                    .elapsed()
                    // A clock skewed into the future reads as fresh.
                    .unwrap_or_default();
                if age > limit {
                    return Err(CliError::runtime(format!(
                        "{input}: snapshot is stale ({}ms old > {}ms limit); \
                         the producer is gone — pass --allow-stale to render anyway",
                        age.as_millis(),
                        limit.as_millis()
                    )));
                }
            }
            print!("{}", snap.render_top());
            // Lossy telemetry means every rate and rollup below is a floor,
            // not a measurement; `--strict` lets CI refuse to trust it.
            if opts.strict && snap.dropped_events() > 0 {
                return Err(CliError::runtime(format!(
                    "{input}: {} telemetry event(s) dropped — snapshot rejected by --strict",
                    snap.dropped_events()
                )));
            }
            return Ok(());
        }
        // Clear + home, then one dashboard frame. The snapshot file is
        // written atomically, so a mid-write read can never tear.
        print!("\x1b[2J\x1b[H{}", snap.render_top());
        use std::io::Write;
        std::io::stdout().flush().ok();
        std::thread::sleep(std::time::Duration::from_millis(opts.interval_ms));
    }
}

/// Verify one durable file, sniffed by content: a checkpoint (magic
/// `FEVESCKP`, full binary decode), a Y4M artifact (container parse), or a
/// framed JSON control file (checksum trailer + schema). Returns a
/// human-readable description of what verified.
fn verify_file(p: &std::path::Path) -> CliResult<String> {
    let name = p.display();
    let bytes = std::fs::read(p).map_err(|e| CliError::runtime(format!("{name}: {e}")))?;
    if bytes.len() >= 8 && bytes[..8] == CKPT_MAGIC {
        let (ctx, _state) = feves::core::load_checkpoint_file(p)
            .map_err(|e| CliError::runtime(format!("{name}: {e}")))?;
        return Ok(format!(
            "checkpoint, frame {}/{}, output crc32 {:08x}",
            ctx.frames_done, ctx.n_frames, ctx.out_crc
        ));
    }
    if bytes.starts_with(b"YUV4MPEG2") {
        let mut reader = Y4mReader::new(std::io::Cursor::new(&bytes[..]))
            .map_err(|e| CliError::runtime(format!("{name}: {e}")))?;
        let frames = reader
            .read_all()
            .map_err(|e| CliError::runtime(format!("{name}: corrupt container: {e}")))?;
        return Ok(format!(
            "y4m artifact, {} frame(s), crc32 {:08x}",
            frames.len(),
            crc32(&bytes)
        ));
    }
    let text = String::from_utf8(bytes)
        .map_err(|_| CliError::runtime(format!("{name}: unrecognized binary file")))?;
    if !text.trim_start().starts_with('{') {
        return Err(CliError::runtime(format!("{name}: unrecognized file type")));
    }
    let framed = text
        .trim_end()
        .lines()
        .next_back()
        .is_some_and(|l| l.starts_with("#crc32="));
    let what = feves::serve::job::verify_control(&text)
        .map_err(|e| CliError::runtime(format!("{name}: {e}")))?;
    Ok(if framed {
        format!("{what}, checksum ok")
    } else {
        format!("legacy {what}, no checksum")
    })
}

/// `feves verify <artifact|ckpt|spool>`: validate the checksums and
/// container structure of everything the framework persists. A directory
/// is walked (checkpoint generations, spool specs, done records); every
/// corrupt file is reported as a typed `error:` line and the exit is 1.
fn cmd_verify(path: &str) -> CliResult {
    let p = std::path::Path::new(path);
    if p.is_file() {
        let what = verify_file(p)?;
        println!("{path}: ok ({what})");
        return Ok(());
    }
    if !p.is_dir() {
        return Err(CliError::runtime(format!(
            "{path}: no such file or directory"
        )));
    }
    // A checkpoint dir and a spool both verify the same way: every
    // checkpoint generation and control file inside must check out.
    // Quarantined files are skipped — they are already known corrupt.
    let mut targets: Vec<PathBuf> = Vec::new();
    let list = |dir: &std::path::Path, targets: &mut Vec<PathBuf>| -> CliResult {
        for entry in
            std::fs::read_dir(dir).map_err(|e| CliError::runtime(format!("{path}: {e}")))?
        {
            let entry = entry.map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
            let f = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            let known = name.ends_with(".ckpt") || name.ends_with(".json");
            if f.is_file() && known && !name.starts_with('.') {
                targets.push(f);
            }
        }
        Ok(())
    };
    list(p, &mut targets)?;
    let done = feves::serve::job::done_dir(p);
    if done.is_dir() {
        list(&done, &mut targets)?;
    }
    targets.sort();
    let mut failures = 0usize;
    for t in &targets {
        match verify_file(t) {
            Ok(what) => println!("{}: ok ({what})", t.display()),
            Err(CliError::Runtime(m)) | Err(CliError::Usage(m)) => {
                eprintln!("error: {m}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        return Err(CliError::runtime(format!(
            "{path}: {failures} of {} file(s) failed verification",
            targets.len()
        )));
    }
    if targets.is_empty() {
        return Err(CliError::runtime(format!("{path}: nothing to verify")));
    }
    println!("{path}: ok ({} file(s) verified)", targets.len());
    Ok(())
}

/// `feves serve <spool>`: run the supervised encode farm until drained
/// (SIGTERM/SIGINT or `feves drain`) or, with `--exit-when-idle`, until
/// the spool runs dry.
fn cmd_serve(opts: &Options, spool: &str) -> CliResult {
    let cfg = feves::serve::FarmConfig {
        spool: PathBuf::from(spool),
        platform: opts.platform.clone(),
        queue_cap: opts.queue_cap,
        high_watermark: opts.high_watermark.unwrap_or(opts.queue_cap),
        max_inflight: opts.max_inflight,
        retry_budget: opts.retry_budget,
        poll_ms: opts.poll_ms,
        checkpoint_every: if opts.checkpoint_every > 0 {
            opts.checkpoint_every
        } else {
            feves::serve::DEFAULT_CHECKPOINT_EVERY
        },
        exit_when_idle: opts.exit_when_idle,
        live_out: opts.live_out.clone().map(PathBuf::from),
        live_every_ms: opts.live_every_ms,
        trace_out: opts.trace_out.clone().map(PathBuf::from),
        disk_low_bytes: opts.disk_low_mb.saturating_mul(1024 * 1024),
        ..feves::serve::FarmConfig::default()
    };
    eprintln!(
        "serving {spool} — platform {}, queue {} (reject at {}), {} in flight, retry budget {}",
        cfg.platform, cfg.queue_cap, cfg.high_watermark, cfg.max_inflight, cfg.retry_budget
    );
    let report = feves::serve::farm::run(cfg).map_err(CliError::runtime)?;
    println!(
        "farm: {} completed, {} failed, {} rejected, {} retried, {} checkpointed ({})",
        report.completed,
        report.failed,
        report.rejected,
        report.retried,
        report.checkpointed,
        if report.drained { "drained" } else { "idle" }
    );
    Ok(())
}

/// `feves submit <spool> <in.y4m> [out]`: atomically drop a job spec into
/// a farm's spool directory.
fn cmd_submit(opts: &Options, spool: &str, input: &str, output: Option<&str>) -> CliResult {
    let output = output
        .map(str::to_string)
        .unwrap_or_else(|| format!("{input}.recon.y4m"));
    let id = opts.id.clone().unwrap_or_else(|| {
        // Deterministic id from the job's identity, so re-submitting the
        // same work overwrites rather than duplicates.
        format!(
            "job-{:016x}",
            fnv1a64(format!("{input}->{output}").as_bytes())
        )
    });
    let job = feves::serve::JobSpec {
        id,
        input: input.to_string(),
        output,
        platform: opts.platform.clone(),
        sa: opts.sa,
        refs: opts.refs,
        qp: opts.qp,
        balancer: opts.balancer.clone(),
        faults: opts.faults.clone(),
        checkpoint_every: opts.checkpoint_every,
        chaos_kill_at: opts.chaos_kill_at,
        chaos_device: opts.chaos_device,
        pipeline: opts.pipeline,
        trace: !opts.no_trace,
    };
    let path = feves::serve::job::write_job(std::path::Path::new(spool), &job)
        .map_err(CliError::runtime)?;
    println!("submitted {} ({})", job.id, path.display());
    Ok(())
}

/// `feves drain <spool>`: ask the daemon serving this spool to stop
/// admitting, checkpoint in-flight jobs, and exit.
fn cmd_drain(spool: &str) -> CliResult {
    let spool = std::path::Path::new(spool);
    std::fs::create_dir_all(feves::serve::job::ctl_dir(spool))
        .map_err(|e| CliError::runtime(format!("{}: {e}", spool.display())))?;
    let marker = feves::serve::job::drain_marker(spool);
    write_atomic(&marker, "drain\n")
        .map_err(|e| CliError::runtime(format!("{}: {e}", marker.display())))?;
    println!("drain requested ({})", marker.display());
    Ok(())
}

/// True when `text` looks like a live snapshot document rather than a
/// flight-recorder JSONL.
fn is_live_snapshot(text: &str) -> bool {
    text.trim_start().starts_with('{') && text.contains("\"feves-live/")
}

fn cmd_report(opts: &Options, input: &str) -> CliResult {
    let text =
        std::fs::read_to_string(input).map_err(|e| CliError::runtime(format!("{input}: {e}")))?;
    // The same tooling works mid-run: pointed at a live snapshot instead of
    // a flight log, `report` summarizes the in-progress session.
    if is_live_snapshot(&text) {
        if opts.html {
            return Err(CliError::usage(
                "--html reports need a flight log; live snapshots render as text only",
            ));
        }
        let snap =
            LiveSnapshot::parse(&text).map_err(|e| CliError::runtime(format!("{input}: {e}")))?;
        let body = snap.render_summary();
        match &opts.out {
            Some(path) => {
                write_atomic(path, &body).map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
                eprintln!("report written to {path}");
            }
            None => print!("{body}"),
        }
        return Ok(());
    }
    let records = parse_flight_jsonl(&text).map_err(CliError::runtime)?;
    // Display parameters match the framework defaults: the drift band for
    // the residual chart, a gentle EWMA for the per-device trend column.
    let band = DriftConfig::default().band_pct;
    let body = if opts.html {
        render_html(&records, 0.2, band)
    } else {
        AuditSummary::from_records(&records, 0.2).render_text()
    };
    match &opts.out {
        Some(path) => {
            write_atomic(path, &body).map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
            eprintln!("report written to {path}");
        }
        None => print!("{body}"),
    }
    Ok(())
}

/// Returns whether the comparison passed (the caller maps `false` to a
/// non-zero exit without printing usage — a regression is not a CLI error).
fn cmd_compare(opts: &Options, baseline: &str, candidate: &str) -> CliResult<bool> {
    let base = std::fs::read_to_string(baseline)
        .map_err(|e| CliError::runtime(format!("{baseline}: {e}")))?;
    let cand = std::fs::read_to_string(candidate)
        .map_err(|e| CliError::runtime(format!("{candidate}: {e}")))?;
    let outcome = match &opts.metric {
        Some(filter) => compare_reports_metric(&base, &cand, opts.threshold, filter),
        None => compare_reports(&base, &cand, opts.threshold),
    }
    .map_err(CliError::runtime)?;
    print!("{}", outcome.render_text(opts.threshold));
    Ok(outcome.passed())
}

fn usage() {
    eprintln!(
        "usage: feves <command> [options]\n\n\
         commands:\n\
         \u{20}  platforms                       list built-in platforms\n\
         \u{20}  export-platform [name]          dump a platform as JSON\n\
         \u{20}  simulate [options]              timing-only 1080p run\n\
         \u{20}  encode <in.y4m> [out] [options] functional Y4M encode\n\
         \u{20}  resume <ckpt|dir>               continue a crashed encode session\n\
         \u{20}  verify <artifact|ckpt|spool>    validate checksums + container structure\n\
         \u{20}  trace [options|trace.jsonl]     steady-state frame Gantt, or\n\
         \u{20}    [--perfetto <out.json>]       critical-path analysis of a farm\n\
         \u{20}                                  causal-trace log (serve --trace-out)\n\
         \u{20}  stats [options|live.json]       run + print the metrics summary,\n\
         \u{20}                                  or tabulate a live snapshot\n\
         \u{20}  serve <spool> [options]         supervised encode-farm daemon\n\
         \u{20}  submit <spool> <in.y4m> [out]   drop an encode job into a spool\n\
         \u{20}  drain <spool>                   ask the daemon to drain and exit\n\
         \u{20}  top <live.json> [--once] [--strict] [--interval <ms>]  live dashboard\n\
         \u{20}  report <flight.jsonl|live.json> [--html] [--out <path>]  audit a\n\
         \u{20}                                  flight log or a live snapshot\n\
         \u{20}  compare <baseline> <new> [--threshold <f>] [--metric <filter>]  regression gate\n\n\
         options: --platform <name> | --platform-file <json>\n\
         \u{20}        --sa <n> --refs <n> --qp <n>\n\
         \u{20}        --frames <n> --balancer feves|proportional|equidistant\n\
         \u{20}        --metrics-out <path>            JSONL metrics dump\n\
         \u{20}        --flight-out <path>             JSONL flight-recorder dump\n\
         \u{20}        --trace-format gantt|chrome     Perfetto-loadable JSON\n\
         \u{20}        --inject-fault <dev>:<kind>@<frame>  inject a device fault\n\
         \u{20}            kinds: death@f | stall@f+k | slow@f+kxF | xfer@f | panic@f\n\
         \u{20}        --deadline-factor <f>           fault-detection slack (>1, default 3)\n\
         \u{20}        --checkpoint-every <k>          encode: durable checkpoint every k frames\n\
         \u{20}        --checkpoint-dir <dir>          checkpoint directory (default <out>.ckpt)\n\
         \u{20}        --checkpoint-keep <n>           generations to retain (default 2)\n\
         \u{20}        --live-out <path>               stream atomic live snapshots (feves top)\n\
         \u{20}        --live-every <ms>               live snapshot period (default 250)\n\
         \u{20}        --interval <ms>                 top: refresh period (default 1000)\n\
         \u{20}        --once                          top: render one frame and exit\n\
         \u{20}        --allow-stale                   top --once: render even a stale snapshot\n\
         \u{20}        --strict                        top --once: exit non-zero when the\n\
         \u{20}                                        snapshot dropped telemetry events\n\
         \u{20}        --queue-cap <n>                 serve: admission queue bound (default 64)\n\
         \u{20}        --high-watermark <n>            serve: reject line (default queue cap)\n\
         \u{20}        --max-inflight <n>              serve: concurrent sessions (default 2)\n\
         \u{20}        --retry-budget <n>              serve: retries per job (default 2)\n\
         \u{20}        --poll-ms <ms>                  serve: spool poll period (default 50)\n\
         \u{20}        --exit-when-idle                serve: exit when the spool runs dry\n\
         \u{20}        --disk-low-mb <n>               serve: free-space low watermark; below\n\
         \u{20}                                        it admission pauses and cadence\n\
         \u{20}                                        checkpoints shed (0 = off)\n\
         \u{20}        --trace-out <path>              serve: farm-wide causal-trace JSONL\n\
         \u{20}                                        (analyze with `feves trace <path>`)\n\
         \u{20}        --no-trace                      submit: opt this job out of tracing\n\
         \u{20}        --id <name>                     submit: explicit job id\n\
         \u{20}        --chaos-kill-at <frame>         submit: panic the session there (attempt 0)\n\
         \u{20}        --chaos-device <dev>            submit: device a chaos kill is blamed on\n\
         \u{20}        --pipeline on|off               overlap inter-frame phases across devices\n\
         \u{20}                                        (scheduling only; output bytes identical)\n\
         \u{20}        --metric <filter>               compare: gate only metrics matching the\n\
         \u{20}                                        comma-separated filter list, e.g.\n\
         \u{20}                                        idle_pct,critical_path_us"
    );
}

fn parse_cli(args: &[String]) -> Result<(Options, Vec<String>), CliError> {
    parse_options(args).map_err(CliError::Usage)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        usage();
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result: CliResult = match cmd.as_str() {
        "platforms" => {
            cmd_platforms();
            Ok(())
        }
        "export-platform" => {
            let name = rest.first().map(String::as_str).unwrap_or("syshk");
            platform_of(&name.to_lowercase())
                .map(|(p, _)| println!("{}", p.to_json()))
                .map_err(CliError::Usage)
        }
        "simulate" => parse_cli(rest).and_then(|(o, _)| cmd_simulate(&o)),
        "trace" => parse_cli(rest).and_then(|(o, pos)| match pos.first() {
            // With a positional file, analyze that causal-trace log instead
            // of simulating a steady-state frame.
            Some(path) => cmd_trace_log(&o, path),
            None => cmd_trace(&o),
        }),
        "stats" => parse_cli(rest).and_then(|(o, pos)| match pos.first() {
            // With a positional file, render that live snapshot instead of
            // running a fresh simulation.
            Some(path) => cmd_stats_live(path),
            None => cmd_stats(&o),
        }),
        "top" => parse_cli(rest).and_then(|(o, pos)| {
            let input = pos
                .first()
                .ok_or_else(|| CliError::usage("top needs a live snapshot file (--live-out)"))?;
            cmd_top(&o, input)
        }),
        "encode" => parse_cli(rest).and_then(|(o, pos)| {
            let input = pos
                .first()
                .ok_or_else(|| CliError::usage("encode needs an input .y4m"))?;
            cmd_encode(&o, input, pos.get(1).map(String::as_str))
        }),
        "serve" => parse_cli(rest).and_then(|(o, pos)| {
            let spool = pos
                .first()
                .ok_or_else(|| CliError::usage("serve needs a spool directory"))?;
            cmd_serve(&o, spool)
        }),
        "submit" => parse_cli(rest).and_then(|(o, pos)| {
            let (Some(spool), Some(input)) = (pos.first(), pos.get(1)) else {
                return Err(CliError::usage("submit needs <spool> <in.y4m> [out]"));
            };
            cmd_submit(&o, spool, input, pos.get(2).map(String::as_str))
        }),
        "drain" => parse_cli(rest).and_then(|(_, pos)| {
            let spool = pos
                .first()
                .ok_or_else(|| CliError::usage("drain needs a spool directory"))?;
            cmd_drain(spool)
        }),
        "resume" => parse_cli(rest).and_then(|(_, pos)| {
            let path = pos
                .first()
                .ok_or_else(|| CliError::usage("resume needs a checkpoint file or directory"))?;
            cmd_resume(path)
        }),
        "verify" => parse_cli(rest).and_then(|(_, pos)| {
            let path = pos.first().ok_or_else(|| {
                CliError::usage("verify needs an artifact, checkpoint, spool file or directory")
            })?;
            cmd_verify(path)
        }),
        "report" => parse_cli(rest).and_then(|(o, pos)| {
            let input = pos
                .first()
                .ok_or_else(|| CliError::usage("report needs a flight JSONL file"))?;
            cmd_report(&o, input)
        }),
        "compare" => {
            match parse_cli(rest).and_then(|(o, pos)| {
                let (Some(base), Some(cand)) = (pos.first(), pos.get(1)) else {
                    return Err(CliError::usage("compare needs <baseline> <candidate>"));
                };
                cmd_compare(&o, base, cand)
            }) {
                // A regression is a gate failure, not a CLI error: exit
                // non-zero without the usage banner.
                Ok(passed) => {
                    return if passed {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::from(1)
                    }
                }
                Err(e) => Err(e),
            }
        }
        "--help" | "-h" | "help" => {
            usage();
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command '{other}'"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(e)) => {
            eprintln!("error: {e}");
            usage();
            ExitCode::from(2)
        }
        Err(CliError::Runtime(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}
