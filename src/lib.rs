#![warn(missing_docs)]
//! FEVES umbrella crate: re-exports the public API of all workspace crates.
//!
//! See [`feves_core::FevesEncoder`] for the main entry point.

pub use feves_codec as codec;
pub use feves_core as core;
pub use feves_ft as ft;
pub use feves_hetsim as hetsim;
pub use feves_lp as lp;
pub use feves_obs as obs;
pub use feves_sched as sched;
pub use feves_serve as serve;
pub use feves_video as video;

pub use feves_core::prelude::*;
