//! Data Access Management (paper §III-B-2, Fig 5).
//!
//! Tracks which stripes of the shared buffers (CF, RF, SF, MVs) are resident
//! on each accelerator, converts a frame's [`Distribution`] into the exact
//! per-device transfer volumes of Fig 4/5 — including the data-reuse Δ
//! top-ups and the deferred-SF σ/σʳ split — and carries the σʳ remainder
//! into the next frame. CPU cores address host memory directly and never
//! appear in a transfer plan.

use feves_codec::workload::bytes_per_row;
use feves_ft::FevesError;
use feves_hetsim::platform::Platform;
use feves_sched::Distribution;

/// Per-device transfer volumes for one frame, in MB rows, keyed by the
/// Fig 4 stream names.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeviceTransfers {
    /// `RF` — previously reconstructed reference uploaded before ME/INT
    /// (zero for the device that produced the RF).
    pub rf_up: usize,
    /// `SF(RF−1)→SME` — the deferred SF remainder from the previous frame.
    pub sigma_prev_up: usize,
    /// `CF→ME` — current-frame stripe for this device's ME share.
    pub cf_me_up: usize,
    /// `SF(RF)→SME` — freshly interpolated SF stripe sent to the host.
    pub sf_down: usize,
    /// `CF→SME` — extra CF rows for the SME stripe (`Δ^m`).
    pub cf_sme_up: usize,
    /// `MV→SME` (device→host) — ME vectors published to the host.
    pub mv_me_down: usize,
    /// `SF(RF)→SME` (host→device) — extra SF rows for SME (`Δ^l`).
    pub sf_dl_up: usize,
    /// `MV→SME` (host→device) — missing ME vectors (`Δ^m`).
    pub mv_dm_up: usize,
    /// `MV→MC` (device→host) — refined SME vectors published.
    pub mv_sme_down: usize,
    /// `SF→SME+1` — eager part of the remaining SF (`σ`).
    pub sigma_up: usize,
    /// `CF→MC` — remaining CF rows for the R\* device.
    pub cf_mc_up: usize,
    /// `SF→MC` — remaining SF rows for the R\* device.
    pub sf_mc_up: usize,
    /// `MV→MC` (host→device) — SME vectors computed elsewhere.
    pub mv_mc_up: usize,
    /// `RF+1` — reconstructed frame returned to the host.
    pub rf_down: usize,
}

impl DeviceTransfers {
    /// Total uploaded rows (diagnostics).
    pub fn total_up(&self) -> usize {
        self.rf_up
            + self.sigma_prev_up
            + self.cf_me_up
            + self.cf_sme_up
            + self.sf_dl_up
            + self.mv_dm_up
            + self.sigma_up
            + self.cf_mc_up
            + self.sf_mc_up
            + self.mv_mc_up
    }

    /// Total downloaded rows (diagnostics).
    pub fn total_down(&self) -> usize {
        self.sf_down + self.mv_me_down + self.mv_sme_down + self.rf_down
    }

    /// Total bytes this plan moves over PCIe for a frame of `width` luma
    /// pixels, weighting each stream's rows by its per-row footprint
    /// (observability: feeds the `dam.bytes_*` metrics).
    pub fn bytes(&self, width: usize) -> u64 {
        let rf = bytes_per_row::rf(width) as u64;
        let sf = bytes_per_row::sf(width) as u64;
        let cf = bytes_per_row::cf(width) as u64;
        let mv = bytes_per_row::mv(width) as u64;
        let rf_rows = (self.rf_up + self.rf_down) as u64;
        let sf_rows =
            (self.sigma_prev_up + self.sf_down + self.sf_dl_up + self.sigma_up + self.sf_mc_up)
                as u64;
        let cf_rows = (self.cf_me_up + self.cf_sme_up + self.cf_mc_up) as u64;
        let mv_rows = (self.mv_me_down + self.mv_dm_up + self.mv_sme_down + self.mv_mc_up) as u64;
        rf_rows * rf + sf_rows * sf + cf_rows * cf + mv_rows * mv
    }
}

/// Total bytes a whole per-device transfer plan moves over PCIe for a frame
/// of `width` luma pixels.
pub fn transfer_bytes(plan: &[DeviceTransfers], width: usize) -> u64 {
    plan.iter().map(|t| t.bytes(width)).sum()
}

/// Number of RF/SF buffer generations the DAM double-buffers for the
/// inter-frame pipeline (mirrors [`crate::pipeline::MAX_IN_FLIGHT`]).
pub const DAM_SLOTS: usize = 2;

/// The Data Access Management block.
#[derive(Clone, Debug)]
pub struct DataManager {
    n_rows: usize,
    n_devices: usize,
    /// σʳ carried from the previous frame, per device.
    sigma_rem: Vec<usize>,
    frames_committed: usize,
    /// Pipeline generation currently owning each double-buffer slot
    /// (`gen % DAM_SLOTS`). Both `None` at a quiesced frame boundary.
    slot_owner: [Option<u64>; DAM_SLOTS],
}

impl DataManager {
    /// Fresh state: nothing resident, nothing deferred.
    pub fn new(n_rows: usize, n_devices: usize) -> Self {
        DataManager {
            n_rows,
            n_devices,
            sigma_rem: vec![0; n_devices],
            frames_committed: 0,
            slot_owner: [None; DAM_SLOTS],
        }
    }

    /// Claim the RF/SF buffer slot for pipeline generation `gen`. Errors if
    /// the slot is still owned by a live generation — two in-flight frames
    /// must never alias buffers, and a third frame cannot start until the
    /// oldest is reaped.
    pub fn begin_generation(&mut self, gen: u64) -> Result<(), FevesError> {
        let slot = (gen % DAM_SLOTS as u64) as usize;
        if let Some(owner) = self.slot_owner[slot] {
            return Err(FevesError::Accounting(format!(
                "DAM slot {slot} still owned by generation {owner}; \
                 cannot admit generation {gen}"
            )));
        }
        if self.slot_owner.iter().flatten().any(|&o| o == gen) {
            return Err(FevesError::Accounting(format!(
                "generation {gen} already owns a DAM slot"
            )));
        }
        self.slot_owner[slot] = Some(gen);
        Ok(())
    }

    /// Release generation `gen`'s buffer slot (at reap or quiesce).
    pub fn end_generation(&mut self, gen: u64) -> Result<(), FevesError> {
        let slot = (gen % DAM_SLOTS as u64) as usize;
        if self.slot_owner[slot] != Some(gen) {
            return Err(FevesError::Accounting(format!(
                "generation {gen} does not own DAM slot {slot}"
            )));
        }
        self.slot_owner[slot] = None;
        Ok(())
    }

    /// Generations currently owning buffer slots (diagnostics/tests).
    pub fn active_generations(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.slot_owner.iter().flatten().copied().collect();
        v.sort_unstable();
        v
    }

    /// σʳ of the previous frame (the Algorithm 2 `σ^{r−1}` input).
    pub fn sigma_rem_prev(&self) -> &[usize] {
        &self.sigma_rem
    }

    /// Frames committed so far.
    pub fn frames_committed(&self) -> usize {
        self.frames_committed
    }

    /// Mutable buffer-residency state for checkpointing: `(σʳ per device,
    /// frames committed)`. Geometry is rebuilt from the config on resume.
    pub fn snapshot(&self) -> (Vec<usize>, usize) {
        (self.sigma_rem.clone(), self.frames_committed)
    }

    /// Overwrite the mutable state from a [`snapshot`]. Fails when the σʳ
    /// vector disagrees with the device count or exceeds the frame height.
    ///
    /// [`snapshot`]: DataManager::snapshot
    pub fn restore_state(
        &mut self,
        sigma_rem: Vec<usize>,
        frames_committed: usize,
    ) -> Result<(), FevesError> {
        if sigma_rem.len() != self.n_devices {
            return Err(FevesError::CheckpointStale(format!(
                "DAM snapshot is for {} devices, platform has {}",
                sigma_rem.len(),
                self.n_devices
            )));
        }
        if sigma_rem.iter().any(|&s| s > self.n_rows) {
            return Err(FevesError::CheckpointCorrupt(
                "DAM σʳ exceeds the frame's row count".into(),
            ));
        }
        self.sigma_rem = sigma_rem;
        self.frames_committed = frames_committed;
        Ok(())
    }

    /// Worst-case resident bytes on an accelerator for a frame of `width`
    /// luma pixels, `n_rows` MB rows and `n_ref` reference frames
    /// (paper §III-B-2: the Data Access Management owns device memory).
    ///
    /// Residency: every RF and its complete SF for all `n_ref` references
    /// (FSBM and SME may touch any of them), the CF, the two MV buffers,
    /// and — for the R\* device — the reconstruction and prediction scratch.
    pub fn device_footprint_bytes(
        n_rows: usize,
        width: usize,
        n_ref: usize,
        is_rstar: bool,
    ) -> u64 {
        let rf = (bytes_per_row::rf(width) * n_rows) as u64;
        let sf = (bytes_per_row::sf(width) * n_rows) as u64;
        let cf = (bytes_per_row::cf(width) * n_rows) as u64;
        let mv = (bytes_per_row::mv(width) * n_rows * 2) as u64;
        (rf + sf) * n_ref as u64 + cf + mv + if is_rstar { 2 * rf + cf } else { 0 }
    }

    /// Validate that every accelerator of `platform` can hold the buffers
    /// this configuration needs (devices with unknown capacity pass).
    pub fn check_memory(
        platform: &Platform,
        n_rows: usize,
        width: usize,
        n_ref: usize,
    ) -> Result<(), FevesError> {
        for (d, dev) in platform.devices.iter().enumerate() {
            if !dev.is_accelerator() {
                continue;
            }
            let Some(cap) = dev.memory_bytes else {
                continue;
            };
            // Any accelerator may be selected for R*: budget for the worst.
            let need = Self::device_footprint_bytes(n_rows, width, n_ref, true);
            if need > cap {
                return Err(FevesError::Memory(format!(
                    "device {d} ({}) needs {:.0} MiB for {n_ref} reference                      frames at width {width} but has {:.0} MiB",
                    dev.name,
                    need as f64 / (1024.0 * 1024.0),
                    cap as f64 / (1024.0 * 1024.0)
                )));
            }
        }
        Ok(())
    }

    /// Compute the per-device transfer volumes for `dist`.
    ///
    /// `is_accelerator[d]` distinguishes devices that need transfers;
    /// `data_reuse = false` disables the Δ/σ reuse machinery (each consumer
    /// fetches its full stripes — the ablation baseline).
    #[allow(clippy::needless_range_loop)] // parallel per-device arrays
    pub fn plan(
        &self,
        dist: &Distribution,
        is_accelerator: &[bool],
        data_reuse: bool,
    ) -> Vec<DeviceTransfers> {
        let _span = feves_obs::span!(feves_obs::global(), "dam.plan");
        assert_eq!(is_accelerator.len(), self.n_devices);
        assert_eq!(dist.n_devices(), self.n_devices);
        let n = self.n_rows;
        let mut out = vec![DeviceTransfers::default(); self.n_devices];
        for d in 0..self.n_devices {
            if !is_accelerator[d] {
                continue;
            }
            let t = &mut out[d];
            let is_rstar = dist.rstar_device == d;
            t.cf_me_up = dist.me[d];
            t.sf_down = dist.interp[d];
            t.mv_me_down = dist.me[d];
            // The R* device consumes its own refined MVs locally in MC
            // (eq. 8 has no SME-MV download for GPU₁); everyone else
            // publishes them to the host for the R* device to fetch.
            t.mv_sme_down = if is_rstar { 0 } else { dist.sme[d] };
            if data_reuse {
                t.cf_sme_up = dist.delta_m[d];
                t.sf_dl_up = dist.delta_l[d];
                t.mv_dm_up = dist.delta_m[d];
            } else {
                // No reuse: the SME stripe's inputs are fetched wholesale.
                t.cf_sme_up = dist.sme[d];
                t.sf_dl_up = dist.sme[d];
                t.mv_dm_up = dist.sme[d];
            }
            if is_rstar {
                // Fig 5(b): complete CF and SF arrive during τ2, the
                // missing SME MVs after τ2, RF goes home at the end.
                if data_reuse {
                    t.cf_mc_up = n.saturating_sub(dist.me[d] + dist.delta_m[d]);
                    t.sf_mc_up = n.saturating_sub(dist.interp[d] + dist.delta_l[d]);
                    t.mv_mc_up = n.saturating_sub(dist.sme[d]);
                } else {
                    t.cf_mc_up = n;
                    t.sf_mc_up = n;
                    t.mv_mc_up = n;
                }
                t.rf_down = n;
                // The R* device needs no RF upload (it reconstructs it) and
                // no σ bookkeeping (it receives the full SF for MC).
            } else {
                t.rf_up = n;
                t.sigma_prev_up = self.sigma_rem[d];
                if data_reuse {
                    t.sigma_up = dist.sigma[d];
                } else {
                    // Without deferral the whole missing SF ships now.
                    t.sigma_up = dist.sigma[d] + dist.sigma_rem[d];
                }
            }
        }
        out
    }

    /// Commit a frame: carry its σʳ into the next frame and check SF
    /// conservation (each non-R\* accelerator ends the frame with
    /// `l + Δl + σ` resident rows and `σʳ` outstanding, summing to `N`).
    #[allow(clippy::needless_range_loop)] // parallel per-device arrays
    pub fn commit(
        &mut self,
        dist: &Distribution,
        is_accelerator: &[bool],
        data_reuse: bool,
    ) -> Result<(), FevesError> {
        for d in 0..self.n_devices {
            if !is_accelerator[d] || dist.rstar_device == d {
                continue;
            }
            let resident = dist.interp[d] + dist.delta_l[d] + dist.sigma[d];
            let outstanding = dist.sigma_rem[d];
            if resident + outstanding != self.n_rows {
                return Err(FevesError::Accounting(format!(
                    "device {d}: SF accounting broken: {resident} resident + \
                     {outstanding} deferred != {}",
                    self.n_rows
                )));
            }
        }
        for d in 0..self.n_devices {
            self.sigma_rem[d] = if is_accelerator[d] && dist.rstar_device != d && data_reuse {
                dist.sigma_rem[d]
            } else {
                0
            };
        }
        self.frames_committed += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accel_mask(n: usize, accels: usize) -> Vec<bool> {
        (0..n).map(|d| d < accels).collect()
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn cpu_cores_never_transfer() {
        let dam = DataManager::new(68, 5);
        let dist = Distribution::equidistant(68, 5, 0);
        let plan = dam.plan(&dist, &accel_mask(5, 1), true);
        for d in 1..5 {
            assert_eq!(
                plan[d],
                DeviceTransfers::default(),
                "core {d} must be silent"
            );
        }
        assert!(plan[0].total_up() > 0);
    }

    #[test]
    fn rstar_device_fetches_remainders_and_returns_rf() {
        let dam = DataManager::new(68, 5);
        let dist = Distribution::equidistant(68, 5, 0);
        let plan = dam.plan(&dist, &accel_mask(5, 1), true);
        let t = &plan[0];
        assert_eq!(t.rf_up, 0, "R* device reconstructs the RF itself");
        assert_eq!(t.rf_down, 68);
        // Equidistant over 5 devices: ~14 rows own; remainder ~54.
        assert_eq!(t.cf_mc_up, 68 - dist.me[0] - dist.delta_m[0]);
        assert_eq!(t.sf_mc_up, 68 - dist.interp[0] - dist.delta_l[0]);
        assert_eq!(t.mv_mc_up, 68 - dist.sme[0]);
    }

    #[test]
    fn non_rstar_accelerator_gets_rf_and_sigma() {
        let dam = DataManager::new(68, 6);
        // Two accelerators: device 0 runs R*, device 1 does not.
        let dist = Distribution::equidistant(68, 6, 0);
        let plan = dam.plan(&dist, &accel_mask(6, 2), true);
        let t = &plan[1];
        assert_eq!(t.rf_up, 68);
        assert_eq!(t.rf_down, 0);
        assert_eq!(t.sigma_up, dist.sigma[1]);
        assert_eq!(t.cf_mc_up, 0);
    }

    #[test]
    fn sigma_remainder_carries_to_next_frame() {
        let mut dam = DataManager::new(68, 6);
        let me = feves_video::geometry::equidistant(68, 6);
        // Cap device 1's eager SF budget to force a remainder.
        let mut budget = vec![usize::MAX; 6];
        budget[1] = 5;
        let dist =
            feves_sched::Distribution::from_rows(me.clone(), me.clone(), me, 0, &budget, None);
        assert!(dist.sigma_rem[1] > 0, "test needs a real remainder");
        dam.commit(&dist, &accel_mask(6, 2), true).unwrap();
        assert_eq!(dam.sigma_rem_prev()[1], dist.sigma_rem[1]);
        // Next frame's plan ships the deferred rows first.
        let plan = dam.plan(&dist, &accel_mask(6, 2), true);
        assert_eq!(plan[1].sigma_prev_up, dist.sigma_rem[1]);
    }

    #[test]
    fn no_reuse_mode_ships_full_stripes() {
        let dam = DataManager::new(68, 5);
        let dist = Distribution::equidistant(68, 5, 0);
        let reuse = dam.plan(&dist, &accel_mask(5, 1), true);
        let no_reuse = dam.plan(&dist, &accel_mask(5, 1), false);
        assert!(no_reuse[0].total_up() >= reuse[0].total_up());
        // Equidistant ⇒ Δ = 0, so reuse mode uploads nothing extra for SME.
        assert_eq!(reuse[0].cf_sme_up, 0);
        assert_eq!(no_reuse[0].cf_sme_up, dist.sme[0]);
    }

    #[test]
    fn transfer_bytes_reflects_data_reuse() {
        let dam = DataManager::new(68, 5);
        let dist = Distribution::equidistant(68, 5, 0);
        let reuse = dam.plan(&dist, &accel_mask(5, 1), true);
        let no_reuse = dam.plan(&dist, &accel_mask(5, 1), false);
        let b_reuse = transfer_bytes(&reuse, 1920);
        let b_no_reuse = transfer_bytes(&no_reuse, 1920);
        assert!(b_reuse > 0);
        assert!(
            b_no_reuse > b_reuse,
            "reuse must save bytes: {b_no_reuse} vs {b_reuse}"
        );
        // CPU cores contribute nothing.
        assert_eq!(reuse[1].bytes(1920), 0);
    }

    #[test]
    fn generation_slots_are_exclusive_and_fifo_friendly() {
        let mut dam = DataManager::new(68, 5);
        assert!(dam.active_generations().is_empty());
        dam.begin_generation(0).unwrap();
        dam.begin_generation(1).unwrap();
        assert_eq!(dam.active_generations(), vec![0, 1]);
        // Generation 2 maps to slot 0, still owned by generation 0.
        assert!(dam.begin_generation(2).is_err());
        dam.end_generation(0).unwrap();
        dam.begin_generation(2).unwrap();
        assert_eq!(dam.active_generations(), vec![1, 2]);
        // Releasing a generation that owns nothing is an error.
        assert!(dam.end_generation(0).is_err());
        dam.end_generation(1).unwrap();
        dam.end_generation(2).unwrap();
        assert!(dam.active_generations().is_empty());
    }

    #[test]
    fn commit_checks_sf_conservation() {
        let mut dam = DataManager::new(68, 6);
        let mut dist = Distribution::equidistant(68, 6, 0);
        dist.sigma_rem[1] = 99; // corrupt the accounting
        assert!(dam.commit(&dist, &accel_mask(6, 2), true).is_err());
    }
}

#[cfg(test)]
mod memory_tests {
    use super::*;
    use feves_hetsim::platform::Platform;
    use feves_video::geometry::Resolution;

    #[test]
    fn footprint_scales_with_refs_and_resolution() {
        let hd1 = DataManager::device_footprint_bytes(68, 1920, 1, false);
        let hd4 = DataManager::device_footprint_bytes(68, 1920, 4, false);
        assert!(hd4 > 3 * hd1 && hd4 < 5 * hd1);
        let uhd1 = DataManager::device_footprint_bytes(136, 3840, 1, false);
        assert!(uhd1 > 3 * hd1, "4K must need ~4x the 1080p footprint");
        // The R* device carries extra scratch.
        assert!(DataManager::device_footprint_bytes(68, 1920, 1, true) > hd1);
    }

    #[test]
    fn paper_configurations_fit_their_cards() {
        // 1080p with up to 8 RFs fits both the 1.5 GB Fermi and 3 GB Kepler.
        for p in [Platform::sys_nf(), Platform::sys_nff(), Platform::sys_hk()] {
            DataManager::check_memory(&p, 68, 1920, 8).unwrap();
        }
    }

    #[test]
    fn uhd_with_many_refs_overflows_fermi() {
        // 4K × 16 RFs: each SF is ~133 MiB; 16 of them blow past 1.5 GB.
        let p = Platform::sys_nf(); // GTX 580, 1.5 GB
        let res = Resolution::new(3840, 2160).padded();
        let n_rows = res.height / 16; // 135
        let r = DataManager::check_memory(&p, n_rows, 3840, 16);
        assert!(r.is_err(), "4K/16RF must not fit a 1.5 GB card");
        // The Kepler card (3 GB) still fits.
        DataManager::check_memory(&Platform::sys_hk(), n_rows, 3840, 16).unwrap();
    }
}
