//! An "oracle" load balancer: local search directly against the simulated
//! makespan.
//!
//! Algorithm 2 optimizes an LP *model* of the schedule; this balancer
//! instead evaluates candidate distributions by actually building the frame
//! graph and simulating it, hill-climbing row moves until no single-row
//! move improves the makespan. It is far too slow for the paper's 2 ms
//! budget (hundreds of simulations per frame) — its purpose is to quantify
//! how close the LP gets to a schedule-level optimum (the `ablations` and
//! `scaling` experiment binaries report the gap).

use crate::dam::DataManager;
use crate::vcm::{build_frame_graph, FrameGeometry};
use feves_codec::types::EncodeParams;
use feves_hetsim::noise::Deterministic;
use feves_hetsim::platform::Platform;
use feves_hetsim::timeline::simulate;
use feves_sched::{BalanceInput, Distribution, FevesBalancer, LoadBalancer};

/// Hill-climbing oracle around the LP seed.
pub struct OracleBalancer {
    /// Parameters used to size the work units (the steady-state config).
    pub params: EncodeParams,
    /// Frame geometry.
    pub geometry: FrameGeometry,
    /// Maximum improvement sweeps.
    pub max_sweeps: usize,
    inner: FevesBalancer,
}

impl OracleBalancer {
    /// Create an oracle for the given encode parameters and geometry.
    pub fn new(params: EncodeParams, geometry: FrameGeometry, max_sweeps: usize) -> Self {
        OracleBalancer {
            params,
            geometry,
            max_sweeps,
            inner: FevesBalancer::default(),
        }
    }

    /// Simulated makespan of a candidate distribution.
    pub fn evaluate(&self, dist: &Distribution, platform: &Platform) -> f64 {
        let dam = DataManager::new(self.geometry.n_rows, platform.len());
        let mask: Vec<bool> = platform
            .devices
            .iter()
            .map(|d| d.is_accelerator())
            .collect();
        let plan = dam.plan(dist, &mask, true);
        let fg = build_frame_graph(dist, &plan, platform, &self.params, self.geometry, true);
        simulate(
            &fg.graph,
            platform,
            &platform.nominal_speeds(),
            &mut Deterministic,
        )
        .map(|s| s.makespan)
        .unwrap_or(f64::INFINITY)
    }

    /// Try every single-row move in one of the three vectors; return the
    /// best improving neighbour, if any.
    fn best_neighbour(
        &self,
        dist: &Distribution,
        platform: &Platform,
        current: f64,
    ) -> Option<(Distribution, f64)> {
        let n = dist.n_devices();
        let budget = vec![usize::MAX; n];
        let mut best: Option<(Distribution, f64)> = None;
        for vector in 0..3usize {
            let rows = match vector {
                0 => &dist.me,
                1 => &dist.interp,
                _ => &dist.sme,
            };
            for from in 0..n {
                if rows[from] == 0 {
                    continue;
                }
                for to in 0..n {
                    if to == from {
                        continue;
                    }
                    let mut me = dist.me.clone();
                    let mut li = dist.interp.clone();
                    let mut sm = dist.sme.clone();
                    let target = match vector {
                        0 => &mut me,
                        1 => &mut li,
                        _ => &mut sm,
                    };
                    target[from] -= 1;
                    target[to] += 1;
                    let cand =
                        Distribution::from_rows(me, li, sm, dist.rstar_device, &budget, None);
                    let t = self.evaluate(&cand, platform);
                    if t < current - 1e-9 && best.as_ref().is_none_or(|(_, bt)| t < *bt) {
                        best = Some((cand, t));
                    }
                }
            }
        }
        best
    }
}

impl LoadBalancer for OracleBalancer {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn distribute(&mut self, input: &BalanceInput<'_>) -> Distribution {
        let seed = self.inner.distribute(input);
        let mut current = seed;
        let mut t = self.evaluate(&current, input.platform);
        for _ in 0..self.max_sweeps {
            match self.best_neighbour(&current, input.platform, t) {
                Some((better, bt)) => {
                    current = better;
                    t = bt;
                }
                None => break,
            }
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feves_codec::types::SearchArea;
    use feves_sched::{Ewma, PerfChar};

    fn geometry() -> FrameGeometry {
        FrameGeometry {
            mb_cols: 120,
            n_rows: 68,
            width: 1920,
        }
    }

    fn params() -> EncodeParams {
        EncodeParams {
            search_area: SearchArea(32),
            n_ref: 1,
            ..Default::default()
        }
    }

    /// Characterize from profiles (equidistant-probe equivalent).
    fn perfchar(platform: &Platform) -> PerfChar {
        use feves_codec::types::Module;
        use feves_codec::workload::bytes_per_row as bpr;
        use feves_hetsim::timeline::{Dir, TransferTag};
        let mut pc = PerfChar::new(platform.len(), Ewma(1.0));
        for (i, dev) in platform.devices.iter().enumerate() {
            pc.record_compute(
                i,
                Module::Me,
                1,
                dev.compute_time(Module::Me, 120.0 * 1024.0, 1.0),
            );
            pc.record_compute(
                i,
                Module::Interp,
                1,
                dev.compute_time(Module::Interp, 120.0, 1.0),
            );
            pc.record_compute(i, Module::Sme, 1, dev.compute_time(Module::Sme, 120.0, 1.0));
            let rstar: f64 = Module::RSTAR
                .iter()
                .map(|&m| dev.compute_time(m, 120.0 * 68.0, 1.0))
                .sum();
            pc.record_rstar(i, rstar);
            if let Some(link) = dev.link {
                for (tag, bytes) in [
                    (TransferTag::Cf, bpr::cf(1920)),
                    (TransferTag::Rf, bpr::rf(1920)),
                    (TransferTag::Sf, bpr::sf(1920)),
                    (TransferTag::Mv, bpr::mv(1920)),
                ] {
                    pc.record_transfer(i, tag, Dir::H2d, 1, link.transfer_time(bytes, true));
                    pc.record_transfer(i, tag, Dir::D2h, 1, link.transfer_time(bytes, false));
                }
            }
        }
        pc
    }

    #[test]
    fn oracle_never_worse_than_lp_seed() {
        let platform = Platform::sys_hk();
        let perf = perfchar(&platform);
        let input = BalanceInput {
            n_rows: 68,
            platform: &platform,
            perf: &perf,
            prev: None,
        };
        let mut lp = FevesBalancer::default();
        let lp_dist = lp.distribute(&input);
        let mut oracle = OracleBalancer::new(params(), geometry(), 4);
        let lp_t = oracle.evaluate(&lp_dist, &platform);
        let oracle_dist = oracle.distribute(&input);
        let oracle_t = oracle.evaluate(&oracle_dist, &platform);
        assert!(
            oracle_t <= lp_t + 1e-12,
            "oracle ({oracle_t}) must not lose to its own seed ({lp_t})"
        );
        oracle_dist.validate(68).unwrap();
        // The LP should already be close: within 15% of the local optimum.
        assert!(
            lp_t <= oracle_t * 1.15,
            "LP gap too large: {lp_t} vs oracle {oracle_t}"
        );
    }
}
