#![warn(missing_docs)]
//! FEVES framework core: the paper's primary contribution.
//!
//! [`FevesEncoder`] is the public entry point — an autonomous H.264/AVC
//! inter-loop encoder for heterogeneous CPU + multi-GPU platforms that
//! integrates:
//!
//! - **Framework Control** ([`framework`]) — Algorithm 1's init/iterative
//!   phases;
//! - **Video Coding Manager** ([`vcm`]) — cross-device orchestration of the
//!   Parallel Modules and transfers with the τ1/τ2/τtot structure of Fig 4;
//! - **Data Access Management** ([`dam`]) — buffer residency, Δ data reuse
//!   and the deferred-SF σ/σʳ machinery of Fig 5;
//! - **Load Balancing / Performance Characterization** (from
//!   [`feves_sched`]) — the Algorithm 2 LP fed by on-line measurements.
//!
//! ```
//! use feves_core::prelude::*;
//!
//! let config = EncoderConfig::full_hd(EncodeParams::default());
//! let mut enc = FevesEncoder::new(Platform::sys_hk(), config).unwrap();
//! let report = enc.run_timing(10);
//! assert!(report.mean_fps() > 25.0, "SysHK must be real-time at 32x32/1RF");
//! ```

pub mod ckpt;
pub mod config;
pub mod dam;
pub mod framework;
pub mod oracle;
pub mod pipeline;
pub mod report;
pub mod trace;
pub mod vcm;

pub use ckpt::{
    decode_checkpoint, encode_checkpoint, load_checkpoint_file, load_latest, CheckpointManager,
    ResumeContext,
};
pub use config::{BalancerKind, EncoderConfig, ExecutionMode, RateControlConfig};
pub use framework::{FevesEncoder, FrameworkState, FtStats, Perturbation, SessionCtl};
pub use oracle::OracleBalancer;
pub use pipeline::{FramePipeline, PipelineOverlap, MAX_IN_FLIGHT};
pub use report::{EncodeReport, FrameReport, Rollup};
pub use trace::{FrameTrace, Lane, LaneKind, TraceTask};

/// Convenient glob import for applications.
pub mod prelude {
    pub use crate::ckpt::{load_checkpoint_file, load_latest, CheckpointManager, ResumeContext};
    pub use crate::config::{BalancerKind, EncoderConfig, ExecutionMode, RateControlConfig};
    pub use crate::framework::{FevesEncoder, FrameworkState, FtStats, Perturbation, SessionCtl};
    pub use crate::pipeline::{FramePipeline, PipelineOverlap};
    pub use crate::report::{EncodeReport, FrameReport, Rollup};
    pub use crate::trace::{FrameTrace, Lane, LaneKind};
    pub use feves_codec::types::{EncodeParams, SearchArea};
    pub use feves_ft::{
        DeviceHealth, DriftConfig, DriftDetector, FaultSchedule, FaultSpec, FevesError,
    };
    pub use feves_hetsim::platform::Platform;
    pub use feves_hetsim::profiles;
    pub use feves_obs::{AuditSummary, FlightRecord, FlightRecorder};
    pub use feves_sched::Centric;
    pub use feves_video::geometry::Resolution;
    pub use feves_video::synth::{SynthConfig, SynthSequence};
}
