//! Encoder configuration.

use feves_codec::cabac::EntropyBackend;
use feves_codec::types::EncodeParams;
use feves_ft::{DriftConfig, FaultSpec, FevesError};
use feves_sched::{Centric, Ewma};
use feves_video::geometry::Resolution;

/// Which load-balancing policy drives the framework.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BalancerKind {
    /// The paper's Algorithm 2 (LP + Dijkstra R\* mapping). The default.
    Feves,
    /// Algorithm 2 with a pinned R\* mapping (ablation).
    FevesFixed(Centric),
    /// Equidistant split every frame (related work \[8\] / init phase).
    Equidistant,
    /// Per-module proportional split (the authors' prior work \[9\]).
    Proportional,
    /// Greedy earliest-finish-time list scheduling (HEFT-class baseline).
    Greedy,
    /// Everything on accelerator `i` (single-GPU baselines).
    SingleAccelerator(usize),
    /// Everything on the CPU cores (CPU-only baselines).
    CpuOnly,
}

/// Whether to run the real encoding kernels or only the timing simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Run the platform/timing simulation only — what the figure-regeneration
    /// benches use for 1080p×100-frame sweeps. Scheduling, data management
    /// and adaptation behave identically; no pixels are touched.
    TimingOnly,
    /// Additionally execute the actual kernels on real frames and produce a
    /// bitstream + reconstruction (used by tests and examples).
    Functional,
}

/// Full configuration of a [`crate::FevesEncoder`].
#[derive(Clone, Debug)]
pub struct EncoderConfig {
    /// Video resolution being encoded.
    pub resolution: Resolution,
    /// Inter-loop parameters (SA, reference frames, QPs).
    pub params: EncodeParams,
    /// Load-balancing policy.
    pub balancer: BalancerKind,
    /// Timing-only or functional execution.
    pub mode: ExecutionMode,
    /// Performance-characterization smoothing (1.0 = paper's last-sample).
    pub ewma: Ewma,
    /// Measurement-noise amplitude (0 disables; 0.02–0.05 is realistic).
    pub noise_amp: f64,
    /// Noise seed (same seed ⇒ bit-identical run).
    pub noise_seed: u64,
    /// Overlap transfers with kernels per Fig 4 (false = synchronous
    /// per-module barriers, the \[9\]-style execution; ablation knob).
    pub overlap: bool,
    /// Model the communication-saving Δ/σ data reuse of Fig 5 (false =
    /// retransfer whole buffers every frame; ablation knob).
    pub data_reuse: bool,
    /// Intra period for functional encoding: a new I-frame (closed GOP,
    /// reference window reset) every `n` frames. `None` = IPPP… forever,
    /// the paper's configuration.
    pub gop: Option<usize>,
    /// Entropy backend for the functional bitstream: the paper's
    /// Baseline-profile class (Exp-Golomb/CAVLC-style) or the Main-profile
    /// adaptive arithmetic coder.
    pub entropy: EntropyBackend,
    /// Closed-loop rate control: target kbit/s at the given display rate.
    /// `None` (the paper's configuration) encodes at fixed QP.
    pub rate_control: Option<RateControlConfig>,
    /// Deterministic device-fault schedule to inject (chaos testing / the
    /// CLI's `--inject-fault`). Empty = fault-free.
    pub faults: Vec<FaultSpec>,
    /// Sync-point deadline = LP-predicted τ × this factor; a miss declares
    /// the slowest device faulty. Must exceed 1 with enough slack to absorb
    /// profile noise and benign perturbations.
    pub deadline_factor: f64,
    /// Prediction-drift detection (audit layer): a device whose signed LP
    /// residual stays outside `±band_pct` for `k` consecutive frames is
    /// re-characterized (rates reset → equidistant probe).
    pub drift: DriftConfig,
    /// Deterministic jitter seed for the health tracker's re-admission
    /// backoff. `None` (the default) keeps exact exponential timing;
    /// concurrent farm sessions set a per-job seed so they do not re-probe
    /// a recovered shared device in lockstep. Affects scheduling timing
    /// only — never the functional bitstream bytes.
    pub health_jitter: Option<u64>,
    /// Inter-frame submit/reap pipelining: frame N+1's ME/INT phase starts
    /// on devices that finished their frame-N stripes while frame N's R\*
    /// merge and entropy coding drain (double-buffered DAM generations,
    /// LP re-solve off the critical path). Affects scheduling timing and
    /// idle attribution only — never the functional bitstream bytes.
    pub pipeline: bool,
    /// Emit causal-trace spans (per-frame phases, kernel dispatch, pipeline
    /// overlap edges) into the session's `TraceSink` when one is attached.
    /// Purely observational: no effect on scheduling or bitstream bytes,
    /// and zero-cost when no sink is attached.
    pub trace: bool,
}

/// Rate-control parameters (see [`feves_codec::rate::RateController`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateControlConfig {
    /// Target bitrate in kbit/s.
    pub target_kbps: f64,
    /// Display frame rate the budget is computed against.
    pub fps: f64,
}

impl EncoderConfig {
    /// 1080p defaults matching the paper's headline experiment.
    pub fn full_hd(params: EncodeParams) -> Self {
        EncoderConfig {
            resolution: Resolution::FULL_HD,
            params,
            balancer: BalancerKind::Feves,
            mode: ExecutionMode::TimingOnly,
            ewma: Ewma::default(),
            noise_amp: 0.02,
            noise_seed: 0xFE0E5,
            overlap: true,
            data_reuse: true,
            gop: None,
            entropy: EntropyBackend::ExpGolomb,
            rate_control: None,
            faults: Vec::new(),
            deadline_factor: 3.0,
            drift: DriftConfig::default(),
            health_jitter: None,
            pipeline: false,
            trace: false,
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), FevesError> {
        let bad = |m: &str| Err(FevesError::Config(m.into()));
        self.params.validate().map_err(FevesError::Config)?;
        if self.resolution.width < 64 || self.resolution.height < 64 {
            return bad("resolution too small (min 64x64)");
        }
        if !(0.0..1.0).contains(&self.noise_amp) {
            return bad("noise amplitude must be in [0, 1)");
        }
        if !(0.0..=1.0).contains(&self.ewma.0) || self.ewma.0 == 0.0 {
            return bad("EWMA alpha must be in (0, 1]");
        }
        if self.gop == Some(0) {
            return bad("GOP length must be >= 1");
        }
        if let Some(rc) = &self.rate_control {
            if rc.target_kbps <= 0.0 || rc.fps <= 0.0 {
                return bad("rate control needs positive target and fps");
            }
        }
        if !(self.deadline_factor.is_finite() && self.deadline_factor > 1.0) {
            return bad("deadline factor must be finite and > 1");
        }
        self.drift.validate().map_err(FevesError::Config)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        EncoderConfig::full_hd(EncodeParams::default())
            .validate()
            .unwrap();
    }

    #[test]
    fn rejects_bad_noise_and_ewma() {
        let mut c = EncoderConfig::full_hd(EncodeParams::default());
        c.noise_amp = 1.5;
        assert!(c.validate().is_err());
        c.noise_amp = 0.0;
        c.ewma = Ewma(0.0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_bad_deadline_factor() {
        let mut c = EncoderConfig::full_hd(EncodeParams::default());
        c.deadline_factor = 1.0;
        assert!(c.validate().is_err());
        c.deadline_factor = f64::INFINITY;
        assert!(c.validate().is_err());
        c.deadline_factor = 2.5;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_bad_drift_config() {
        let mut c = EncoderConfig::full_hd(EncodeParams::default());
        c.drift.band_pct = -5.0;
        assert!(c.validate().is_err());
        c.drift.band_pct = 25.0;
        c.drift.k = 0;
        assert!(c.validate().is_err());
        c.drift.k = 3;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_tiny_resolution() {
        let mut c = EncoderConfig::full_hd(EncodeParams::default());
        c.resolution = Resolution::new(32, 32);
        assert!(c.validate().is_err());
    }
}
