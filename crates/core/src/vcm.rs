//! Video Coding Manager (paper §III-B, Fig 4).
//!
//! Turns a frame's [`Distribution`] plus the Data-Access-Management transfer
//! plan into the task graph the platform executes: kernels and DMA transfers
//! in the exact submission order of Fig 4, with the τ1/τ2/τtot
//! synchronization points as explicit barriers. The copy-engine FIFO
//! semantics of the simulator then reproduce the single- vs dual-engine
//! overlap behaviour without further case analysis here.

use crate::dam::DeviceTransfers;
use feves_codec::types::{EncodeParams, Module};
use feves_codec::workload::{bytes_per_row, units_per_mb_row};
use feves_hetsim::device::DeviceId;
use feves_hetsim::platform::Platform;
use feves_hetsim::timeline::{Dir, TaskGraph, TaskId, TransferTag};
use feves_sched::Distribution;

/// What a graph task measures, for performance characterization.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MeasureKind {
    /// A balanced-module kernel: attribute `seconds / rows` to `K^{module}`.
    Compute {
        /// Executing device.
        device: usize,
        /// ME / INT / SME.
        module: Module,
        /// Assigned MB rows.
        rows: usize,
    },
    /// A DMA transfer: attribute to `K^{tag·dir}`.
    Transfer {
        /// Owning accelerator.
        device: usize,
        /// Buffer.
        tag: TransferTag,
        /// Direction.
        dir: Dir,
        /// MB rows moved.
        rows: usize,
    },
    /// One of the R\* kernels: summed into `T^{R*}` of `device`.
    RstarPart {
        /// Executing device.
        device: usize,
    },
}

/// A task worth measuring.
#[derive(Clone, Copy, Debug)]
pub struct MeasuredTask {
    /// Graph task id.
    pub task: TaskId,
    /// Attribution.
    pub kind: MeasureKind,
}

/// The per-frame graph with its synchronization points and measurement
/// index.
#[derive(Debug)]
pub struct FrameGraph {
    /// The task DAG.
    pub graph: TaskGraph,
    /// τ1 barrier (ME + INT + their transfers complete).
    pub tau1: TaskId,
    /// τ2 barrier (SME + its transfers complete).
    pub tau2: TaskId,
    /// τtot barrier (R\* + trailing transfers complete).
    pub tau_tot: TaskId,
    /// Tasks to feed into performance characterization.
    pub measures: Vec<MeasuredTask>,
}

/// Geometry of the encoded frame, in scheduler units.
#[derive(Clone, Copy, Debug)]
pub struct FrameGeometry {
    /// Macroblocks per row.
    pub mb_cols: usize,
    /// MB rows (`N`).
    pub n_rows: usize,
    /// Padded luma width in pixels (transfer sizing).
    pub width: usize,
}

/// Build the task graph for one inter-frame.
///
/// `params` must already carry the *effective* reference count (ramp-up at
/// sequence start). `overlap = false` serializes module phases behind
/// barriers — the synchronous per-module execution of the \[9\] baseline.
#[allow(clippy::needless_range_loop)] // device-indexed parallel arrays
pub fn build_frame_graph(
    dist: &Distribution,
    transfers: &[DeviceTransfers],
    platform: &Platform,
    params: &EncodeParams,
    geo: FrameGeometry,
    overlap: bool,
) -> FrameGraph {
    let _span = feves_obs::span!(feves_obs::global(), "vcm.build");
    let nd = platform.len();
    assert_eq!(dist.n_devices(), nd);
    assert_eq!(transfers.len(), nd);
    let mut g = TaskGraph::new();
    let mut measures = Vec::new();

    let units =
        |module: Module, rows: usize| units_per_mb_row(module, params, geo.mb_cols) * rows as f64;
    let bytes = |tag: TransferTag, rows: usize| match tag {
        TransferTag::Cf => bytes_per_row::cf(geo.width) * rows,
        TransferTag::Rf => bytes_per_row::rf(geo.width) * rows,
        TransferTag::Sf => bytes_per_row::sf(geo.width) * rows,
        TransferTag::Mv => bytes_per_row::mv(geo.width) * rows,
    };

    // τ1 phase. With overlap enabled, each device's transfers and kernels
    // interleave in the Fig 4 submission order; with overlap disabled (the
    // synchronous [9]-style baseline) all input transfers complete behind a
    // barrier before any kernel starts.
    let mut tau1_deps: Vec<TaskId> = Vec::new();

    struct P1<'a> {
        g: &'a mut TaskGraph,
        measures: &'a mut Vec<MeasuredTask>,
    }
    impl P1<'_> {
        #[allow(clippy::too_many_arguments)] // one field per Fig 4 stream attribute
        fn xfer(
            &mut self,
            device: usize,
            dir: Dir,
            tag: TransferTag,
            rows: usize,
            nbytes: usize,
            deps: Vec<TaskId>,
            label: String,
        ) -> Option<TaskId> {
            if rows == 0 {
                return None;
            }
            let id = self
                .g
                .transfer(DeviceId(device), dir, nbytes, tag, deps, label);
            self.measures.push(MeasuredTask {
                task: id,
                kind: MeasureKind::Transfer {
                    device,
                    tag,
                    dir,
                    rows,
                },
            });
            Some(id)
        }
        fn kernel(
            &mut self,
            device: usize,
            module: Module,
            rows: usize,
            u: f64,
            deps: Vec<TaskId>,
            label: String,
        ) -> Option<TaskId> {
            if rows == 0 {
                return None;
            }
            let id = self.g.compute(DeviceId(device), module, u, deps, label);
            self.measures.push(MeasuredTask {
                task: id,
                kind: MeasureKind::Compute {
                    device,
                    module,
                    rows,
                },
            });
            Some(id)
        }
    }

    let mut b = P1 {
        g: &mut g,
        measures: &mut measures,
    };

    // Pass A: input transfers for every accelerator, recorded per device.
    #[derive(Default, Clone)]
    struct InXfers {
        rf_up: Option<TaskId>,
        cf_me: Option<TaskId>,
        cf_sme: Option<TaskId>,
        sig_prev: Option<TaskId>,
    }
    let mut inputs: Vec<InXfers> = vec![InXfers::default(); nd];
    let input_gate: Option<TaskId> = if overlap {
        // Interleaved mode: inputs are created inside the per-device pass
        // below so the copy-engine queue follows the exact Fig 4 order.
        None
    } else {
        for d in 0..nd {
            if !platform.devices[d].is_accelerator() {
                continue;
            }
            let t = &transfers[d];
            inputs[d].rf_up = b.xfer(
                d,
                Dir::H2d,
                TransferTag::Rf,
                t.rf_up,
                bytes(TransferTag::Rf, t.rf_up),
                vec![],
                format!("RF→dev{d}"),
            );
            inputs[d].cf_me = b.xfer(
                d,
                Dir::H2d,
                TransferTag::Cf,
                t.cf_me_up,
                bytes(TransferTag::Cf, t.cf_me_up),
                vec![],
                format!("CF→ME dev{d}"),
            );
            inputs[d].cf_sme = b.xfer(
                d,
                Dir::H2d,
                TransferTag::Cf,
                t.cf_sme_up,
                bytes(TransferTag::Cf, t.cf_sme_up),
                vec![],
                format!("CF→SME dev{d}"),
            );
            inputs[d].sig_prev = b.xfer(
                d,
                Dir::H2d,
                TransferTag::Sf,
                t.sigma_prev_up,
                bytes(TransferTag::Sf, t.sigma_prev_up),
                vec![],
                format!("SF(RF-1)→SME dev{d}"),
            );
        }
        let all: Vec<TaskId> = inputs
            .iter()
            .flat_map(|i| [i.rf_up, i.cf_me, i.cf_sme, i.sig_prev])
            .flatten()
            .collect();
        Some(b.g.barrier(all, "inputs"))
    };

    // Pass B: kernels and remaining τ1 transfers per device.
    for d in 0..nd {
        let t = &transfers[d];
        let is_accel = platform.devices[d].is_accelerator();
        if is_accel {
            let (rf_up, cf_me) = if overlap {
                // Fig 4 submission order: RF, CF→ME first on the engine.
                let rf_up = b.xfer(
                    d,
                    Dir::H2d,
                    TransferTag::Rf,
                    t.rf_up,
                    bytes(TransferTag::Rf, t.rf_up),
                    vec![],
                    format!("RF→dev{d}"),
                );
                let cf_me = b.xfer(
                    d,
                    Dir::H2d,
                    TransferTag::Cf,
                    t.cf_me_up,
                    bytes(TransferTag::Cf, t.cf_me_up),
                    vec![],
                    format!("CF→ME dev{d}"),
                );
                (rf_up, cf_me)
            } else {
                (inputs[d].rf_up, inputs[d].cf_me)
            };
            let mut int_deps: Vec<TaskId> = rf_up.into_iter().collect();
            int_deps.extend(input_gate);
            let k_int = b.kernel(
                d,
                Module::Interp,
                dist.interp[d],
                units(Module::Interp, dist.interp[d]),
                int_deps,
                format!("INT dev{d} ({} rows)", dist.interp[d]),
            );
            let mut me_deps: Vec<TaskId> = rf_up.into_iter().chain(cf_me).collect();
            me_deps.extend(input_gate);
            let k_me = b.kernel(
                d,
                Module::Me,
                dist.me[d],
                units(Module::Me, dist.me[d]),
                me_deps,
                format!("ME dev{d} ({} rows)", dist.me[d]),
            );
            let sf_down = b.xfer(
                d,
                Dir::D2h,
                TransferTag::Sf,
                t.sf_down,
                bytes(TransferTag::Sf, t.sf_down),
                k_int.into_iter().collect(),
                format!("SF(RF)→host dev{d}"),
            );
            let (cf_sme, sig_prev) = if overlap {
                let cf_sme = b.xfer(
                    d,
                    Dir::H2d,
                    TransferTag::Cf,
                    t.cf_sme_up,
                    bytes(TransferTag::Cf, t.cf_sme_up),
                    vec![],
                    format!("CF→SME dev{d}"),
                );
                let sig_prev = b.xfer(
                    d,
                    Dir::H2d,
                    TransferTag::Sf,
                    t.sigma_prev_up,
                    bytes(TransferTag::Sf, t.sigma_prev_up),
                    vec![],
                    format!("SF(RF-1)→SME dev{d}"),
                );
                (cf_sme, sig_prev)
            } else {
                (inputs[d].cf_sme, inputs[d].sig_prev)
            };
            let mv_down = b.xfer(
                d,
                Dir::D2h,
                TransferTag::Mv,
                t.mv_me_down,
                bytes(TransferTag::Mv, t.mv_me_down),
                k_me.into_iter().collect(),
                format!("MV→SME host dev{d}"),
            );
            for id in [
                k_int, k_me, sf_down, cf_sme, sig_prev, mv_down, rf_up, cf_me,
            ]
            .into_iter()
            .flatten()
            {
                tau1_deps.push(id);
            }
        } else {
            // CPU core: kernels only, FIFO on the core serializes INT→ME.
            let gate: Vec<TaskId> = input_gate.into_iter().collect();
            let k_int = b.kernel(
                d,
                Module::Interp,
                dist.interp[d],
                units(Module::Interp, dist.interp[d]),
                gate.clone(),
                format!("INT core{d}"),
            );
            let k_me = b.kernel(
                d,
                Module::Me,
                dist.me[d],
                units(Module::Me, dist.me[d]),
                gate,
                format!("ME core{d}"),
            );
            for id in [k_int, k_me].into_iter().flatten() {
                tau1_deps.push(id);
            }
        }
    }

    let tau1 = b.g.barrier(tau1_deps, "tau1");

    // τ2 phase.
    let mut tau2_deps: Vec<TaskId> = Vec::new();
    let mut sme_done: Vec<Option<TaskId>> = vec![None; nd];
    for d in 0..nd {
        let t = &transfers[d];
        let is_accel = platform.devices[d].is_accelerator();
        if is_accel {
            let sf_dl = b.xfer(
                d,
                Dir::H2d,
                TransferTag::Sf,
                t.sf_dl_up,
                bytes(TransferTag::Sf, t.sf_dl_up),
                vec![tau1],
                format!("SF Δl→dev{d}"),
            );
            let mv_dm = b.xfer(
                d,
                Dir::H2d,
                TransferTag::Mv,
                t.mv_dm_up,
                bytes(TransferTag::Mv, t.mv_dm_up),
                vec![tau1],
                format!("MV Δm→dev{d}"),
            );
            let mut deps = vec![tau1];
            deps.extend(sf_dl);
            deps.extend(mv_dm);
            let k_sme = b.kernel(
                d,
                Module::Sme,
                dist.sme[d],
                units(Module::Sme, dist.sme[d]),
                deps,
                format!("SME dev{d} ({} rows)", dist.sme[d]),
            );
            let mv_sme = b.xfer(
                d,
                Dir::D2h,
                TransferTag::Mv,
                t.mv_sme_down,
                bytes(TransferTag::Mv, t.mv_sme_down),
                k_sme.into_iter().collect(),
                format!("MV(SME)→host dev{d}"),
            );
            // R* device prefetches its remaining CF/SF during τ2 (Fig 5b).
            if dist.rstar_device == d {
                let cf_mc = b.xfer(
                    d,
                    Dir::H2d,
                    TransferTag::Cf,
                    t.cf_mc_up,
                    bytes(TransferTag::Cf, t.cf_mc_up),
                    vec![tau1],
                    format!("CF→MC dev{d}"),
                );
                let sf_mc = b.xfer(
                    d,
                    Dir::H2d,
                    TransferTag::Sf,
                    t.sf_mc_up,
                    bytes(TransferTag::Sf, t.sf_mc_up),
                    vec![tau1],
                    format!("SF→MC dev{d}"),
                );
                tau2_deps.extend(cf_mc);
                tau2_deps.extend(sf_mc);
            }
            sme_done[d] = mv_sme.or(k_sme);
            tau2_deps.extend(k_sme);
            tau2_deps.extend(mv_sme);
        } else {
            let k_sme = b.kernel(
                d,
                Module::Sme,
                dist.sme[d],
                units(Module::Sme, dist.sme[d]),
                vec![tau1],
                format!("SME core{d}"),
            );
            sme_done[d] = k_sme;
            tau2_deps.extend(k_sme);
        }
    }
    let tau2 = b.g.barrier(tau2_deps, "tau2");

    // τtot phase: R* + trailing σ transfers.
    let mut tot_deps: Vec<TaskId> = Vec::new();
    let rstar = dist.rstar_device;
    let rstar_rows = geo.n_rows;
    if platform.devices[rstar].is_accelerator() {
        let t = &transfers[rstar];
        let mv_mc = b.xfer(
            rstar,
            Dir::H2d,
            TransferTag::Mv,
            t.mv_mc_up,
            bytes(TransferTag::Mv, t.mv_mc_up),
            vec![tau2],
            format!("MV→MC dev{rstar}"),
        );
        let mut prev: Vec<TaskId> = vec![tau2];
        prev.extend(mv_mc);
        for module in Module::RSTAR {
            let id = b.g.compute(
                DeviceId(rstar),
                module,
                units(module, rstar_rows),
                prev.clone(),
                format!("{module:?} dev{rstar}"),
            );
            b.measures.push(MeasuredTask {
                task: id,
                kind: MeasureKind::RstarPart { device: rstar },
            });
            prev = vec![id];
        }
        let rf_down = b.xfer(
            rstar,
            Dir::D2h,
            TransferTag::Rf,
            t.rf_down,
            bytes(TransferTag::Rf, t.rf_down),
            prev.clone(),
            format!("RF+1→host dev{rstar}"),
        );
        tot_deps.extend(prev);
        tot_deps.extend(rf_down);
    } else {
        // CPU-centric: split the R* rows over all cores; DBL's macroblock
        // wavefront parallelizes across cores in shared memory.
        let core_rows = feves_video::geometry::equidistant(rstar_rows, platform.n_cores.max(1));
        for (c, &rows) in core_rows.iter().enumerate() {
            let d = platform.n_accel + c;
            let mut prev: Vec<TaskId> = vec![tau2];
            for module in Module::RSTAR {
                if rows == 0 {
                    continue;
                }
                let id = b.g.compute(
                    DeviceId(d),
                    module,
                    units(module, rows),
                    prev.clone(),
                    format!("{module:?} core{d}"),
                );
                b.measures.push(MeasuredTask {
                    task: id,
                    kind: MeasureKind::RstarPart { device: d },
                });
                prev = vec![id];
            }
            tot_deps.extend(prev.into_iter().filter(|t| *t != tau2));
        }
        if tot_deps.is_empty() {
            tot_deps.push(tau2);
        }
    }
    // σ transfers on the other accelerators.
    for d in 0..nd {
        if d == rstar || !platform.devices[d].is_accelerator() {
            continue;
        }
        let t = &transfers[d];
        let sig = b.xfer(
            d,
            Dir::H2d,
            TransferTag::Sf,
            t.sigma_up,
            bytes(TransferTag::Sf, t.sigma_up),
            vec![tau2],
            format!("SF σ→dev{d}"),
        );
        tot_deps.extend(sig);
    }
    tot_deps.push(tau2);
    let tau_tot = b.g.barrier(tot_deps, "tau_tot");

    FrameGraph {
        graph: g,
        tau1,
        tau2,
        tau_tot,
        measures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dam::DataManager;
    use feves_codec::types::SearchArea;
    use feves_hetsim::noise::Deterministic;
    use feves_hetsim::timeline::simulate;

    fn geo() -> FrameGeometry {
        FrameGeometry {
            mb_cols: 120,
            n_rows: 68,
            width: 1920,
        }
    }

    fn params() -> EncodeParams {
        EncodeParams {
            search_area: SearchArea(32),
            n_ref: 1,
            ..Default::default()
        }
    }

    fn build(platform: &Platform, dist: &Distribution, overlap: bool) -> FrameGraph {
        let dam = DataManager::new(68, platform.len());
        let mask: Vec<bool> = platform
            .devices
            .iter()
            .map(|d| d.is_accelerator())
            .collect();
        let plan = dam.plan(dist, &mask, true);
        build_frame_graph(dist, &plan, platform, &params(), geo(), overlap)
    }

    #[test]
    fn graph_simulates_with_ordered_taus() {
        let p = Platform::sys_hk();
        let dist = Distribution::equidistant(68, p.len(), 0);
        let fg = build(&p, &dist, true);
        let sched = simulate(&fg.graph, &p, &p.nominal_speeds(), &mut Deterministic).unwrap();
        let t1 = sched.finish_of(fg.tau1);
        let t2 = sched.finish_of(fg.tau2);
        let tt = sched.finish_of(fg.tau_tot);
        assert!(t1 > 0.0 && t1 <= t2 && t2 <= tt, "{t1} {t2} {tt}");
        assert!(
            (tt - sched.makespan).abs() < 1e-12,
            "tau_tot is the makespan"
        );
    }

    #[test]
    fn equidistant_syshk_close_to_slowest_device_bound() {
        // With an equidistant split, τ1 is dominated by the slowest device's
        // ME share — far worse than a balanced split would allow.
        let p = Platform::sys_hk();
        let dist = Distribution::equidistant(68, p.len(), 0);
        let fg = build(&p, &dist, true);
        let sched = simulate(&fg.graph, &p, &p.nominal_speeds(), &mut Deterministic).unwrap();
        // One CPU_H core at 14 rows of ME (32² SA): K^m per row ≈
        // 55ms/68/1.7*4 per row… just assert the makespan exceeds the GPU's
        // own compute time by a wide margin (the point of adaptivity).
        let gpu_me_14rows = p.devices[0].compute_time(Module::Me, 1024.0 * 120.0 * 14.0, 1.0);
        assert!(sched.makespan > 4.0 * gpu_me_14rows);
    }

    #[test]
    fn no_overlap_is_never_faster() {
        let p = Platform::sys_nff();
        let dist = Distribution::equidistant(68, p.len(), 0);
        let with = build(&p, &dist, true);
        let without = build(&p, &dist, false);
        let s_with = simulate(&with.graph, &p, &p.nominal_speeds(), &mut Deterministic).unwrap();
        let s_without =
            simulate(&without.graph, &p, &p.nominal_speeds(), &mut Deterministic).unwrap();
        assert!(
            s_without.makespan >= s_with.makespan - 1e-12,
            "serializing phases cannot be faster: {} vs {}",
            s_without.makespan,
            s_with.makespan
        );
    }

    #[test]
    fn measures_cover_all_balanced_modules() {
        let p = Platform::sys_hk();
        let dist = Distribution::equidistant(68, p.len(), 0);
        let fg = build(&p, &dist, true);
        for d in 0..p.len() {
            for module in Module::BALANCED {
                let found = fg.measures.iter().any(|m| {
                    matches!(m.kind, MeasureKind::Compute { device, module: mm, rows }
                        if device == d && mm == module && rows > 0)
                });
                assert!(found, "no measurement for {module:?} on device {d}");
            }
        }
        // R* runs somewhere.
        assert!(fg
            .measures
            .iter()
            .any(|m| matches!(m.kind, MeasureKind::RstarPart { .. })));
    }

    #[test]
    fn single_gpu_distribution_has_no_cpu_tasks() {
        let p = Platform::sys_hk();
        let dist = Distribution::single_device(68, p.len(), 0);
        let fg = build(&p, &dist, true);
        for m in &fg.measures {
            match m.kind {
                MeasureKind::Compute { device, .. } => assert_eq!(device, 0),
                MeasureKind::Transfer { device, .. } => assert_eq!(device, 0),
                MeasureKind::RstarPart { device } => assert_eq!(device, 0),
            }
        }
    }

    #[test]
    fn cpu_centric_runs_rstar_on_cores() {
        let p = Platform::sys_nf();
        let mut dist = Distribution::equidistant(68, p.len(), 0);
        dist.rstar_device = p.n_accel; // CPU-centric
        let fg = build(&p, &dist, true);
        let on_cores = fg
            .measures
            .iter()
            .filter(|m| matches!(m.kind, MeasureKind::RstarPart { device } if device >= p.n_accel))
            .count();
        assert!(on_cores >= p.n_cores * Module::RSTAR.len() - 4);
        let sched = simulate(&fg.graph, &p, &p.nominal_speeds(), &mut Deterministic).unwrap();
        assert!(sched.makespan > 0.0);
    }

    #[test]
    fn transfers_attributed_to_correct_tags() {
        let p = Platform::sys_nff();
        let dist = Distribution::equidistant(68, p.len(), 0);
        let fg = build(&p, &dist, true);
        // Non-R* accelerator (device 1) must upload RF and download SF.
        let has = |tag, dir, device| {
            fg.measures.iter().any(|m| {
                matches!(m.kind, MeasureKind::Transfer { device: d, tag: t, dir: dd, rows }
                    if d == device && t == tag && dd == dir && rows > 0)
            })
        };
        assert!(has(TransferTag::Rf, Dir::H2d, 1));
        assert!(has(TransferTag::Sf, Dir::D2h, 1));
        assert!(has(TransferTag::Mv, Dir::D2h, 1));
        // R* accelerator returns the reconstructed RF.
        assert!(has(TransferTag::Rf, Dir::D2h, 0));
        assert!(!has(TransferTag::Rf, Dir::H2d, 0), "R* device keeps its RF");
    }
}
