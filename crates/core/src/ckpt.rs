//! Crash-safe encode sessions: checkpoint serialization, durable writes,
//! and generation management.
//!
//! A checkpoint captures everything the iterative phase has learned —
//! on-line performance characterization, health/drift state machines, the
//! rate controller, the reference window, the measurement-noise RNG
//! position, the DAM deferred-SF remainders — plus a [`ResumeContext`]
//! describing the CLI job (input, output, flags, progress). Together they
//! let `feves resume` re-enter the encode at the last committed frame and
//! produce a bitstream **bit-identical** to an uninterrupted run, without
//! re-probing the platform.
//!
//! The file layout (magic, version, fingerprint, CRC-protected sections) is
//! `feves_ft::ckpt`; this module owns the section *contents* and the
//! durability protocol:
//!
//! 1. serialize the whole checkpoint in memory;
//! 2. write it to `.ckpt-NNNNNN.tmp` in the checkpoint directory;
//! 3. `fsync` the temp file;
//! 4. `rename` to `ckpt-NNNNNN.ckpt` (atomic on POSIX);
//! 5. `fsync` the directory;
//! 6. prune generations beyond the retention bound.
//!
//! A crash at any instant therefore leaves either (a) no new file, (b) a
//! `.tmp` that resume ignores, or (c) a complete new generation. Torn and
//! bit-rotted files fail the section CRCs and are rejected with
//! [`FevesError::CheckpointCorrupt`]; [`CheckpointManager::load_latest`]
//! then falls back to the previous generation.

use crate::framework::{FrameworkState, FtStats};
use feves_codec::rate::RateSnapshot;
use feves_ft::ckpt::fnv1a64;
use feves_ft::crash::crash_point;
use feves_ft::io::{backend_for, classify, retry_io, IoErrorClass};
use feves_ft::{
    ByteReader, ByteWriter, CheckpointBlob, DeviceHealth, DriftSnapshot, FevesError,
    HealthSnapshot, RetryPolicy,
};
use feves_hetsim::noise::NoiseState;
use feves_obs::{Metric, Recorder};
use feves_sched::{DevicePrediction, Distribution, PerfChar, PredictedTimes};
use feves_video::plane::Plane;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Section tags. Order in the file is fixed but readers look up by tag.
const TAG_META: [u8; 4] = *b"META";
const TAG_PERF: [u8; 4] = *b"PERF";
const TAG_HLTH: [u8; 4] = *b"HLTH";
const TAG_DRFT: [u8; 4] = *b"DRFT";
const TAG_NOIS: [u8; 4] = *b"NOIS";
const TAG_DAMS: [u8; 4] = *b"DAMS";
const TAG_CURS: [u8; 4] = *b"CURS";
const TAG_RATE: [u8; 4] = *b"RATE";
const TAG_DIST: [u8; 4] = *b"DIST";
const TAG_REFS: [u8; 4] = *b"REFS";
const TAG_PEND: [u8; 4] = *b"PEND";

/// Largest plane edge a checkpoint may declare (16-bit dimensions — DCI 8K
/// is 8192 wide). Caps allocation before trusting a corrupted length field.
const MAX_PLANE_DIM: usize = 1 << 16;

/// Everything `feves resume` needs to rebuild the CLI job: the original
/// flags (so the platform/config reconstruction replays exactly), the
/// input identity, and the progress watermark.
#[derive(Clone, Debug, PartialEq)]
pub struct ResumeContext {
    /// Input sequence path (y4m).
    pub input: String,
    /// Output bitstream path (y4m reconstruction).
    pub output: String,
    /// Platform profile name (`--platform`).
    pub platform: String,
    /// Full JSON text of `--platform-file`, when one was given. The
    /// *content* is stored (not the path) so resume cannot silently pick up
    /// an edited file.
    pub platform_json: Option<String>,
    /// `--sa` search area.
    pub sa: u16,
    /// `--refs` reference frames.
    pub refs: usize,
    /// `--qp`.
    pub qp: u8,
    /// `--balancer` name.
    pub balancer: String,
    /// `--kernels` override, verbatim.
    pub kernels: Option<String>,
    /// `--fault` specs, verbatim.
    pub faults: Vec<String>,
    /// `--deadline-factor`.
    pub deadline_factor: Option<f64>,
    /// `--flight-out` path, carried so the resumed session keeps exporting.
    pub flight_out: Option<String>,
    /// `--metrics-out` path, carried like `flight_out`.
    pub metrics_out: Option<String>,
    /// Checkpoint cadence in frames (`--checkpoint-every`).
    pub every: usize,
    /// Retention bound (`--checkpoint-keep`).
    pub keep: usize,
    /// Frames fully committed to the output (encode cursor).
    pub frames_done: usize,
    /// Total frames this job will encode.
    pub n_frames: usize,
    /// Output file length in bytes after frame `frames_done` was flushed —
    /// resume truncates the bitstream here.
    pub out_bytes: u64,
    /// FNV-1a 64 of the input file's bytes, guarding against the input
    /// changing between crash and resume.
    pub input_fingerprint: u64,
    /// `--pipeline` mode. Excluded from [`Self::fingerprint`]: the pipeline
    /// never changes the bitstream bytes, so a job checkpointed lockstep may
    /// legitimately resume pipelined (and vice versa).
    pub pipeline: bool,
    /// CRC-32 of the first `out_bytes` of the output artifact at commit
    /// time. Resume re-hashes the truncated prefix and rejects the
    /// checkpoint when it differs — post-crash bit-rot on the artifact must
    /// not be silently extended into a "complete" bitstream. Excluded from
    /// [`Self::fingerprint`] (it is progress, not job identity).
    pub out_crc: u32,
}

impl ResumeContext {
    /// Job fingerprint: hash of everything that defines *which encode this
    /// is* — input identity, output path, platform, codec flags. Progress
    /// fields (`frames_done`, `out_bytes`) and artifact/cadence knobs are
    /// excluded so every generation of one job carries the same
    /// fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let mut w = ByteWriter::new();
        w.put_str(&self.input);
        w.put_str(&self.output);
        w.put_str(&self.platform);
        put_opt_str(&mut w, &self.platform_json);
        w.put_u32(self.sa as u32);
        w.put_usize(self.refs);
        w.put_u8(self.qp);
        w.put_str(&self.balancer);
        put_opt_str(&mut w, &self.kernels);
        w.put_usize(self.faults.len());
        for f in &self.faults {
            w.put_str(f);
        }
        w.put_bool(self.deadline_factor.is_some());
        w.put_f64(self.deadline_factor.unwrap_or(0.0));
        w.put_usize(self.n_frames);
        w.put_u64(self.input_fingerprint);
        fnv1a64(&w.into_bytes())
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_str(&self.input);
        w.put_str(&self.output);
        w.put_str(&self.platform);
        put_opt_str(&mut w, &self.platform_json);
        w.put_u32(self.sa as u32);
        w.put_usize(self.refs);
        w.put_u8(self.qp);
        w.put_str(&self.balancer);
        put_opt_str(&mut w, &self.kernels);
        w.put_usize(self.faults.len());
        for f in &self.faults {
            w.put_str(f);
        }
        w.put_bool(self.deadline_factor.is_some());
        w.put_f64(self.deadline_factor.unwrap_or(0.0));
        put_opt_str(&mut w, &self.flight_out);
        put_opt_str(&mut w, &self.metrics_out);
        w.put_usize(self.every);
        w.put_usize(self.keep);
        w.put_usize(self.frames_done);
        w.put_usize(self.n_frames);
        w.put_u64(self.out_bytes);
        w.put_u64(self.input_fingerprint);
        w.put_bool(self.pipeline);
        w.put_u32(self.out_crc);
        w.into_bytes()
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, FevesError> {
        let mut r = ByteReader::new(bytes);
        let input = r.take_str()?;
        let output = r.take_str()?;
        let platform = r.take_str()?;
        let platform_json = take_opt_str(&mut r)?;
        let sa_raw = r.take_u32()?;
        let sa = u16::try_from(sa_raw).map_err(|_| {
            FevesError::CheckpointCorrupt(format!("search area {sa_raw} out of range"))
        })?;
        let refs = r.take_usize()?;
        let qp = r.take_u8()?;
        let balancer = r.take_str()?;
        let kernels = take_opt_str(&mut r)?;
        let n_faults = r.take_usize()?;
        if n_faults > 4096 {
            return Err(FevesError::CheckpointCorrupt(format!(
                "implausible fault-spec count {n_faults}"
            )));
        }
        let faults = (0..n_faults)
            .map(|_| r.take_str())
            .collect::<Result<Vec<_>, _>>()?;
        let has_df = r.take_bool()?;
        let df = r.take_f64()?;
        let ctx = ResumeContext {
            input,
            output,
            platform,
            platform_json,
            sa,
            refs,
            qp,
            balancer,
            kernels,
            faults,
            deadline_factor: has_df.then_some(df),
            flight_out: take_opt_str(&mut r)?,
            metrics_out: take_opt_str(&mut r)?,
            every: r.take_usize()?,
            keep: r.take_usize()?,
            frames_done: r.take_usize()?,
            n_frames: r.take_usize()?,
            out_bytes: r.take_u64()?,
            input_fingerprint: r.take_u64()?,
            pipeline: r.take_bool()?,
            out_crc: r.take_u32()?,
        };
        r.expect_end("META section")?;
        Ok(ctx)
    }
}

fn put_opt_str(w: &mut ByteWriter, s: &Option<String>) {
    w.put_bool(s.is_some());
    w.put_str(s.as_deref().unwrap_or(""));
}

fn take_opt_str(r: &mut ByteReader) -> Result<Option<String>, FevesError> {
    let present = r.take_bool()?;
    let s = r.take_str()?;
    Ok(present.then_some(s))
}

fn put_plane(w: &mut ByteWriter, p: &Plane<u8>) {
    w.put_u64(p.width() as u64);
    w.put_u64(p.height() as u64);
    // Row-by-row drops any stride padding: the payload is exactly w×h.
    let mut data = Vec::with_capacity(p.width() * p.height());
    for y in 0..p.height() {
        data.extend_from_slice(p.row(y));
    }
    w.put_bytes(&data);
}

fn take_plane(r: &mut ByteReader) -> Result<Plane<u8>, FevesError> {
    let w = r.take_usize()?;
    let h = r.take_usize()?;
    if w == 0 || h == 0 || w > MAX_PLANE_DIM || h > MAX_PLANE_DIM {
        return Err(FevesError::CheckpointCorrupt(format!(
            "implausible plane dimensions {w}x{h}"
        )));
    }
    let expect = w
        .checked_mul(h)
        .ok_or_else(|| FevesError::CheckpointCorrupt("plane size overflow".into()))?;
    let data = r.take_bytes()?;
    if data.len() != expect {
        return Err(FevesError::CheckpointCorrupt(format!(
            "plane payload {} bytes, dimensions say {expect}",
            data.len()
        )));
    }
    Ok(Plane::from_vec(data, w, h))
}

fn put_u64_vec(w: &mut ByteWriter, xs: &[u64]) {
    w.put_usize(xs.len());
    for &x in xs {
        w.put_u64(x);
    }
}

fn take_u64_vec(r: &mut ByteReader) -> Result<Vec<u64>, FevesError> {
    let n = r.take_usize()?;
    if r.remaining() < n.saturating_mul(8) {
        return Err(FevesError::CheckpointCorrupt(
            "truncated payload while reading u64 vector".into(),
        ));
    }
    (0..n).map(|_| r.take_u64()).collect()
}

fn health_to_bytes(h: &HealthSnapshot) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_usize(h.state.len());
    for s in &h.state {
        w.put_u8(match s {
            DeviceHealth::Healthy => 0,
            DeviceHealth::Probation => 1,
            DeviceHealth::Blacklisted => 2,
        });
    }
    w.put_usize_slice(&h.readmit_at);
    w.put_usize_slice(&h.backoff);
    w.put_usize_slice(&h.probation_left);
    put_u64_vec(&mut w, &h.faults);
    w.put_usize(h.base_backoff);
    w.put_usize(h.probation_frames);
    w.into_bytes()
}

fn health_from_bytes(bytes: &[u8]) -> Result<HealthSnapshot, FevesError> {
    let mut r = ByteReader::new(bytes);
    let n = r.take_usize()?;
    if r.remaining() < n {
        return Err(FevesError::CheckpointCorrupt(
            "truncated health state vector".into(),
        ));
    }
    let state = (0..n)
        .map(|_| match r.take_u8()? {
            0 => Ok(DeviceHealth::Healthy),
            1 => Ok(DeviceHealth::Probation),
            2 => Ok(DeviceHealth::Blacklisted),
            b => Err(FevesError::CheckpointCorrupt(format!(
                "invalid device-health byte {b:#x}"
            ))),
        })
        .collect::<Result<Vec<_>, _>>()?;
    let snap = HealthSnapshot {
        state,
        readmit_at: r.take_usize_vec()?,
        backoff: r.take_usize_vec()?,
        probation_left: r.take_usize_vec()?,
        faults: take_u64_vec(&mut r)?,
        base_backoff: r.take_usize()?,
        probation_frames: r.take_usize()?,
    };
    r.expect_end("HLTH section")?;
    Ok(snap)
}

fn dist_to_bytes(d: &Distribution) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_usize_slice(&d.me);
    w.put_usize_slice(&d.interp);
    w.put_usize_slice(&d.sme);
    w.put_usize_slice(&d.delta_m);
    w.put_usize_slice(&d.delta_l);
    w.put_usize_slice(&d.sigma);
    w.put_usize_slice(&d.sigma_rem);
    w.put_usize(d.rstar_device);
    w.put_bool(d.predicted.is_some());
    if let Some(p) = &d.predicted {
        w.put_f64(p.tau1);
        w.put_f64(p.tau2);
        w.put_f64(p.tau_tot);
    }
    w.put_bool(d.predicted_device.is_some());
    if let Some(pd) = &d.predicted_device {
        w.put_usize(pd.len());
        for p in pd {
            w.put_f64(p.phase1);
            w.put_f64(p.phase2);
            w.put_f64(p.rstar);
        }
    }
    w.put_bool(d.lp_iterations.is_some());
    w.put_usize(d.lp_iterations.unwrap_or(0));
    w.into_bytes()
}

fn dist_from_bytes(bytes: &[u8]) -> Result<Distribution, FevesError> {
    let mut r = ByteReader::new(bytes);
    let me = r.take_usize_vec()?;
    let interp = r.take_usize_vec()?;
    let sme = r.take_usize_vec()?;
    let delta_m = r.take_usize_vec()?;
    let delta_l = r.take_usize_vec()?;
    let sigma = r.take_usize_vec()?;
    let sigma_rem = r.take_usize_vec()?;
    let n = me.len();
    for (name, v) in [
        ("interp", interp.len()),
        ("sme", sme.len()),
        ("delta_m", delta_m.len()),
        ("delta_l", delta_l.len()),
        ("sigma", sigma.len()),
        ("sigma_rem", sigma_rem.len()),
    ] {
        if v != n {
            return Err(FevesError::CheckpointCorrupt(format!(
                "distribution vector `{name}` has {v} devices, `me` has {n}"
            )));
        }
    }
    let rstar_device = r.take_usize()?;
    if rstar_device >= n.max(1) {
        return Err(FevesError::CheckpointCorrupt(format!(
            "R* device {rstar_device} out of range for {n} devices"
        )));
    }
    let predicted = if r.take_bool()? {
        Some(PredictedTimes {
            tau1: r.take_f64()?,
            tau2: r.take_f64()?,
            tau_tot: r.take_f64()?,
        })
    } else {
        None
    };
    let predicted_device = if r.take_bool()? {
        let k = r.take_usize()?;
        if k != n {
            return Err(FevesError::CheckpointCorrupt(format!(
                "per-device predictions for {k} devices, distribution has {n}"
            )));
        }
        Some(
            (0..k)
                .map(|_| {
                    Ok(DevicePrediction {
                        phase1: r.take_f64()?,
                        phase2: r.take_f64()?,
                        rstar: r.take_f64()?,
                    })
                })
                .collect::<Result<Vec<_>, FevesError>>()?,
        )
    } else {
        None
    };
    let has_lp = r.take_bool()?;
    let lp = r.take_usize()?;
    r.expect_end("DIST section")?;
    Ok(Distribution {
        me,
        interp,
        sme,
        delta_m,
        delta_l,
        sigma,
        sigma_rem,
        rstar_device,
        predicted,
        predicted_device,
        lp_iterations: has_lp.then_some(lp),
    })
}

/// Serialize `ctx` + `state` into a [`CheckpointBlob`] ready for
/// [`CheckpointBlob::to_bytes`].
pub fn encode_checkpoint(ctx: &ResumeContext, state: &FrameworkState) -> CheckpointBlob {
    let mut blob = CheckpointBlob::new(ctx.fingerprint());
    blob.push_section(TAG_META, ctx.to_bytes());
    blob.push_section(TAG_PERF, state.perf.to_ckpt_bytes());
    blob.push_section(TAG_HLTH, health_to_bytes(&state.health));
    {
        let mut w = ByteWriter::new();
        w.put_usize_slice(&state.drift.streak);
        w.put_usize(state.drift.flagged.len());
        for &f in &state.drift.flagged {
            w.put_bool(f);
        }
        blob.push_section(TAG_DRFT, w.into_bytes());
    }
    {
        let mut w = ByteWriter::new();
        w.put_f64(state.noise.amp);
        for k in state.noise.key {
            w.put_u32(k);
        }
        w.put_u64(state.noise.counter);
        w.put_u64(state.noise.idx);
        blob.push_section(TAG_NOIS, w.into_bytes());
    }
    {
        let mut w = ByteWriter::new();
        w.put_usize_slice(&state.dam_sigma_rem);
        w.put_usize(state.dam_frames_committed);
        blob.push_section(TAG_DAMS, w.into_bytes());
    }
    {
        let mut w = ByteWriter::new();
        w.put_usize(state.inter_count);
        w.put_usize(state.frames_encoded);
        w.put_usize(state.refs_available);
        w.put_bool(state.expected_tau.is_some());
        let (t1, t2, tt) = state.expected_tau.unwrap_or((0.0, 0.0, 0.0));
        w.put_f64(t1);
        w.put_f64(t2);
        w.put_f64(tt);
        w.put_u64(state.ft_stats.injected);
        w.put_u64(state.ft_stats.detected);
        w.put_u64(state.ft_stats.recovered);
        w.put_u64(state.ft_stats.resolves);
        w.put_u64(state.ft_stats.redispatched_rows);
        w.put_u64(state.ft_stats.drift_vs_fault);
        blob.push_section(TAG_CURS, w.into_bytes());
    }
    if let Some(rate) = &state.rate {
        let mut w = ByteWriter::new();
        w.put_f64(rate.target_bits_per_frame);
        w.put_f64(rate.buffer);
        w.put_u8(rate.qp);
        w.put_u8(rate.min_qp);
        w.put_u8(rate.max_qp);
        blob.push_section(TAG_RATE, w.into_bytes());
    }
    if let Some(dist) = &state.prev_dist {
        blob.push_section(TAG_DIST, dist_to_bytes(dist));
    }
    {
        let mut w = ByteWriter::new();
        w.put_usize(state.refs.len());
        for (luma, chroma) in &state.refs {
            put_plane(&mut w, luma);
            w.put_bool(chroma.is_some());
            if let Some((cb, cr)) = chroma {
                put_plane(&mut w, cb);
                put_plane(&mut w, cr);
            }
        }
        blob.push_section(TAG_REFS, w.into_bytes());
    }
    if let Some((y, u, v)) = &state.recon_pending {
        let mut w = ByteWriter::new();
        put_plane(&mut w, y);
        put_plane(&mut w, u);
        put_plane(&mut w, v);
        blob.push_section(TAG_PEND, w.into_bytes());
    }
    blob
}

/// Decode a [`CheckpointBlob`] back into the resume context and framework
/// state. Structural problems are [`FevesError::CheckpointCorrupt`]; the
/// caller still has to cross-check the blob against the live world
/// (fingerprint, input bytes, output length) before trusting it.
pub fn decode_checkpoint(
    blob: &CheckpointBlob,
) -> Result<(ResumeContext, FrameworkState), FevesError> {
    let ctx = ResumeContext::from_bytes(blob.require_section(TAG_META)?)?;
    if blob.fingerprint != ctx.fingerprint() {
        return Err(FevesError::CheckpointStale(format!(
            "header fingerprint {:#018x} does not match the job described in META ({:#018x})",
            blob.fingerprint,
            ctx.fingerprint()
        )));
    }
    let perf = PerfChar::from_ckpt_bytes(blob.require_section(TAG_PERF)?)?;
    let health = health_from_bytes(blob.require_section(TAG_HLTH)?)?;
    let drift = {
        let mut r = ByteReader::new(blob.require_section(TAG_DRFT)?);
        let streak = r.take_usize_vec()?;
        let n = r.take_usize()?;
        if r.remaining() < n {
            return Err(FevesError::CheckpointCorrupt(
                "truncated drift flag vector".into(),
            ));
        }
        let flagged = (0..n)
            .map(|_| r.take_bool())
            .collect::<Result<Vec<_>, _>>()?;
        r.expect_end("DRFT section")?;
        DriftSnapshot { streak, flagged }
    };
    let noise = {
        let mut r = ByteReader::new(blob.require_section(TAG_NOIS)?);
        let amp = r.take_f64()?;
        let mut key = [0u32; 8];
        for k in &mut key {
            *k = r.take_u32()?;
        }
        let counter = r.take_u64()?;
        let idx = r.take_u64()?;
        r.expect_end("NOIS section")?;
        if !(0.0..1.0).contains(&amp) {
            return Err(FevesError::CheckpointCorrupt(format!(
                "noise amplitude {amp} outside [0,1)"
            )));
        }
        NoiseState {
            amp,
            key,
            counter,
            idx,
        }
    };
    let (dam_sigma_rem, dam_frames_committed) = {
        let mut r = ByteReader::new(blob.require_section(TAG_DAMS)?);
        let sr = r.take_usize_vec()?;
        let fc = r.take_usize()?;
        r.expect_end("DAMS section")?;
        (sr, fc)
    };
    let (inter_count, frames_encoded, refs_available, expected_tau, ft_stats) = {
        let mut r = ByteReader::new(blob.require_section(TAG_CURS)?);
        let ic = r.take_usize()?;
        let fe = r.take_usize()?;
        let ra = r.take_usize()?;
        let has_tau = r.take_bool()?;
        let tau = (r.take_f64()?, r.take_f64()?, r.take_f64()?);
        let stats = FtStats {
            injected: r.take_u64()?,
            detected: r.take_u64()?,
            recovered: r.take_u64()?,
            resolves: r.take_u64()?,
            redispatched_rows: r.take_u64()?,
            drift_vs_fault: r.take_u64()?,
        };
        r.expect_end("CURS section")?;
        (ic, fe, ra, has_tau.then_some(tau), stats)
    };
    let rate = match blob.section(TAG_RATE) {
        Some(bytes) => {
            let mut r = ByteReader::new(bytes);
            let snap = RateSnapshot {
                target_bits_per_frame: r.take_f64()?,
                buffer: r.take_f64()?,
                qp: r.take_u8()?,
                min_qp: r.take_u8()?,
                max_qp: r.take_u8()?,
            };
            r.expect_end("RATE section")?;
            Some(snap)
        }
        None => None,
    };
    let prev_dist = match blob.section(TAG_DIST) {
        Some(bytes) => Some(dist_from_bytes(bytes)?),
        None => None,
    };
    let refs = {
        let mut r = ByteReader::new(blob.require_section(TAG_REFS)?);
        let n = r.take_usize()?;
        if n > 64 {
            return Err(FevesError::CheckpointCorrupt(format!(
                "implausible reference count {n}"
            )));
        }
        let mut refs = Vec::with_capacity(n);
        for _ in 0..n {
            let luma = take_plane(&mut r)?;
            let chroma = if r.take_bool()? {
                Some((take_plane(&mut r)?, take_plane(&mut r)?))
            } else {
                None
            };
            refs.push((luma, chroma));
        }
        r.expect_end("REFS section")?;
        refs
    };
    let recon_pending = match blob.section(TAG_PEND) {
        Some(bytes) => {
            let mut r = ByteReader::new(bytes);
            let p = (
                take_plane(&mut r)?,
                take_plane(&mut r)?,
                take_plane(&mut r)?,
            );
            r.expect_end("PEND section")?;
            Some(p)
        }
        None => None,
    };
    Ok((
        ctx,
        FrameworkState {
            perf,
            dam_sigma_rem,
            dam_frames_committed,
            noise,
            prev_dist,
            inter_count,
            frames_encoded,
            refs_available,
            rate,
            refs,
            recon_pending,
            health,
            expected_tau,
            ft_stats,
            drift,
        },
    ))
}

/// File name of generation `frames_done` (zero-padded so lexicographic
/// order is generation order).
fn generation_name(frames_done: usize) -> String {
    format!("ckpt-{frames_done:06}.ckpt")
}

/// Writes checkpoint generations into a directory with the
/// temp+fsync+rename protocol and bounded retention.
#[derive(Clone, Debug)]
pub struct CheckpointManager {
    dir: PathBuf,
    keep: usize,
}

impl CheckpointManager {
    /// Manager writing into `dir`, retaining the newest `keep` generations
    /// (min 1).
    pub fn new(dir: impl Into<PathBuf>, keep: usize) -> Self {
        CheckpointManager {
            dir: dir.into(),
            keep: keep.max(1),
        }
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Durably commit one generation: serialize, write `.tmp`, fsync,
    /// rename to `ckpt-NNNNNN.ckpt`, fsync the directory, prune old
    /// generations. Returns the committed path.
    ///
    /// Metrics go to `rec` (not the global registry) so checkpointing never
    /// perturbs an encode session's golden metric set unless the caller
    /// opts in.
    pub fn write(
        &self,
        ctx: &ResumeContext,
        state: &FrameworkState,
        rec: &dyn Recorder,
    ) -> std::io::Result<PathBuf> {
        let started = Instant::now();
        fs::create_dir_all(&self.dir)?;
        let bytes = encode_checkpoint(ctx, state).to_bytes();
        let tmp = self.dir.join(format!(".ckpt-{:06}.tmp", ctx.frames_done));
        let dest = self.dir.join(generation_name(ctx.frames_done));
        let backend = backend_for(&self.dir);
        let policy = RetryPolicy::new(
            std::time::Duration::from_millis(2),
            3,
            ctx.fingerprint() ^ ctx.frames_done as u64,
        );
        // The whole temp-write-then-rename sequence re-runs on a transient
        // fault: a torn temp or torn rename destination from the failed
        // attempt is simply overwritten by the next one.
        let (result, retries) = retry_io(&policy, || {
            {
                let mut f = backend.create(&tmp)?;
                // Two writes with a crash hook between them so the chaos
                // harness can produce a genuinely torn temp file.
                let half = bytes.len() / 2;
                f.write_all(&bytes[..half])?;
                crash_point("ckpt-mid-write");
                f.write_all(&bytes[half..])?;
                f.sync()?;
            }
            crash_point("ckpt-temp");
            backend.rename(&tmp, &dest)?;
            crash_point("ckpt-rename");
            Ok(())
        });
        if retries > 0 && rec.enabled() {
            rec.add(Metric::IoRetries, u64::from(retries));
        }
        if let Err(e) = result {
            if rec.enabled() && classify(&e) == IoErrorClass::Enospc {
                rec.add(Metric::IoEnospcEvents, 1);
            }
            let _ = backend.remove_file(&tmp);
            return Err(e);
        }
        let _ = backend.sync_dir(&self.dir);
        self.prune();
        if rec.enabled() {
            rec.add(Metric::CkptWrites, 1);
            rec.add(Metric::CkptBytes, bytes.len() as u64);
            rec.observe(Metric::CkptWriteMs, started.elapsed().as_secs_f64() * 1e3);
        }
        Ok(dest)
    }

    /// Delete generations beyond the retention bound (oldest first) and any
    /// abandoned `.tmp` files from crashed writes. Best-effort: pruning
    /// failures never fail the checkpoint that was just committed.
    fn prune(&self) {
        let mut generations = list_generations(&self.dir);
        // Newest `keep` survive; `list_generations` sorts ascending.
        while generations.len() > self.keep {
            let (_, path) = generations.remove(0);
            let _ = fs::remove_file(path);
        }
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for e in entries.flatten() {
                let name = e.file_name().to_string_lossy().into_owned();
                if name.starts_with(".ckpt-") && name.ends_with(".tmp") {
                    let _ = fs::remove_file(e.path());
                }
            }
        }
    }
}

/// `(frames_done, path)` for every committed generation in `dir`,
/// ascending by generation.
fn list_generations(dir: &Path) -> Vec<(usize, PathBuf)> {
    let mut out = Vec::new();
    if let Ok(entries) = fs::read_dir(dir) {
        for e in entries.flatten() {
            let name = e.file_name().to_string_lossy().into_owned();
            if let Some(num) = name
                .strip_prefix("ckpt-")
                .and_then(|s| s.strip_suffix(".ckpt"))
            {
                if let Ok(n) = num.parse::<usize>() {
                    out.push((n, e.path()));
                }
            }
        }
    }
    out.sort();
    out
}

/// Load and validate one checkpoint file: read, CRC/version/structure
/// checks, decode. Read failures count as corrupt (the caller falls back).
pub fn load_checkpoint_file(path: &Path) -> Result<(ResumeContext, FrameworkState), FevesError> {
    let bytes = backend_for(path)
        .read(path)
        .map_err(|e| FevesError::CheckpointCorrupt(format!("read {}: {e}", path.display())))?;
    let blob = CheckpointBlob::from_bytes(&bytes)?;
    decode_checkpoint(&blob)
}

/// Load the newest usable generation from `dir`. Generations that fail
/// validation are skipped newest-first, each contributing a warning line;
/// the error case is "no usable checkpoint at all" (carrying every
/// generation's rejection reason).
pub fn load_latest(
    dir: &Path,
) -> Result<(PathBuf, ResumeContext, FrameworkState, Vec<String>), FevesError> {
    let generations = list_generations(dir);
    if generations.is_empty() {
        return Err(FevesError::CheckpointCorrupt(format!(
            "no checkpoint generations in {}",
            dir.display()
        )));
    }
    let mut warnings = Vec::new();
    for (_, path) in generations.iter().rev() {
        match load_checkpoint_file(path) {
            Ok((ctx, state)) => return Ok((path.clone(), ctx, state, warnings)),
            Err(e) => warnings.push(format!("skipping {}: {e}", path.display())),
        }
    }
    Err(FevesError::CheckpointCorrupt(format!(
        "no usable checkpoint in {}: {}",
        dir.display(),
        warnings.join("; ")
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use feves_obs::NoopRecorder;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("feves-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_ctx() -> ResumeContext {
        ResumeContext {
            input: "in.y4m".into(),
            output: "out.y4m".into(),
            platform: "sys-hk".into(),
            platform_json: None,
            sa: 32,
            refs: 2,
            qp: 28,
            balancer: "lp".into(),
            kernels: Some("swar".into()),
            faults: vec!["gpu0@3:transfer".into()],
            deadline_factor: Some(3.0),
            flight_out: None,
            metrics_out: Some("metrics.json".into()),
            every: 4,
            keep: 2,
            frames_done: 12,
            n_frames: 50,
            out_bytes: 123_456,
            input_fingerprint: 0xDEAD_BEEF_F00D_CAFE,
            pipeline: true,
            out_crc: 0x1234_5678,
        }
    }

    fn sample_state(n: usize) -> FrameworkState {
        let mut perf = PerfChar::new(n, feves_sched::Ewma(0.5));
        // Leave device rates partially characterized: NaN sentinels must
        // survive the round trip.
        perf.record_compute(0, feves_codec::types::Module::Me, 10, 0.5);
        let luma = Plane::from_vec(vec![7u8; 64 * 32], 64, 32);
        let cb = Plane::from_vec(vec![3u8; 32 * 16], 32, 16);
        let cr = Plane::from_vec(vec![4u8; 32 * 16], 32, 16);
        FrameworkState {
            perf,
            dam_sigma_rem: vec![0; n],
            dam_frames_committed: 12,
            noise: NoiseState {
                amp: 0.02,
                key: [1, 2, 3, 4, 5, 6, 7, 8],
                counter: 9,
                idx: 5,
            },
            prev_dist: Some(Distribution {
                me: vec![40, 28],
                interp: vec![38, 30],
                sme: vec![41, 27],
                delta_m: vec![1, 1],
                delta_l: vec![0, 2],
                sigma: vec![10, 10],
                sigma_rem: vec![0, 3],
                rstar_device: 0,
                predicted: Some(PredictedTimes {
                    tau1: 10.0,
                    tau2: 14.0,
                    tau_tot: 21.0,
                }),
                predicted_device: Some(vec![
                    DevicePrediction {
                        phase1: 8.0,
                        phase2: 4.0,
                        rstar: 5.0,
                    },
                    DevicePrediction {
                        phase1: 7.0,
                        phase2: 3.0,
                        rstar: 0.0,
                    },
                ]),
                lp_iterations: Some(17),
            }),
            inter_count: 11,
            frames_encoded: 12,
            refs_available: 2,
            rate: Some(RateSnapshot {
                target_bits_per_frame: 120_000.0,
                buffer: -4_000.0,
                qp: 29,
                min_qp: 10,
                max_qp: 48,
            }),
            refs: vec![(luma.clone(), Some((cb, cr))), (luma, None)],
            recon_pending: Some((
                Plane::from_vec(vec![1u8; 64 * 32], 64, 32),
                Plane::from_vec(vec![2u8; 32 * 16], 32, 16),
                Plane::from_vec(vec![3u8; 32 * 16], 32, 16),
            )),
            health: HealthSnapshot {
                state: vec![DeviceHealth::Healthy, DeviceHealth::Blacklisted],
                readmit_at: vec![0, 20],
                backoff: vec![2, 8],
                probation_left: vec![0, 0],
                faults: vec![0, 3],
                base_backoff: 2,
                probation_frames: 3,
            },
            expected_tau: Some((10.5, 14.5, 21.5)),
            ft_stats: FtStats {
                injected: 3,
                detected: 3,
                recovered: 2,
                resolves: 2,
                redispatched_rows: 40,
                drift_vs_fault: 1,
            },
            drift: DriftSnapshot {
                streak: vec![0, 2],
                flagged: vec![false, true],
            },
        }
    }

    fn states_equal(a: &FrameworkState, b: &FrameworkState) {
        assert_eq!(a.dam_sigma_rem, b.dam_sigma_rem);
        assert_eq!(a.dam_frames_committed, b.dam_frames_committed);
        assert_eq!(a.inter_count, b.inter_count);
        assert_eq!(a.frames_encoded, b.frames_encoded);
        assert_eq!(a.refs_available, b.refs_available);
        assert_eq!(a.rate, b.rate);
        assert_eq!(a.expected_tau, b.expected_tau);
        assert_eq!(a.health.state, b.health.state);
        assert_eq!(a.health.readmit_at, b.health.readmit_at);
        assert_eq!(a.health.backoff, b.health.backoff);
        assert_eq!(a.health.faults, b.health.faults);
        assert_eq!(a.drift.streak, b.drift.streak);
        assert_eq!(a.drift.flagged, b.drift.flagged);
        assert_eq!(a.ft_stats.injected, b.ft_stats.injected);
        assert_eq!(a.ft_stats.redispatched_rows, b.ft_stats.redispatched_rows);
        assert_eq!(a.noise.key, b.noise.key);
        assert_eq!(a.noise.counter, b.noise.counter);
        assert_eq!(a.noise.idx, b.noise.idx);
        assert_eq!(a.refs.len(), b.refs.len());
        for ((la, ca), (lb, cb)) in a.refs.iter().zip(&b.refs) {
            assert_eq!(la.as_slice(), lb.as_slice());
            assert_eq!(ca.is_some(), cb.is_some());
        }
        assert_eq!(a.recon_pending.is_some(), b.recon_pending.is_some());
        assert_eq!(a.prev_dist, b.prev_dist);
        // PerfChar: compare via checkpoint bytes (NaN-safe equality).
        assert_eq!(a.perf.to_ckpt_bytes(), b.perf.to_ckpt_bytes());
    }

    #[test]
    fn encode_decode_round_trips_everything() {
        let ctx = sample_ctx();
        let state = sample_state(2);
        let blob = encode_checkpoint(&ctx, &state);
        let bytes = blob.to_bytes();
        let back = CheckpointBlob::from_bytes(&bytes).unwrap();
        let (ctx2, state2) = decode_checkpoint(&back).unwrap();
        assert_eq!(ctx, ctx2);
        states_equal(&state, &state2);
    }

    #[test]
    fn optional_sections_really_are_optional() {
        let ctx = sample_ctx();
        let mut state = sample_state(2);
        state.rate = None;
        state.prev_dist = None;
        state.recon_pending = None;
        state.expected_tau = None;
        let bytes = encode_checkpoint(&ctx, &state).to_bytes();
        let (_, state2) = decode_checkpoint(&CheckpointBlob::from_bytes(&bytes).unwrap()).unwrap();
        assert!(state2.rate.is_none());
        assert!(state2.prev_dist.is_none());
        assert!(state2.recon_pending.is_none());
        assert!(state2.expected_tau.is_none());
    }

    #[test]
    fn fingerprint_ignores_progress_but_not_job_identity() {
        let a = sample_ctx();
        let mut b = a.clone();
        b.frames_done = 40;
        b.out_bytes = 999;
        b.every = 8;
        assert_eq!(a.fingerprint(), b.fingerprint(), "progress must not matter");
        let mut c = a.clone();
        c.qp = 30;
        assert_ne!(a.fingerprint(), c.fingerprint(), "QP is job identity");
        let mut d = a.clone();
        d.input_fingerprint ^= 1;
        assert_ne!(a.fingerprint(), d.fingerprint(), "input bytes are identity");
    }

    #[test]
    fn manager_writes_prunes_and_loads_latest() {
        let dir = scratch_dir("mgr");
        let mgr = CheckpointManager::new(&dir, 2);
        let state = sample_state(2);
        for frames in [4usize, 8, 12] {
            let mut ctx = sample_ctx();
            ctx.frames_done = frames;
            mgr.write(&ctx, &state, &NoopRecorder).unwrap();
        }
        let gens = list_generations(&dir);
        assert_eq!(
            gens.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            vec![8, 12],
            "retention must keep the newest 2"
        );
        let (path, ctx, _, warnings) = load_latest(&dir).unwrap();
        assert!(path.ends_with("ckpt-000012.ckpt"), "{}", path.display());
        assert_eq!(ctx.frames_done, 12);
        assert!(warnings.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_newest_falls_back_to_previous_generation() {
        let dir = scratch_dir("fallback");
        let mgr = CheckpointManager::new(&dir, 3);
        let state = sample_state(2);
        for frames in [4usize, 8] {
            let mut ctx = sample_ctx();
            ctx.frames_done = frames;
            mgr.write(&ctx, &state, &NoopRecorder).unwrap();
        }
        // Flip one byte in the middle of the newest generation.
        let newest = dir.join(generation_name(8));
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&newest, &bytes).unwrap();
        let (path, ctx, _, warnings) = load_latest(&dir).unwrap();
        assert!(path.ends_with("ckpt-000004.ckpt"), "{}", path.display());
        assert_eq!(ctx.frames_done, 4);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("ckpt-000008"), "{}", warnings[0]);
        // All generations corrupted → typed failure listing each reason.
        let oldest = dir.join(generation_name(4));
        fs::write(&oldest, b"FEVESCKPgarbage").unwrap();
        let err = load_latest(&dir).unwrap_err();
        assert!(matches!(err, FevesError::CheckpointCorrupt(_)), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_file_is_rejected_as_torn() {
        let dir = scratch_dir("torn");
        let mgr = CheckpointManager::new(&dir, 2);
        let ctx = sample_ctx();
        let path = mgr.write(&ctx, &sample_state(2), &NoopRecorder).unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        let err = load_checkpoint_file(&path).unwrap_err();
        assert!(matches!(err, FevesError::CheckpointCorrupt(_)), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn abandoned_tmp_files_are_ignored_and_pruned() {
        let dir = scratch_dir("tmp");
        let mgr = CheckpointManager::new(&dir, 2);
        // Simulate a crash mid-write: a torn .tmp from a dead process.
        fs::write(dir.join(".ckpt-000099.tmp"), b"torn").unwrap();
        let ctx = sample_ctx();
        mgr.write(&ctx, &sample_state(2), &NoopRecorder).unwrap();
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            !names.iter().any(|n| n.ends_with(".tmp")),
            "tmp not pruned: {names:?}"
        );
        let (_, ctx2, _, _) = load_latest(&dir).unwrap();
        assert_eq!(ctx2.frames_done, ctx.frames_done);
        let _ = fs::remove_dir_all(&dir);
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(48))]

        /// Bit-flips anywhere in a full checkpoint image decode to a typed
        /// error (container CRC layer), and truncations likewise — decoding
        /// adversarial images never panics or silently succeeds.
        #[test]
        fn mutated_checkpoint_images_fail_typed(
            flip_sel in proptest::any::<u64>(),
            bit in 0u8..8,
            cut_sel in proptest::any::<u64>(),
        ) {
            let bytes = encode_checkpoint(&sample_ctx(), &sample_state(2)).to_bytes();
            let mut flipped = bytes.clone();
            let idx = (flip_sel % flipped.len() as u64) as usize;
            flipped[idx] ^= 1 << bit;
            let res = CheckpointBlob::from_bytes(&flipped).and_then(|b| decode_checkpoint(&b));
            proptest::prop_assert!(res.is_err(), "flip at byte {} decoded silently", idx);

            let cut = (cut_sel % bytes.len() as u64) as usize;
            let res = CheckpointBlob::from_bytes(&bytes[..cut]).and_then(|b| decode_checkpoint(&b));
            proptest::prop_assert!(res.is_err(), "truncation to {} decoded silently", cut);
        }
    }

    #[test]
    fn header_meta_fingerprint_mismatch_is_stale() {
        let ctx = sample_ctx();
        let state = sample_state(2);
        let mut blob = encode_checkpoint(&ctx, &state);
        blob.fingerprint ^= 1;
        // Re-frame with the altered fingerprint (to_bytes recomputes CRCs).
        let back = CheckpointBlob::from_bytes(&blob.to_bytes()).unwrap();
        let err = decode_checkpoint(&back).unwrap_err();
        assert!(matches!(err, FevesError::CheckpointStale(_)), "{err}");
    }
}
