//! Inter-frame submit/reap pipeline (ROADMAP item 2).
//!
//! The lockstep control loop reaps each frame at its τtot barrier before
//! submitting the next: every device that finished its stripes early idles
//! until the slowest one crosses the barrier, then idles again through the
//! LP re-solve. The flight recorder's idle attribution (PR 4) shows this
//! τ-sync stall directly. This module extends the paper's Fig-4 overlap
//! from intra-frame to inter-frame: frame N+1's ME/INT phase is pulled
//! forward onto devices that have finished their frame-N stripes while
//! frame N's R\* merge and entropy coding drain.
//!
//! # State machine
//!
//! A frame *generation* moves through three states:
//!
//! ```text
//!   open(gen)          complete(gen, tracker)        reap()
//! ─────────────► Open ────────────────────────► Drainable ─────► reaped
//!                  │                                 │
//!                  └──────────── quiesce() ──────────┘ (reaps everything,
//!                                                       FIFO, → boundary)
//! ```
//!
//! At most **two** generations are in flight (`MAX_IN_FLIGHT`); each owns
//! the DAM buffer slot `gen % 2`, so consecutive generations never alias
//! RF/SF state (see [`crate::dam::DataManager::begin_generation`]). Reap
//! order always equals submit order — the reap main line never reorders.
//! `quiesce()` drains every open generation and returns the pipeline to a
//! frame boundary; checkpoints may only commit there.
//!
//! # Equivalence by construction
//!
//! Overlap is *accounting*, not a different execution: the per-frame graph
//! construction, LP solve and simulation are identical in both modes, so
//! the bitstream and the perf-characterization stream are byte-for-byte
//! the same under `--pipeline off|on`. What changes is the effective
//! wall-clock attributed to each frame: generation N+1's data-independent
//! phase-1 prefix (CF upload + ME against already-resident references)
//! runs inside generation N's per-device stall, and the time recovered is
//! subtracted from N+1's reported sync points. The LP re-solve likewise
//! moves off the critical path — it uses the previous frame's
//! measurements, which the lockstep loop already did, so pipelining it
//! costs nothing and hides its latency.

use feves_sched::CompletionTracker;

/// Maximum frame generations in flight (double-buffered DAM state).
pub const MAX_IN_FLIGHT: usize = 2;

/// One in-flight frame generation.
#[derive(Clone, Debug)]
struct Generation {
    gen: u64,
    /// Filled by `complete()`; a generation with measurements is drainable.
    tracker: Option<CompletionTracker>,
    /// Pipeline depth observed when this generation was submitted.
    depth_at_submit: usize,
}

/// Overlap accounting for one completed generation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PipelineOverlap {
    /// The generation these numbers describe.
    pub gen: u64,
    /// Wall-clock seconds shaved off this frame's critical path by running
    /// its phase-1 prefix inside the previous generation's idle tails.
    pub saved_s: f64,
    /// Per-device seconds of previous-generation τ-sync stall recovered.
    pub recovered_s: Vec<f64>,
    /// In-flight depth at the time this generation was submitted (1 for
    /// the first frame after a boundary, 2 in steady state).
    pub depth_at_submit: usize,
}

impl PipelineOverlap {
    /// Total stall recovered across all devices, in seconds.
    pub fn total_recovered_s(&self) -> f64 {
        self.recovered_s.iter().sum()
    }
}

/// The submit/reap pipeline over frame generations.
///
/// When `enabled` is false the pipeline still tracks generations (so the
/// state machine, flight records and checkpoint quiesce behave uniformly)
/// but carries no stall between frames: every overlap is zero and depth
/// returns to 0 after each frame — exactly the lockstep loop.
#[derive(Clone, Debug)]
pub struct FramePipeline {
    enabled: bool,
    next_gen: u64,
    in_flight: Vec<Generation>,
    /// Per-device stall of the most recently completed generation — the
    /// idle tail the *next* generation's phase-1 prefix may fill.
    carry: Option<Vec<f64>>,
    submit_log: Vec<u64>,
    reap_log: Vec<u64>,
}

impl FramePipeline {
    /// New pipeline; `enabled` selects overlap accounting vs lockstep.
    pub fn new(enabled: bool) -> Self {
        FramePipeline {
            enabled,
            next_gen: 0,
            in_flight: Vec::new(),
            carry: None,
            submit_log: Vec::new(),
            reap_log: Vec::new(),
        }
    }

    /// Whether inter-frame overlap accounting is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Generations currently in flight (0 = quiesced frame boundary).
    pub fn in_flight_depth(&self) -> usize {
        self.in_flight.len()
    }

    /// True at a frame boundary: no generation open, safe to checkpoint.
    pub fn is_quiesced(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// DAM buffer slot owned by `gen`.
    pub fn slot_of(gen: u64) -> usize {
        (gen % MAX_IN_FLIGHT as u64) as usize
    }

    /// Submits the next frame generation. Panics if the pipeline is full —
    /// the caller must reap (or quiesce) before submitting a third
    /// generation; there are only two DAM buffer slots.
    pub fn open(&mut self) -> u64 {
        assert!(
            self.in_flight.len() < MAX_IN_FLIGHT,
            "pipeline full: reap before submitting a third generation"
        );
        let gen = self.next_gen;
        self.next_gen += 1;
        self.in_flight.push(Generation {
            gen,
            tracker: None,
            depth_at_submit: self.in_flight.len() + 1,
        });
        self.submit_log.push(gen);
        gen
    }

    /// Records `gen`'s measured per-device completion times and returns its
    /// overlap against the previous generation's carried stall. `gen` must
    /// be the newest open generation (measurements arrive in submit order).
    pub fn complete(&mut self, gen: u64, tracker: CompletionTracker) -> PipelineOverlap {
        let slot = self
            .in_flight
            .last_mut()
            .expect("complete() on an empty pipeline");
        assert_eq!(slot.gen, gen, "measurements must arrive in submit order");
        assert!(slot.tracker.is_none(), "generation completed twice");
        let depth = slot.depth_at_submit;

        let n = tracker.n_devices();
        let overlap = match (self.enabled, self.carry.as_ref()) {
            (true, Some(stall)) => {
                // Phase-1 prefix of this generation, per device, that fits
                // inside the previous generation's idle tail.
                let recovered: Vec<f64> = (0..n)
                    .map(|d| {
                        let carried = stall.get(d).copied().unwrap_or(0.0);
                        tracker.phase1_of(d).min(carried)
                    })
                    .collect();
                // τ1 is set by the slowest phase-1 device; shifting each
                // device's phase-1 earlier by its recovered span moves the
                // barrier by the smallest such shift.
                let tau1 = tracker.phase1().iter().cloned().fold(0.0_f64, f64::max);
                let shifted = (0..n)
                    .map(|d| tracker.phase1_of(d) - recovered[d])
                    .fold(0.0_f64, f64::max);
                let saved = (tau1 - shifted).clamp(0.0, tau1);
                PipelineOverlap {
                    gen,
                    saved_s: saved,
                    recovered_s: recovered,
                    depth_at_submit: depth,
                }
            }
            _ => PipelineOverlap {
                gen,
                saved_s: 0.0,
                recovered_s: vec![0.0; n],
                depth_at_submit: depth,
            },
        };

        // This generation's idle tails become the carry for the next one.
        self.carry = if self.enabled {
            Some(tracker.stalls())
        } else {
            None
        };
        slot.tracker = Some(tracker);
        overlap
    }

    /// Reaps the oldest generation (FIFO — reap order equals submit
    /// order). Panics if it has not been completed yet.
    pub fn reap(&mut self) -> u64 {
        assert!(!self.in_flight.is_empty(), "reap() on an empty pipeline");
        assert!(
            self.in_flight[0].tracker.is_some(),
            "reap() before complete(): the oldest generation is still open"
        );
        let g = self.in_flight.remove(0);
        self.reap_log.push(g.gen);
        g.gen
    }

    /// Drains every in-flight generation (FIFO) and drops the carried
    /// stall, returning the pipeline to a frame boundary. Used before
    /// checkpoints (a snapshot must capture a single consistent frame
    /// state) and by fault recovery (the reduced-platform re-solve must
    /// not inherit stalls measured on the old platform). Generations that
    /// never got measurements are reaped as-is — their work is forfeit.
    ///
    /// Returns the generations reaped, in reap order.
    pub fn quiesce(&mut self) -> Vec<u64> {
        let mut reaped = Vec::with_capacity(self.in_flight.len());
        while !self.in_flight.is_empty() {
            let g = self.in_flight.remove(0);
            self.reap_log.push(g.gen);
            reaped.push(g.gen);
        }
        self.carry = None;
        reaped
    }

    /// Generations submitted so far, in order.
    pub fn submit_log(&self) -> &[u64] {
        &self.submit_log
    }

    /// Generations reaped so far, in order.
    pub fn reap_log(&self) -> &[u64] {
        &self.reap_log
    }

    /// The carried per-device stall awaiting the next generation, if any.
    pub fn carry(&self) -> Option<&[f64]> {
        self.carry.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(finishes: &[(f64, f64)]) -> CompletionTracker {
        // (phase1_finish, total_finish) per device.
        let mut t = CompletionTracker::new(finishes.len());
        for (d, &(p1, tot)) in finishes.iter().enumerate() {
            t.record(d, p1, true);
            t.record(d, tot, false);
        }
        t
    }

    #[test]
    fn lockstep_mode_never_carries_or_saves() {
        let mut p = FramePipeline::new(false);
        for _ in 0..3 {
            let g = p.open();
            let o = p.complete(g, tracker(&[(1.0, 4.0), (2.0, 10.0)]));
            assert_eq!(o.saved_s, 0.0);
            assert_eq!(o.total_recovered_s(), 0.0);
            assert_eq!(o.depth_at_submit, 1);
            p.reap();
            assert!(p.is_quiesced());
            assert!(p.carry().is_none());
        }
    }

    #[test]
    fn steady_state_recovers_stall_into_phase1() {
        let mut p = FramePipeline::new(true);
        // Frame 0: device 0 stalls 6 s, device 1 sets the barrier.
        let g0 = p.open();
        let o0 = p.complete(g0, tracker(&[(3.0, 4.0), (5.0, 10.0)]));
        assert_eq!(o0.saved_s, 0.0); // nothing to overlap into yet
        assert_eq!(p.carry().unwrap(), &[6.0, 0.0]);

        // Frame 1 opens while frame 0 drains: depth 2.
        let g1 = p.open();
        assert_eq!(p.in_flight_depth(), 2);
        p.reap(); // frame 0's R*/entropy drain completes
                  // Frame 1: phase-1 of device 0 (3 s) fits entirely inside its 6 s
                  // stall; device 1 had no stall. τ1 = 5 is set by device 1, so the
                  // barrier cannot move: saved = 0 but 3 s of stall were recovered.
        let o1 = p.complete(g1, tracker(&[(3.0, 4.0), (5.0, 10.0)]));
        assert_eq!(o1.depth_at_submit, 2);
        assert_eq!(o1.recovered_s, vec![3.0, 0.0]);
        assert_eq!(o1.saved_s, 0.0);

        // Frame 2: make the stalled device the τ1 critical path. Frame 1
        // carried stalls [6, 0] (device 0 idled from 4 to the barrier at
        // 10). Device 0's 5 s phase-1 now sets τ1 = 5 and fits entirely
        // inside its 6 s stall; device 1 carried nothing, so its 2 s
        // phase-1 cannot shift: shifted = max(5−5, 2−0) = 2, saved = 3.
        let g2 = p.open();
        p.reap();
        let o2 = p.complete(g2, tracker(&[(5.0, 9.0), (2.0, 9.0)]));
        assert_eq!(o2.recovered_s, vec![5.0, 0.0]);
        assert!((o2.saved_s - 3.0).abs() < 1e-12);
        // recovered_d ≤ carry ∧ recovered_d ≤ p1_d; saved ≤ τ1.
        assert!(o2.saved_s <= 5.0);
    }

    #[test]
    fn reap_order_equals_submit_order() {
        let mut p = FramePipeline::new(true);
        for _ in 0..5 {
            let g = p.open();
            p.complete(g, tracker(&[(1.0, 2.0)]));
            if p.in_flight_depth() == MAX_IN_FLIGHT {
                p.reap();
            }
        }
        p.quiesce();
        assert_eq!(p.submit_log(), p.reap_log());
    }

    #[test]
    fn quiesce_reaches_frame_boundary_and_drops_carry() {
        let mut p = FramePipeline::new(true);
        let g0 = p.open();
        p.complete(g0, tracker(&[(1.0, 3.0), (2.0, 2.0)]));
        let _g1 = p.open();
        assert!(!p.is_quiesced());
        let reaped = p.quiesce();
        assert_eq!(reaped, vec![0, 1]);
        assert!(p.is_quiesced());
        assert!(p.carry().is_none());
        // The next generation starts cold — no stale stall crosses the
        // boundary (checkpoint or reduced-platform re-solve).
        let g2 = p.open();
        let o = p.complete(g2, tracker(&[(1.0, 3.0), (2.0, 2.0)]));
        assert_eq!(o.saved_s, 0.0);
        assert_eq!(o.total_recovered_s(), 0.0);
    }

    #[test]
    fn consecutive_generations_use_distinct_slots() {
        let mut p = FramePipeline::new(true);
        let a = p.open();
        p.complete(a, tracker(&[(1.0, 1.0)]));
        let b = p.open();
        assert_ne!(FramePipeline::slot_of(a), FramePipeline::slot_of(b));
        p.reap();
        p.quiesce();
    }

    #[test]
    #[should_panic(expected = "pipeline full")]
    fn third_open_generation_panics() {
        let mut p = FramePipeline::new(true);
        let a = p.open();
        p.complete(a, tracker(&[(1.0, 1.0)]));
        p.open();
        p.open();
    }
}
