//! Per-frame and per-sequence encoding reports.

use feves_obs::percentile_exact;
use feves_sched::Distribution;
use serde::{Deserialize, Serialize};

/// Percentile rollup of one per-frame series (exact nearest-rank over the
/// recorded values, not histogram-bucketed).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Rollup {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Rollup {
    /// Compute from a series; `None` when empty.
    pub fn from_values(mut values: Vec<f64>) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        Some(Rollup {
            p50: percentile_exact(&mut values, 50.0),
            p95: percentile_exact(&mut values, 95.0),
            p99: percentile_exact(&mut values, 99.0),
        })
    }
}

/// Everything recorded about one encoded frame.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrameReport {
    /// Inter-frame index (1-based, as in Fig 7); 0 for the I-frame.
    pub frame: usize,
    /// True for the leading intra frame.
    pub is_intra: bool,
    /// τ1 on the virtual clock (seconds); 0 for intra.
    pub tau1: f64,
    /// τ2 (seconds).
    pub tau2: f64,
    /// τtot — the frame's encoding time (seconds).
    pub tau_tot: f64,
    /// Reference frames actually searched.
    pub refs_used: usize,
    /// Wall-clock scheduling overhead of the balancer (seconds) — the
    /// paper's "< 2 ms per inter-frame" claim.
    pub sched_overhead: f64,
    /// The distribution used (None for intra).
    pub distribution: Option<Distribution>,
    /// Coded bits (functional mode only).
    pub bits: Option<u64>,
    /// Luma PSNR of the reconstruction vs the source (functional only).
    pub psnr_y: Option<f64>,
}

impl FrameReport {
    /// Report for the leading I-frame.
    pub fn intra(bits: u64, psnr: f64) -> Self {
        FrameReport {
            frame: 0,
            is_intra: true,
            tau1: 0.0,
            tau2: 0.0,
            tau_tot: 0.0,
            refs_used: 0,
            sched_overhead: 0.0,
            distribution: None,
            bits: Some(bits),
            psnr_y: Some(psnr),
        }
    }

    /// Report for an inter-frame.
    #[allow(clippy::too_many_arguments)]
    pub fn inter(
        frame: usize,
        tau1: f64,
        tau2: f64,
        tau_tot: f64,
        refs_used: usize,
        sched_overhead: f64,
        distribution: Distribution,
        bits: Option<u64>,
        psnr_y: Option<f64>,
    ) -> Self {
        FrameReport {
            frame,
            is_intra: false,
            tau1,
            tau2,
            tau_tot,
            refs_used,
            sched_overhead,
            distribution: Some(distribution),
            bits,
            psnr_y,
        }
    }

    /// Frames per second this frame achieves.
    pub fn fps(&self) -> f64 {
        if self.tau_tot > 0.0 {
            1.0 / self.tau_tot
        } else {
            f64::INFINITY
        }
    }

    /// Real-time per the paper's threshold (≥ 25 fps).
    pub fn is_realtime(&self) -> bool {
        self.fps() >= 25.0
    }
}

/// A whole encoded sequence.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EncodeReport {
    /// Platform name (e.g. `"SysHK"`).
    pub platform: String,
    /// Per-frame records.
    pub frames: Vec<FrameReport>,
}

impl EncodeReport {
    /// Wrap per-frame reports.
    pub fn new(platform: String, frames: Vec<FrameReport>) -> Self {
        EncodeReport { platform, frames }
    }

    /// Inter-frames only.
    pub fn inter_frames(&self) -> impl Iterator<Item = &FrameReport> {
        self.frames.iter().filter(|f| !f.is_intra)
    }

    /// Mean inter-frame encoding time in seconds.
    pub fn mean_frame_time(&self) -> f64 {
        let (sum, n) = self
            .inter_frames()
            .fold((0.0, 0usize), |(s, n), f| (s + f.tau_tot, n + 1));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Mean encoding speed in fps (reciprocal of the mean frame time, the
    /// convention the paper plots).
    pub fn mean_fps(&self) -> f64 {
        let t = self.mean_frame_time();
        if t > 0.0 {
            1.0 / t
        } else {
            0.0
        }
    }

    /// Mean fps over the steady state (skipping the first `skip`
    /// inter-frames — initialization + RF ramp-up).
    pub fn steady_fps(&self, skip: usize) -> f64 {
        let times: Vec<f64> = self.inter_frames().skip(skip).map(|f| f.tau_tot).collect();
        if times.is_empty() {
            return 0.0;
        }
        times.len() as f64 / times.iter().sum::<f64>()
    }

    /// Percentile rollup of inter-frame τtot in milliseconds (`None` when
    /// the report has no inter-frames).
    pub fn tau_tot_rollup(&self) -> Option<Rollup> {
        Rollup::from_values(self.inter_frames().map(|f| f.tau_tot * 1e3).collect())
    }

    /// Percentile rollup of the wall-clock scheduling overhead in
    /// milliseconds (`None` when the report has no inter-frames).
    pub fn sched_overhead_rollup(&self) -> Option<Rollup> {
        Rollup::from_values(
            self.inter_frames()
                .map(|f| f.sched_overhead * 1e3)
                .collect(),
        )
    }

    /// Maximum scheduling overhead across frames (seconds).
    pub fn max_sched_overhead(&self) -> f64 {
        self.inter_frames()
            .map(|f| f.sched_overhead)
            .fold(0.0, f64::max)
    }

    /// Total coded bits (functional runs).
    pub fn total_bits(&self) -> u64 {
        self.frames.iter().filter_map(|f| f.bits).sum()
    }

    /// Mean luma PSNR over frames that have one.
    pub fn mean_psnr(&self) -> Option<f64> {
        let v: Vec<f64> = self
            .frames
            .iter()
            .filter_map(|f| f.psnr_y)
            .filter(|p| p.is_finite())
            .collect();
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_dist() -> Distribution {
        Distribution::equidistant(68, 2, 0)
    }

    #[test]
    fn fps_and_realtime() {
        let f = FrameReport::inter(1, 0.01, 0.02, 0.04, 1, 1e-4, dummy_dist(), None, None);
        assert!((f.fps() - 25.0).abs() < 1e-9);
        assert!(f.is_realtime());
        let slow = FrameReport::inter(2, 0.01, 0.02, 0.05, 1, 1e-4, dummy_dist(), None, None);
        assert!(!slow.is_realtime());
    }

    #[test]
    fn report_aggregates() {
        let frames = vec![
            FrameReport::intra(1000, 40.0),
            FrameReport::inter(
                1,
                0.0,
                0.0,
                0.02,
                1,
                1e-3,
                dummy_dist(),
                Some(100),
                Some(38.0),
            ),
            FrameReport::inter(
                2,
                0.0,
                0.0,
                0.04,
                1,
                2e-3,
                dummy_dist(),
                Some(200),
                Some(39.0),
            ),
        ];
        let r = EncodeReport::new("test".into(), frames);
        assert!((r.mean_frame_time() - 0.03).abs() < 1e-12);
        assert!((r.mean_fps() - 1.0 / 0.03).abs() < 1e-9);
        assert!((r.steady_fps(1) - 25.0).abs() < 1e-9);
        assert_eq!(r.total_bits(), 1300);
        assert!((r.max_sched_overhead() - 2e-3).abs() < 1e-15);
        assert!((r.mean_psnr().unwrap() - 39.0).abs() < 1e-9);
        // Nearest-rank over {20 ms, 40 ms}: p50 is the lower value, the
        // upper tail percentiles land on the higher one.
        let roll = r.tau_tot_rollup().unwrap();
        assert!((roll.p50 - 20.0).abs() < 1e-9);
        assert!((roll.p95 - 40.0).abs() < 1e-9);
        assert!((roll.p99 - 40.0).abs() < 1e-9);
        let sched = r.sched_overhead_rollup().unwrap();
        assert!((sched.p99 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = EncodeReport::new("x".into(), vec![]);
        assert_eq!(r.mean_fps(), 0.0);
        assert_eq!(r.steady_fps(5), 0.0);
        assert!(r.mean_psnr().is_none());
        assert!(r.tau_tot_rollup().is_none());
        assert!(r.sched_overhead_rollup().is_none());
    }
}
