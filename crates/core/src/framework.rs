//! Framework Control (paper Algorithm 1): the autonomous per-frame loop
//! tying together load balancing, the Video Coding Manager, Data Access
//! Management, platform execution and performance characterization.
//!
//! - **Initialization phase** (first inter-frame): the platform is "probed"
//!   with an equidistant distribution; measured times seed the performance
//!   characterization (lines 1–6).
//! - **Iterative phase** (every further inter-frame): the Load Balancing
//!   routine produces the next distribution from the measured rates, the
//!   frame executes, and the measurements update the characterization
//!   (lines 7–11) — closing the adaptation loop that recovers from platform
//!   perturbations within a frame (Fig 7).

use crate::config::{BalancerKind, EncoderConfig, ExecutionMode};
use crate::dam::{transfer_bytes, DataManager};
use crate::report::{EncodeReport, FrameReport};
use crate::trace::FrameTrace;
use crate::vcm::{build_frame_graph, FrameGeometry, MeasureKind};
use feves_codec::inter_loop::ReferenceStore;
use feves_codec::interp::SubpelFrame;
use feves_codec::rate::RateController;
use feves_codec::types::EncodeParams;
use feves_hetsim::noise::MultiplicativeNoise;
use feves_hetsim::platform::Platform;
use feves_hetsim::timeline::simulate;
use feves_obs::{Metric, Recorder};
use feves_sched::{
    BalanceInput, Centric, Distribution, EquidistantBalancer, Ewma, FevesBalancer, LoadBalancer,
    PerfChar, ProportionalBalancer, SingleDeviceBalancer,
};
use feves_video::frame::Frame;
use feves_video::geometry::{ranges_from_counts, RowRange};
use feves_video::plane::Plane;
use std::sync::Arc;
use std::time::Instant;

/// An externally imposed performance change on one device for a range of
/// inter-frames — models "other processes started running" (Fig 7's events
/// at frames 31/71/76/81/92).
#[derive(Clone, Debug)]
pub struct Perturbation {
    /// Affected device index.
    pub device: usize,
    /// Inter-frame indices (1-based, inclusive start, exclusive end).
    pub frames: std::ops::Range<usize>,
    /// Speed multiplier while active (0.5 = half speed).
    pub factor: f64,
}

/// The FEVES encoder: Algorithm 1 over a simulated heterogeneous platform,
/// optionally also executing the real kernels.
pub struct FevesEncoder {
    platform: Platform,
    config: EncoderConfig,
    balancer: Box<dyn LoadBalancer>,
    perf: PerfChar,
    dam: DataManager,
    noise: MultiplicativeNoise,
    prev_dist: Option<Distribution>,
    perturbations: Vec<Perturbation>,
    geometry: FrameGeometry,
    /// Inter-frames encoded so far.
    inter_count: usize,
    /// Total frames encoded (intra + inter, functional mode).
    frames_encoded: usize,
    /// References available (ramps to `params.n_ref`).
    refs_available: usize,
    /// Schedule trace of the most recent inter-frame.
    last_trace: Option<FrameTrace>,
    /// Metrics/span sink for this encoder; falls back to the process-global
    /// recorder ([`feves_obs::global`]) when unset.
    recorder: Option<Arc<dyn Recorder>>,
    /// Closed-loop QP controller (functional mode, when configured).
    rate: Option<RateController>,
    // Functional-mode state.
    store: ReferenceStore,
    recon_pending: Option<ReconPending>,
}

/// A reconstruction waiting to be interpolated and pushed as a reference.
struct ReconPending {
    y: Plane<u8>,
    u: Plane<u8>,
    v: Plane<u8>,
}

impl FevesEncoder {
    /// Create an encoder for `platform` with `config`.
    pub fn new(platform: Platform, config: EncoderConfig) -> Result<Self, String> {
        config.validate()?;
        if matches!(config.balancer, BalancerKind::SingleAccelerator(i) if i >= platform.n_accel) {
            return Err("single-accelerator balancer index out of range".into());
        }
        let padded = config.resolution.padded();
        let geometry = FrameGeometry {
            mb_cols: padded.width / 16,
            n_rows: padded.height / 16,
            width: padded.width,
        };
        // Device memory management (paper §III-B-2): refuse configurations
        // whose buffers cannot fit on an accelerator.
        DataManager::check_memory(
            &platform,
            geometry.n_rows,
            geometry.width,
            config.params.n_ref,
        )?;
        let balancer: Box<dyn LoadBalancer> = match config.balancer {
            BalancerKind::Feves => Box::new(FevesBalancer::default()),
            BalancerKind::FevesFixed(c) => Box::new(FevesBalancer {
                fixed_centric: Some(c),
            }),
            BalancerKind::Equidistant => Box::new(EquidistantBalancer),
            BalancerKind::Proportional => Box::new(ProportionalBalancer),
            BalancerKind::Greedy => Box::new(feves_sched::GreedyBalancer::default()),
            BalancerKind::SingleAccelerator(i) => {
                Box::new(SingleDeviceBalancer { device: Some(i) })
            }
            BalancerKind::CpuOnly => Box::new(SingleDeviceBalancer { device: None }),
        };
        let n_ref = config.params.n_ref;
        Ok(FevesEncoder {
            perf: PerfChar::new(platform.len(), config.ewma),
            dam: DataManager::new(geometry.n_rows, platform.len()),
            noise: MultiplicativeNoise::new(config.noise_amp, config.noise_seed),
            balancer,
            prev_dist: None,
            perturbations: Vec::new(),
            geometry,
            inter_count: 0,
            frames_encoded: 0,
            refs_available: 0,
            last_trace: None,
            recorder: None,
            rate: config
                .rate_control
                .map(|rc| RateController::new(rc.target_kbps, rc.fps, config.params.qp)),
            store: ReferenceStore::new(n_ref),
            recon_pending: None,
            platform,
            config,
        })
    }

    /// Attach a metrics/span recorder to this encoder. Per-frame metrics
    /// (τ sync points, imbalance, LP iterations, DAM byte volumes) are
    /// recorded here; without one, the encoder uses the process-global
    /// recorder installed via [`feves_obs::install`] (a no-op by default).
    pub fn set_recorder(&mut self, rec: Arc<dyn Recorder>) {
        self.recorder = Some(rec);
    }

    /// The active recorder: this encoder's own, else the process global.
    fn rec(&self) -> Arc<dyn Recorder> {
        self.recorder.clone().unwrap_or_else(feves_obs::global)
    }

    /// Register a perturbation (timing-only or functional).
    pub fn add_perturbation(&mut self, p: Perturbation) {
        assert!(p.device < self.platform.len());
        assert!(p.factor > 0.0);
        self.perturbations.push(p);
    }

    /// The platform being driven.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Current performance characterization (for inspection).
    pub fn perf(&self) -> &PerfChar {
        &self.perf
    }

    /// Configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// Inter-frames encoded so far.
    pub fn inter_frames(&self) -> usize {
        self.inter_count
    }

    fn speed_multipliers(&self, inter_frame: usize) -> Vec<f64> {
        let mut m = self.platform.nominal_speeds();
        for p in &self.perturbations {
            if p.frames.contains(&inter_frame) {
                m[p.device] *= p.factor;
            }
        }
        m
    }

    /// Encode one inter-frame in timing-only mode and return its report.
    pub fn encode_inter_timing(&mut self) -> FrameReport {
        self.refs_available = (self.refs_available + 1).min(self.config.params.n_ref);
        self.run_inter(None)
    }

    /// Run `n` timing-only inter-frames (Algorithm 1's main loop).
    pub fn run_timing(&mut self, n: usize) -> EncodeReport {
        // The I-frame exists implicitly: it provides the first reference.
        let frames = (0..n).map(|_| self.encode_inter_timing()).collect();
        EncodeReport::new(self.platform.name.clone(), frames)
    }

    /// Encode one frame functionally (first call = intra, rest = inter;
    /// with `config.gop = Some(n)`, a closed-GOP I-frame every `n` frames).
    pub fn encode_frame(&mut self, frame: &Frame) -> FrameReport {
        let _span = feves_obs::span!(self.rec(), "encode_frame");
        assert_eq!(
            frame.resolution(),
            self.config.resolution,
            "frame resolution mismatch"
        );
        // Closed-GOP refresh: drop all references and start a new I-frame.
        if let Some(gop) = self.config.gop {
            if self.frames_encoded > 0 && self.frames_encoded.is_multiple_of(gop) {
                self.store = ReferenceStore::new(self.config.params.n_ref);
                self.recon_pending = None;
                self.refs_available = 0;
            }
        }
        self.frames_encoded += 1;
        if self.recon_pending.is_none() && self.store.is_empty() {
            // I-frame: luma intra + chroma-DC intra.
            let intra =
                feves_codec::intra::encode_intra_frame(frame.y(), self.config.params.qp_intra);
            let chroma = feves_codec::chroma::encode_chroma_intra(
                frame.u(),
                frame.v(),
                frame.mb_cols(),
                frame.mb_rows(),
                self.config.params.qp_intra,
            );
            let psnr = feves_video::metrics::psnr(&intra.recon, frame.y());
            self.recon_pending = Some(ReconPending {
                y: intra.recon,
                u: chroma.recon_u,
                v: chroma.recon_v,
            });
            self.rec().add(Metric::FramesEncoded, 1);
            return FrameReport::intra(intra.bits + chroma.bits, psnr);
        }
        self.refs_available = (self.refs_available + 1).min(self.config.params.n_ref);
        self.run_inter(Some(frame))
    }

    /// Encode a whole sequence functionally.
    pub fn encode_sequence(&mut self, frames: &[Frame]) -> EncodeReport {
        let _span = feves_obs::span!(self.rec(), "encode_sequence");
        let reports = frames.iter().map(|f| self.encode_frame(f)).collect();
        EncodeReport::new(self.platform.name.clone(), reports)
    }

    /// The shared inter-frame path: balance → plan → simulate → measure
    /// (→ optionally execute kernels).
    fn run_inter(&mut self, frame: Option<&Frame>) -> FrameReport {
        let _span = feves_obs::span!(self.rec(), "encode_inter");
        let inter_frame = self.inter_count + 1; // 1-based like Fig 7
        let n_rows = self.geometry.n_rows;
        let mut eff_params = EncodeParams {
            n_ref: self.refs_available.max(1),
            ..self.config.params
        };
        if let Some(rc) = &self.rate {
            eff_params.qp = rc.qp();
        }

        // Load balancing (initialization phase falls back to equidistant
        // inside the balancers when uncharacterized).
        let sched_start = Instant::now();
        let dist = self.balancer.distribute(&BalanceInput {
            n_rows,
            platform: &self.platform,
            perf: &self.perf,
            prev: self.prev_dist.as_ref(),
        });
        let sched_overhead = sched_start.elapsed().as_secs_f64();
        debug_assert!(dist.validate(n_rows).is_ok());

        // Data access plan + task graph.
        let mask: Vec<bool> = self
            .platform
            .devices
            .iter()
            .map(|d| d.is_accelerator())
            .collect();
        let plan = self.dam.plan(&dist, &mask, self.config.data_reuse);
        let fg = build_frame_graph(
            &dist,
            &plan,
            &self.platform,
            &eff_params,
            self.geometry,
            self.config.overlap,
        );

        // Execute on the virtual platform.
        let speeds = self.speed_multipliers(inter_frame);
        let sched = simulate(&fg.graph, &self.platform, &speeds, &mut self.noise)
            .expect("VCM-built graphs are deadlock-free by construction");
        let trace = FrameTrace::capture(&fg, &sched, &self.platform);

        // Observability: per-frame metrics. Everything except the wall-clock
        // scheduling overhead is derived from the virtual clock and is
        // deterministic for a fixed configuration. Guarded so the disabled
        // path costs one `enabled()` call.
        let rec = self.rec();
        if rec.enabled() {
            rec.observe(Metric::SchedOverheadUs, sched_overhead * 1e6);
            rec.observe(Metric::FrameTau1Ms, trace.tau1_ms);
            rec.observe(Metric::FrameTau2Ms, trace.tau2_ms);
            rec.observe(Metric::FrameTauTotMs, trace.tau_tot_ms);
            let busy: Vec<f64> = trace
                .utilization()
                .into_iter()
                .filter(|(l, _)| !l.is_transfer())
                .map(|(_, f)| f)
                .collect();
            let max = busy.iter().copied().fold(0.0f64, f64::max);
            if max > 0.0 {
                let min = busy.iter().copied().fold(f64::INFINITY, f64::min);
                rec.observe(Metric::LbImbalancePct, (max - min) / max * 100.0);
            }
            if let Some(iters) = dist.lp_iterations {
                rec.observe(Metric::LpIterations, iters as f64);
            }
            rec.add(Metric::VcmTasksScheduled, fg.graph.len() as u64);
            let transferred = transfer_bytes(&plan, self.geometry.width);
            rec.add(Metric::DamBytesTransferred, transferred);
            if self.config.data_reuse {
                // Reused = what a reuse-free plan of the same frame would
                // have shipped, minus what this plan ships.
                let baseline =
                    transfer_bytes(&self.dam.plan(&dist, &mask, false), self.geometry.width);
                rec.add(Metric::DamBytesReused, baseline.saturating_sub(transferred));
            }
            rec.add(Metric::FramesEncoded, 1);
        }
        self.last_trace = Some(trace);

        // Performance characterization update (Algorithm 1, lines 5/10).
        let mut rstar_time = vec![0.0f64; self.platform.len()];
        let mut rstar_seen = vec![false; self.platform.len()];
        for m in &fg.measures {
            let dur = sched.duration(m.task);
            match m.kind {
                MeasureKind::Compute {
                    device,
                    module,
                    rows,
                } => self.perf.record_compute(device, module, rows, dur),
                MeasureKind::Transfer {
                    device,
                    tag,
                    dir,
                    rows,
                } => self.perf.record_transfer(device, tag, dir, rows, dur),
                MeasureKind::RstarPart { device } => {
                    rstar_time[device] += dur;
                    rstar_seen[device] = true;
                }
            }
        }
        for d in 0..self.platform.len() {
            if rstar_seen[d] {
                self.perf.record_rstar(d, rstar_time[d]);
            }
        }

        // Functional execution with the same distribution.
        let (bits, psnr) = match (frame, self.config.mode) {
            (Some(f), ExecutionMode::Functional) => {
                let (bits, psnr) = self.execute_kernels(f, &dist, &eff_params);
                if let Some(rc) = &mut self.rate {
                    rc.update(bits);
                }
                (Some(bits), Some(psnr))
            }
            _ => (None, None),
        };

        self.dam
            .commit(&dist, &mask, self.config.data_reuse)
            .expect("distribution validated above");
        let report = FrameReport::inter(
            inter_frame,
            sched.finish_of(fg.tau1),
            sched.finish_of(fg.tau2),
            sched.finish_of(fg.tau_tot),
            eff_params.n_ref,
            sched_overhead,
            dist.clone(),
            bits,
            psnr,
        );
        self.prev_dist = Some(dist);
        self.inter_count += 1;
        report
    }

    /// Run the real kernels, row-partitioned exactly as the distribution
    /// prescribes, and advance the reference store.
    fn execute_kernels(
        &mut self,
        frame: &Frame,
        dist: &Distribution,
        params: &EncodeParams,
    ) -> (u64, f64) {
        let cf = frame.y();
        let mb_cols = self.geometry.mb_cols;
        let n_rows = self.geometry.n_rows;

        // INT: interpolate the pending reconstruction per dist.interp and
        // push it as the newest reference.
        if let Some(pending) = self.recon_pending.take() {
            let mut sf = SubpelFrame::new(pending.y.width(), pending.y.height());
            for range in ranges_from_counts(&dist.interp) {
                sf.interpolate_rows(&pending.y, range);
            }
            self.store.push_yuv(pending.y, sf, pending.u, pending.v);
        }
        let rfs = self.store.rf_planes();
        let sfs = self.store.sfs();

        // ME per device stripe — stripes run concurrently on scoped threads,
        // mirroring the paper's per-device host threads (the Video Coding
        // Manager drives every device simultaneously). Each stripe writes a
        // disjoint row band of the motion field.
        let mut me = feves_codec::me::MeField::new(mb_cols, n_rows);
        {
            let mut bands: Vec<(RowRange, &mut [feves_codec::me::MbMotion])> = Vec::new();
            let mut rest = me.rows_mut(RowRange::new(0, n_rows));
            for range in ranges_from_counts(&dist.me) {
                let (band, tail) = rest.split_at_mut(range.len() * mb_cols);
                if !range.is_empty() {
                    bands.push((range, band));
                }
                rest = tail;
            }
            let (cf_ref, rfs_ref, params_ref) = (&cf, &rfs, &params);
            crossbeam::scope(|s| {
                for (range, out) in bands {
                    s.spawn(move |_| {
                        feves_codec::me::motion_estimate_rows_parallel(
                            cf_ref, rfs_ref, params_ref, range, out,
                        );
                    });
                }
            })
            .expect("device stripe threads must not panic");
        }

        // SME per device stripe, same device-level concurrency.
        let mut sme = feves_codec::sme::SmeField::new(mb_cols, n_rows);
        {
            let mut bands: Vec<(RowRange, &mut [feves_codec::sme::MbSubMotion])> = Vec::new();
            let mut rest = sme.rows_mut(RowRange::new(0, n_rows));
            for range in ranges_from_counts(&dist.sme) {
                let (band, tail) = rest.split_at_mut(range.len() * mb_cols);
                if !range.is_empty() {
                    bands.push((range, band));
                }
                rest = tail;
            }
            let me_ref = &me;
            let (cf_ref, sfs_ref) = (&cf, &sfs);
            crossbeam::scope(|s| {
                for (range, out) in bands {
                    s.spawn(move |_| {
                        let me_rows: Vec<feves_codec::me::MbMotion> = me_ref.rows(range).to_vec();
                        feves_codec::sme::sme_rows_parallel(cf_ref, sfs_ref, &me_rows, range, out);
                    });
                }
            })
            .expect("device stripe threads must not panic");
        }

        // R* on the selected device (single-device semantics).
        let all = RowRange::new(0, n_rows);
        let mut modes = feves_codec::mc::ModeField::new(mb_cols, n_rows);
        let mut pred: Plane<u8> = Plane::new(cf.width(), cf.height());
        let mut residual: Plane<i16> = Plane::new(cf.width(), cf.height());
        feves_codec::mc::mc_rows(
            cf,
            &sfs,
            sme.rows(all),
            params.qp,
            all,
            &mut modes,
            &mut pred,
            &mut residual,
        );
        let mut coeffs = feves_codec::recon::CoeffField::new(mb_cols, n_rows);
        feves_codec::recon::tq_rows(&residual, params.qp, false, all, &mut coeffs);
        let mut recon: Plane<u8> = Plane::new(cf.width(), cf.height());
        feves_codec::recon::itq_recon_rows(&coeffs, &pred, params.qp, all, &mut recon);
        feves_codec::dbl::deblock_frame(&mut recon, &modes, &coeffs, params.qp);

        // Chroma rides with the R* group (single-device semantics), using
        // the winning luma modes.
        let (refs_u, refs_v) = self
            .store
            .chroma_planes()
            .expect("functional references are pushed with chroma");
        let n_refs = refs_u.len().min(params.n_ref);
        let chroma = feves_codec::chroma::encode_chroma_inter(
            frame.u(),
            frame.v(),
            &refs_u[..n_refs],
            &refs_v[..n_refs],
            &modes,
            params.qp,
        );
        let (_stream, bits) = match self.config.entropy {
            feves_codec::cabac::EntropyBackend::ExpGolomb => {
                feves_codec::entropy::encode_frame_yuv(&modes, &coeffs, &chroma.coeffs, params.qp)
            }
            feves_codec::cabac::EntropyBackend::Cabac => feves_codec::cabac::encode_frame_cabac(
                &modes,
                &coeffs,
                Some(&chroma.coeffs),
                params.qp,
            ),
        };

        let psnr = feves_video::metrics::psnr(&recon, cf);
        self.recon_pending = Some(ReconPending {
            y: recon,
            u: chroma.recon_u,
            v: chroma.recon_v,
        });
        (bits, psnr)
    }

    /// The simulated schedule of the most recent inter-frame (Fig 4 as
    /// data; see [`FrameTrace::render_gantt`]).
    pub fn last_trace(&self) -> Option<&FrameTrace> {
        self.last_trace.as_ref()
    }

    /// The last luma reconstruction (functional mode).
    pub fn last_reconstruction(&self) -> Option<&Plane<u8>> {
        self.recon_pending.as_ref().map(|p| &p.y)
    }

    /// The last full YUV reconstruction `(Y, Cb, Cr)` (functional mode).
    pub fn last_reconstruction_yuv(&self) -> Option<(&Plane<u8>, &Plane<u8>, &Plane<u8>)> {
        self.recon_pending.as_ref().map(|p| (&p.y, &p.u, &p.v))
    }

    /// Force a specific EWMA (test hook).
    pub fn set_ewma(&mut self, alpha: Ewma) {
        self.perf = PerfChar::new(self.platform.len(), alpha);
    }

    /// The centric choice of the current balancer when pinned (diagnostic).
    pub fn fixed_centric(&self) -> Option<Centric> {
        match self.config.balancer {
            BalancerKind::FevesFixed(c) => Some(c),
            _ => None,
        }
    }
}
