//! Framework Control (paper Algorithm 1): the autonomous per-frame loop
//! tying together load balancing, the Video Coding Manager, Data Access
//! Management, platform execution and performance characterization.
//!
//! - **Initialization phase** (first inter-frame): the platform is "probed"
//!   with an equidistant distribution; measured times seed the performance
//!   characterization (lines 1–6).
//! - **Iterative phase** (every further inter-frame): the Load Balancing
//!   routine produces the next distribution from the measured rates, the
//!   frame executes, and the measurements update the characterization
//!   (lines 7–11) — closing the adaptation loop that recovers from platform
//!   perturbations within a frame (Fig 7).

use crate::config::{BalancerKind, EncoderConfig, ExecutionMode};
use crate::dam::{transfer_bytes, DataManager};
use crate::pipeline::FramePipeline;
use crate::report::{EncodeReport, FrameReport};
use crate::trace::FrameTrace;
use crate::vcm::{build_frame_graph, FrameGeometry, FrameGraph, MeasureKind};
use feves_codec::inter_loop::ReferenceStore;
use feves_codec::interp::SubpelFrame;
use feves_codec::rate::{RateController, RateSnapshot};
use feves_codec::types::EncodeParams;
use feves_ft::{
    DeadlinePolicy, DeviceFault, DriftDetector, DriftSnapshot, FaultCause, FaultSchedule,
    FaultSpec, FevesError, HealthSnapshot, HealthTracker,
};
use feves_hetsim::fault::FaultInjector;
use feves_hetsim::noise::{MultiplicativeNoise, NoiseState};
use feves_hetsim::platform::Platform;
use feves_hetsim::timeline::{simulate, Schedule};
use feves_obs::trace::{DeviceSlice, TraceArg};
use feves_obs::{
    imbalance_index, residual_pct, DeviceRecord, EdgeKind, FlightRecord, FlightRecorder, Metric,
    Recorder, SessionScope, TauTriple, TraceSink,
};
use feves_sched::{
    BalanceInput, Centric, CompletionTracker, Distribution, EquidistantBalancer, Ewma,
    FevesBalancer, LoadBalancer, PerfChar, ProportionalBalancer, SingleDeviceBalancer,
};
use feves_video::frame::Frame;
use feves_video::geometry::{ranges_from_counts, RowRange};
use feves_video::plane::Plane;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Shared control block between an external supervisor (the `feves serve`
/// farm) and one running encoder: a cooperative stop flag and a fleet-level
/// device lease.
///
/// The lease is a *restriction mask* over the session's full platform —
/// the session keeps every device in its `Platform` (so checkpoints stay
/// compatible across rebalances) but only schedules devices that are both
/// healthy *and* leased. The supervisor rebalances by swapping the mask;
/// the encoder picks the new mask up at the next frame boundary. The mask
/// is fleet state, deliberately not part of [`FrameworkState`]: on resume
/// the supervisor re-applies the current lease.
#[derive(Debug, Default)]
pub struct SessionCtl {
    stop: AtomicBool,
    ckpt_shed: AtomicBool,
    lease: Mutex<Option<Vec<bool>>>,
}

impl SessionCtl {
    /// A control block with no stop requested and no lease (all devices).
    pub fn new() -> Self {
        Self::default()
    }

    /// Ask the session to stop at the next frame boundary (checkpoint and
    /// return, if checkpointing is armed).
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Whether a cooperative stop has been requested.
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Toggle checkpoint shedding (disk-pressure degradation): while set,
    /// the session skips *cadence* checkpoints — preemption and final
    /// commits still run, so durability of completed work is never traded
    /// away, only the optional mid-flight generations.
    pub fn set_ckpt_shed(&self, shed: bool) {
        self.ckpt_shed.store(shed, Ordering::Release);
    }

    /// Whether cadence checkpoints are currently shed.
    pub fn ckpt_shed(&self) -> bool {
        self.ckpt_shed.load(Ordering::Acquire)
    }

    /// Replace the device lease (`None` = every device usable).
    pub fn set_lease(&self, lease: Option<Vec<bool>>) {
        *self.lease.lock().unwrap_or_else(|e| e.into_inner()) = lease;
    }

    /// The current device lease, if any.
    pub fn lease(&self) -> Option<Vec<bool>> {
        self.lease.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

/// An externally imposed performance change on one device for a range of
/// inter-frames — models "other processes started running" (Fig 7's events
/// at frames 31/71/76/81/92).
#[derive(Clone, Debug)]
pub struct Perturbation {
    /// Affected device index.
    pub device: usize,
    /// Inter-frame indices (1-based, inclusive start, exclusive end).
    pub frames: std::ops::Range<usize>,
    /// Speed multiplier while active (0.5 = half speed).
    pub factor: f64,
}

/// Per-encoder fault-tolerance counters (mirrors the `ft.*` metrics, kept
/// on the encoder so tests and the CLI can assert on them without a
/// recorder).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FtStats {
    /// Faults the schedule injected so far.
    pub injected: u64,
    /// Faults detected (missed deadlines, transfer errors, stripe panics).
    pub detected: u64,
    /// Detected faults recovered from (the frame still completed).
    pub recovered: u64,
    /// Algorithm-2 re-solves on a reduced platform.
    pub resolves: u64,
    /// MB rows re-dispatched from faulty devices to survivors.
    pub redispatched_rows: u64,
    /// Deadline misses on a device the drift detector had already flagged —
    /// probably drift (a quietly degraded device), not a hard fault.
    pub drift_vs_fault: u64,
}

/// The FEVES encoder: Algorithm 1 over a simulated heterogeneous platform,
/// optionally also executing the real kernels.
pub struct FevesEncoder {
    platform: Platform,
    config: EncoderConfig,
    balancer: Box<dyn LoadBalancer>,
    perf: PerfChar,
    dam: DataManager,
    noise: MultiplicativeNoise,
    prev_dist: Option<Distribution>,
    perturbations: Vec<Perturbation>,
    geometry: FrameGeometry,
    /// Inter-frames encoded so far.
    inter_count: usize,
    /// Total frames encoded (intra + inter, functional mode).
    frames_encoded: usize,
    /// References available (ramps to `params.n_ref`).
    refs_available: usize,
    /// Schedule trace of the most recent inter-frame.
    last_trace: Option<FrameTrace>,
    /// Metrics/span sink for this encoder; falls back to the process-global
    /// recorder ([`feves_obs::global`]) when unset.
    recorder: Option<Arc<dyn Recorder>>,
    /// Closed-loop QP controller (functional mode, when configured).
    rate: Option<RateController>,
    // Functional-mode state.
    store: ReferenceStore,
    recon_pending: Option<ReconPending>,
    // Fault tolerance.
    injector: FaultInjector,
    health: HealthTracker,
    deadline: DeadlinePolicy,
    /// EWMA of measured healthy (τ1, τ2, τtot) — the deadline baseline for
    /// heuristic balancers that produce no LP prediction.
    expected_tau: Option<(f64, f64, f64)>,
    ft_stats: FtStats,
    /// Prediction-drift detector over per-device LP residuals; a firing
    /// resets that device's characterization (→ equidistant probe).
    drift: DriftDetector,
    /// Optional schedule flight recorder ([`Self::enable_flight`]).
    flight: Option<FlightRecorder>,
    /// Optional telemetry session: routes metrics through the session's
    /// registry (possibly over the bus) and feeds the live per-device view
    /// (`feves top`).
    scope: Option<SessionScope>,
    /// Optional supervisor control block (stop flag + device lease).
    ctl: Option<Arc<SessionCtl>>,
    /// Inter-frame submit/reap pipeline (lockstep when disabled): frame
    /// generations, DAM slot ownership and the carried τ-sync stall.
    pipeline: FramePipeline,
    /// Optional causal-trace sink ([`Self::set_trace`]): frame/phase/kernel
    /// spans on the virtual clock, parented under the caller's attempt span.
    trace_sink: Option<TraceSink>,
    /// Span id of the previous frame span — the source of the next
    /// pipeline-overlap edge.
    prev_frame_span: Option<u64>,
    /// Virtual-clock cursor: where the next frame span starts, µs relative
    /// to this attempt.
    trace_cursor_us: f64,
}

/// A reconstruction waiting to be interpolated and pushed as a reference.
struct ReconPending {
    y: Plane<u8>,
    u: Plane<u8>,
    v: Plane<u8>,
}

/// The complete mutable state of a [`FevesEncoder`], as captured by
/// [`FevesEncoder::snapshot`] and consumed by [`FevesEncoder::restore`].
///
/// Everything the iterative phase has learned or accumulated is here —
/// the performance characterization (NaN sentinels and all), device
/// health/backoff timers, drift streaks, the rate-control loop, DAM σʳ
/// carry-over, the reference window, and the encode cursor. Deliberately
/// *not* here: anything derivable from `(Platform, EncoderConfig)` — the
/// balancer, geometry, fault schedule, deadline policy — and the sub-pixel
/// frames, which [`ReferenceStore::rebuild`] re-derives bit-exactly from
/// the reconstructed planes at a fraction of the size. Test-only hooks
/// (perturbations, an attached recorder, the in-memory flight ring) are
/// also excluded; the CLI re-arms those on resume.
#[derive(Clone, Debug)]
pub struct FrameworkState {
    /// On-line performance characterization.
    pub perf: PerfChar,
    /// DAM deferred-SF remainder per device.
    pub dam_sigma_rem: Vec<usize>,
    /// DAM committed-frame count.
    pub dam_frames_committed: usize,
    /// Measurement-noise RNG position.
    pub noise: NoiseState,
    /// Previous frame's distribution (Algorithm 2's warm start).
    pub prev_dist: Option<Distribution>,
    /// Inter-frames encoded so far.
    pub inter_count: usize,
    /// Total frames encoded (intra + inter).
    pub frames_encoded: usize,
    /// References available (ramping toward `n_ref`).
    pub refs_available: usize,
    /// Rate-controller state, when rate control is active.
    pub rate: Option<RateSnapshot>,
    /// Reference window: reconstructed `(Y, Some((Cb, Cr)))` planes, most
    /// recent first; SFs are rebuilt on restore.
    #[allow(clippy::type_complexity)] // the ReferenceStore::rebuild input shape
    pub refs: Vec<(Plane<u8>, Option<(Plane<u8>, Plane<u8>)>)>,
    /// Reconstruction not yet interpolated into the reference window.
    pub recon_pending: Option<(Plane<u8>, Plane<u8>, Plane<u8>)>,
    /// Device health state machine (blacklists, backoffs, probation).
    pub health: HealthSnapshot,
    /// EWMA deadline baseline of healthy (τ1, τ2, τtot).
    pub expected_tau: Option<(f64, f64, f64)>,
    /// Fault-tolerance counters.
    pub ft_stats: FtStats,
    /// Drift-detector streaks and flags.
    pub drift: DriftSnapshot,
}

impl FevesEncoder {
    /// Create an encoder for `platform` with `config`.
    pub fn new(platform: Platform, config: EncoderConfig) -> Result<Self, FevesError> {
        config.validate()?;
        platform.validate()?;
        if matches!(config.balancer, BalancerKind::SingleAccelerator(i) if i >= platform.n_accel) {
            return Err(FevesError::Config(
                "single-accelerator balancer index out of range".into(),
            ));
        }
        if let Some(spec) = config.faults.iter().find(|s| s.device >= platform.len()) {
            return Err(FevesError::Config(format!(
                "fault spec `{spec}` names device {} but the platform has {} devices",
                spec.device,
                platform.len()
            )));
        }
        let padded = config.resolution.padded();
        let geometry = FrameGeometry {
            mb_cols: padded.width / 16,
            n_rows: padded.height / 16,
            width: padded.width,
        };
        // Device memory management (paper §III-B-2): refuse configurations
        // whose buffers cannot fit on an accelerator.
        DataManager::check_memory(
            &platform,
            geometry.n_rows,
            geometry.width,
            config.params.n_ref,
        )?;
        let balancer: Box<dyn LoadBalancer> = match config.balancer {
            BalancerKind::Feves => Box::new(FevesBalancer::default()),
            BalancerKind::FevesFixed(c) => Box::new(FevesBalancer {
                fixed_centric: Some(c),
            }),
            BalancerKind::Equidistant => Box::new(EquidistantBalancer),
            BalancerKind::Proportional => Box::new(ProportionalBalancer),
            BalancerKind::Greedy => Box::new(feves_sched::GreedyBalancer::default()),
            BalancerKind::SingleAccelerator(i) => {
                Box::new(SingleDeviceBalancer { device: Some(i) })
            }
            BalancerKind::CpuOnly => Box::new(SingleDeviceBalancer { device: None }),
        };
        let n_ref = config.params.n_ref;
        Ok(FevesEncoder {
            perf: PerfChar::new(platform.len(), config.ewma),
            dam: DataManager::new(geometry.n_rows, platform.len()),
            noise: MultiplicativeNoise::new(config.noise_amp, config.noise_seed),
            balancer,
            prev_dist: None,
            perturbations: Vec::new(),
            geometry,
            inter_count: 0,
            frames_encoded: 0,
            refs_available: 0,
            last_trace: None,
            recorder: None,
            rate: config
                .rate_control
                .map(|rc| RateController::new(rc.target_kbps, rc.fps, config.params.qp)),
            store: ReferenceStore::new(n_ref),
            recon_pending: None,
            injector: FaultInjector::new(FaultSchedule::new(config.faults.clone())),
            health: {
                let mut health = HealthTracker::new(platform.len(), 2, 3);
                health.set_jitter_seed(config.health_jitter);
                health
            },
            deadline: DeadlinePolicy::new(config.deadline_factor),
            expected_tau: None,
            ft_stats: FtStats::default(),
            drift: DriftDetector::new(platform.len(), config.drift),
            flight: None,
            scope: None,
            ctl: None,
            pipeline: FramePipeline::new(config.pipeline),
            trace_sink: None,
            prev_frame_span: None,
            trace_cursor_us: 0.0,
            platform,
            config,
        })
    }

    /// Attach a metrics/span recorder to this encoder. Per-frame metrics
    /// (τ sync points, imbalance, LP iterations, DAM byte volumes) are
    /// recorded here; without one, the encoder uses the process-global
    /// recorder installed via [`feves_obs::install`] (a no-op by default).
    pub fn set_recorder(&mut self, rec: Arc<dyn Recorder>) {
        self.recorder = Some(rec);
    }

    /// Bind this encoder to a telemetry session: all metrics flow into the
    /// scope's registry (through the bounded bus when one is attached), the
    /// scope's live device rows are labeled from the platform, and every
    /// completed frame ticks the session's frames/s figure. Supersedes any
    /// recorder set via [`Self::set_recorder`].
    pub fn set_scope(&mut self, scope: SessionScope) {
        scope.set_device_labels(
            &self
                .platform
                .devices
                .iter()
                .map(|d| d.name.clone())
                .collect::<Vec<_>>(),
        );
        self.recorder = Some(scope.recorder());
        self.scope = Some(scope);
    }

    /// Attach a causal-trace sink: every inter frame from now on records a
    /// `frame{n}` span on the attempt's virtual clock with phase/kernel
    /// children, per-device rate slices (rows + compute-busy ms, the
    /// samples the what-if analyzer re-balances), the τ decomposition as
    /// args, and a pipeline-overlap edge from the previous frame when
    /// carried stall was recovered. Without a sink the frame loop never
    /// touches the trace path — one `Option` check per frame.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.trace_sink = Some(sink);
    }

    /// Attach a supervisor control block: the encoder honors its device
    /// lease at every frame boundary (callers poll its stop flag in their
    /// encode loops).
    pub fn set_ctl(&mut self, ctl: Arc<SessionCtl>) {
        self.ctl = Some(ctl);
    }

    /// The attached supervisor control block, if any.
    pub fn ctl(&self) -> Option<&Arc<SessionCtl>> {
        self.ctl.as_ref()
    }

    /// Restrict `avail` to the supervisor's device lease, if one is set.
    /// Safety guard: a lease that would leave the session without any live
    /// host core (the balancer's invariant) is ignored wholesale rather
    /// than partially honored — health-only availability wins.
    fn apply_lease(&self, avail: &mut [bool]) {
        let Some(lease) = self.ctl.as_ref().and_then(|c| c.lease()) else {
            return;
        };
        if lease.len() != avail.len() {
            return;
        }
        let masked: Vec<bool> = avail.iter().zip(&lease).map(|(&a, &l)| a && l).collect();
        let has_core = self
            .platform
            .devices
            .iter()
            .zip(&masked)
            .any(|(d, &v)| !d.is_accelerator() && v);
        if has_core {
            avail.copy_from_slice(&masked);
        }
    }

    /// The active recorder: this encoder's own, else the process global.
    fn rec(&self) -> Arc<dyn Recorder> {
        self.recorder.clone().unwrap_or_else(feves_obs::global)
    }

    /// Register a perturbation (timing-only or functional).
    pub fn add_perturbation(&mut self, p: Perturbation) {
        assert!(p.device < self.platform.len());
        assert!(p.factor > 0.0);
        self.perturbations.push(p);
    }

    /// Add one fault to the injection schedule (test/CLI hook; equivalent
    /// to listing it in [`EncoderConfig::faults`]).
    pub fn inject_fault(&mut self, spec: FaultSpec) {
        assert!(spec.device < self.platform.len(), "fault device in range");
        self.injector.push(spec);
    }

    /// Fault-tolerance counters accumulated so far.
    pub fn ft_stats(&self) -> FtStats {
        self.ft_stats
    }

    /// Turn on the schedule flight recorder: every inter frame from now on
    /// appends one decision + measurement record to a ring of `capacity`
    /// records (see [`FlightRecorder`]). Drift detection runs regardless;
    /// this only controls whether the per-frame records are retained.
    pub fn enable_flight(&mut self, capacity: usize) {
        self.flight = Some(FlightRecorder::new(capacity));
    }

    /// The flight recorder, when enabled.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// Mutable flight recorder (the resume path stamps a marker into it).
    pub fn flight_mut(&mut self) -> Option<&mut FlightRecorder> {
        self.flight.as_mut()
    }

    /// The prediction-drift detector (diagnostics).
    pub fn drift(&self) -> &DriftDetector {
        &self.drift
    }

    /// The MB-row geometry the encoder is operating on.
    pub fn geometry(&self) -> FrameGeometry {
        self.geometry
    }

    /// Per-device health state.
    pub fn health(&self) -> &HealthTracker {
        &self.health
    }

    /// The platform being driven.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Current performance characterization (for inspection).
    pub fn perf(&self) -> &PerfChar {
        &self.perf
    }

    /// Configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// Inter-frames encoded so far.
    pub fn inter_frames(&self) -> usize {
        self.inter_count
    }

    fn speed_multipliers(&self, inter_frame: usize) -> Vec<f64> {
        let mut m = self.platform.nominal_speeds();
        for p in &self.perturbations {
            if p.frames.contains(&inter_frame) {
                m[p.device] *= p.factor;
            }
        }
        m
    }

    /// Load balancing over the available devices. With everything healthy
    /// this is the plain Algorithm-1 path; with blacklisted devices the
    /// balancer runs on the reduced platform (`Platform::subset`) and the
    /// result is scattered back to full-platform coordinates with zero rows
    /// on the excluded devices.
    fn balance(&mut self, n_rows: usize, avail: &[bool]) -> Distribution {
        if avail.iter().all(|&a| a) {
            let d = self.balancer.distribute(&BalanceInput {
                n_rows,
                platform: &self.platform,
                perf: &self.perf,
                prev: self.prev_dist.as_ref(),
            });
            debug_assert!(d.validate(n_rows).is_ok());
            return d;
        }
        let (sub, map) = self
            .platform
            .subset(avail)
            .expect("the health tracker never blacklists the last live core");
        let sub_perf = self.perf.subset(avail);
        let prev_sub = self.prev_dist.as_ref().and_then(|d| d.restrict(avail));
        let mut balancer = self.reduced_balancer(&map);
        let d = balancer.distribute(&BalanceInput {
            n_rows,
            platform: &sub,
            perf: &sub_perf,
            prev: prev_sub.as_ref(),
        });
        let full = d.expand(&map, self.platform.len());
        debug_assert!(full.validate(n_rows).is_ok());
        full
    }

    /// A balancer equivalent to the configured one but expressed in
    /// reduced-platform coordinates. Device-pinned policies whose device was
    /// blacklisted degrade gracefully: a pinned R\* mapping falls back to
    /// Dijkstra, a pinned single accelerator falls back to the CPU cores.
    fn reduced_balancer(&self, map: &[usize]) -> Box<dyn LoadBalancer> {
        let remap = |full: usize| map.iter().position(|&f| f == full);
        match self.config.balancer {
            BalancerKind::Feves => Box::new(FevesBalancer::default()),
            BalancerKind::FevesFixed(c) => {
                let fixed = match c {
                    Centric::Gpu(i) => remap(i).map(Centric::Gpu),
                    Centric::Cpu => Some(Centric::Cpu),
                };
                Box::new(FevesBalancer {
                    fixed_centric: fixed,
                })
            }
            BalancerKind::Equidistant => Box::new(EquidistantBalancer),
            BalancerKind::Proportional => Box::new(ProportionalBalancer),
            BalancerKind::Greedy => Box::new(feves_sched::GreedyBalancer::default()),
            BalancerKind::SingleAccelerator(i) => Box::new(SingleDeviceBalancer {
                device: remap(i), // None → spread over the CPU cores
            }),
            BalancerKind::CpuOnly => Box::new(SingleDeviceBalancer { device: None }),
        }
    }

    /// Detection (tentpole part 2): injected transfer errors surface as DMA
    /// failures; everything else is caught by the sync-point deadlines
    /// (deadline = predicted τ × factor). Returns the fault and the virtual
    /// time wasted before it was detected.
    #[allow(clippy::too_many_arguments)] // one argument per sync-point input
    fn detect_fault(
        &self,
        inter_frame: usize,
        gen: u64,
        dist: &Distribution,
        fg: &FrameGraph,
        sched: &Schedule,
        avail: &[bool],
        xfer_mask: &[bool],
    ) -> Option<(DeviceFault, f64)> {
        for (d, &has_xfers) in xfer_mask.iter().enumerate() {
            if has_xfers && self.injector.transfer_fault(inter_frame, d) {
                // The DMA engine reports the failure no later than the first
                // sync point that waits on the transfer.
                let wasted = sched.finish_of(fg.tau1);
                return Some((
                    DeviceFault {
                        device: d,
                        frame: inter_frame,
                        cause: FaultCause::TransferError,
                    },
                    wasted,
                ));
            }
        }
        // An LP balancer running without a prediction is doing a
        // characterization probe (the init frame, a drift-triggered
        // re-probe, or a post-blacklist re-probe). Probes are equidistant —
        // structurally slower than balanced frames — so the EWMA baseline
        // of healthy *balanced* frames would misfire on them: detection
        // pauses for the probe and resumes with the next predicted frame.
        if dist.predicted.is_none()
            && matches!(
                self.config.balancer,
                BalancerKind::Feves | BalancerKind::FevesFixed(_)
            )
        {
            return None;
        }
        // Deadlines come from the LP prediction when the balancer provides
        // one, else from the EWMA baseline of past healthy frames. Until
        // either exists (the very first probe frame) detection is off and
        // the characterization loop is the only defence.
        let expected = dist
            .predicted
            .map(|p| (p.tau1, p.tau2, p.tau_tot))
            .or(self.expected_tau)?;
        // Deadlines are tagged with the pipeline generation they guard: with
        // two frames in flight, a miss must name which generation blew so
        // recovery drains the pipeline to *that* frame's boundary.
        let deadlines = self.deadline.for_generation(gen, expected);
        let (missed_gen, point, at) = deadlines.check(
            sched.finish_of(fg.tau1),
            sched.finish_of(fg.tau2),
            sched.finish_of(fg.tau_tot),
        )?;
        debug_assert_eq!(missed_gen, gen);
        let device = self.culprit(fg, sched, avail)?;
        Some((
            DeviceFault {
                device,
                frame: inter_frame,
                cause: FaultCause::MissedDeadline(point),
            },
            at,
        ))
    }

    /// Culprit attribution: the device owning the longest-*running* measured
    /// task. Finish times won't do — a stalled device delays downstream
    /// tasks on innocent devices, which then finish even later than the
    /// stalled task itself; but those tasks merely *start* late and run
    /// fast, while the faulty device's own task runs for the whole stall.
    fn culprit(&self, fg: &FrameGraph, sched: &Schedule, avail: &[bool]) -> Option<usize> {
        let mut longest: Option<(f64, usize)> = None;
        for m in &fg.measures {
            let device = match m.kind {
                MeasureKind::Compute { device, .. }
                | MeasureKind::Transfer { device, .. }
                | MeasureKind::RstarPart { device } => device,
            };
            if !avail[device] {
                continue;
            }
            let dur = sched.duration(m.task);
            if longest.is_none_or(|(d, _)| dur > d) {
                longest = Some((dur, device));
            }
        }
        longest.map(|(_, d)| d)
    }

    /// A device may be blacklisted unless it is the last live CPU core —
    /// the host must survive (`Platform::validate` requires ≥ 1 core), so
    /// the framework degrades to CPU-only but never below.
    fn can_blacklist(&self, device: usize, avail: &[bool]) -> bool {
        if !avail[device] {
            return false;
        }
        if device < self.platform.n_accel {
            return true;
        }
        (self.platform.n_accel..self.platform.len())
            .filter(|&d| avail[d])
            .count()
            > 1
    }

    /// Encode one inter-frame in timing-only mode and return its report.
    pub fn encode_inter_timing(&mut self) -> FrameReport {
        self.refs_available = (self.refs_available + 1).min(self.config.params.n_ref);
        self.run_inter(None)
    }

    /// Run `n` timing-only inter-frames (Algorithm 1's main loop).
    pub fn run_timing(&mut self, n: usize) -> EncodeReport {
        // The I-frame exists implicitly: it provides the first reference.
        let frames = (0..n).map(|_| self.encode_inter_timing()).collect();
        EncodeReport::new(self.platform.name.clone(), frames)
    }

    /// Encode one frame functionally (first call = intra, rest = inter;
    /// with `config.gop = Some(n)`, a closed-GOP I-frame every `n` frames).
    pub fn encode_frame(&mut self, frame: &Frame) -> FrameReport {
        let _span = feves_obs::span!(self.rec(), "encode_frame");
        assert_eq!(
            frame.resolution(),
            self.config.resolution,
            "frame resolution mismatch"
        );
        // Which hot-kernel family the functional encode runs on (0 = scalar,
        // 1 = fast). Recorded only here — the timing-only path never touches
        // pixels, so its metrics stay independent of FEVES_KERNELS.
        self.rec().gauge(
            Metric::KernelDispatch,
            feves_codec::kernels::active_kind().index() as f64,
        );
        // Closed-GOP refresh: drop all references and start a new I-frame.
        if let Some(gop) = self.config.gop {
            if self.frames_encoded > 0 && self.frames_encoded.is_multiple_of(gop) {
                self.store = ReferenceStore::new(self.config.params.n_ref);
                self.recon_pending = None;
                self.refs_available = 0;
            }
        }
        self.frames_encoded += 1;
        if self.recon_pending.is_none() && self.store.is_empty() {
            // I-frame: luma intra + chroma-DC intra.
            let intra =
                feves_codec::intra::encode_intra_frame(frame.y(), self.config.params.qp_intra);
            let chroma = feves_codec::chroma::encode_chroma_intra(
                frame.u(),
                frame.v(),
                frame.mb_cols(),
                frame.mb_rows(),
                self.config.params.qp_intra,
            );
            let psnr = feves_video::metrics::psnr(&intra.recon, frame.y());
            self.recon_pending = Some(ReconPending {
                y: intra.recon,
                u: chroma.recon_u,
                v: chroma.recon_v,
            });
            self.rec().add(Metric::FramesEncoded, 1);
            if let Some(scope) = &self.scope {
                scope.frame_done();
            }
            return FrameReport::intra(intra.bits + chroma.bits, psnr);
        }
        self.refs_available = (self.refs_available + 1).min(self.config.params.n_ref);
        self.run_inter(Some(frame))
    }

    /// Encode a whole sequence functionally.
    pub fn encode_sequence(&mut self, frames: &[Frame]) -> EncodeReport {
        let _span = feves_obs::span!(self.rec(), "encode_sequence");
        let reports = frames.iter().map(|f| self.encode_frame(f)).collect();
        EncodeReport::new(self.platform.name.clone(), reports)
    }

    /// The shared inter-frame path: balance → plan → simulate → measure
    /// (→ optionally execute kernels).
    fn run_inter(&mut self, frame: Option<&Frame>) -> FrameReport {
        let _span = feves_obs::span!(self.rec(), "encode_inter");
        let inter_frame = self.inter_count + 1; // 1-based like Fig 7
        let n_rows = self.geometry.n_rows;
        let mut eff_params = EncodeParams {
            n_ref: self.refs_available.max(1),
            ..self.config.params
        };
        if let Some(rc) = &self.rate {
            eff_params.qp = rc.qp();
        }

        // Fault-tolerance bookkeeping: re-admit devices whose blacklist
        // backoff expired, count newly injected faults.
        self.health.tick(inter_frame);
        let newly_injected = self.injector.starting(inter_frame).count() as u64;
        if newly_injected > 0 {
            self.ft_stats.injected += newly_injected;
            self.rec().add(Metric::FtFaultsInjected, newly_injected);
        }
        let accel: Vec<bool> = self
            .platform
            .devices
            .iter()
            .map(|d| d.is_accelerator())
            .collect();

        // Pipeline submit: this frame enters as a new generation and claims
        // a DAM double-buffer slot. In pipelined mode the previous
        // generation is still draining (depth 2): its R\*/entropy tail
        // overlaps this frame's ME/INT prefix, and the LP solve below runs
        // off the critical path — it consumes the previous frame's
        // measurements either way, so its latency hides under the drain.
        let mut gen = self.pipeline.open();
        self.dam
            .begin_generation(gen)
            .expect("pipeline depth bounds DAM slot occupancy");

        // Load balancing (initialization phase falls back to equidistant
        // inside the balancers when uncharacterized).
        let sched_start = Instant::now();
        let mut avail = self.health.available();
        self.apply_lease(&mut avail);
        let mut dist = self.balance(n_rows, &avail);
        let mut sched_overhead = sched_start.elapsed().as_secs_f64();

        // Detection/recovery loop (tentpole parts 2–3): simulate the frame;
        // if a sync-point deadline is missed or a transfer fails, blacklist
        // the culprit, re-dispatch its MB rows by re-solving Algorithm 2
        // over the survivors, and retry the frame. Bounded by the device
        // count — every retry removes a device or accepts the result.
        let mut recovery_overhead = 0.0f64; // virtual seconds lost
        let mut frame_faulty = vec![false; self.platform.len()];
        let mut recovered_this_frame = 0u64;
        let max_attempts = self.platform.len() + 1;
        let mut attempt = 0;
        let (mask, plan, fg, sched) = loop {
            attempt += 1;
            // Blacklisted accelerators get no transfers; DAM drops their σʳ.
            let mask: Vec<bool> = accel.iter().zip(&avail).map(|(&a, &v)| a && v).collect();
            let plan = self.dam.plan(&dist, &mask, self.config.data_reuse);
            let fg = build_frame_graph(
                &dist,
                &plan,
                &self.platform,
                &eff_params,
                self.geometry,
                self.config.overlap,
            );
            let mut speeds = self.speed_multipliers(inter_frame);
            self.injector.overlay_speeds(inter_frame, &mut speeds);
            let sched = simulate(&fg.graph, &self.platform, &speeds, &mut self.noise)
                .expect("VCM-built graphs are deadlock-free by construction");
            if attempt >= max_attempts {
                break (mask, plan, fg, sched);
            }
            let Some((fault, wasted)) =
                self.detect_fault(inter_frame, gen, &dist, &fg, &sched, &avail, &mask)
            else {
                break (mask, plan, fg, sched);
            };
            self.ft_stats.detected += 1;
            self.rec().add(Metric::FtFaultsDetected, 1);
            // Disambiguation: a deadline miss on a device the drift detector
            // already flagged is most likely the same quiet degradation, not
            // an independent hard fault.
            if matches!(fault.cause, FaultCause::MissedDeadline(_))
                && self.drift.is_flagged(fault.device)
            {
                self.ft_stats.drift_vs_fault += 1;
                self.rec().add(Metric::FtDriftVsFault, 1);
            }
            if std::env::var_os("FEVES_FT_DEBUG").is_some() {
                eprintln!(
                    "ft: frame {inter_frame} attempt {attempt}: {fault:?} wasted {wasted:.4}s \
                     tau=({:.4},{:.4},{:.4})",
                    sched.finish_of(fg.tau1),
                    sched.finish_of(fg.tau2),
                    sched.finish_of(fg.tau_tot),
                );
            }
            frame_faulty[fault.device] = true;
            if !self.can_blacklist(fault.device, &avail) {
                // The last live core cannot be dropped; accept the frame.
                break (mask, plan, fg, sched);
            }
            // The attempt ran until the deadline fired; that virtual time
            // is lost and the frame restarts on the survivors.
            recovery_overhead += wasted;
            let lost_rows =
                (dist.me[fault.device] + dist.interp[fault.device] + dist.sme[fault.device]) as u64;
            self.health.record_fault(fault.device, inter_frame);
            avail = self.health.available();
            self.apply_lease(&mut avail);
            // Fault recovery drains the pipeline to a frame boundary first:
            // any in-flight overlap was measured on the old platform and is
            // forfeit before Algorithm 2 re-solves on the survivors. The
            // retried frame re-enters as a fresh generation.
            for g in self.pipeline.quiesce() {
                self.dam
                    .end_generation(g)
                    .expect("reaped generations own their slot");
            }
            gen = self.pipeline.open();
            self.dam
                .begin_generation(gen)
                .expect("a quiesced pipeline has both slots free");
            let t0 = Instant::now();
            dist = self.balance(n_rows, &avail);
            sched_overhead += t0.elapsed().as_secs_f64();
            self.ft_stats.resolves += 1;
            self.ft_stats.redispatched_rows += lost_rows;
            recovered_this_frame += 1;
            let rec = self.rec();
            rec.add(Metric::FtResolves, 1);
            rec.add(Metric::FtRedispatchedRows, lost_rows);
        };
        let trace = FrameTrace::capture(&fg, &sched, &self.platform);

        // Flight-recorder inputs, derived before the trace is archived:
        // per-device busy times split by engine class, the measured sync
        // points, and the DAM byte volumes.
        let mut compute_busy_ms = vec![0.0f64; self.platform.len()];
        let mut transfer_busy_ms = vec![0.0f64; self.platform.len()];
        for t in &trace.tasks {
            let busy = t.end_ms - t.start_ms;
            if t.lane.is_transfer() {
                transfer_busy_ms[t.lane.device] += busy;
            } else {
                compute_busy_ms[t.lane.device] += busy;
            }
        }
        let measured_tau = TauTriple {
            tau1_ms: trace.tau1_ms,
            tau2_ms: trace.tau2_ms,
            tau_tot_ms: trace.tau_tot_ms,
        };
        let rec = self.rec();
        let audited = rec.enabled() || self.flight.is_some();
        let transferred = transfer_bytes(&plan, self.geometry.width);
        let reused = if self.config.data_reuse && audited {
            // Reused = what a reuse-free plan of the same frame would have
            // shipped, minus what this plan ships.
            transfer_bytes(&self.dam.plan(&dist, &mask, false), self.geometry.width)
                .saturating_sub(transferred)
        } else {
            0
        };

        // Observability: per-frame metrics. Everything except the wall-clock
        // scheduling overhead is derived from the virtual clock and is
        // deterministic for a fixed configuration. Guarded so the disabled
        // path costs one `enabled()` call.
        if rec.enabled() {
            rec.observe(Metric::SchedOverheadUs, sched_overhead * 1e6);
            rec.observe(Metric::FrameTau1Ms, trace.tau1_ms);
            rec.observe(Metric::FrameTau2Ms, trace.tau2_ms);
            rec.observe(Metric::FrameTauTotMs, trace.tau_tot_ms);
            let busy: Vec<f64> = trace
                .utilization()
                .into_iter()
                .filter(|(l, _)| !l.is_transfer())
                .map(|(_, f)| f)
                .collect();
            let max = busy.iter().copied().fold(0.0f64, f64::max);
            if max > 0.0 {
                let min = busy.iter().copied().fold(f64::INFINITY, f64::min);
                rec.observe(Metric::LbImbalancePct, (max - min) / max * 100.0);
            }
            if let Some(iters) = dist.lp_iterations {
                rec.observe(Metric::LpIterations, iters as f64);
            }
            rec.add(Metric::VcmTasksScheduled, fg.graph.len() as u64);
            rec.add(Metric::DamBytesTransferred, transferred);
            if self.config.data_reuse {
                rec.add(Metric::DamBytesReused, reused);
            }
            if recovery_overhead > 0.0 {
                rec.observe(Metric::FtRecoveryMs, recovery_overhead * 1e3);
            }
            rec.add(Metric::FramesEncoded, 1);
        }
        self.last_trace = Some(trace);

        // Performance characterization update (Algorithm 1, lines 5/10).
        let mut rstar_time = vec![0.0f64; self.platform.len()];
        let mut rstar_seen = vec![false; self.platform.len()];
        for m in &fg.measures {
            let dur = sched.duration(m.task);
            match m.kind {
                MeasureKind::Compute {
                    device,
                    module,
                    rows,
                } => self.perf.record_compute(device, module, rows, dur),
                MeasureKind::Transfer {
                    device,
                    tag,
                    dir,
                    rows,
                } => self.perf.record_transfer(device, tag, dir, rows, dur),
                MeasureKind::RstarPart { device } => {
                    rstar_time[device] += dur;
                    rstar_seen[device] = true;
                }
            }
        }
        for d in 0..self.platform.len() {
            if rstar_seen[d] {
                self.perf.record_rstar(d, rstar_time[d]);
            }
        }

        // Prediction audit (tentpole): per-device signed residuals between
        // the LP's predicted busy time and the measured one feed the drift
        // detector. A firing resets that device's characterization — the
        // rates go NaN, the balancer falls back to an equidistant probe next
        // frame, and the re-measured rates replace the stale model: the
        // init ↔ iterative loop of Algorithm 1, re-entered on demand.
        // Runs *after* this frame's characterization update so the reset
        // survives into the next frame.
        let predicted_busy_ms: Vec<Option<f64>> = match &dist.predicted_device {
            Some(p) => p.iter().map(|dp| Some(dp.busy() * 1e3)).collect(),
            None => vec![None; self.platform.len()],
        };
        let residuals: Vec<Option<f64>> = (0..self.platform.len())
            .map(|d| {
                if !avail[d] {
                    // Blacklisted: a fault-domain problem, not model drift.
                    return None;
                }
                predicted_busy_ms[d].and_then(|p| residual_pct(p, compute_busy_ms[d]))
            })
            .collect();
        let drift_fired = self.drift.update(&residuals);
        let recharacterized = !drift_fired.is_empty();
        for &d in &drift_fired {
            self.perf.reset_device(d);
            rec.add(Metric::SchedDrift, 1);
            if std::env::var_os("FEVES_FT_DEBUG").is_some() {
                eprintln!(
                    "drift: frame {inter_frame}: device {d} residual {:?} outside band — \
                     re-characterizing",
                    residuals[d]
                );
            }
        }
        // A flagged device whose residual came back inside the band has been
        // successfully re-characterized: re-arm its detector.
        for (d, r) in residuals.iter().enumerate() {
            if self.drift.is_flagged(d) && !drift_fired.contains(&d) {
                if let Some(pct) = r {
                    if pct.abs() <= self.config.drift.band_pct {
                        self.drift.clear(d);
                    }
                }
            }
        }
        if rec.enabled() {
            for r in residuals.iter().flatten() {
                rec.observe(Metric::AuditResidualAbsPct, r.abs());
            }
            if let Some(imb) = imbalance_index(&compute_busy_ms) {
                rec.observe(Metric::LbImbalanceIndex, imb);
            }
        }
        // Pipeline reap accounting: per-device completion times of this
        // frame's measured tasks, computed post-hoc from the simulated
        // schedule, feed the overlap against the previous generation's
        // carried stall. Graph construction, the LP and the noise stream
        // are identical in both modes — the bitstream never depends on the
        // pipeline flag; only the idle attribution and effective times do.
        let mut completion = CompletionTracker::new(self.platform.len());
        let tau1_t = sched.finish_of(fg.tau1);
        for m in &fg.measures {
            let device = match m.kind {
                MeasureKind::Compute { device, .. }
                | MeasureKind::Transfer { device, .. }
                | MeasureKind::RstarPart { device } => device,
            };
            let f = sched.finish_of(m.task);
            completion.record(device, f, f <= tau1_t + 1e-12);
        }
        completion.set_barrier(sched.finish_of(fg.tau_tot));
        let overlap = self.pipeline.complete(gen, completion);
        if self.pipeline.enabled() && rec.enabled() {
            rec.observe(Metric::PipelineOverlapUs, overlap.saved_s * 1e6);
            rec.observe(
                Metric::PipelineStallRecoveredUs,
                overlap.total_recovered_s() * 1e6,
            );
        }

        if let Some(flight) = &mut self.flight {
            let devices = (0..self.platform.len())
                .map(|d| DeviceRecord {
                    device: d,
                    me_rows: dist.me[d],
                    interp_rows: dist.interp[d],
                    sme_rows: dist.sme[d],
                    predicted_busy_ms: predicted_busy_ms[d],
                    compute_busy_ms: compute_busy_ms[d],
                    transfer_busy_ms: transfer_busy_ms[d],
                    overlap_carried_ms: overlap.recovered_s[d] * 1e3,
                    residual_pct: residuals[d],
                    blacklisted: !avail[d],
                })
                .collect();
            flight.push(FlightRecord {
                frame: self.inter_count,
                rstar_device: dist.rstar_device,
                predicted_tau: dist.predicted.map(|p| TauTriple {
                    tau1_ms: p.tau1 * 1e3,
                    tau2_ms: p.tau2 * 1e3,
                    tau_tot_ms: p.tau_tot * 1e3,
                }),
                measured_tau,
                inflight_depth: overlap.depth_at_submit,
                devices,
                bytes_transferred: transferred,
                bytes_reused: reused,
                recovery_ms: recovery_overhead * 1e3,
                drift_devices: drift_fired,
                recharacterized,
            });
        }

        // Live telemetry: per-device dashboard rows (busy %, residual,
        // blacklist) plus the session frame tick. Device samples ride the
        // same bus as metrics, so a stalled exporter can only drop them —
        // never stall this loop.
        if let Some(scope) = &self.scope {
            let tau_tot = measured_tau.tau_tot_ms;
            for d in 0..self.platform.len() {
                let busy_pct = if tau_tot > 0.0 {
                    (compute_busy_ms[d] / tau_tot * 100.0).clamp(0.0, 100.0)
                } else {
                    0.0
                };
                scope.device_sample(d, busy_pct, residuals[d], !avail[d]);
            }
            scope.frame_done();
        }

        // Causal tracing: one frame span on the attempt's virtual clock,
        // phase children at the measured sync points, the active kernel
        // family, per-device rate slices, and — when the inter-frame
        // pipeline recovered carried stall — a causal edge from the
        // previous frame span. The frame span's duration is the *effective*
        // time (recovery + τtot − overlap-saved), so consecutive frame
        // spans tile the attempt exactly; the phase children use the raw
        // sync points and may poke past the frame end when overlap saved
        // wall time — that spill *is* the pipeline win, made visible.
        if let Some(sink) = &self.trace_sink {
            let start = self.trace_cursor_us;
            let dur = ((recovery_overhead + sched.finish_of(fg.tau_tot) - overlap.saved_s) * 1e6)
                .max(0.0);
            let devices: Vec<DeviceSlice> = (0..self.platform.len())
                .map(|d| DeviceSlice {
                    device: d,
                    rows: (dist.me[d] + dist.interp[d] + dist.sme[d]) as u64,
                    busy_ms: compute_busy_ms[d],
                })
                .collect();
            let kernel_ms = compute_busy_ms.iter().copied().fold(0.0f64, f64::max);
            let transfer_ms = transfer_busy_ms.iter().copied().fold(0.0f64, f64::max);
            let recovered_ms = overlap.total_recovered_s() * 1e3;
            let arg = |k: &str, v: f64| TraceArg { k: k.into(), v };
            let frame_span = sink.record_full(
                &format!("frame{}", self.inter_count),
                "frame",
                start,
                dur,
                devices,
                vec![
                    arg("tau1_ms", measured_tau.tau1_ms),
                    arg("tau2_ms", measured_tau.tau2_ms),
                    arg("tau_tot_ms", measured_tau.tau_tot_ms),
                    arg("kernel_ms", kernel_ms),
                    arg("transfer_ms", transfer_ms),
                    arg("recovered_ms", recovered_ms),
                ],
            );
            let frame_sink = sink.under(frame_span);
            let t1 = measured_tau.tau1_ms * 1e3;
            let t2 = measured_tau.tau2_ms * 1e3;
            let tt = measured_tau.tau_tot_ms * 1e3;
            frame_sink.record("phase1", "phase", start, t1);
            frame_sink.record("phase2", "phase", start + t1, (t2 - t1).max(0.0));
            frame_sink.record("tail", "phase", start + t2.min(tt), (tt - t2).max(0.0));
            frame_sink.record(
                &format!("kernels:{}", feves_codec::kernels::active_kind().name()),
                "kernel",
                start,
                kernel_ms * 1e3,
            );
            let mut edges = 0u64;
            if let Some(prev) = self.prev_frame_span {
                if recovered_ms > 0.0 && overlap.depth_at_submit > 1 {
                    sink.link(prev, frame_span, EdgeKind::PipelineOverlap);
                    edges = 1;
                }
            }
            self.prev_frame_span = Some(frame_span);
            self.trace_cursor_us = start + dur;
            if rec.enabled() {
                rec.add(Metric::TraceSpans, 5);
                if edges > 0 {
                    rec.add(Metric::TraceEdges, edges);
                }
            }
        }

        // Functional execution with the same distribution. Stripe-thread
        // panics are caught, the rows recomputed on the host, and the
        // culprit reported like any other device fault.
        let (bits, psnr) = match (frame, self.config.mode) {
            (Some(f), ExecutionMode::Functional) => {
                let (bits, psnr, kernel_faults) = self.execute_kernels(f, &dist, &eff_params);
                for (fault, rows) in kernel_faults {
                    self.ft_stats.detected += 1;
                    self.ft_stats.recovered += 1;
                    self.ft_stats.redispatched_rows += rows as u64;
                    let rec = self.rec();
                    rec.add(Metric::FtFaultsDetected, 1);
                    rec.add(Metric::FtFaultsRecovered, 1);
                    rec.add(Metric::FtRedispatchedRows, rows as u64);
                    frame_faulty[fault.device] = true;
                    if self.can_blacklist(fault.device, &avail) {
                        self.health.record_fault(fault.device, inter_frame);
                    }
                }
                if let Some(rc) = &mut self.rate {
                    rc.update(bits);
                }
                (Some(bits), Some(psnr))
            }
            _ => (None, None),
        };

        self.dam
            .commit(&dist, &mask, self.config.data_reuse)
            .expect("distribution validated above");

        // Close out fault-tolerance accounting: a detection that led to a
        // re-solve counts as recovered once the frame lands, clean devices
        // work toward probation exit, and the measured sync points feed the
        // deadline baseline used when no LP prediction is available.
        if recovered_this_frame > 0 {
            self.ft_stats.recovered += recovered_this_frame;
            self.rec()
                .add(Metric::FtFaultsRecovered, recovered_this_frame);
        }
        for d in 0..self.platform.len() {
            if avail[d] && !frame_faulty[d] {
                self.health.record_success(d);
            }
        }
        if !frame_faulty.iter().any(|&f| f) {
            let m = (
                sched.finish_of(fg.tau1),
                sched.finish_of(fg.tau2),
                sched.finish_of(fg.tau_tot),
            );
            self.expected_tau = Some(match self.expected_tau {
                Some((a, b, c)) => (0.5 * (a + m.0), 0.5 * (b + m.1), 0.5 * (c + m.2)),
                None => m,
            });
        }

        // Reap to the steady-state depth: lockstep reaps its own generation
        // every frame (a boundary after each frame); pipelined leaves this
        // generation in flight to drain under the next frame's submit.
        let keep = usize::from(self.pipeline.enabled());
        while self.pipeline.in_flight_depth() > keep {
            let g = self.pipeline.reap();
            self.dam
                .end_generation(g)
                .expect("reaped generations own their slot");
        }

        // Effective sync points: the whole frame shifts earlier by the span
        // its phase-1 prefix ran inside the previous generation's stall.
        // The EWMA deadline baseline above uses the *unshifted* times —
        // deadlines guard the schedule, not the overlap accounting.
        let saved = overlap.saved_s;
        let report = FrameReport::inter(
            inter_frame,
            recovery_overhead + sched.finish_of(fg.tau1) - saved,
            recovery_overhead + sched.finish_of(fg.tau2) - saved,
            recovery_overhead + sched.finish_of(fg.tau_tot) - saved,
            eff_params.n_ref,
            sched_overhead,
            dist.clone(),
            bits,
            psnr,
        );
        self.prev_dist = Some(dist);
        self.inter_count += 1;
        report
    }

    /// Run the real kernels, row-partitioned exactly as the distribution
    /// prescribes, and advance the reference store.
    ///
    /// Stripe threads that panic (injected or real) are caught at join and
    /// their rows recomputed serially on the host — ME/SME row results are
    /// independent of the stripe split, so the recomputation is bit-exact.
    /// Returns the caught faults with the number of re-dispatched rows.
    fn execute_kernels(
        &mut self,
        frame: &Frame,
        dist: &Distribution,
        params: &EncodeParams,
    ) -> (u64, f64, Vec<(DeviceFault, usize)>) {
        let cf = frame.y();
        let mb_cols = self.geometry.mb_cols;
        let n_rows = self.geometry.n_rows;
        let inter_frame = self.inter_count + 1;
        let mut kernel_faults: Vec<(DeviceFault, usize)> = Vec::new();

        // INT: interpolate the pending reconstruction per dist.interp and
        // push it as the newest reference.
        if let Some(pending) = self.recon_pending.take() {
            let mut sf = SubpelFrame::new(pending.y.width(), pending.y.height());
            for range in ranges_from_counts(&dist.interp) {
                sf.interpolate_rows(&pending.y, range);
            }
            self.store.push_yuv(pending.y, sf, pending.u, pending.v);
        }
        let rfs = self.store.rf_planes();
        let sfs = self.store.sfs();

        // ME per device stripe — stripes run concurrently on scoped threads,
        // mirroring the paper's per-device host threads (the Video Coding
        // Manager drives every device simultaneously). Each stripe writes a
        // disjoint row band of the motion field.
        let mut me = feves_codec::me::MeField::new(mb_cols, n_rows);
        let mut failed_me: Vec<(usize, RowRange)> = Vec::new();
        {
            let mut bands: Vec<(usize, RowRange, &mut [feves_codec::me::MbMotion])> = Vec::new();
            let mut rest = me.rows_mut(RowRange::new(0, n_rows));
            for (device, range) in ranges_from_counts(&dist.me).into_iter().enumerate() {
                let (band, tail) = rest.split_at_mut(range.len() * mb_cols);
                if !range.is_empty() {
                    bands.push((device, range, band));
                }
                rest = tail;
            }
            let (cf_ref, rfs_ref, params_ref) = (&cf, &rfs, &params);
            let injector = &self.injector;
            crossbeam::scope(|s| {
                let handles: Vec<_> = bands
                    .into_iter()
                    .map(|(device, range, out)| {
                        let h = s.spawn(move |_| {
                            if injector.kernel_panic(inter_frame, device) {
                                panic!("injected kernel panic on device {device}");
                            }
                            feves_codec::me::motion_estimate_rows_parallel(
                                cf_ref, rfs_ref, params_ref, range, out,
                            );
                        });
                        (device, range, h)
                    })
                    .collect();
                for (device, range, h) in handles {
                    if h.join().is_err() {
                        failed_me.push((device, range));
                    }
                }
            })
            .expect("all stripe panics are caught at join");
        }
        for &(device, range) in &failed_me {
            let out = me.rows_mut(range);
            feves_codec::me::motion_estimate_rows_parallel(cf, &rfs, params, range, out);
            kernel_faults.push((
                DeviceFault {
                    device,
                    frame: inter_frame,
                    cause: FaultCause::StripePanic,
                },
                range.len(),
            ));
        }

        // SME per device stripe, same device-level concurrency.
        let mut sme = feves_codec::sme::SmeField::new(mb_cols, n_rows);
        let mut failed_sme: Vec<(usize, RowRange)> = Vec::new();
        {
            let mut bands: Vec<(usize, RowRange, &mut [feves_codec::sme::MbSubMotion])> =
                Vec::new();
            let mut rest = sme.rows_mut(RowRange::new(0, n_rows));
            for (device, range) in ranges_from_counts(&dist.sme).into_iter().enumerate() {
                let (band, tail) = rest.split_at_mut(range.len() * mb_cols);
                if !range.is_empty() {
                    bands.push((device, range, band));
                }
                rest = tail;
            }
            let me_ref = &me;
            let (cf_ref, sfs_ref) = (&cf, &sfs);
            let injector = &self.injector;
            crossbeam::scope(|s| {
                let handles: Vec<_> = bands
                    .into_iter()
                    .map(|(device, range, out)| {
                        let h = s.spawn(move |_| {
                            if injector.kernel_panic(inter_frame, device) {
                                panic!("injected kernel panic on device {device}");
                            }
                            let me_rows: Vec<feves_codec::me::MbMotion> =
                                me_ref.rows(range).to_vec();
                            feves_codec::sme::sme_rows_parallel(
                                cf_ref, sfs_ref, &me_rows, range, out,
                            );
                        });
                        (device, range, h)
                    })
                    .collect();
                for (device, range, h) in handles {
                    if h.join().is_err() {
                        failed_sme.push((device, range));
                    }
                }
            })
            .expect("all stripe panics are caught at join");
        }
        for &(device, range) in &failed_sme {
            let me_rows: Vec<feves_codec::me::MbMotion> = me.rows(range).to_vec();
            let out = sme.rows_mut(range);
            feves_codec::sme::sme_rows_parallel(cf, &sfs, &me_rows, range, out);
            kernel_faults.push((
                DeviceFault {
                    device,
                    frame: inter_frame,
                    cause: FaultCause::StripePanic,
                },
                range.len(),
            ));
        }

        // R* on the selected device (single-device semantics).
        let all = RowRange::new(0, n_rows);
        let mut modes = feves_codec::mc::ModeField::new(mb_cols, n_rows);
        let mut pred: Plane<u8> = Plane::new(cf.width(), cf.height());
        let mut residual: Plane<i16> = Plane::new(cf.width(), cf.height());
        feves_codec::mc::mc_rows(
            cf,
            &sfs,
            sme.rows(all),
            params.qp,
            all,
            &mut modes,
            &mut pred,
            &mut residual,
        );
        let mut coeffs = feves_codec::recon::CoeffField::new(mb_cols, n_rows);
        feves_codec::recon::tq_rows(&residual, params.qp, false, all, &mut coeffs);
        let mut recon: Plane<u8> = Plane::new(cf.width(), cf.height());
        feves_codec::recon::itq_recon_rows(&coeffs, &pred, params.qp, all, &mut recon);
        feves_codec::dbl::deblock_frame(&mut recon, &modes, &coeffs, params.qp);

        // Chroma rides with the R* group (single-device semantics), using
        // the winning luma modes.
        let (refs_u, refs_v) = self
            .store
            .chroma_planes()
            .expect("functional references are pushed with chroma");
        let n_refs = refs_u.len().min(params.n_ref);
        let chroma = feves_codec::chroma::encode_chroma_inter(
            frame.u(),
            frame.v(),
            &refs_u[..n_refs],
            &refs_v[..n_refs],
            &modes,
            params.qp,
        );
        let (_stream, bits) = match self.config.entropy {
            feves_codec::cabac::EntropyBackend::ExpGolomb => {
                feves_codec::entropy::encode_frame_yuv(&modes, &coeffs, &chroma.coeffs, params.qp)
            }
            feves_codec::cabac::EntropyBackend::Cabac => feves_codec::cabac::encode_frame_cabac(
                &modes,
                &coeffs,
                Some(&chroma.coeffs),
                params.qp,
            ),
        };

        let psnr = feves_video::metrics::psnr(&recon, cf);
        self.recon_pending = Some(ReconPending {
            y: recon,
            u: chroma.recon_u,
            v: chroma.recon_v,
        });
        (bits, psnr, kernel_faults)
    }

    /// The simulated schedule of the most recent inter-frame (Fig 4 as
    /// data; see [`FrameTrace::render_gantt`]).
    pub fn last_trace(&self) -> Option<&FrameTrace> {
        self.last_trace.as_ref()
    }

    /// The last luma reconstruction (functional mode).
    pub fn last_reconstruction(&self) -> Option<&Plane<u8>> {
        self.recon_pending.as_ref().map(|p| &p.y)
    }

    /// The last full YUV reconstruction `(Y, Cb, Cr)` (functional mode).
    pub fn last_reconstruction_yuv(&self) -> Option<(&Plane<u8>, &Plane<u8>, &Plane<u8>)> {
        self.recon_pending.as_ref().map(|p| (&p.y, &p.u, &p.v))
    }

    /// The inter-frame pipeline (diagnostics/tests).
    pub fn pipeline(&self) -> &FramePipeline {
        &self.pipeline
    }

    /// Drain the submit/reap pipeline to a frame boundary: every in-flight
    /// generation is reaped (FIFO), its DAM buffer slot released, and the
    /// carried τ-sync stall dropped. Checkpoints must call this before
    /// [`snapshot`] — a snapshot taken mid-drain would capture state that
    /// straddles two generations. The frame after a quiesce starts cold
    /// (no overlap), which is the documented cost of a checkpoint under
    /// `--pipeline on`.
    ///
    /// [`snapshot`]: FevesEncoder::snapshot
    pub fn quiesce_pipeline(&mut self) {
        for g in self.pipeline.quiesce() {
            self.dam
                .end_generation(g)
                .expect("reaped generations own their slot");
        }
    }

    /// Capture the complete mutable encoder state for a checkpoint. Cheap
    /// relative to a frame: the only bulk data cloned is the reference
    /// window's reconstructed planes (the ~5× larger SFs are excluded and
    /// re-derived on [`restore`]).
    ///
    /// The pipeline must be quiesced first ([`Self::quiesce_pipeline`]);
    /// [`FrameworkState`] deliberately carries no in-flight generation or
    /// stall state, so a snapshot is only consistent at a frame boundary.
    ///
    /// [`restore`]: FevesEncoder::restore
    pub fn snapshot(&self) -> FrameworkState {
        assert!(
            self.pipeline.is_quiesced(),
            "snapshot requires a quiesced pipeline (call quiesce_pipeline first)"
        );
        let (dam_sigma_rem, dam_frames_committed) = self.dam.snapshot();
        FrameworkState {
            perf: self.perf.clone(),
            dam_sigma_rem,
            dam_frames_committed,
            noise: self.noise.snapshot(),
            prev_dist: self.prev_dist.clone(),
            inter_count: self.inter_count,
            frames_encoded: self.frames_encoded,
            refs_available: self.refs_available,
            rate: self.rate.as_ref().map(|rc| rc.snapshot()),
            refs: self
                .store
                .entries()
                .map(|e| (e.plane.clone(), e.chroma.clone()))
                .collect(),
            recon_pending: self
                .recon_pending
                .as_ref()
                .map(|p| (p.y.clone(), p.u.clone(), p.v.clone())),
            health: self.health.snapshot(),
            expected_tau: self.expected_tau,
            ft_stats: self.ft_stats,
            drift: self.drift.snapshot(),
        }
    }

    /// Rebuild an encoder mid-sequence from `(platform, config)` plus a
    /// [`FrameworkState`]. The resulting encoder re-enters the iterative
    /// phase exactly where the snapshot was taken — same characterization,
    /// same noise-RNG position, same reference window — so the frames it
    /// encodes from here are bit-identical to an uninterrupted run's.
    ///
    /// Fails with [`FevesError::CheckpointStale`] when the state was taken
    /// for a different device count than `platform` provides, and
    /// [`FevesError::CheckpointCorrupt`] when the state is internally
    /// inconsistent (mismatched vectors, out-of-range values).
    pub fn restore(
        platform: Platform,
        config: EncoderConfig,
        state: FrameworkState,
    ) -> Result<Self, FevesError> {
        let mut enc = Self::new(platform, config)?;
        let n = enc.platform.len();
        if state.perf.n_devices() != n {
            return Err(FevesError::CheckpointStale(format!(
                "characterization is for {} devices, platform has {}",
                state.perf.n_devices(),
                n
            )));
        }
        if state.health.state.len() != n {
            return Err(FevesError::CheckpointStale(format!(
                "health state is for {} devices, platform has {}",
                state.health.state.len(),
                n
            )));
        }
        if !(0.0..1.0).contains(&state.noise.amp) {
            return Err(FevesError::CheckpointCorrupt(format!(
                "noise amplitude {} out of [0, 1)",
                state.noise.amp
            )));
        }
        if state.refs.len() > enc.config.params.n_ref {
            return Err(FevesError::CheckpointCorrupt(format!(
                "{} reference frames checkpointed for an n_ref={} window",
                state.refs.len(),
                enc.config.params.n_ref
            )));
        }
        let padded = enc.config.resolution.padded();
        let dims_ok = |p: &Plane<u8>, w: usize, h: usize| p.width() == w && p.height() == h;
        let yuv_ok = |y: &Plane<u8>, u: &Plane<u8>, v: &Plane<u8>| {
            dims_ok(y, padded.width, padded.height)
                && dims_ok(u, padded.width / 2, padded.height / 2)
                && dims_ok(v, padded.width / 2, padded.height / 2)
        };
        for (y, chroma) in &state.refs {
            let ok = match chroma {
                Some((u, v)) => yuv_ok(y, u, v),
                None => dims_ok(y, padded.width, padded.height),
            };
            if !ok {
                return Err(FevesError::CheckpointStale(
                    "reference plane dimensions do not match the configured resolution".into(),
                ));
            }
        }
        if let Some((y, u, v)) = &state.recon_pending {
            if !yuv_ok(y, u, v) {
                return Err(FevesError::CheckpointStale(
                    "pending reconstruction dimensions do not match the configured resolution"
                        .into(),
                ));
            }
        }
        enc.perf = state.perf;
        enc.dam
            .restore_state(state.dam_sigma_rem, state.dam_frames_committed)?;
        enc.noise = MultiplicativeNoise::restore(&state.noise);
        enc.prev_dist = state.prev_dist;
        enc.inter_count = state.inter_count;
        enc.frames_encoded = state.frames_encoded;
        enc.refs_available = state.refs_available.min(enc.config.params.n_ref);
        enc.rate = state.rate.as_ref().map(RateController::from_snapshot);
        enc.store = ReferenceStore::rebuild(enc.config.params.n_ref, state.refs);
        enc.recon_pending = state
            .recon_pending
            .map(|(y, u, v)| ReconPending { y, u, v });
        enc.health = HealthTracker::restore(state.health).map_err(FevesError::CheckpointCorrupt)?;
        // The jitter seed is config, not snapshot state; re-apply it so the
        // restored tracker continues the original re-admission timeline.
        enc.health.set_jitter_seed(enc.config.health_jitter);
        enc.expected_tau = state.expected_tau;
        enc.ft_stats = state.ft_stats;
        enc.drift
            .restore_state(state.drift)
            .map_err(FevesError::CheckpointStale)?;
        Ok(enc)
    }

    /// Force a specific EWMA (test hook).
    pub fn set_ewma(&mut self, alpha: Ewma) {
        self.perf = PerfChar::new(self.platform.len(), alpha);
    }

    /// The centric choice of the current balancer when pinned (diagnostic).
    pub fn fixed_centric(&self) -> Option<Centric> {
        match self.config.balancer {
            BalancerKind::FevesFixed(c) => Some(c),
            _ => None,
        }
    }
}
