//! Per-frame schedule traces: the simulated Fig 4 timeline as inspectable
//! data — JSON for tooling, ASCII Gantt for the terminal, Chrome
//! trace-event JSON for Perfetto.

use crate::vcm::FrameGraph;
use feves_hetsim::platform::Platform;
use feves_hetsim::timeline::{Dir, Schedule, TaskKind};
use feves_obs::ChromeTraceBuilder;
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::str::FromStr;

/// Which engine of a device a lane represents.
///
/// Ordering (after device index) fixes the lane display order: compute,
/// interpolation engine, then the two copy engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LaneKind {
    /// Main compute queue (kernels).
    Compute,
    /// Accelerator interpolation engine (INT overlaps ME on GPUs).
    Interp,
    /// Host-to-device copy engine.
    H2d,
    /// Device-to-host copy engine.
    D2h,
}

impl LaneKind {
    /// Short suffix used in lane names ("" for compute).
    pub fn suffix(self) -> &'static str {
        match self {
            LaneKind::Compute => "",
            LaneKind::Interp => " int",
            LaneKind::H2d => " h2d",
            LaneKind::D2h => " d2h",
        }
    }

    /// Category string for Chrome trace events.
    pub fn category(self) -> &'static str {
        match self {
            LaneKind::Compute => "compute",
            LaneKind::Interp => "interp",
            LaneKind::H2d => "transfer",
            LaneKind::D2h => "transfer",
        }
    }
}

/// An execution lane of the timeline: one engine of one device.
///
/// Lanes order numerically by device index then [`LaneKind`], so `dev10`
/// sorts after `dev2` (the old string lanes sorted lexically and would
/// interleave them).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lane {
    /// Device index in the platform.
    pub device: usize,
    /// Engine within the device.
    pub kind: LaneKind,
}

impl Lane {
    /// Compute lane of `device`.
    pub fn compute(device: usize) -> Self {
        Lane {
            device,
            kind: LaneKind::Compute,
        }
    }

    /// Interpolation-engine lane of `device`.
    pub fn interp(device: usize) -> Self {
        Lane {
            device,
            kind: LaneKind::Interp,
        }
    }

    /// Copy-engine lane of `device` in direction `dir`.
    pub fn transfer(device: usize, dir: Dir) -> Self {
        Lane {
            device,
            kind: match dir {
                Dir::H2d => LaneKind::H2d,
                Dir::D2h => LaneKind::D2h,
            },
        }
    }

    /// True for the copy-engine lanes.
    pub fn is_transfer(self) -> bool {
        matches!(self.kind, LaneKind::H2d | LaneKind::D2h)
    }
}

impl fmt::Display for Lane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}{}", self.device, self.kind.suffix())
    }
}

impl FromStr for Lane {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rest = s
            .strip_prefix("dev")
            .ok_or_else(|| format!("lane must start with 'dev': {s:?}"))?;
        let (digits, suffix) = match rest.find(' ') {
            Some(i) => rest.split_at(i),
            None => (rest, ""),
        };
        let device: usize = digits
            .parse()
            .map_err(|_| format!("bad device index in lane {s:?}"))?;
        let kind = match suffix {
            "" => LaneKind::Compute,
            " int" => LaneKind::Interp,
            " h2d" => LaneKind::H2d,
            " d2h" => LaneKind::D2h,
            other => return Err(format!("unknown lane suffix {other:?}")),
        };
        Ok(Lane { device, kind })
    }
}

// Lanes serialize as their display string ("dev0 h2d"), keeping trace JSON
// identical to the earlier string-lane format.
impl Serialize for Lane {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for Lane {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::Error::msg("lane must be a string"))?;
        s.parse().map_err(serde::Error::msg)
    }
}

/// One executed task in a frame's schedule.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceTask {
    /// Human-readable label (module/stream + device).
    pub label: String,
    /// Executing lane (serialized as `"dev0"`, `"dev0 int"`, `"dev0 h2d"`,
    /// `"dev0 d2h"`).
    pub lane: Lane,
    /// Start time in milliseconds on the virtual clock.
    pub start_ms: f64,
    /// End time in milliseconds.
    pub end_ms: f64,
}

/// A frame's complete simulated timeline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrameTrace {
    /// Every non-barrier task, ordered by start time.
    pub tasks: Vec<TraceTask>,
    /// τ1 in ms.
    pub tau1_ms: f64,
    /// τ2 in ms.
    pub tau2_ms: f64,
    /// τtot in ms.
    pub tau_tot_ms: f64,
}

impl FrameTrace {
    /// Extract a trace from a simulated frame graph.
    pub fn capture(fg: &FrameGraph, sched: &Schedule, platform: &Platform) -> Self {
        let mut tasks = Vec::new();
        for (id, t) in fg.graph.iter() {
            let lane = match &t.kind {
                TaskKind::Compute { device, module, .. } => {
                    let dev = &platform.devices[device.0];
                    if dev.is_accelerator() && matches!(module, feves_codec::types::Module::Interp)
                    {
                        Lane::interp(device.0)
                    } else {
                        Lane::compute(device.0)
                    }
                }
                TaskKind::Transfer { device, dir, .. } => Lane::transfer(device.0, *dir),
                TaskKind::Barrier => continue,
            };
            tasks.push(TraceTask {
                label: t.label.clone(),
                lane,
                start_ms: sched.start[id.0] * 1e3,
                end_ms: sched.finish[id.0] * 1e3,
            });
        }
        tasks.sort_by(|a, b| a.start_ms.partial_cmp(&b.start_ms).unwrap());
        FrameTrace {
            tasks,
            tau1_ms: sched.finish_of(fg.tau1) * 1e3,
            tau2_ms: sched.finish_of(fg.tau2) * 1e3,
            tau_tot_ms: sched.finish_of(fg.tau_tot) * 1e3,
        }
    }

    /// The distinct lanes of this trace, in display order (device index,
    /// then engine).
    pub fn lanes(&self) -> Vec<Lane> {
        let mut lanes: Vec<Lane> = Vec::new();
        for t in &self.tasks {
            if !lanes.contains(&t.lane) {
                lanes.push(t.lane);
            }
        }
        lanes.sort();
        lanes
    }

    /// Busy fraction of each lane over the frame (`lane → busy / τtot`),
    /// in lane display order — the utilization view of Fig 4.
    pub fn utilization(&self) -> Vec<(Lane, f64)> {
        let total = self.tau_tot_ms.max(1e-9);
        let mut lanes: Vec<(Lane, f64)> = Vec::new();
        for t in &self.tasks {
            let busy = t.end_ms - t.start_ms;
            match lanes.iter_mut().find(|(l, _)| *l == t.lane) {
                Some((_, b)) => *b += busy,
                None => lanes.push((t.lane, busy)),
            }
        }
        lanes.sort_by_key(|a| a.0);
        lanes.into_iter().map(|(l, b)| (l, b / total)).collect()
    }

    /// Render an ASCII Gantt chart, `width` characters across the frame.
    pub fn render_gantt(&self, width: usize) -> String {
        let total = self.tau_tot_ms.max(1e-9);
        let scale = width as f64 / total;
        let mut lanes: Vec<(Lane, Vec<&TraceTask>)> = Vec::new();
        for t in &self.tasks {
            match lanes.iter_mut().find(|(l, _)| *l == t.lane) {
                Some((_, v)) => v.push(t),
                None => lanes.push((t.lane, vec![t])),
            }
        }
        lanes.sort_by_key(|a| a.0);
        let mut out = String::new();
        out.push_str(&format!(
            "frame timeline: tau1 {:.2} ms | tau2 {:.2} ms | tau_tot {:.2} ms\n",
            self.tau1_ms, self.tau2_ms, self.tau_tot_ms
        ));
        let t1 = (self.tau1_ms * scale).round() as usize;
        let t2 = (self.tau2_ms * scale).round() as usize;
        for (lane, tasks) in &lanes {
            let mut row = vec![b'.'; width];
            for t in tasks {
                let s = ((t.start_ms * scale) as usize).min(width.saturating_sub(1));
                let e = ((t.end_ms * scale).ceil() as usize).clamp(s + 1, width);
                let ch = glyph(&t.label);
                for c in row.iter_mut().take(e).skip(s) {
                    *c = ch;
                }
            }
            if t1 < width {
                row[t1] = b'|';
            }
            if t2 < width {
                row[t2] = b'|';
            }
            // Pad the rendered name, not the Display impl (write!-based
            // Display does not honor width specifiers).
            let name = lane.to_string();
            out.push_str(&format!("{name:>9} {}\n", String::from_utf8_lossy(&row)));
        }
        out.push_str("legend: M=ME I=INT S=SME R=R* c=CF r=RF s=SF v=MV  |=tau\n");
        out
    }

    /// Build a Chrome trace-event (Perfetto-compatible) view of the frame:
    /// one named thread per lane, one `"X"` complete event per task, and
    /// instant markers at the τ1/τ2/τtot synchronisation points. `ts`/`dur`
    /// are in microseconds of the *virtual* clock, so the export is
    /// deterministic for a fixed configuration.
    pub fn to_chrome_trace(&self) -> ChromeTraceBuilder {
        const PID: u64 = 0;
        let mut b = ChromeTraceBuilder::new();
        b.process_name(PID, "feves simulated timeline");
        let lanes = self.lanes();
        for (i, lane) in lanes.iter().enumerate() {
            b.thread_name(PID, i as u64 + 1, &lane.to_string());
        }
        let sync_tid = lanes.len() as u64 + 1;
        b.thread_name(PID, sync_tid, "sync points");
        for t in &self.tasks {
            let tid = lanes.iter().position(|l| *l == t.lane).expect("known lane") as u64 + 1;
            b.complete(
                PID,
                tid,
                &t.label,
                t.lane.kind.category(),
                t.start_ms * 1e3,
                (t.end_ms - t.start_ms) * 1e3,
            );
        }
        b.instant(PID, sync_tid, "tau1", self.tau1_ms * 1e3);
        b.instant(PID, sync_tid, "tau2", self.tau2_ms * 1e3);
        b.instant(PID, sync_tid, "tau_tot", self.tau_tot_ms * 1e3);
        b
    }
}

fn glyph(label: &str) -> u8 {
    if label.starts_with("ME") {
        b'M'
    } else if label.starts_with("INT") {
        b'I'
    } else if label.starts_with("SME") {
        b'S'
    } else if label.starts_with("Mc")
        || label.starts_with("Tq")
        || label.starts_with("Itq")
        || label.starts_with("Dbl")
    {
        b'R'
    } else if label.starts_with("CF") {
        b'c'
    } else if label.starts_with("RF") {
        b'r'
    } else if label.starts_with("SF") {
        b's'
    } else if label.starts_with("MV") {
        b'v'
    } else {
        b'#'
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dam::DataManager;
    use crate::vcm::{build_frame_graph, FrameGeometry};
    use feves_codec::types::EncodeParams;
    use feves_hetsim::noise::Deterministic;
    use feves_hetsim::timeline::simulate;
    use feves_sched::Distribution;

    fn traced_frame() -> FrameTrace {
        let p = Platform::sys_hk();
        let dist = Distribution::equidistant(68, p.len(), 0);
        let dam = DataManager::new(68, p.len());
        let mask: Vec<bool> = p.devices.iter().map(|d| d.is_accelerator()).collect();
        let plan = dam.plan(&dist, &mask, true);
        let geo = FrameGeometry {
            mb_cols: 120,
            n_rows: 68,
            width: 1920,
        };
        let fg = build_frame_graph(&dist, &plan, &p, &EncodeParams::default(), geo, true);
        let sched = simulate(&fg.graph, &p, &p.nominal_speeds(), &mut Deterministic).unwrap();
        FrameTrace::capture(&fg, &sched, &p)
    }

    #[test]
    fn trace_is_ordered_and_consistent() {
        let tr = traced_frame();
        assert!(!tr.tasks.is_empty());
        assert!(tr.tau1_ms <= tr.tau2_ms && tr.tau2_ms <= tr.tau_tot_ms);
        for w in tr.tasks.windows(2) {
            assert!(w[0].start_ms <= w[1].start_ms, "must be sorted by start");
        }
        for t in &tr.tasks {
            assert!(t.end_ms >= t.start_ms);
            assert!(t.end_ms <= tr.tau_tot_ms + 1e-9);
        }
    }

    #[test]
    fn gantt_renders_all_lanes() {
        let tr = traced_frame();
        let g = tr.render_gantt(60);
        assert!(g.contains("dev0"), "GPU lane missing:\n{g}");
        assert!(g.contains("dev0 h2d"), "H2D lane missing:\n{g}");
        assert!(g.contains("dev1"), "CPU core lane missing:\n{g}");
        assert!(g.contains('M') && g.contains('S'), "kernels missing:\n{g}");
        assert!(g.contains("tau_tot"));
    }

    #[test]
    fn trace_serializes() {
        let tr = traced_frame();
        let json = serde_json::to_string(&tr).unwrap();
        assert!(
            json.contains("\"dev0 h2d\""),
            "lane must serialize as string"
        );
        let back: FrameTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.tasks.len(), tr.tasks.len());
        assert_eq!(back.tasks[0].lane, tr.tasks[0].lane);
    }

    #[test]
    fn lane_display_parse_roundtrip() {
        for lane in [
            Lane::compute(0),
            Lane::interp(3),
            Lane::transfer(12, Dir::H2d),
            Lane::transfer(12, Dir::D2h),
        ] {
            let s = lane.to_string();
            assert_eq!(s.parse::<Lane>().unwrap(), lane, "roundtrip of {s:?}");
        }
        assert_eq!(Lane::compute(7).to_string(), "dev7");
        assert_eq!(Lane::interp(7).to_string(), "dev7 int");
        assert_eq!(Lane::transfer(7, Dir::H2d).to_string(), "dev7 h2d");
        assert!("gpu0".parse::<Lane>().is_err());
        assert!("devx".parse::<Lane>().is_err());
        assert!("dev0 foo".parse::<Lane>().is_err());
    }

    #[test]
    fn lanes_order_numerically_not_lexically() {
        // The old string lanes sorted "dev10" before "dev2"; the structured
        // Lane must order by device index.
        let mut lanes = vec![
            Lane::compute(10),
            Lane::compute(2),
            Lane::transfer(2, Dir::H2d),
            Lane::interp(2),
        ];
        lanes.sort();
        assert_eq!(
            lanes,
            vec![
                Lane::compute(2),
                Lane::interp(2),
                Lane::transfer(2, Dir::H2d),
                Lane::compute(10),
            ]
        );
    }

    #[test]
    fn chrome_trace_covers_all_tasks_and_lanes() {
        let tr = traced_frame();
        let n_lanes = tr.lanes().len();
        let b = tr.to_chrome_trace();
        // process_name + (lanes + sync) thread_names + tasks + 3 instants.
        assert_eq!(b.len(), 1 + n_lanes + 1 + tr.tasks.len() + 3);
        let json = b.to_json();
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"tau_tot\""));
        assert!(json.contains("\"ph\":\"X\""));
        serde_json::value_from_str(&json).expect("valid JSON");
    }
}

#[cfg(test)]
mod utilization_tests {
    use super::tests_support::traced_frame_for_utilization;

    #[test]
    fn utilization_bounded_and_meaningful() {
        let tr = traced_frame_for_utilization();
        let u = tr.utilization();
        assert!(!u.is_empty());
        for (lane, frac) in &u {
            assert!(
                (0.0..=1.0 + 1e-9).contains(frac),
                "{lane} utilization out of range: {frac}"
            );
        }
        // The busiest compute lane of a balanced frame is > 50% occupied.
        let max = u
            .iter()
            .filter(|(l, _)| !l.is_transfer())
            .map(|(_, f)| *f)
            .fold(0.0f64, f64::max);
        assert!(max > 0.5, "busiest kernel lane too idle: {max}");
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use crate::dam::DataManager;
    use crate::vcm::{build_frame_graph, FrameGeometry};
    use feves_codec::types::EncodeParams;
    use feves_hetsim::noise::Deterministic;
    use feves_hetsim::timeline::simulate;
    use feves_sched::Distribution;

    pub fn traced_frame_for_utilization() -> FrameTrace {
        let p = Platform::sys_hk();
        let dist = Distribution::equidistant(68, p.len(), 0);
        let dam = DataManager::new(68, p.len());
        let mask: Vec<bool> = p.devices.iter().map(|d| d.is_accelerator()).collect();
        let plan = dam.plan(&dist, &mask, true);
        let geo = FrameGeometry {
            mb_cols: 120,
            n_rows: 68,
            width: 1920,
        };
        let fg = build_frame_graph(&dist, &plan, &p, &EncodeParams::default(), geo, true);
        let sched = simulate(&fg.graph, &p, &p.nominal_speeds(), &mut Deterministic).unwrap();
        FrameTrace::capture(&fg, &sched, &p)
    }
}
