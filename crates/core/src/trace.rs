//! Per-frame schedule traces: the simulated Fig 4 timeline as inspectable
//! data — JSON for tooling, ASCII Gantt for the terminal.

use crate::vcm::FrameGraph;
use feves_hetsim::platform::Platform;
use feves_hetsim::timeline::{Dir, Schedule, TaskKind};
use serde::{Deserialize, Serialize};

/// One executed task in a frame's schedule.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceTask {
    /// Human-readable label (module/stream + device).
    pub label: String,
    /// Executing lane: `"dev0"`, `"dev0 int"`, `"dev0 h2d"`, `"dev0 d2h"`.
    pub lane: String,
    /// Start time in milliseconds on the virtual clock.
    pub start_ms: f64,
    /// End time in milliseconds.
    pub end_ms: f64,
}

/// A frame's complete simulated timeline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrameTrace {
    /// Every non-barrier task, ordered by start time.
    pub tasks: Vec<TraceTask>,
    /// τ1 in ms.
    pub tau1_ms: f64,
    /// τ2 in ms.
    pub tau2_ms: f64,
    /// τtot in ms.
    pub tau_tot_ms: f64,
}

impl FrameTrace {
    /// Extract a trace from a simulated frame graph.
    pub fn capture(fg: &FrameGraph, sched: &Schedule, platform: &Platform) -> Self {
        let mut tasks = Vec::new();
        for (id, t) in fg.graph.iter() {
            let lane = match &t.kind {
                TaskKind::Compute { device, module, .. } => {
                    let dev = &platform.devices[device.0];
                    if dev.is_accelerator()
                        && matches!(module, feves_codec::types::Module::Interp)
                    {
                        format!("dev{} int", device.0)
                    } else {
                        format!("dev{}", device.0)
                    }
                }
                TaskKind::Transfer { device, dir, .. } => match dir {
                    Dir::H2d => format!("dev{} h2d", device.0),
                    Dir::D2h => format!("dev{} d2h", device.0),
                },
                TaskKind::Barrier => continue,
            };
            tasks.push(TraceTask {
                label: t.label.clone(),
                lane,
                start_ms: sched.start[id.0] * 1e3,
                end_ms: sched.finish[id.0] * 1e3,
            });
        }
        tasks.sort_by(|a, b| a.start_ms.partial_cmp(&b.start_ms).unwrap());
        FrameTrace {
            tasks,
            tau1_ms: sched.finish_of(fg.tau1) * 1e3,
            tau2_ms: sched.finish_of(fg.tau2) * 1e3,
            tau_tot_ms: sched.finish_of(fg.tau_tot) * 1e3,
        }
    }

    /// Busy fraction of each lane over the frame (`lane → busy / τtot`),
    /// sorted by lane name — the utilization view of Fig 4.
    pub fn utilization(&self) -> Vec<(String, f64)> {
        let total = self.tau_tot_ms.max(1e-9);
        let mut lanes: Vec<(String, f64)> = Vec::new();
        for t in &self.tasks {
            let busy = t.end_ms - t.start_ms;
            match lanes.iter_mut().find(|(l, _)| *l == t.lane) {
                Some((_, b)) => *b += busy,
                None => lanes.push((t.lane.clone(), busy)),
            }
        }
        lanes.sort_by(|a, b| a.0.cmp(&b.0));
        lanes.into_iter().map(|(l, b)| (l, b / total)).collect()
    }

    /// Render an ASCII Gantt chart, `width` characters across the frame.
    pub fn render_gantt(&self, width: usize) -> String {
        let total = self.tau_tot_ms.max(1e-9);
        let scale = width as f64 / total;
        let mut lanes: Vec<(&str, Vec<&TraceTask>)> = Vec::new();
        for t in &self.tasks {
            match lanes.iter_mut().find(|(l, _)| *l == t.lane) {
                Some((_, v)) => v.push(t),
                None => lanes.push((t.lane.as_str(), vec![t])),
            }
        }
        lanes.sort_by(|a, b| a.0.cmp(b.0));
        let mut out = String::new();
        out.push_str(&format!(
            "frame timeline: tau1 {:.2} ms | tau2 {:.2} ms | tau_tot {:.2} ms\n",
            self.tau1_ms, self.tau2_ms, self.tau_tot_ms
        ));
        let t1 = (self.tau1_ms * scale).round() as usize;
        let t2 = (self.tau2_ms * scale).round() as usize;
        for (lane, tasks) in &lanes {
            let mut row = vec![b'.'; width];
            for t in tasks {
                let s = ((t.start_ms * scale) as usize).min(width.saturating_sub(1));
                let e = ((t.end_ms * scale).ceil() as usize).clamp(s + 1, width);
                let ch = glyph(&t.label);
                for c in row.iter_mut().take(e).skip(s) {
                    *c = ch;
                }
            }
            if t1 < width {
                row[t1] = b'|';
            }
            if t2 < width {
                row[t2] = b'|';
            }
            out.push_str(&format!(
                "{:>9} {}\n",
                lane,
                String::from_utf8_lossy(&row)
            ));
        }
        out.push_str("legend: M=ME I=INT S=SME R=R* c=CF r=RF s=SF v=MV  |=tau\n");
        out
    }
}

fn glyph(label: &str) -> u8 {
    if label.starts_with("ME") {
        b'M'
    } else if label.starts_with("INT") {
        b'I'
    } else if label.starts_with("SME") {
        b'S'
    } else if label.starts_with("Mc")
        || label.starts_with("Tq")
        || label.starts_with("Itq")
        || label.starts_with("Dbl")
    {
        b'R'
    } else if label.starts_with("CF") {
        b'c'
    } else if label.starts_with("RF") {
        b'r'
    } else if label.starts_with("SF") {
        b's'
    } else if label.starts_with("MV") {
        b'v'
    } else {
        b'#'
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dam::DataManager;
    use crate::vcm::{build_frame_graph, FrameGeometry};
    use feves_codec::types::EncodeParams;
    use feves_hetsim::noise::Deterministic;
    use feves_hetsim::timeline::simulate;
    use feves_sched::Distribution;

    fn traced_frame() -> FrameTrace {
        let p = Platform::sys_hk();
        let dist = Distribution::equidistant(68, p.len(), 0);
        let dam = DataManager::new(68, p.len());
        let mask: Vec<bool> = p.devices.iter().map(|d| d.is_accelerator()).collect();
        let plan = dam.plan(&dist, &mask, true);
        let geo = FrameGeometry {
            mb_cols: 120,
            n_rows: 68,
            width: 1920,
        };
        let fg = build_frame_graph(&dist, &plan, &p, &EncodeParams::default(), geo, true);
        let sched = simulate(&fg.graph, &p, &p.nominal_speeds(), &mut Deterministic).unwrap();
        FrameTrace::capture(&fg, &sched, &p)
    }

    #[test]
    fn trace_is_ordered_and_consistent() {
        let tr = traced_frame();
        assert!(!tr.tasks.is_empty());
        assert!(tr.tau1_ms <= tr.tau2_ms && tr.tau2_ms <= tr.tau_tot_ms);
        for w in tr.tasks.windows(2) {
            assert!(w[0].start_ms <= w[1].start_ms, "must be sorted by start");
        }
        for t in &tr.tasks {
            assert!(t.end_ms >= t.start_ms);
            assert!(t.end_ms <= tr.tau_tot_ms + 1e-9);
        }
    }

    #[test]
    fn gantt_renders_all_lanes() {
        let tr = traced_frame();
        let g = tr.render_gantt(60);
        assert!(g.contains("dev0"), "GPU lane missing:\n{g}");
        assert!(g.contains("dev0 h2d"), "H2D lane missing:\n{g}");
        assert!(g.contains("dev1"), "CPU core lane missing:\n{g}");
        assert!(g.contains('M') && g.contains('S'), "kernels missing:\n{g}");
        assert!(g.contains("tau_tot"));
    }

    #[test]
    fn trace_serializes() {
        let tr = traced_frame();
        let json = serde_json::to_string(&tr).unwrap();
        let back: FrameTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.tasks.len(), tr.tasks.len());
    }
}

#[cfg(test)]
mod utilization_tests {
    use super::tests_support::traced_frame_for_utilization;

    #[test]
    fn utilization_bounded_and_meaningful() {
        let tr = traced_frame_for_utilization();
        let u = tr.utilization();
        assert!(!u.is_empty());
        for (lane, frac) in &u {
            assert!(
                (0.0..=1.0 + 1e-9).contains(frac),
                "{lane} utilization out of range: {frac}"
            );
        }
        // The busiest compute lane of a balanced frame is > 50% occupied.
        let max = u
            .iter()
            .filter(|(l, _)| !l.contains("h2d") && !l.contains("d2h"))
            .map(|(_, f)| *f)
            .fold(0.0f64, f64::max);
        assert!(max > 0.5, "busiest kernel lane too idle: {max}");
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use crate::dam::DataManager;
    use crate::vcm::{build_frame_graph, FrameGeometry};
    use feves_codec::types::EncodeParams;
    use feves_hetsim::noise::Deterministic;
    use feves_hetsim::timeline::simulate;
    use feves_sched::Distribution;

    pub fn traced_frame_for_utilization() -> FrameTrace {
        let p = Platform::sys_hk();
        let dist = Distribution::equidistant(68, p.len(), 0);
        let dam = DataManager::new(68, p.len());
        let mask: Vec<bool> = p.devices.iter().map(|d| d.is_accelerator()).collect();
        let plan = dam.plan(&dist, &mask, true);
        let geo = FrameGeometry {
            mb_cols: 120,
            n_rows: 68,
            width: 1920,
        };
        let fg = build_frame_graph(&dist, &plan, &p, &EncodeParams::default(), geo, true);
        let sched = simulate(&fg.graph, &p, &p.nominal_speeds(), &mut Deterministic).unwrap();
        FrameTrace::capture(&fg, &sched, &p)
    }
}
