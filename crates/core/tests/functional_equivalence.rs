//! Functional-mode correctness: the framework's distributed execution must
//! produce bit-identical output to the single-device golden encoder, for
//! any load-balancing policy — the partition-invariance guarantee the whole
//! FEVES design rests on.

use feves_codec::inter_loop::{encode_inter_frame_yuv, ReferenceStore};
use feves_core::prelude::*;
use feves_video::frame::Frame;

fn test_frames(n: usize) -> Vec<Frame> {
    let mut cfg = SynthConfig::tiny_test();
    cfg.resolution = Resolution::QCIF;
    SynthSequence::new(cfg).take_frames(n)
}

fn functional_config(balancer: BalancerKind) -> EncoderConfig {
    let mut cfg = EncoderConfig::full_hd(EncodeParams {
        search_area: SearchArea(16),
        n_ref: 2,
        ..Default::default()
    });
    cfg.resolution = Resolution::QCIF;
    cfg.mode = ExecutionMode::Functional;
    cfg.balancer = balancer;
    cfg
}

/// Golden reference: intra + single-device YUV inter loop.
fn golden(frames: &[Frame]) -> Vec<(u64, Vec<u8>)> {
    let params = EncodeParams {
        search_area: SearchArea(16),
        n_ref: 2,
        ..Default::default()
    };
    let intra = feves_codec::intra::encode_intra_frame(frames[0].y(), params.qp_intra);
    let chroma0 = feves_codec::chroma::encode_chroma_intra(
        frames[0].u(),
        frames[0].v(),
        frames[0].mb_cols(),
        frames[0].mb_rows(),
        params.qp_intra,
    );
    let mut store = ReferenceStore::new(params.n_ref);
    let sf = feves_codec::interp::interpolate(&intra.recon);
    store.push_yuv(intra.recon, sf, chroma0.recon_u, chroma0.recon_v);
    let mut out = Vec::new();
    for f in &frames[1..] {
        let r = encode_inter_frame_yuv(f, &store, &params);
        let (_stream, bits) = feves_codec::entropy::encode_frame_yuv(
            &r.luma.modes,
            &r.luma.coeffs,
            &r.chroma.coeffs,
            params.qp,
        );
        out.push((bits, r.luma.recon.as_slice().to_vec()));
        let sf = feves_codec::interp::interpolate(&r.luma.recon);
        store.push_yuv(r.luma.recon, sf, r.chroma.recon_u, r.chroma.recon_v);
    }
    out
}

#[test]
fn framework_matches_golden_encoder() {
    let frames = test_frames(4);
    let expected = golden(&frames);

    let mut enc =
        FevesEncoder::new(Platform::sys_hk(), functional_config(BalancerKind::Feves)).unwrap();
    let rep = enc.encode_sequence(&frames);
    let got: Vec<&FrameReport> = rep.inter_frames().collect();
    assert_eq!(got.len(), expected.len());
    for (i, (f, (bits, recon))) in got.iter().zip(&expected).enumerate() {
        assert_eq!(f.bits, Some(*bits), "frame {} bits differ", i + 1);
        let _ = recon;
    }
    // Final reconstruction identical to the golden one.
    let last = enc.last_reconstruction().unwrap();
    assert_eq!(last.as_slice(), &expected.last().unwrap().1[..]);
}

#[test]
fn all_balancers_produce_identical_output() {
    let frames = test_frames(3);
    let mut reference: Option<(Vec<Option<u64>>, Vec<u8>)> = None;
    for balancer in [
        BalancerKind::Feves,
        BalancerKind::Equidistant,
        BalancerKind::Proportional,
        BalancerKind::SingleAccelerator(0),
        BalancerKind::CpuOnly,
    ] {
        let mut enc = FevesEncoder::new(Platform::sys_hk(), functional_config(balancer)).unwrap();
        let rep = enc.encode_sequence(&frames);
        let bits: Vec<Option<u64>> = rep.inter_frames().map(|f| f.bits).collect();
        let recon = enc.last_reconstruction().unwrap().as_slice().to_vec();
        match &reference {
            None => reference = Some((bits, recon)),
            Some((rb, rr)) => {
                assert_eq!(&bits, rb, "{balancer:?}: bitstream sizes diverge");
                assert_eq!(&recon, rr, "{balancer:?}: reconstruction diverges");
            }
        }
    }
}

#[test]
fn quality_is_reasonable_and_reported() {
    let frames = test_frames(4);
    let mut enc =
        FevesEncoder::new(Platform::sys_hk(), functional_config(BalancerKind::Feves)).unwrap();
    let rep = enc.encode_sequence(&frames);
    let psnr = rep.mean_psnr().expect("functional mode must report PSNR");
    assert!(
        psnr > 30.0,
        "QP 27/28 should land above 30 dB, got {psnr:.1}"
    );
    assert!(rep.total_bits() > 0);
    // Timing is still produced alongside the functional path.
    for f in rep.inter_frames() {
        assert!(f.tau_tot > 0.0);
    }
}

#[test]
fn refs_ramp_matches_store_growth() {
    let frames = test_frames(5);
    let mut enc =
        FevesEncoder::new(Platform::sys_hk(), functional_config(BalancerKind::Feves)).unwrap();
    let rep = enc.encode_sequence(&frames);
    let refs: Vec<usize> = rep.inter_frames().map(|f| f.refs_used).collect();
    assert_eq!(refs, vec![1, 2, 2, 2], "n_ref=2 window must ramp 1,2,2,…");
}

#[test]
fn gop_inserts_periodic_intra_frames() {
    let frames = test_frames(7);
    let mut cfg = functional_config(BalancerKind::Feves);
    cfg.gop = Some(3);
    let mut enc = FevesEncoder::new(Platform::sys_hk(), cfg).unwrap();
    let rep = enc.encode_sequence(&frames);
    let types: Vec<bool> = rep.frames.iter().map(|f| f.is_intra).collect();
    assert_eq!(
        types,
        vec![true, false, false, true, false, false, true],
        "GOP=3 must produce I P P I P P I"
    );
    // Reference windows reset at each I-frame: the first P after an I uses 1.
    let refs: Vec<usize> = rep.inter_frames().map(|f| f.refs_used).collect();
    assert_eq!(refs, vec![1, 2, 1, 2]);
}

#[test]
fn cabac_backend_saves_bits() {
    let frames = test_frames(4);
    let mut eg_cfg = functional_config(BalancerKind::Feves);
    eg_cfg.entropy = feves_codec::cabac::EntropyBackend::ExpGolomb;
    let mut cb_cfg = functional_config(BalancerKind::Feves);
    cb_cfg.entropy = feves_codec::cabac::EntropyBackend::Cabac;
    let eg = FevesEncoder::new(Platform::sys_hk(), eg_cfg)
        .unwrap()
        .encode_sequence(&frames);
    let cb = FevesEncoder::new(Platform::sys_hk(), cb_cfg)
        .unwrap()
        .encode_sequence(&frames);
    // Same quantized data (identical kernels), different entropy backend:
    // reconstructions identical, rate lower with the arithmetic coder.
    let eg_psnr: Vec<String> = eg
        .frames
        .iter()
        .map(|f| format!("{:?}", f.psnr_y))
        .collect();
    let cb_psnr: Vec<String> = cb
        .frames
        .iter()
        .map(|f| format!("{:?}", f.psnr_y))
        .collect();
    assert_eq!(eg_psnr, cb_psnr, "entropy backend must not change pixels");
    let eg_p: u64 = eg.inter_frames().filter_map(|f| f.bits).sum();
    let cb_p: u64 = cb.inter_frames().filter_map(|f| f.bits).sum();
    assert!(
        (cb_p as f64) < eg_p as f64 * 0.95,
        "CABAC P-frames {cb_p} should undercut Exp-Golomb {eg_p} by >5%"
    );
}

#[test]
fn rate_control_steers_bits_toward_target() {
    // A generous target first (QP should drift down → more bits), then a
    // tight one (QP up → fewer bits).
    let mut synth = SynthConfig::tiny_test();
    synth.resolution = Resolution::QCIF;
    let frames = SynthSequence::new(synth).take_frames(12);

    let run = |kbps: f64| {
        let mut cfg = functional_config(BalancerKind::Feves);
        cfg.rate_control = Some(RateControlConfig {
            target_kbps: kbps,
            fps: 25.0,
        });
        let mut enc = FevesEncoder::new(Platform::sys_hk(), cfg).unwrap();
        let rep = enc.encode_sequence(&frames);
        let p_bits: Vec<u64> = rep.inter_frames().filter_map(|f| f.bits).collect();
        // Mean of the last few P-frames (after the controller settles).
        let tail = &p_bits[p_bits.len() - 4..];
        tail.iter().sum::<u64>() as f64 / tail.len() as f64
    };
    let loose = run(2000.0); // 80 kbit/frame at QCIF: plenty
    let tight = run(100.0); // 4 kbit/frame: must squeeze
    assert!(
        loose > tight * 2.0,
        "rate control must separate the operating points: loose {loose:.0} vs tight {tight:.0}"
    );
    // The tight run must approach its per-frame budget within a factor ~3.
    let budget = 100.0 * 1000.0 / 25.0;
    assert!(
        tight < budget * 3.0,
        "tight run {tight:.0} bits/frame vs budget {budget:.0}"
    );
}
