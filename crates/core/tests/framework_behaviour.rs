//! Behavioural tests of the full framework loop (timing path): adaptation,
//! real-time claims, perturbation recovery, baselines ordering.

use feves_core::prelude::*;

fn config(sa: u16, n_ref: usize) -> EncoderConfig {
    EncoderConfig::full_hd(EncodeParams {
        search_area: SearchArea(sa),
        n_ref,
        ..Default::default()
    })
}

fn run(
    platform: Platform,
    balancer: BalancerKind,
    sa: u16,
    n_ref: usize,
    n: usize,
) -> EncodeReport {
    let mut cfg = config(sa, n_ref);
    cfg.balancer = balancer;
    let mut enc = FevesEncoder::new(platform, cfg).unwrap();
    enc.run_timing(n)
}

#[test]
fn first_frame_is_equidistant_then_improves() {
    // Algorithm 1: the first inter-frame uses the equidistant split; the LP
    // takes over at frame 2 and the time must drop sharply (Fig 7's "a
    // significant reduction ... starting already with frame 2").
    let rep = run(Platform::sys_hk(), BalancerKind::Feves, 32, 1, 10);
    let t: Vec<f64> = rep.inter_frames().map(|f| f.tau_tot).collect();
    assert!(
        t[1] < 0.6 * t[0],
        "frame 2 ({:.1} ms) must be far faster than the equidistant frame 1 ({:.1} ms)",
        t[1] * 1e3,
        t[0] * 1e3
    );
    // Steady state is stable (within noise).
    let steady: Vec<f64> = t[3..].to_vec();
    let mean = steady.iter().sum::<f64>() / steady.len() as f64;
    for v in &steady {
        assert!(
            (v - mean).abs() < 0.15 * mean,
            "unstable steady state: {steady:?}"
        );
    }
}

#[test]
fn paper_realtime_claims_hold() {
    // §IV: real-time (≥25 fps) at SA 32/1 RF on every tested CPU+GPU system.
    for (platform, name) in [
        (Platform::sys_nf(), "SysNF"),
        (Platform::sys_nff(), "SysNFF"),
        (Platform::sys_hk(), "SysHK"),
    ] {
        let fps = run(platform, BalancerKind::Feves, 32, 1, 10).steady_fps(3);
        assert!(
            fps >= 25.0,
            "{name} must be real-time at 32²/1RF, got {fps:.1}"
        );
    }
    // SysHK even at 64×64 ("not attainable with the state-of-the-art").
    let fps = run(Platform::sys_hk(), BalancerKind::Feves, 64, 1, 10).steady_fps(3);
    assert!(fps >= 25.0, "SysHK at 64² must be real-time, got {fps:.1}");
    // And for up to 4 RFs at 32×32, but not 5 (Fig 7b).
    let fps4 = run(Platform::sys_hk(), BalancerKind::Feves, 32, 4, 16).steady_fps(8);
    let fps5 = run(Platform::sys_hk(), BalancerKind::Feves, 32, 5, 16).steady_fps(9);
    assert!(fps4 >= 25.0, "SysHK 4 RF: {fps4:.1}");
    assert!(fps5 < 25.0, "SysHK 5 RF should miss real-time: {fps5:.1}");
}

#[test]
fn feves_beats_equidistant_and_proportional() {
    let feves = run(Platform::sys_hk(), BalancerKind::Feves, 32, 1, 12).steady_fps(3);
    let equi = run(Platform::sys_hk(), BalancerKind::Equidistant, 32, 1, 12).steady_fps(3);
    let prop = run(Platform::sys_hk(), BalancerKind::Proportional, 32, 1, 12).steady_fps(3);
    assert!(
        feves > 1.5 * equi,
        "LP ({feves:.1}) must crush equidistant ({equi:.1}) on a skewed platform"
    );
    assert!(
        feves >= prop * 0.98,
        "LP ({feves:.1}) must be at least as good as per-module proportional ({prop:.1})"
    );
}

#[test]
fn collaboration_beats_single_device() {
    // §IV: SysHK outperforms GPU_K and CPU_H alone; SysNFF vs GPU_F/CPU_N.
    let hk = run(Platform::sys_hk(), BalancerKind::Feves, 32, 1, 12).steady_fps(3);
    let gpu_k = run(
        Platform::gpu_only(feves_hetsim::profiles::gpu_kepler()),
        BalancerKind::SingleAccelerator(0),
        32,
        1,
        12,
    )
    .steady_fps(3);
    let cpu_h = run(
        Platform::cpu_only(feves_hetsim::profiles::cpu_haswell(), 4),
        BalancerKind::CpuOnly,
        32,
        1,
        12,
    )
    .steady_fps(3);
    assert!(hk > 1.1 * gpu_k, "SysHK {hk:.1} vs GPU_K {gpu_k:.1}");
    assert!(hk > 2.5 * cpu_h, "SysHK {hk:.1} vs CPU_H {cpu_h:.1}");
}

#[test]
fn perturbation_recovers_within_one_frame() {
    // Fig 7: a sudden performance change is absorbed: the affected frame is
    // slow, the next one re-balances ("a single inter-frame to converge").
    let mut cfg = config(32, 1);
    cfg.noise_amp = 0.0; // isolate the effect
    let mut enc = FevesEncoder::new(Platform::sys_hk(), cfg).unwrap();
    enc.add_perturbation(Perturbation {
        device: 0,      // the GPU suddenly loses half its speed
        frames: 10..12, // frames 10 and 11
        factor: 0.5,
    });
    let rep = enc.run_timing(20);
    let t: Vec<f64> = rep.inter_frames().map(|f| f.tau_tot).collect();
    let baseline = t[8]; // steady state before the hit
    assert!(
        t[9] > 1.25 * baseline,
        "frame 10 takes the hit: {:.1} vs {:.1} ms",
        t[9] * 1e3,
        baseline * 1e3
    );
    // Frame 11 still runs at half GPU speed but with redistributed load: it
    // must already be faster than the blind-sided frame 10.
    assert!(t[10] < t[9], "rebalanced frame 11 must improve on frame 10");
    // After the perturbation ends (frame 12), one frame of adaptation later
    // the time is back near baseline.
    assert!(
        t[12] < 1.15 * baseline,
        "recovery failed: {:.1} vs {:.1} ms",
        t[12] * 1e3,
        baseline * 1e3
    );
}

#[test]
fn rf_rampup_produces_rising_slope() {
    // Fig 7(b): with 5 RFs the encoding time rises over frames 2..5 while
    // the reference window fills, then flattens.
    let mut cfg = config(32, 5);
    cfg.noise_amp = 0.0;
    let mut enc = FevesEncoder::new(Platform::sys_hk(), cfg).unwrap();
    let rep = enc.run_timing(12);
    let frames: Vec<&FrameReport> = rep.inter_frames().collect();
    // refs_used ramps 1,2,3,4,5,5,...
    let refs: Vec<usize> = frames.iter().map(|f| f.refs_used).collect();
    assert_eq!(&refs[..6], &[1, 2, 3, 4, 5, 5]);
    // Time rises with the ramp (compare balanced frames 2 and 5).
    assert!(
        frames[4].tau_tot > 1.5 * frames[1].tau_tot,
        "5-RF frame must be much slower than 1-RF frame: {:.1} vs {:.1} ms",
        frames[4].tau_tot * 1e3,
        frames[1].tau_tot * 1e3
    );
    // Flat after the window fills.
    assert!(
        (frames[7].tau_tot - frames[10].tau_tot).abs() < 0.05 * frames[7].tau_tot,
        "steady state after ramp"
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "wall-clock claim holds for optimized builds (paper measures a release binary)"
)]
fn scheduling_overhead_below_2ms() {
    // §IV: "the scheduling overheads ... take, on average, less than 2 ms
    // per inter-frame encoding".
    let rep = run(Platform::sys_nff(), BalancerKind::Feves, 32, 4, 15);
    let avg: f64 = rep.inter_frames().map(|f| f.sched_overhead).sum::<f64>()
        / rep.inter_frames().count() as f64;
    assert!(
        avg < 2e-3,
        "average scheduling overhead {:.3} ms exceeds the paper's 2 ms",
        avg * 1e3
    );
}

#[test]
fn dual_engine_overlap_helps() {
    // SysHK's Kepler has dual copy engines; forcing the single-engine
    // behaviour (via a modified platform) must not be faster.
    use feves_hetsim::device::{CopyEngines, DeviceKind};
    let dual = run(Platform::sys_hk(), BalancerKind::Feves, 32, 4, 12).steady_fps(6);
    let mut p = Platform::sys_hk();
    p.devices[0].kind = DeviceKind::Accelerator(CopyEngines::Single);
    let single = run(p, BalancerKind::Feves, 32, 4, 12).steady_fps(6);
    assert!(
        dual >= single * 0.999,
        "dual-engine ({dual:.2}) must not lose to single-engine ({single:.2})"
    );
}

#[test]
fn overlap_and_data_reuse_ablations_help() {
    let mut base = config(32, 2);
    base.noise_amp = 0.0;
    let fps = |cfg: EncoderConfig| {
        FevesEncoder::new(Platform::sys_nff(), cfg)
            .unwrap()
            .run_timing(12)
            .steady_fps(5)
    };
    let full = fps(base.clone());
    let mut no_overlap = base.clone();
    no_overlap.overlap = false;
    let mut no_reuse = base.clone();
    no_reuse.data_reuse = false;
    let f_no_overlap = fps(no_overlap);
    let f_no_reuse = fps(no_reuse);
    // Overlap can only help (input transfers are small next to the kernels
    // at these parameters, so the margin may be within rounding).
    assert!(
        full >= f_no_overlap - 0.05,
        "comm/compute overlap must not hurt: {full:.2} vs {f_no_overlap:.2}"
    );
    assert!(
        full > f_no_reuse,
        "Δ/σ data reuse must pay off: {full:.1} vs {f_no_reuse:.1}"
    );

    // On a transfer-starved platform (single-copy-engine Fermis with their
    // narrower PCIe-2 links) the overlap benefit is strict.
    let mut slow_links = base.clone();
    slow_links.params.n_ref = 4; // more SF traffic per frame
    let mut no_overlap_slow = slow_links.clone();
    no_overlap_slow.overlap = false;
    let f_full = fps(slow_links);
    let f_sync = fps(no_overlap_slow);
    assert!(
        f_full >= f_sync,
        "overlap must not lose with heavy transfers: {f_full:.2} vs {f_sync:.2}"
    );
}

#[test]
fn deterministic_given_seed() {
    let a = run(Platform::sys_hk(), BalancerKind::Feves, 32, 2, 8);
    let b = run(Platform::sys_hk(), BalancerKind::Feves, 32, 2, 8);
    let ta: Vec<f64> = a.inter_frames().map(|f| f.tau_tot).collect();
    let tb: Vec<f64> = b.inter_frames().map(|f| f.tau_tot).collect();
    assert_eq!(ta, tb, "same seed ⇒ identical virtual timeline");
}

#[test]
fn distributions_always_valid_and_taus_ordered() {
    let rep = run(Platform::sys_nff(), BalancerKind::Feves, 64, 3, 15);
    for f in rep.inter_frames() {
        assert!(f.tau1 > 0.0);
        assert!(f.tau1 <= f.tau2 + 1e-12);
        assert!(f.tau2 <= f.tau_tot + 1e-12);
        f.distribution.as_ref().unwrap().validate(68).unwrap();
    }
}
