//! Resume bit-exactness at the library level: an encoder restored from a
//! mid-sequence [`FrameworkState`] must produce exactly the frames an
//! uninterrupted encoder would have produced — same bits, same
//! reconstructions, same schedule decisions — for every snapshot point.
//!
//! This is the invariant the whole crash-safety design leans on: if
//! snapshot/restore is bit-exact here, `feves resume`'s output equals the
//! uninterrupted run by construction (the CLI just replays the same calls).

use feves_core::prelude::*;
use feves_video::synth::{SynthConfig, SynthSequence};

fn make_frames(n: usize) -> Vec<feves_video::frame::Frame> {
    let mut synth = SynthSequence::new(SynthConfig {
        resolution: Resolution::QCIF,
        seed: 0x5EED,
        objects: 4,
        pan: (1.0, 0.5),
        noise: 2,
    });
    (0..n).map(|_| synth.next_frame()).collect()
}

fn functional_config() -> EncoderConfig {
    let mut cfg = EncoderConfig::full_hd(EncodeParams {
        search_area: SearchArea(16),
        n_ref: 2,
        ..Default::default()
    });
    cfg.resolution = Resolution::QCIF;
    cfg.mode = ExecutionMode::Functional;
    cfg
}

/// The comparable footprint of one encoded frame: coded bits, PSNR bit
/// pattern, and the reconstruction planes.
fn footprint(
    enc: &FevesEncoder,
    rep: &feves_core::FrameReport,
) -> (Option<u64>, Option<u64>, Vec<u8>) {
    let (y, u, v) = enc.last_reconstruction_yuv().expect("functional mode");
    let mut pixels = Vec::new();
    for p in [y, u, v] {
        for row in 0..p.height() {
            pixels.extend_from_slice(p.row(row));
        }
    }
    (rep.bits, rep.psnr_y.map(f64::to_bits), pixels)
}

#[test]
fn restore_at_any_frame_is_bit_identical() {
    let n = 8;
    let frames = make_frames(n);
    // Uninterrupted baseline, capturing every frame's footprint and the
    // snapshot after every frame.
    let mut baseline = FevesEncoder::new(Platform::sys_hk(), functional_config()).unwrap();
    let mut base_prints = Vec::new();
    let mut snapshots = Vec::new();
    for f in &frames {
        let rep = baseline.encode_frame(f);
        base_prints.push(footprint(&baseline, &rep));
        snapshots.push(baseline.snapshot());
    }
    // Resume from every snapshot point and re-encode the tail.
    for (k, snap) in snapshots.into_iter().enumerate().take(n - 1) {
        let mut resumed =
            FevesEncoder::restore(Platform::sys_hk(), functional_config(), snap).unwrap();
        for (j, f) in frames.iter().enumerate().skip(k + 1) {
            let rep = resumed.encode_frame(f);
            let print = footprint(&resumed, &rep);
            assert_eq!(
                print.0, base_prints[j].0,
                "bits diverged at frame {j} after resume from frame {k}"
            );
            assert_eq!(
                print.1, base_prints[j].1,
                "PSNR diverged at frame {j} after resume from frame {k}"
            );
            assert_eq!(
                print.2, base_prints[j].2,
                "reconstruction diverged at frame {j} after resume from frame {k}"
            );
        }
    }
}

#[test]
fn serialized_checkpoint_restores_bit_identically_too() {
    // Same invariant, but through the full binary serialization: snapshot →
    // encode_checkpoint → to_bytes → from_bytes → decode → restore.
    let n = 6;
    let k = 3;
    let frames = make_frames(n);
    let mut baseline = FevesEncoder::new(Platform::sys_hk(), functional_config()).unwrap();
    let mut tail_prints = Vec::new();
    let mut snap = None;
    for (j, f) in frames.iter().enumerate() {
        let rep = baseline.encode_frame(f);
        if j == k {
            snap = Some(baseline.snapshot());
        }
        if j > k {
            tail_prints.push((j, footprint(&baseline, &rep)));
        }
    }
    let ctx = ResumeContext {
        input: "synthetic".into(),
        output: "out.y4m".into(),
        platform: "sys-hk".into(),
        platform_json: None,
        sa: 16,
        refs: 2,
        qp: 26,
        balancer: "feves".into(),
        kernels: None,
        faults: Vec::new(),
        deadline_factor: None,
        flight_out: None,
        metrics_out: None,
        every: 2,
        keep: 2,
        frames_done: k + 1,
        n_frames: n,
        out_bytes: 0,
        input_fingerprint: 7,
        pipeline: false,
        out_crc: 0,
    };
    let bytes = feves_core::encode_checkpoint(&ctx, &snap.unwrap()).to_bytes();
    let blob = feves_ft::CheckpointBlob::from_bytes(&bytes).unwrap();
    let (ctx2, state) = feves_core::decode_checkpoint(&blob).unwrap();
    assert_eq!(ctx2.frames_done, k + 1);
    let mut resumed =
        FevesEncoder::restore(Platform::sys_hk(), functional_config(), state).unwrap();
    for (j, expected) in &tail_prints {
        let rep = resumed.encode_frame(&frames[*j]);
        let print = footprint(&resumed, &rep);
        assert_eq!(&print, expected, "frame {j} diverged through serialization");
    }
}

#[test]
fn restore_rejects_wrong_platform() {
    let frames = make_frames(3);
    let mut enc = FevesEncoder::new(Platform::sys_hk(), functional_config()).unwrap();
    for f in &frames {
        enc.encode_frame(f);
    }
    let snap = enc.snapshot();
    // SysNFF has a different device count → stale, not a crash.
    match FevesEncoder::restore(Platform::sys_nff(), functional_config(), snap) {
        Err(e) => assert!(matches!(e, FevesError::CheckpointStale(_)), "{e}"),
        Ok(_) => panic!("restore onto a different platform must fail"),
    }
}
