//! Robustness properties of the Y4M reader: no input — truncated, mutated,
//! or outright garbage — may panic, allocate absurdly, or return a frame
//! that was never fully present in the stream. Every failure mode must be
//! a typed [`VideoError`].

use feves_video::error::VideoError;
use feves_video::synth::{SynthConfig, SynthSequence};
use feves_video::y4m::{Y4mHeader, Y4mReader, Y4mWriter, MAX_Y4M_DIM};
use proptest::prelude::*;
use std::io::Cursor;

/// A small valid two-frame stream to mutate.
fn valid_stream() -> Vec<u8> {
    let mut seq = SynthSequence::new(SynthConfig::tiny_test());
    let frames = seq.take_frames(2);
    let header = Y4mHeader {
        resolution: frames[0].resolution(),
        fps: (25, 1),
    };
    let mut w = Y4mWriter::new(Vec::new(), header);
    for f in &frames {
        w.write_frame(f).unwrap();
    }
    w.finish().unwrap()
}

/// Feed `bytes` through the reader to completion; the only acceptable
/// outcomes are parsed frames or a typed error — this harness converts a
/// panic into a test failure via proptest.
fn drain(bytes: &[u8]) -> Result<usize, VideoError> {
    let mut r = Y4mReader::new(Cursor::new(bytes.to_vec()))?;
    let mut n = 0;
    while let Some(_f) = r.read_frame()? {
        n += 1;
    }
    Ok(n)
}

proptest! {
    #[test]
    fn truncation_at_any_point_never_panics(cut in 0usize..6000) {
        let full = valid_stream();
        let cut = cut.min(full.len());
        // Either a clean short parse or a typed error; never a panic.
        let _ = drain(&full[..cut]);
    }

    #[test]
    fn single_byte_mutations_never_panic(pos in 0usize..6000, val in any::<u8>()) {
        let mut bytes = valid_stream();
        let pos = pos % bytes.len();
        bytes[pos] = val;
        let _ = drain(&bytes);
    }

    #[test]
    fn arbitrary_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = drain(&bytes);
    }

    #[test]
    fn random_header_lines_never_panic(
        tags in proptest::collection::vec(proptest::collection::vec(32u8..127u8, 0..12), 0..8)
    ) {
        let mut line = b"YUV4MPEG2".to_vec();
        for t in &tags {
            line.push(b' ');
            line.extend_from_slice(t);
        }
        line.push(b'\n');
        let _ = drain(&line);
    }

    #[test]
    fn random_bytes_in_the_header_never_panic(
        raw in proptest::collection::vec(any::<u8>(), 0..24)
    ) {
        let mut line = b"YUV4MPEG2 ".to_vec();
        line.extend_from_slice(&raw);
        line.extend_from_slice(b" W16 H16\n");
        let _ = drain(&line);
    }
}

#[test]
fn multibyte_utf8_tag_key_is_ignored_not_split() {
    // A multi-byte first character once hit a byte-indexed `split_at(1)`
    // and panicked on the char boundary.
    let line = "YUV4MPEG2 \u{03A9}420 W16 H16\n";
    let r = Y4mReader::new(Cursor::new(line.as_bytes().to_vec())).unwrap();
    assert_eq!(r.header().resolution.width, 16);
    assert_eq!(r.header().resolution.height, 16);
}

#[test]
fn absurd_dimensions_are_rejected_before_allocation() {
    for hdr in [
        format!("YUV4MPEG2 W{} H16 F25:1\n", MAX_Y4M_DIM + 2),
        format!("YUV4MPEG2 W16 H{} F25:1\n", MAX_Y4M_DIM + 2),
        "YUV4MPEG2 W99999999999999999999 H16\n".to_string(),
        format!("YUV4MPEG2 W{0} H{0}\n", usize::MAX),
    ] {
        let err = Y4mReader::new(Cursor::new(hdr.clone().into_bytes()))
            .map(|_| ())
            .unwrap_err();
        assert!(
            matches!(
                err,
                VideoError::BadDimensions(_) | VideoError::ParseError(_)
            ),
            "{hdr:?} → {err}"
        );
    }
}

#[test]
fn odd_dimensions_are_rejected() {
    let err = Y4mReader::new(Cursor::new(b"YUV4MPEG2 W17 H16\n".to_vec()))
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, VideoError::BadDimensions(_)), "{err}");
}

#[test]
fn zero_rate_fps_is_rejected() {
    for hdr in ["YUV4MPEG2 W16 H16 F0:1\n", "YUV4MPEG2 W16 H16 F25:0\n"] {
        assert!(
            Y4mReader::new(Cursor::new(hdr.as_bytes().to_vec())).is_err(),
            "{hdr:?}"
        );
    }
}

#[test]
fn truncated_mid_frame_is_a_typed_error_not_a_short_frame() {
    let full = valid_stream();
    // Cut inside the second frame's payload: first frame parses, second errors.
    let cut = full.len() - 7;
    let mut r = Y4mReader::new(Cursor::new(full[..cut].to_vec())).unwrap();
    assert!(r.read_frame().unwrap().is_some(), "first frame is intact");
    let err = r.read_frame().unwrap_err();
    assert!(matches!(err, VideoError::UnexpectedEof), "{err}");
}

#[test]
fn resume_writer_skips_the_header() {
    let mut seq = SynthSequence::new(SynthConfig::tiny_test());
    let frames = seq.take_frames(2);
    let header = Y4mHeader {
        resolution: frames[0].resolution(),
        fps: (25, 1),
    };
    // Full stream in one writer...
    let mut w = Y4mWriter::new(Vec::new(), header);
    for f in &frames {
        w.write_frame(f).unwrap();
    }
    let whole = w.finish().unwrap();
    // ...equals header+frame0 from a fresh writer plus frame1 from a
    // resumed writer appended after it.
    let mut first = Y4mWriter::new(Vec::new(), header);
    first.write_frame(&frames[0]).unwrap();
    let mut bytes = first.finish().unwrap();
    let mut second = Y4mWriter::resume(Vec::new(), header);
    second.flush().unwrap();
    second.write_frame(&frames[1]).unwrap();
    bytes.extend_from_slice(&second.finish().unwrap());
    assert_eq!(
        whole, bytes,
        "resumed writer must continue the exact stream"
    );
}
