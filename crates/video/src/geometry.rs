//! Macroblock geometry: resolutions, MB grids and MB-row ranges.
//!
//! FEVES distributes work in units of *macroblock rows* (16-pixel-high
//! stripes). The types here make those units explicit so the scheduler, the
//! data-access manager and the kernels all speak the same language.

/// Macroblock edge length in luma pixels (H.264/AVC).
pub const MB_SIZE: usize = 16;

/// A video resolution in luma pixels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Resolution {
    /// Width in pixels (must be even for 4:2:0).
    pub width: usize,
    /// Height in pixels (must be even for 4:2:0).
    pub height: usize,
}

impl Resolution {
    /// Construct a resolution.
    pub const fn new(width: usize, height: usize) -> Self {
        Resolution { width, height }
    }

    /// 1920×1080 — the paper's evaluation resolution ("full HD", 1080p).
    pub const FULL_HD: Resolution = Resolution::new(1920, 1080);

    /// 1280×720.
    pub const HD720: Resolution = Resolution::new(1280, 720);

    /// 352×288 (CIF) — handy for fast tests.
    pub const CIF: Resolution = Resolution::new(352, 288);

    /// 176×144 (QCIF).
    pub const QCIF: Resolution = Resolution::new(176, 144);

    /// The macroblock grid covering this resolution (partial MBs rounded up).
    pub fn mb_grid(&self) -> MbGrid {
        MbGrid {
            cols: self.width.div_ceil(MB_SIZE),
            rows: self.height.div_ceil(MB_SIZE),
        }
    }

    /// Width/height rounded up to whole macroblocks — the padded encode size.
    pub fn padded(&self) -> Resolution {
        let g = self.mb_grid();
        Resolution::new(g.cols * MB_SIZE, g.rows * MB_SIZE)
    }

    /// Total luma pixels.
    pub fn pixels(&self) -> usize {
        self.width * self.height
    }
}

/// A grid of macroblocks: `cols × rows`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MbGrid {
    /// Macroblocks per row.
    pub cols: usize,
    /// Macroblock rows — the `N` of the paper's load-balancing formulation.
    pub rows: usize,
}

impl MbGrid {
    /// Total number of macroblocks.
    pub fn count(&self) -> usize {
        self.cols * self.rows
    }

    /// Linear MB index for `(mbx, mby)`.
    #[inline]
    pub fn index(&self, mbx: usize, mby: usize) -> usize {
        debug_assert!(mbx < self.cols && mby < self.rows);
        mby * self.cols + mbx
    }
}

/// A half-open range of macroblock rows `[start, end)` assigned to a device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RowRange {
    /// First MB row (inclusive).
    pub start: usize,
    /// One past the last MB row.
    pub end: usize,
}

impl RowRange {
    /// Construct a range; `start <= end` is required.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start <= end, "RowRange start {start} > end {end}");
        RowRange { start, end }
    }

    /// Empty range at 0.
    pub const EMPTY: RowRange = RowRange { start: 0, end: 0 };

    /// Number of MB rows covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no rows are covered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Iterate over the covered MB-row indices.
    pub fn iter(&self) -> impl Iterator<Item = usize> {
        self.start..self.end
    }

    /// Intersection with another range (possibly empty).
    pub fn intersect(&self, other: &RowRange) -> RowRange {
        let s = self.start.max(other.start);
        let e = self.end.min(other.end);
        if s >= e {
            RowRange::EMPTY
        } else {
            RowRange { start: s, end: e }
        }
    }

    /// Rows of `self` *not* covered by `other`, as (above, below) leftovers.
    ///
    /// This is the geometric core of the paper's `MS_BOUNDS`/`LS_BOUNDS`
    /// routines: the extra rows a device needs transferred when two modules'
    /// distributions refer to the same buffer but cover different stripes.
    pub fn difference(&self, other: &RowRange) -> (RowRange, RowRange) {
        let above = if self.start < other.start {
            RowRange::new(self.start, self.end.min(other.start))
        } else {
            RowRange::EMPTY
        };
        let below = if self.end > other.end {
            RowRange::new(self.start.max(other.end), self.end)
        } else {
            RowRange::EMPTY
        };
        (above, below)
    }

    /// Pixel rows covered (MB rows × 16), clamped to `height`.
    pub fn pixel_rows(&self, height: usize) -> std::ops::Range<usize> {
        (self.start * MB_SIZE).min(height)..(self.end * MB_SIZE).min(height)
    }
}

/// Turn a per-device row-count vector (the paper's `m`/`l`/`s` distribution
/// vectors) into consecutive [`RowRange`]s, in device enumeration order.
pub fn ranges_from_counts(counts: &[usize]) -> Vec<RowRange> {
    let mut out = Vec::with_capacity(counts.len());
    let mut at = 0usize;
    for &c in counts {
        out.push(RowRange::new(at, at + c));
        at += c;
    }
    out
}

/// Split `n_rows` MB rows as evenly as possible over `parts` devices — the
/// paper's *equidistant* partitioning used for the first inter-frame.
pub fn equidistant(n_rows: usize, parts: usize) -> Vec<usize> {
    assert!(parts > 0);
    let base = n_rows / parts;
    let extra = n_rows % parts;
    (0..parts).map(|i| base + usize::from(i < extra)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_hd_grid_matches_paper() {
        // 1080p: 120 MBs per row, 68 MB rows (1088 padded height).
        let g = Resolution::FULL_HD.mb_grid();
        assert_eq!(g.cols, 120);
        assert_eq!(g.rows, 68);
        assert_eq!(Resolution::FULL_HD.padded(), Resolution::new(1920, 1088));
    }

    #[test]
    fn row_range_len_and_iter() {
        let r = RowRange::new(3, 7);
        assert_eq!(r.len(), 4);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![3, 4, 5, 6]);
        assert!(RowRange::EMPTY.is_empty());
    }

    #[test]
    fn intersect_and_difference() {
        let a = RowRange::new(2, 10);
        let b = RowRange::new(5, 8);
        assert_eq!(a.intersect(&b), RowRange::new(5, 8));
        let (above, below) = a.difference(&b);
        assert_eq!(above, RowRange::new(2, 5));
        assert_eq!(below, RowRange::new(8, 10));

        // Disjoint ranges intersect to empty.
        assert!(RowRange::new(0, 2)
            .intersect(&RowRange::new(5, 9))
            .is_empty());

        // Contained range has no difference.
        let (ab, bl) = b.difference(&a);
        assert!(ab.is_empty() && bl.is_empty());
    }

    #[test]
    fn ranges_from_counts_are_consecutive() {
        let r = ranges_from_counts(&[3, 0, 5]);
        assert_eq!(r[0], RowRange::new(0, 3));
        assert_eq!(r[1], RowRange::new(3, 3));
        assert_eq!(r[2], RowRange::new(3, 8));
    }

    #[test]
    fn equidistant_sums_and_balances() {
        let d = equidistant(68, 5);
        assert_eq!(d.iter().sum::<usize>(), 68);
        assert_eq!(d.iter().max().unwrap() - d.iter().min().unwrap(), 1);
        assert_eq!(equidistant(4, 8), vec![1, 1, 1, 1, 0, 0, 0, 0]);
    }

    #[test]
    fn pixel_rows_clamped_to_height() {
        let r = RowRange::new(66, 68);
        assert_eq!(r.pixel_rows(1080), 1056..1080);
    }
}
