#![warn(missing_docs)]
//! Video substrate for the FEVES framework.
//!
//! This crate provides the raw-video building blocks every other FEVES crate
//! rests on:
//!
//! - [`Plane`] — a single rectangular sample plane with stride, the unit all
//!   encoding kernels operate on;
//! - [`Frame`] — a YUV 4:2:0 picture built from three planes;
//! - [`geometry`] — macroblock grids, partition shapes and row ranges used to
//!   express workload distributions in "MB rows" exactly as the paper does;
//! - [`synth`] — deterministic synthetic 1080p test sequences standing in for
//!   the paper's "Rolling Tomatoes" / "Toys and Calendar" clips;
//! - [`y4m`] — minimal YUV4MPEG2 reader/writer so user-supplied sequences can
//!   be encoded too;
//! - [`metrics`] — PSNR/MSE/SAD quality metrics.

pub mod error;
pub mod frame;
pub mod geometry;
pub mod metrics;
pub mod plane;
pub mod synth;
pub mod y4m;

pub use error::VideoError;
pub use frame::Frame;
pub use geometry::{MbGrid, Resolution, RowRange, MB_SIZE};
pub use plane::Plane;
pub use synth::{SynthConfig, SynthSequence};
