//! Objective quality metrics: MSE, PSNR and plane-level SAD.

use crate::frame::Frame;
use crate::plane::Plane;

/// Mean squared error between the valid regions of two equally-sized planes.
pub fn mse(a: &Plane<u8>, b: &Plane<u8>) -> f64 {
    assert_eq!(a.width(), b.width(), "plane widths differ");
    assert_eq!(a.height(), b.height(), "plane heights differ");
    let mut acc = 0u64;
    for (ra, rb) in a.rows().zip(b.rows()) {
        for (&pa, &pb) in ra.iter().zip(rb) {
            let d = pa as i64 - pb as i64;
            acc += (d * d) as u64;
        }
    }
    acc as f64 / (a.width() * a.height()) as f64
}

/// Peak signal-to-noise ratio in dB (8-bit peak). Identical planes → +inf.
pub fn psnr(a: &Plane<u8>, b: &Plane<u8>) -> f64 {
    let e = mse(a, b);
    if e == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / e).log10()
    }
}

/// Luma PSNR between two frames (display region via padded planes; the
/// padding replicates borders identically on both sides so it cancels).
pub fn psnr_y(a: &Frame, b: &Frame) -> f64 {
    psnr(a.y(), b.y())
}

/// Sum of absolute differences over whole planes (diagnostic).
pub fn plane_sad(a: &Plane<u8>, b: &Plane<u8>) -> u64 {
    assert_eq!(a.width(), b.width());
    assert_eq!(a.height(), b.height());
    let mut acc = 0u64;
    for (ra, rb) in a.rows().zip(b.rows()) {
        for (&pa, &pb) in ra.iter().zip(rb) {
            acc += (pa as i64 - pb as i64).unsigned_abs();
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_planes_infinite_psnr() {
        let p: Plane<u8> = Plane::new(8, 8);
        assert_eq!(mse(&p, &p), 0.0);
        assert!(psnr(&p, &p).is_infinite());
        assert_eq!(plane_sad(&p, &p), 0);
    }

    #[test]
    fn known_mse() {
        let a: Plane<u8> = Plane::new(2, 2);
        let mut b: Plane<u8> = Plane::new(2, 2);
        b.fill(2); // every sample differs by 2 → MSE 4
        assert_eq!(mse(&a, &b), 4.0);
        assert_eq!(plane_sad(&a, &b), 8);
        let p = psnr(&a, &b);
        assert!((p - 10.0 * (65025.0f64 / 4.0).log10()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "plane widths differ")]
    fn size_mismatch_panics() {
        let a: Plane<u8> = Plane::new(2, 2);
        let b: Plane<u8> = Plane::new(3, 2);
        let _ = mse(&a, &b);
    }
}

/// Structural similarity (SSIM) between two planes: uniform 8×8 windows
/// with stride 4, the standard C1/C2 stabilizers, averaged over windows.
/// 1.0 = identical; typical "good" codecs land above 0.9.
pub fn ssim(a: &Plane<u8>, b: &Plane<u8>) -> f64 {
    assert_eq!(a.width(), b.width(), "plane widths differ");
    assert_eq!(a.height(), b.height(), "plane heights differ");
    const C1: f64 = (0.01 * 255.0) * (0.01 * 255.0);
    const C2: f64 = (0.03 * 255.0) * (0.03 * 255.0);
    const WIN: usize = 8;
    const STEP: usize = 4;
    if a.width() < WIN || a.height() < WIN {
        // Degenerate: fall back to a single global window.
        return ssim_window(a, b, 0, 0, a.width(), a.height(), C1, C2);
    }
    let mut acc = 0.0;
    let mut n = 0usize;
    let mut y = 0;
    while y + WIN <= a.height() {
        let mut x = 0;
        while x + WIN <= a.width() {
            acc += ssim_window(a, b, x, y, WIN, WIN, C1, C2);
            n += 1;
            x += STEP;
        }
        y += STEP;
    }
    acc / n as f64
}

#[allow(clippy::too_many_arguments)]
fn ssim_window(
    a: &Plane<u8>,
    b: &Plane<u8>,
    x0: usize,
    y0: usize,
    w: usize,
    h: usize,
    c1: f64,
    c2: f64,
) -> f64 {
    let n = (w * h) as f64;
    let (mut sa, mut sb, mut saa, mut sbb, mut sab) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for y in y0..y0 + h {
        let ra = &a.row(y)[x0..x0 + w];
        let rb = &b.row(y)[x0..x0 + w];
        for (&pa, &pb) in ra.iter().zip(rb) {
            let (fa, fb) = (pa as f64, pb as f64);
            sa += fa;
            sb += fb;
            saa += fa * fa;
            sbb += fb * fb;
            sab += fa * fb;
        }
    }
    let (mu_a, mu_b) = (sa / n, sb / n);
    let var_a = (saa / n - mu_a * mu_a).max(0.0);
    let var_b = (sbb / n - mu_b * mu_b).max(0.0);
    let cov = sab / n - mu_a * mu_b;
    ((2.0 * mu_a * mu_b + c1) * (2.0 * cov + c2))
        / ((mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2))
}

#[cfg(test)]
mod ssim_tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn noisy(p: &Plane<u8>, amp: i16, seed: u64) -> Plane<u8> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut out = p.clone();
        for y in 0..p.height() {
            for x in 0..p.width() {
                let v = p.get(x, y) as i16 + rng.gen_range(-amp..=amp);
                out.set(x, y, v.clamp(0, 255) as u8);
            }
        }
        out
    }

    fn textured(w: usize, h: usize) -> Plane<u8> {
        let mut p = Plane::new(w, h);
        for y in 0..h {
            for x in 0..w {
                p.set(x, y, (((x * 13) ^ (y * 7)) % 256) as u8);
            }
        }
        p
    }

    #[test]
    fn identical_planes_score_one() {
        let p = textured(64, 64);
        assert!((ssim(&p, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ssim_decreases_with_noise() {
        let p = textured(64, 64);
        let light = ssim(&p, &noisy(&p, 4, 1));
        let heavy = ssim(&p, &noisy(&p, 40, 2));
        assert!(light < 1.0);
        assert!(
            heavy < light,
            "more noise must score lower: {heavy} vs {light}"
        );
        assert!(light > 0.9, "light noise should stay high: {light}");
    }

    #[test]
    fn structural_change_hurts_more_than_brightness() {
        // A constant brightness offset preserves structure (SSIM stays
        // high); shuffling rows destroys it.
        let p = textured(64, 64);
        let mut brighter = p.clone();
        for y in 0..64 {
            for x in 0..64 {
                brighter.set(x, y, p.get(x, y).saturating_add(10));
            }
        }
        let mut shuffled = p.clone();
        for y in 0..64 {
            for x in 0..64 {
                shuffled.set(x, y, p.get(x, (y * 17 + 3) % 64));
            }
        }
        let sb = ssim(&p, &brighter);
        let ss = ssim(&p, &shuffled);
        assert!(sb > 0.85, "brightness shift keeps structure: {sb}");
        assert!(ss < sb * 0.7, "shuffle must hurt: {ss} vs {sb}");
    }
}
