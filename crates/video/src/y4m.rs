//! Minimal YUV4MPEG2 (Y4M) reader and writer, 4:2:0 only.
//!
//! Supports the common header tags (`W`, `H`, `F`, `I`, `A`, `C420`*) and the
//! per-frame `FRAME` marker. Enough to feed real sequences into the encoder
//! and to dump synthetic ones for inspection with standard tools.

use crate::error::VideoError;
use crate::frame::Frame;
use crate::geometry::Resolution;
use std::io::{BufRead, Read, Write};

/// Stream parameters parsed from a Y4M header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Y4mHeader {
    /// Display resolution.
    pub resolution: Resolution,
    /// Frame rate as a rational (num, den).
    pub fps: (u32, u32),
}

/// Largest width/height a Y4M header may declare. Anything bigger is far
/// beyond DCI 8K and almost certainly a corrupted or hostile header — the
/// reader must reject it *before* sizing a frame buffer from it.
pub const MAX_Y4M_DIM: usize = 16_384;

/// Reads frames from a Y4M stream.
pub struct Y4mReader<R> {
    inner: R,
    header: Y4mHeader,
}

impl<R: BufRead> Y4mReader<R> {
    /// Parse the stream header and return a reader positioned at frame 0.
    pub fn new(mut inner: R) -> Result<Self, VideoError> {
        let mut line = Vec::new();
        read_line(&mut inner, &mut line)?;
        let text = std::str::from_utf8(&line)
            .map_err(|_| VideoError::ParseError("non-UTF8 Y4M header".into()))?;
        if !text.starts_with("YUV4MPEG2") {
            return Err(VideoError::ParseError("missing YUV4MPEG2 magic".into()));
        }
        let mut width = 0usize;
        let mut height = 0usize;
        let mut fps = (25, 1);
        for tag in text.split_ascii_whitespace().skip(1) {
            // Key is the first *character* (not byte): a multi-byte UTF-8
            // key must fall through to "unknown tag", not split mid-char.
            let mut chars = tag.char_indices();
            let Some((_, key)) = chars.next() else {
                continue;
            };
            let val = &tag[chars.next().map(|(i, _)| i).unwrap_or(tag.len())..];
            match key {
                'W' => {
                    width = val
                        .parse()
                        .map_err(|_| VideoError::ParseError(format!("bad W tag {val}")))?
                }
                'H' => {
                    height = val
                        .parse()
                        .map_err(|_| VideoError::ParseError(format!("bad H tag {val}")))?
                }
                'F' => {
                    let mut it = val.splitn(2, ':');
                    let n: Option<u32> = it.next().and_then(|s| s.parse().ok());
                    let d: Option<u32> = it.next().and_then(|s| s.parse().ok());
                    match (n, d) {
                        (Some(n), Some(d)) if n > 0 && d > 0 => fps = (n, d),
                        _ => return Err(VideoError::ParseError(format!("bad F tag {val}"))),
                    }
                }
                'C' if !val.starts_with("420") => {
                    return Err(VideoError::ParseError(format!(
                        "unsupported chroma {val}, only 4:2:0"
                    )));
                }
                _ => {} // I, A, X tags ignored
            }
        }
        if width == 0 || height == 0 {
            return Err(VideoError::ParseError("missing W/H tags".into()));
        }
        if width > MAX_Y4M_DIM || height > MAX_Y4M_DIM {
            return Err(VideoError::BadDimensions(format!(
                "{width}x{height} exceeds the {MAX_Y4M_DIM} limit — refusing to \
                 size buffers from an implausible header"
            )));
        }
        if !width.is_multiple_of(2) || !height.is_multiple_of(2) {
            return Err(VideoError::BadDimensions(format!(
                "{width}x{height} is odd — 4:2:0 chroma needs even dimensions"
            )));
        }
        Ok(Y4mReader {
            inner,
            header: Y4mHeader {
                resolution: Resolution::new(width, height),
                fps,
            },
        })
    }

    /// Stream parameters.
    pub fn header(&self) -> Y4mHeader {
        self.header
    }

    /// Read the next frame; `Ok(None)` at clean end of stream.
    pub fn read_frame(&mut self) -> Result<Option<Frame>, VideoError> {
        let mut line = Vec::new();
        match read_line(&mut self.inner, &mut line) {
            Ok(()) => {}
            Err(VideoError::UnexpectedEof) if line.is_empty() => return Ok(None),
            Err(e) => return Err(e),
        }
        if line.is_empty() {
            return Ok(None);
        }
        if !line.starts_with(b"FRAME") {
            return Err(VideoError::ParseError("missing FRAME marker".into()));
        }
        let res = self.header.resolution;
        let ysz = res.width * res.height;
        let csz = ysz / 4;
        let mut buf = vec![0u8; ysz + 2 * csz];
        self.inner
            .read_exact(&mut buf)
            .map_err(|_| VideoError::UnexpectedEof)?;
        let frame =
            Frame::from_planes_420(res, &buf[..ysz], &buf[ysz..ysz + csz], &buf[ysz + csz..])?;
        Ok(Some(frame))
    }

    /// Read every remaining frame.
    pub fn read_all(&mut self) -> Result<Vec<Frame>, VideoError> {
        let mut out = Vec::new();
        while let Some(f) = self.read_frame()? {
            out.push(f);
        }
        Ok(out)
    }
}

/// Writes frames to a Y4M stream.
pub struct Y4mWriter<W> {
    inner: W,
    header: Y4mHeader,
    wrote_header: bool,
}

impl<W: Write> Y4mWriter<W> {
    /// Create a writer; the header is emitted lazily with the first frame.
    pub fn new(inner: W, header: Y4mHeader) -> Self {
        Y4mWriter {
            inner,
            header,
            wrote_header: false,
        }
    }

    /// Create a writer appending to a stream that *already* carries its
    /// header (checkpoint resume: the output file was truncated to a frame
    /// boundary past the original header).
    pub fn resume(inner: W, header: Y4mHeader) -> Self {
        Y4mWriter {
            inner,
            header,
            wrote_header: true,
        }
    }

    /// Flush buffered frames to the underlying writer without consuming
    /// the writer (checkpoint commits need frame-boundary durability).
    pub fn flush(&mut self) -> Result<(), VideoError> {
        self.inner.flush()?;
        Ok(())
    }

    /// Shared access to the underlying writer (e.g. to fsync the backing
    /// file after a flush).
    pub fn get_ref(&self) -> &W {
        &self.inner
    }

    /// Append one frame (display region only; padding stripped).
    pub fn write_frame(&mut self, frame: &Frame) -> Result<(), VideoError> {
        let res = self.header.resolution;
        if frame.resolution() != res {
            return Err(VideoError::BadDimensions(format!(
                "frame {}x{} vs stream {}x{}",
                frame.resolution().width,
                frame.resolution().height,
                res.width,
                res.height
            )));
        }
        if !self.wrote_header {
            writeln!(
                self.inner,
                "YUV4MPEG2 W{} H{} F{}:{} Ip A1:1 C420jpeg",
                res.width, res.height, self.header.fps.0, self.header.fps.1
            )?;
            self.wrote_header = true;
        }
        writeln!(self.inner, "FRAME")?;
        for y in 0..res.height {
            self.inner.write_all(&frame.y().row(y)[..res.width])?;
        }
        for y in 0..res.height / 2 {
            self.inner.write_all(&frame.u().row(y)[..res.width / 2])?;
        }
        for y in 0..res.height / 2 {
            self.inner.write_all(&frame.v().row(y)[..res.width / 2])?;
        }
        Ok(())
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> Result<W, VideoError> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

fn read_line<R: Read>(r: &mut R, out: &mut Vec<u8>) -> Result<(), VideoError> {
    out.clear();
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte)? {
            0 => {
                return Err(VideoError::UnexpectedEof);
            }
            _ => {
                if byte[0] == b'\n' {
                    return Ok(());
                }
                out.push(byte[0]);
                if out.len() > 4096 {
                    return Err(VideoError::ParseError("unterminated header line".into()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthConfig, SynthSequence};
    use std::io::Cursor;

    #[test]
    fn roundtrip_synthetic_frames() {
        let mut seq = SynthSequence::new(SynthConfig::tiny_test());
        let frames = seq.take_frames(3);
        let header = Y4mHeader {
            resolution: frames[0].resolution(),
            fps: (25, 1),
        };
        let mut w = Y4mWriter::new(Vec::new(), header);
        for f in &frames {
            w.write_frame(f).unwrap();
        }
        let bytes = w.finish().unwrap();

        let mut r = Y4mReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(r.header(), header);
        let back = r.read_all().unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in frames.iter().zip(&back) {
            assert_eq!(a, b, "Y4M roundtrip must be lossless");
        }
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(Y4mReader::new(Cursor::new(b"NOTAY4M\n".to_vec())).is_err());
    }

    #[test]
    fn rejects_unsupported_chroma() {
        let hdr = b"YUV4MPEG2 W16 H16 F25:1 C444\n".to_vec();
        assert!(Y4mReader::new(Cursor::new(hdr)).is_err());
    }

    #[test]
    fn empty_stream_after_header_yields_no_frames() {
        let hdr = b"YUV4MPEG2 W16 H16 F25:1\n".to_vec();
        let mut r = Y4mReader::new(Cursor::new(hdr)).unwrap();
        assert!(r.read_frame().unwrap().is_none());
    }

    #[test]
    fn truncated_frame_is_error() {
        let mut data = b"YUV4MPEG2 W16 H16 F25:1\nFRAME\n".to_vec();
        data.extend_from_slice(&[0u8; 10]); // far less than 16*16*1.5
        let mut r = Y4mReader::new(Cursor::new(data)).unwrap();
        assert!(r.read_frame().is_err());
    }

    #[test]
    fn writer_rejects_mismatched_frame() {
        let header = Y4mHeader {
            resolution: Resolution::new(32, 32),
            fps: (25, 1),
        };
        let mut w = Y4mWriter::new(Vec::new(), header);
        let f = Frame::new(Resolution::new(16, 16)).unwrap();
        assert!(w.write_frame(&f).is_err());
    }
}
