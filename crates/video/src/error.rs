//! Error type for video I/O and construction.

use std::fmt;

/// Errors raised by the video substrate.
#[derive(Debug)]
pub enum VideoError {
    /// A dimension was zero or not compatible with the requested operation
    /// (e.g. an odd width for a 4:2:0 frame).
    BadDimensions(String),
    /// A Y4M stream did not parse.
    ParseError(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream ended before a complete frame was read.
    UnexpectedEof,
}

impl fmt::Display for VideoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VideoError::BadDimensions(msg) => write!(f, "bad dimensions: {msg}"),
            VideoError::ParseError(msg) => write!(f, "parse error: {msg}"),
            VideoError::Io(e) => write!(f, "i/o error: {e}"),
            VideoError::UnexpectedEof => write!(f, "unexpected end of stream"),
        }
    }
}

impl std::error::Error for VideoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VideoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for VideoError {
    fn from(e: std::io::Error) -> Self {
        VideoError::Io(e)
    }
}
