//! YUV 4:2:0 frames.

use crate::error::VideoError;
use crate::geometry::{Resolution, MB_SIZE};
use crate::plane::Plane;

/// A YUV 4:2:0 picture.
///
/// The luma plane is padded up to whole macroblocks (border replication) so
/// kernels never special-case partial MBs; `resolution()` still reports the
/// display size. Chroma planes are half-size in both dimensions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    y: Plane<u8>,
    u: Plane<u8>,
    v: Plane<u8>,
    display: Resolution,
}

impl Frame {
    /// Create a mid-gray frame of the given display resolution.
    pub fn new(display: Resolution) -> Result<Self, VideoError> {
        if display.width == 0 || display.height == 0 {
            return Err(VideoError::BadDimensions(format!(
                "{}x{}",
                display.width, display.height
            )));
        }
        if !display.width.is_multiple_of(2) || !display.height.is_multiple_of(2) {
            return Err(VideoError::BadDimensions(format!(
                "4:2:0 needs even dimensions, got {}x{}",
                display.width, display.height
            )));
        }
        let padded = display.padded();
        let mut y = Plane::new(padded.width, padded.height);
        y.fill(128);
        let mut u = Plane::new(padded.width / 2, padded.height / 2);
        u.fill(128);
        let mut v = Plane::new(padded.width / 2, padded.height / 2);
        v.fill(128);
        Ok(Frame { y, u, v, display })
    }

    /// Build a frame from raw planar 4:2:0 data at display size; the luma
    /// plane is padded to whole MBs by border replication.
    pub fn from_planes_420(
        display: Resolution,
        y_data: &[u8],
        u_data: &[u8],
        v_data: &[u8],
    ) -> Result<Self, VideoError> {
        let mut f = Frame::new(display)?;
        let (w, h) = (display.width, display.height);
        if y_data.len() != w * h || u_data.len() != w * h / 4 || v_data.len() != w * h / 4 {
            return Err(VideoError::BadDimensions(
                "plane byte counts do not match 4:2:0 layout".into(),
            ));
        }
        for yy in 0..h {
            f.y.row_mut(yy)[..w].copy_from_slice(&y_data[yy * w..(yy + 1) * w]);
        }
        for yy in 0..h / 2 {
            f.u.row_mut(yy)[..w / 2].copy_from_slice(&u_data[yy * (w / 2)..(yy + 1) * (w / 2)]);
            f.v.row_mut(yy)[..w / 2].copy_from_slice(&v_data[yy * (w / 2)..(yy + 1) * (w / 2)]);
        }
        f.pad_borders();
        Ok(f)
    }

    /// Replicate the last display row/column into the MB padding region.
    pub fn pad_borders(&mut self) {
        let (w, h) = (self.display.width, self.display.height);
        pad_plane(&mut self.y, w, h);
        pad_plane(&mut self.u, w / 2, h / 2);
        pad_plane(&mut self.v, w / 2, h / 2);
    }

    /// Display resolution (unpadded).
    pub fn resolution(&self) -> Resolution {
        self.display
    }

    /// Padded (whole-macroblock) resolution of the luma plane.
    pub fn padded_resolution(&self) -> Resolution {
        Resolution::new(self.y.width(), self.y.height())
    }

    /// Luma plane (padded).
    pub fn y(&self) -> &Plane<u8> {
        &self.y
    }

    /// Mutable luma plane.
    pub fn y_mut(&mut self) -> &mut Plane<u8> {
        &mut self.y
    }

    /// Cb plane.
    pub fn u(&self) -> &Plane<u8> {
        &self.u
    }

    /// Mutable Cb plane.
    pub fn u_mut(&mut self) -> &mut Plane<u8> {
        &mut self.u
    }

    /// Cr plane.
    pub fn v(&self) -> &Plane<u8> {
        &self.v
    }

    /// Mutable Cr plane.
    pub fn v_mut(&mut self) -> &mut Plane<u8> {
        &mut self.v
    }

    /// Number of macroblock rows (the scheduler's `N`).
    pub fn mb_rows(&self) -> usize {
        self.y.height() / MB_SIZE
    }

    /// Number of macroblocks per row.
    pub fn mb_cols(&self) -> usize {
        self.y.width() / MB_SIZE
    }
}

fn pad_plane(p: &mut Plane<u8>, valid_w: usize, valid_h: usize) {
    let (pw, ph) = (p.width(), p.height());
    // Replicate the last valid column to the right.
    if pw > valid_w {
        for y in 0..valid_h {
            let last = p.row(y)[valid_w - 1];
            p.row_mut(y)[valid_w..].fill(last);
        }
    }
    // Replicate the last valid row downward.
    if ph > valid_h {
        let last_row: Vec<u8> = p.row(valid_h - 1).to_vec();
        for y in valid_h..ph {
            p.row_mut(y).copy_from_slice(&last_row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_hd_is_padded_to_1088() {
        let f = Frame::new(Resolution::FULL_HD).unwrap();
        assert_eq!(f.padded_resolution(), Resolution::new(1920, 1088));
        assert_eq!(f.mb_rows(), 68);
        assert_eq!(f.mb_cols(), 120);
        assert_eq!(f.resolution(), Resolution::FULL_HD);
    }

    #[test]
    fn odd_dimensions_rejected() {
        assert!(Frame::new(Resolution::new(17, 16)).is_err());
        assert!(Frame::new(Resolution::new(0, 16)).is_err());
    }

    #[test]
    fn from_planes_roundtrip_and_padding() {
        let res = Resolution::new(16, 10); // pads to 16x16
        let y: Vec<u8> = (0..160).map(|i| (i % 251) as u8).collect();
        let u = vec![64u8; 40];
        let v = vec![192u8; 40];
        let f = Frame::from_planes_420(res, &y, &u, &v).unwrap();
        assert_eq!(f.y().get(5, 3), y[3 * 16 + 5]);
        // Padded rows replicate row 9.
        for yy in 10..16 {
            assert_eq!(f.y().row(yy), f.y().row(9));
        }
        assert_eq!(f.u().get(0, 0), 64);
        assert_eq!(f.v().get(0, 0), 192);
    }

    #[test]
    fn from_planes_bad_len_rejected() {
        let res = Resolution::new(16, 16);
        assert!(Frame::from_planes_420(res, &[0; 10], &[0; 64], &[0; 64]).is_err());
    }
}
