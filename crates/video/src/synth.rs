//! Deterministic synthetic test sequences.
//!
//! The paper evaluates on the "Rolling Tomatoes" and "Toys and Calendar"
//! 1080p clips, which are not redistributable. Because FEVES uses full-search
//! block matching, encoding *time* is content-independent (§IV: performance
//! "does not significantly vary ... for different video sequences (due to
//! FSBM ME)"), so a synthetic sequence with moving textured objects exercises
//! exactly the same code paths. The generator is fully deterministic for a
//! given seed.

use crate::error::VideoError;
use crate::frame::Frame;
use crate::geometry::Resolution;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration of the synthetic sequence generator.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Output resolution.
    pub resolution: Resolution,
    /// RNG seed; same seed → bit-identical sequence.
    pub seed: u64,
    /// Number of moving foreground objects.
    pub objects: usize,
    /// Global pan speed in pixels/frame (models camera motion).
    pub pan: (f32, f32),
    /// Per-pixel sensor-noise amplitude (0 disables).
    pub noise: u8,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            resolution: Resolution::FULL_HD,
            seed: 0xFEEDC0DE,
            objects: 12,
            pan: (1.5, 0.5),
            noise: 2,
        }
    }
}

impl SynthConfig {
    /// A 1080p stand-in for the paper's "Rolling Tomatoes": many fast-moving
    /// round objects over a textured table.
    pub fn rolling_tomatoes() -> Self {
        SynthConfig {
            objects: 20,
            pan: (0.0, 0.0),
            seed: 0x70AA70E5,
            ..Default::default()
        }
    }

    /// A 1080p stand-in for "Toys and Calendar": slow pan over detailed
    /// static content with a few slow movers.
    pub fn toys_and_calendar() -> Self {
        SynthConfig {
            objects: 6,
            pan: (2.0, 0.25),
            seed: 0x7051_5CA1 ^ 0xA5A5,
            ..Default::default()
        }
    }

    /// Small, fast sequence for unit tests.
    pub fn tiny_test() -> Self {
        SynthConfig {
            resolution: Resolution::QCIF,
            seed: 42,
            objects: 3,
            pan: (1.0, 0.0),
            noise: 1,
        }
    }
}

#[derive(Clone, Debug)]
struct MovingObject {
    cx: f32,
    cy: f32,
    vx: f32,
    vy: f32,
    radius: f32,
    luma: u8,
    cb: u8,
    cr: u8,
}

/// An infinite iterator of synthetic [`Frame`]s.
///
/// Background: smooth value-noise texture (so motion estimation has real
/// gradients to lock onto) panned by `cfg.pan`; foreground: `cfg.objects`
/// discs bouncing off frame edges; optional per-pixel noise.
pub struct SynthSequence {
    cfg: SynthConfig,
    background: Vec<u8>,
    bg_w: usize,
    bg_h: usize,
    objects: Vec<MovingObject>,
    frame_idx: u64,
    rng: ChaCha8Rng,
}

impl SynthSequence {
    /// Build a generator for `cfg`.
    pub fn new(cfg: SynthConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        // Background texture larger than the frame so panning never runs out.
        let bg_w = cfg.resolution.width + 512;
        let bg_h = cfg.resolution.height + 512;
        let background = value_noise(bg_w, bg_h, 64, &mut rng);
        let objects = (0..cfg.objects)
            .map(|_| MovingObject {
                cx: rng.gen_range(0.0..cfg.resolution.width as f32),
                cy: rng.gen_range(0.0..cfg.resolution.height as f32),
                vx: rng.gen_range(-6.0..6.0),
                vy: rng.gen_range(-4.0..4.0),
                radius: rng.gen_range(20.0..90.0),
                luma: rng.gen_range(40..220),
                cb: rng.gen_range(60..200),
                cr: rng.gen_range(60..200),
            })
            .collect();
        SynthSequence {
            cfg,
            background,
            bg_w,
            bg_h,
            objects,
            frame_idx: 0,
            rng,
        }
    }

    /// Generate the next frame.
    pub fn next_frame(&mut self) -> Frame {
        let res = self.cfg.resolution;
        let mut frame = Frame::new(res).expect("config resolution validated at construction");
        let t = self.frame_idx as f32;
        let off_x = (t * self.cfg.pan.0).rem_euclid((self.bg_w - res.width) as f32) as usize;
        let off_y = (t * self.cfg.pan.1).rem_euclid((self.bg_h - res.height) as f32) as usize;

        // Background pan.
        for y in 0..res.height {
            let src = &self.background[(y + off_y) * self.bg_w + off_x..][..res.width];
            frame.y_mut().row_mut(y)[..res.width].copy_from_slice(src);
        }

        // Foreground discs (luma + chroma).
        for (i, obj) in self.objects.iter().enumerate() {
            let phase = t * 0.05 + i as f32;
            let wobble = 1.0 + 0.1 * phase.sin();
            let r = obj.radius * wobble;
            let x0 = (obj.cx - r).max(0.0) as usize;
            let x1 = ((obj.cx + r) as usize).min(res.width.saturating_sub(1));
            let y0 = (obj.cy - r).max(0.0) as usize;
            let y1 = ((obj.cy + r) as usize).min(res.height.saturating_sub(1));
            let r2 = r * r;
            for y in y0..=y1.min(res.height - 1) {
                let dy = y as f32 - obj.cy;
                for x in x0..=x1.min(res.width - 1) {
                    let dx = x as f32 - obj.cx;
                    if dx * dx + dy * dy <= r2 {
                        // Shade by distance for gradients inside the object.
                        let d = ((dx * dx + dy * dy) / r2 * 40.0) as u8;
                        frame.y_mut().set(x, y, obj.luma.saturating_sub(d));
                        frame.u_mut().set(x / 2, y / 2, obj.cb);
                        frame.v_mut().set(x / 2, y / 2, obj.cr);
                    }
                }
            }
        }

        // Sensor noise.
        if self.cfg.noise > 0 {
            let amp = self.cfg.noise as i16;
            for y in 0..res.height {
                for px in frame.y_mut().row_mut(y)[..res.width].iter_mut() {
                    let n: i16 = self.rng.gen_range(-amp..=amp);
                    *px = (*px as i16 + n).clamp(0, 255) as u8;
                }
            }
        }

        frame.pad_borders();
        self.advance_objects();
        self.frame_idx += 1;
        frame
    }

    /// Generate `n` frames.
    pub fn take_frames(&mut self, n: usize) -> Vec<Frame> {
        (0..n).map(|_| self.next_frame()).collect()
    }

    fn advance_objects(&mut self) {
        let (w, h) = (
            self.cfg.resolution.width as f32,
            self.cfg.resolution.height as f32,
        );
        for obj in &mut self.objects {
            obj.cx += obj.vx;
            obj.cy += obj.vy;
            if obj.cx < 0.0 || obj.cx > w {
                obj.vx = -obj.vx;
                obj.cx = obj.cx.clamp(0.0, w);
            }
            if obj.cy < 0.0 || obj.cy > h {
                obj.vy = -obj.vy;
                obj.cy = obj.cy.clamp(0.0, h);
            }
        }
    }

    /// Validate a config before constructing (even dimensions etc.).
    pub fn validate(cfg: &SynthConfig) -> Result<(), VideoError> {
        Frame::new(cfg.resolution).map(|_| ())
    }
}

/// Smooth value noise: bilinear interpolation of a coarse random lattice.
fn value_noise(w: usize, h: usize, cell: usize, rng: &mut ChaCha8Rng) -> Vec<u8> {
    let gw = w / cell + 2;
    let gh = h / cell + 2;
    let lattice: Vec<u8> = (0..gw * gh).map(|_| rng.gen_range(30..226)).collect();
    let mut out = vec![0u8; w * h];
    for y in 0..h {
        let gy = y / cell;
        let fy = (y % cell) as f32 / cell as f32;
        for x in 0..w {
            let gx = x / cell;
            let fx = (x % cell) as f32 / cell as f32;
            let a = lattice[gy * gw + gx] as f32;
            let b = lattice[gy * gw + gx + 1] as f32;
            let c = lattice[(gy + 1) * gw + gx] as f32;
            let d = lattice[(gy + 1) * gw + gx + 1] as f32;
            let top = a + (b - a) * fx;
            let bot = c + (d - c) * fx;
            out[y * w + x] = (top + (bot - top) * fy) as u8;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SynthSequence::new(SynthConfig::tiny_test());
        let mut b = SynthSequence::new(SynthConfig::tiny_test());
        for _ in 0..3 {
            assert_eq!(a.next_frame(), b.next_frame());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = SynthConfig::tiny_test();
        let mut a = SynthSequence::new(cfg.clone());
        cfg.seed = 43;
        let mut b = SynthSequence::new(cfg);
        assert_ne!(a.next_frame(), b.next_frame());
    }

    #[test]
    fn frames_move_over_time() {
        let mut s = SynthSequence::new(SynthConfig::tiny_test());
        let f0 = s.next_frame();
        let f5 = s.take_frames(5).pop().unwrap();
        assert_ne!(f0, f5, "content must change between frames");
    }

    #[test]
    fn frame_has_texture() {
        let mut s = SynthSequence::new(SynthConfig::tiny_test());
        let f = s.next_frame();
        let row = f.y().row(50);
        let min = row.iter().min().unwrap();
        let max = row.iter().max().unwrap();
        assert!(max - min > 10, "background must have gradients for ME");
    }

    #[test]
    fn named_presets_construct() {
        SynthSequence::validate(&SynthConfig::rolling_tomatoes()).unwrap();
        SynthSequence::validate(&SynthConfig::toys_and_calendar()).unwrap();
    }
}
