//! Sample planes: the storage unit all encoding kernels operate on.

/// A rectangular plane of samples with an explicit stride.
///
/// `T` is `u8` for pixel data and `i16` for residuals / transform
/// coefficients. Rows are stored contiguously; `stride >= width` allows
/// padded layouts (alignment, sub-views) without copying.
///
/// ```
/// use feves_video::Plane;
/// let mut p: Plane<u8> = Plane::new(16, 16);
/// p.set(3, 5, 42);
/// assert_eq!(p.get(3, 5), 42);
/// assert_eq!(p.get_clamped(-10, 5), p.get(0, 5)); // border replication
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Plane<T = u8> {
    data: Vec<T>,
    width: usize,
    height: usize,
    stride: usize,
}

impl<T: Copy + Default> Plane<T> {
    /// Create a zero-filled plane with `stride == width`.
    pub fn new(width: usize, height: usize) -> Self {
        Self::with_stride(width, height, width)
    }

    /// Create a zero-filled plane with an explicit stride (`stride >= width`).
    pub fn with_stride(width: usize, height: usize, stride: usize) -> Self {
        assert!(stride >= width, "stride {stride} < width {width}");
        Plane {
            data: vec![T::default(); stride * height],
            width,
            height,
            stride,
        }
    }

    /// Build a plane from row-major samples with `stride == width`.
    ///
    /// # Panics
    /// If `data.len() != width * height`.
    pub fn from_vec(data: Vec<T>, width: usize, height: usize) -> Self {
        assert_eq!(data.len(), width * height, "sample count mismatch");
        Plane {
            data,
            width,
            height,
            stride: width,
        }
    }

    /// Plane width in samples.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Plane height in samples (rows).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Distance in samples between the starts of consecutive rows.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Borrow row `y` (exactly `width` samples).
    #[inline]
    pub fn row(&self, y: usize) -> &[T] {
        debug_assert!(y < self.height);
        let start = y * self.stride;
        &self.data[start..start + self.width]
    }

    /// Mutably borrow row `y`.
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [T] {
        debug_assert!(y < self.height);
        let start = y * self.stride;
        &mut self.data[start..start + self.width]
    }

    /// Sample at `(x, y)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> T {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.stride + x]
    }

    /// Write sample at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: T) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.stride + x] = v;
    }

    /// Sample at `(x, y)` with edge clamping — coordinates may lie outside
    /// the plane and are clamped to the border, the padding rule H.264 uses
    /// for motion search and interpolation beyond frame edges.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> T {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.stride + cx]
    }

    /// Raw backing storage (row-major with stride).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw backing storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Iterator over the valid samples of each row (stride padding excluded).
    pub fn rows(&self) -> impl Iterator<Item = &[T]> {
        self.data
            .chunks_exact(self.stride)
            .map(move |r| &r[..self.width])
    }

    /// Fill the whole plane (incl. stride padding) with `v`.
    pub fn fill(&mut self, v: T) {
        self.data.fill(v);
    }

    /// Copy the overlapping region from `src` (same-size planes copy fully).
    pub fn copy_from(&mut self, src: &Plane<T>) {
        let h = self.height.min(src.height);
        let w = self.width.min(src.width);
        for y in 0..h {
            self.row_mut(y)[..w].copy_from_slice(&src.row(y)[..w]);
        }
    }

    /// Split the plane into disjoint mutable horizontal bands, one per entry
    /// of `row_counts` (heights in *sample rows*; must sum to `height`).
    ///
    /// This is how row-partitioned kernels obtain non-overlapping mutable
    /// output regions for parallel execution without `unsafe`.
    pub fn split_rows_mut(&mut self, row_counts: &[usize]) -> Vec<PlaneBandMut<'_, T>> {
        let total: usize = row_counts.iter().sum();
        assert_eq!(total, self.height, "band heights must sum to plane height");
        let width = self.width;
        let stride = self.stride;
        let mut out = Vec::with_capacity(row_counts.len());
        let mut rest: &mut [T] = &mut self.data;
        let mut y0 = 0usize;
        for &h in row_counts {
            let (band, tail) = rest.split_at_mut(h * stride);
            out.push(PlaneBandMut {
                data: band,
                width,
                stride,
                start_row: y0,
                rows: h,
            });
            rest = tail;
            y0 += h;
        }
        out
    }
}

/// A mutable horizontal band of a [`Plane`], produced by
/// [`Plane::split_rows_mut`]. Rows are addressed in *plane* coordinates.
pub struct PlaneBandMut<'a, T> {
    data: &'a mut [T],
    width: usize,
    stride: usize,
    start_row: usize,
    rows: usize,
}

impl<T: Copy> PlaneBandMut<'_, T> {
    /// First plane row covered by this band.
    #[inline]
    pub fn start_row(&self) -> usize {
        self.start_row
    }

    /// Number of rows in this band.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Band width (same as the parent plane's).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mutably borrow plane row `y` (must fall inside the band).
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [T] {
        assert!(
            y >= self.start_row && y < self.start_row + self.rows,
            "row {y} outside band [{}, {})",
            self.start_row,
            self.start_row + self.rows
        );
        let local = y - self.start_row;
        &mut self.data[local * self.stride..local * self.stride + self.width]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let p: Plane<u8> = Plane::new(4, 3);
        assert_eq!(p.width(), 4);
        assert_eq!(p.height(), 3);
        assert!(p.as_slice().iter().all(|&v| v == 0));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut p: Plane<u8> = Plane::new(8, 8);
        p.set(3, 5, 42);
        assert_eq!(p.get(3, 5), 42);
        assert_eq!(p.row(5)[3], 42);
    }

    #[test]
    fn stride_layout_keeps_rows_apart() {
        let mut p: Plane<u8> = Plane::with_stride(4, 2, 16);
        p.row_mut(0).copy_from_slice(&[1, 2, 3, 4]);
        p.row_mut(1).copy_from_slice(&[5, 6, 7, 8]);
        assert_eq!(p.get(0, 1), 5);
        assert_eq!(p.as_slice()[16], 5);
    }

    #[test]
    fn clamped_access_replicates_borders() {
        let mut p: Plane<u8> = Plane::new(2, 2);
        p.set(0, 0, 10);
        p.set(1, 0, 20);
        p.set(0, 1, 30);
        p.set(1, 1, 40);
        assert_eq!(p.get_clamped(-5, -5), 10);
        assert_eq!(p.get_clamped(7, -1), 20);
        assert_eq!(p.get_clamped(-1, 9), 30);
        assert_eq!(p.get_clamped(9, 9), 40);
    }

    #[test]
    fn from_vec_row_major() {
        let p = Plane::from_vec((0u8..12).collect(), 4, 3);
        assert_eq!(p.get(3, 2), 11);
        assert_eq!(p.row(1), &[4, 5, 6, 7]);
    }

    #[test]
    #[should_panic(expected = "sample count mismatch")]
    fn from_vec_wrong_len_panics() {
        let _ = Plane::from_vec(vec![0u8; 10], 4, 3);
    }

    #[test]
    fn split_rows_mut_disjoint_bands() {
        let mut p: Plane<u8> = Plane::new(4, 6);
        {
            let mut bands = p.split_rows_mut(&[2, 3, 1]);
            assert_eq!(bands.len(), 3);
            assert_eq!(bands[0].start_row(), 0);
            assert_eq!(bands[1].start_row(), 2);
            assert_eq!(bands[2].start_row(), 5);
            bands[1].row_mut(4).fill(9);
        }
        assert_eq!(p.row(4), &[9, 9, 9, 9]);
        assert_eq!(p.row(3), &[0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "sum to plane height")]
    fn split_rows_mut_bad_sum_panics() {
        let mut p: Plane<u8> = Plane::new(4, 6);
        let _ = p.split_rows_mut(&[2, 2]);
    }

    #[test]
    fn copy_from_clips_to_overlap() {
        let mut dst: Plane<u8> = Plane::new(3, 3);
        let mut src: Plane<u8> = Plane::new(5, 2);
        src.fill(7);
        dst.copy_from(&src);
        assert_eq!(dst.get(2, 1), 7);
        assert_eq!(dst.get(0, 2), 0);
    }

    #[test]
    fn rows_iterator_excludes_padding() {
        let mut p: Plane<u8> = Plane::with_stride(2, 2, 4);
        p.as_mut_slice()[2] = 99; // padding sample
        let rows: Vec<&[u8]> = p.rows().collect();
        assert_eq!(rows, vec![&[0u8, 0][..], &[0u8, 0][..]]);
    }
}
