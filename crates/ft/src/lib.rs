//! # feves-ft — fault tolerance primitives for FEVES
//!
//! FEVES (Algorithms 1–2) assumes every discovered device stays alive and
//! performs near its characterization for the whole sequence. Real
//! transcoding farms cannot: GPUs die mid-sequence, thermal throttling turns
//! a device into a straggler, and DMA transfers fail. This crate holds the
//! pieces the framework needs to survive that, kept dependency-free so every
//! other crate (hetsim, sched, core) can build on it:
//!
//! - [`FevesError`] — the typed error replacing `Result<_, String>` across
//!   the workspace, separating *recoverable* device faults from fatal
//!   configuration / accounting failures.
//! - [`FaultSpec`] / [`FaultKind`] / [`FaultSchedule`] — the injectable
//!   fault model: permanent death, transient stall, slowdown stragglers,
//!   transfer errors and kernel panics, on a deterministic (optionally
//!   seeded) schedule.
//! - [`HealthTracker`] — the per-device recovery state machine
//!   (healthy → probation → blacklisted) with exponential-backoff
//!   re-admission probes.
//! - [`DeadlinePolicy`] — sync-point deadlines derived from the LP's
//!   predicted τ1/τ2/τtot; a missed deadline is the detection signal.
//! - [`DriftDetector`] — the quiet failure mode: a device that still meets
//!   its deadlines but consistently runs outside the characterization's
//!   prediction band, flagged for re-characterization rather than
//!   blacklisting.

//! - [`ckpt`] — checkpoint wire-format primitives (byte codec, CRC-32,
//!   versioned section container) shared by the crash-safe session layer.
//! - [`crash`] — env-armed deterministic crash points for the process-kill
//!   chaos harness.
//! - [`io`] — the fault-injectable I/O seam ([`IoBackend`]): every durable
//!   write in the workspace routes through it, so storage chaos tests can
//!   overlay seeded ENOSPC/EIO/short-write/torn-rename/bit-rot schedules
//!   on a path prefix without touching the code under test.

pub mod ckpt;
pub mod crash;
pub mod deadline;
pub mod drift;
pub mod error;
pub mod fault;
pub mod health;
pub mod io;
pub mod retry;

pub use ckpt::{ByteReader, ByteWriter, CheckpointBlob, CKPT_VERSION};
pub use deadline::{DeadlinePolicy, Deadlines, GenerationDeadlines, SyncPoint};
pub use drift::{DriftConfig, DriftDetector, DriftSnapshot};
pub use error::{DeviceFault, FaultCause, FevesError};
pub use fault::{FaultKind, FaultSchedule, FaultSpec};
pub use health::{DeviceHealth, HealthSnapshot, HealthTracker};
pub use io::{
    backend_for, classify, inject, retry_io, CrcFile, FaultPlan, FaultScope, FaultyIo, IoBackend,
    IoErrorClass, IoFile, RealIo,
};
pub use retry::RetryPolicy;
