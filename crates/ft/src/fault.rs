//! The injectable device-fault model.
//!
//! A fault schedule is a list of [`FaultSpec`]s — *(device, start frame,
//! kind)* triples — either given explicitly (CLI `--inject-fault`, tests) or
//! generated deterministically from a seed for chaos runs. Frames are the
//! framework's 1-based inter-frame numbers.
//!
//! Spec grammar (one spec per `--inject-fault`):
//!
//! ```text
//! <dev>:death@<frame>            permanent death from <frame> on
//! <dev>:stall@<frame>+<k>        full stall for <k> frames
//! <dev>:slow@<frame>+<k>x<f>     slowdown: runs at 1/<f> speed for <k> frames
//! <dev>:xfer@<frame>             one H2D/D2H transfer error at <frame>
//! <dev>:panic@<frame>            stripe-thread kernel panic at <frame>
//! ```
//!
//! Examples: `0:death@5`, `1:stall@3+2`, `0:slow@4+6x8`, `1:xfer@2`,
//! `0:panic@6`.

use crate::error::FevesError;
use std::fmt;
use std::str::FromStr;

/// What goes wrong with the device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The device stops making progress forever.
    Death,
    /// The device stops making progress for `frames` frames, then resumes.
    Stall { frames: usize },
    /// Straggler: the device runs `factor`× slower for `frames` frames.
    Slowdown { factor: f64, frames: usize },
    /// One transfer (H2D or D2H) involving the device fails this frame.
    TransferError,
    /// The device's stripe thread panics during kernel execution this frame.
    KernelPanic,
}

impl FaultKind {
    /// True when the fault affects simulated compute speed (as opposed to
    /// transfers or functional kernel execution).
    pub fn is_speed_fault(&self) -> bool {
        matches!(
            self,
            FaultKind::Death | FaultKind::Stall { .. } | FaultKind::Slowdown { .. }
        )
    }
}

/// One injected fault: `kind` hits `device` starting at inter frame `frame`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    /// Platform device index (accelerators first, then cores).
    pub device: usize,
    /// 1-based inter-frame number at which the fault begins.
    pub frame: usize,
    pub kind: FaultKind,
}

impl FaultSpec {
    /// True when the fault is in effect at inter frame `frame`.
    pub fn active_at(&self, frame: usize) -> bool {
        match self.kind {
            FaultKind::Death => frame >= self.frame,
            FaultKind::Stall { frames } | FaultKind::Slowdown { frames, .. } => {
                frame >= self.frame && frame < self.frame + frames
            }
            FaultKind::TransferError | FaultKind::KernelPanic => frame == self.frame,
        }
    }

    /// True when the fault begins exactly at inter frame `frame`.
    pub fn starts_at(&self, frame: usize) -> bool {
        frame == self.frame
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FaultKind::Death => write!(f, "{}:death@{}", self.device, self.frame),
            FaultKind::Stall { frames } => {
                write!(f, "{}:stall@{}+{}", self.device, self.frame, frames)
            }
            FaultKind::Slowdown { factor, frames } => write!(
                f,
                "{}:slow@{}+{}x{}",
                self.device, self.frame, frames, factor
            ),
            FaultKind::TransferError => write!(f, "{}:xfer@{}", self.device, self.frame),
            FaultKind::KernelPanic => write!(f, "{}:panic@{}", self.device, self.frame),
        }
    }
}

impl FromStr for FaultSpec {
    type Err = FevesError;

    fn from_str(s: &str) -> Result<Self, FevesError> {
        let bad = |why: &str| FevesError::Parse(format!("fault spec `{s}`: {why}"));
        let (dev, rest) = s
            .split_once(':')
            .ok_or_else(|| bad("expected `dev:kind@frame`"))?;
        let device: usize = dev.trim().parse().map_err(|_| bad("bad device index"))?;
        let (kind, when) = rest
            .split_once('@')
            .ok_or_else(|| bad("expected `kind@frame`"))?;
        let parse_frame = |t: &str| -> Result<usize, FevesError> {
            let f: usize = t.trim().parse().map_err(|_| bad("bad frame number"))?;
            if f == 0 {
                return Err(bad("frames are 1-based"));
            }
            Ok(f)
        };
        let kind = kind.trim();
        let spec = match kind {
            "death" => FaultSpec {
                device,
                frame: parse_frame(when)?,
                kind: FaultKind::Death,
            },
            "stall" => {
                let (fr, k) = when
                    .split_once('+')
                    .ok_or_else(|| bad("stall needs `@frame+count`"))?;
                let frames: usize = k.trim().parse().map_err(|_| bad("bad stall length"))?;
                if frames == 0 {
                    return Err(bad("stall length must be ≥ 1"));
                }
                FaultSpec {
                    device,
                    frame: parse_frame(fr)?,
                    kind: FaultKind::Stall { frames },
                }
            }
            "slow" => {
                let (fr, rest) = when
                    .split_once('+')
                    .ok_or_else(|| bad("slow needs `@frame+count x factor`"))?;
                let (k, fac) = rest
                    .split_once('x')
                    .ok_or_else(|| bad("slow needs `xfactor` suffix"))?;
                let frames: usize = k.trim().parse().map_err(|_| bad("bad slowdown length"))?;
                let factor: f64 = fac.trim().parse().map_err(|_| bad("bad slowdown factor"))?;
                if frames == 0 {
                    return Err(bad("slowdown length must be ≥ 1"));
                }
                if !(factor.is_finite() && factor > 1.0) {
                    return Err(bad("slowdown factor must be > 1"));
                }
                FaultSpec {
                    device,
                    frame: parse_frame(fr)?,
                    kind: FaultKind::Slowdown { factor, frames },
                }
            }
            "xfer" => FaultSpec {
                device,
                frame: parse_frame(when)?,
                kind: FaultKind::TransferError,
            },
            "panic" => FaultSpec {
                device,
                frame: parse_frame(when)?,
                kind: FaultKind::KernelPanic,
            },
            other => return Err(bad(&format!("unknown fault kind `{other}`"))),
        };
        Ok(spec)
    }
}

/// A deterministic set of faults to inject over a sequence.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSchedule {
    pub specs: Vec<FaultSpec>,
}

impl FaultSchedule {
    pub fn new(specs: Vec<FaultSpec>) -> Self {
        FaultSchedule { specs }
    }

    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Parses a list of CLI-style fault specs.
    pub fn parse(specs: &[String]) -> Result<Self, FevesError> {
        let specs = specs
            .iter()
            .map(|s| s.parse())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FaultSchedule { specs })
    }

    /// Generates a recoverable chaos schedule: 1–3 transient faults spread
    /// over the first `n_accel` devices within `1..=horizon` frames. The
    /// same `(seed, n_accel, horizon)` always yields the same schedule, and
    /// no schedule kills a CPU core, so every generated run must complete.
    pub fn chaos(seed: u64, n_accel: usize, horizon: usize) -> Self {
        if n_accel == 0 || horizon < 2 {
            return FaultSchedule::default();
        }
        let mut rng = SplitMix64::new(seed);
        let n_faults = 1 + (rng.next() % 3) as usize;
        let mut specs = Vec::with_capacity(n_faults);
        for _ in 0..n_faults {
            let device = (rng.next() as usize) % n_accel;
            // Start at frame ≥ 2 so the first (equidistant probe) frame
            // establishes a healthy baseline for deadline detection.
            let frame = 2 + (rng.next() as usize) % (horizon - 1);
            let kind = match rng.next() % 4 {
                0 => FaultKind::Death,
                1 => FaultKind::Stall {
                    frames: 1 + (rng.next() as usize) % 3,
                },
                2 => FaultKind::Slowdown {
                    factor: 8.0 + (rng.next() % 56) as f64,
                    frames: 1 + (rng.next() as usize) % 3,
                },
                _ => FaultKind::TransferError,
            };
            specs.push(FaultSpec {
                device,
                frame,
                kind,
            });
        }
        FaultSchedule { specs }
    }

    /// Faults in effect at inter frame `frame`.
    pub fn active(&self, frame: usize) -> impl Iterator<Item = &FaultSpec> {
        self.specs.iter().filter(move |s| s.active_at(frame))
    }

    /// Faults that begin exactly at inter frame `frame`.
    pub fn starting(&self, frame: usize) -> impl Iterator<Item = &FaultSpec> {
        self.specs.iter().filter(move |s| s.starts_at(frame))
    }
}

/// SplitMix64 — tiny, deterministic, dependency-free PRNG for chaos
/// schedule generation (quality is irrelevant; determinism is not).
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 {
            state: seed.wrapping_add(0x9e3779b97f4a7c15),
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parse_round_trips() {
        for s in [
            "0:death@5",
            "1:stall@3+2",
            "0:slow@4+6x8",
            "1:xfer@2",
            "0:panic@6",
        ] {
            let spec: FaultSpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s, "round trip of {s}");
        }
    }

    #[test]
    fn spec_parse_rejects_garbage() {
        for s in [
            "death@5",      // no device
            "0:death",      // no frame
            "0:death@0",    // 1-based frames
            "0:stall@3",    // stall needs a length
            "0:slow@4+2x1", // slowdown must be > 1
            "0:frob@2",     // unknown kind
            "x:death@5",    // bad device
        ] {
            assert!(s.parse::<FaultSpec>().is_err(), "`{s}` should not parse");
        }
    }

    #[test]
    fn activity_windows() {
        let death: FaultSpec = "0:death@5".parse().unwrap();
        assert!(!death.active_at(4));
        assert!(death.active_at(5));
        assert!(death.active_at(100));

        let stall: FaultSpec = "0:stall@3+2".parse().unwrap();
        assert!(!stall.active_at(2));
        assert!(stall.active_at(3));
        assert!(stall.active_at(4));
        assert!(!stall.active_at(5));

        let xfer: FaultSpec = "1:xfer@2".parse().unwrap();
        assert!(xfer.active_at(2));
        assert!(!xfer.active_at(3));
    }

    #[test]
    fn chaos_is_deterministic_and_bounded() {
        let a = FaultSchedule::chaos(42, 2, 10);
        let b = FaultSchedule::chaos(42, 2, 10);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.specs.len() <= 3);
        for spec in &a.specs {
            assert!(spec.device < 2, "chaos only targets accelerators");
            assert!(spec.frame >= 2 && spec.frame <= 10);
        }
        // Different seeds should (overwhelmingly) differ.
        let c = FaultSchedule::chaos(43, 2, 10);
        assert!(a != c || a.specs.len() == c.specs.len());
    }
}
