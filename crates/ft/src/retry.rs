//! Supervisor retry policy: exponential backoff with deterministic jitter
//! and a hard retry budget.
//!
//! Used by the `feves serve` farm supervisor to pace session restarts after
//! a panic or device fault. The delay for attempt `k` is
//! `base · 2^k + jitter`, where the jitter is a pure function of
//! `(seed, attempt)` bounded to half the exponential term — deterministic,
//! so chaos tests replay exactly, yet decorrelated across jobs when each
//! job derives its seed from its id (no thundering-herd restart).

use std::time::Duration;

/// SplitMix64 finalizer (same mix as the health tracker's jitter — strong
/// and dependency-free).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Exponential backoff + deterministic jitter + budget.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Delay of attempt 0 before jitter.
    pub base: Duration,
    /// Ceiling for the exponential term (jitter may exceed it by ≤ 50%).
    pub max_delay: Duration,
    /// Total retries allowed (0 = never retry).
    pub budget: u32,
    /// Jitter seed; derive per job (e.g. from the job id) to decorrelate.
    pub seed: u64,
}

impl RetryPolicy {
    /// A policy with `budget` retries starting at `base`, capped at 30 s.
    pub fn new(base: Duration, budget: u32, seed: u64) -> Self {
        RetryPolicy {
            base,
            max_delay: Duration::from_secs(30),
            budget,
            seed,
        }
    }

    /// Whether retry attempt `attempt` (0-based) is within the budget.
    pub fn allows(&self, attempt: u32) -> bool {
        attempt < self.budget
    }

    /// Deterministic delay before retry attempt `attempt` (0-based):
    /// `min(base · 2^attempt, max_delay)` plus a jitter in `[0, term/2]`
    /// hashed from `(seed, attempt)`.
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX))
            .min(self.max_delay);
        let span_ms = exp.as_millis() as u64 / 2 + 1;
        let jitter_ms = splitmix64(self.seed ^ u64::from(attempt).rotate_left(32)) % span_ms;
        exp + Duration::from_millis(jitter_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_bounds_attempts() {
        let p = RetryPolicy::new(Duration::from_millis(10), 3, 42);
        assert!(p.allows(0));
        assert!(p.allows(2));
        assert!(!p.allows(3));
        let zero = RetryPolicy::new(Duration::from_millis(10), 0, 42);
        assert!(!zero.allows(0));
    }

    #[test]
    fn delay_grows_exponentially_with_bounded_jitter() {
        let p = RetryPolicy::new(Duration::from_millis(100), 8, 7);
        for attempt in 0..6 {
            let exp = Duration::from_millis(100 * (1 << attempt));
            let d = p.delay(attempt);
            assert!(d >= exp, "attempt {attempt}: {d:?} < {exp:?}");
            assert!(
                d <= exp + exp / 2 + Duration::from_millis(1),
                "attempt {attempt}: jitter exceeds half the exponential term"
            );
        }
    }

    #[test]
    fn delay_is_deterministic_per_seed_and_decorrelated_across_seeds() {
        let a = RetryPolicy::new(Duration::from_millis(50), 8, 1);
        let b = RetryPolicy::new(Duration::from_millis(50), 8, 1);
        let c = RetryPolicy::new(Duration::from_millis(50), 8, 2);
        let seq =
            |p: &RetryPolicy| -> Vec<Duration> { (0..8).map(|k| p.delay(k)).collect::<Vec<_>>() };
        assert_eq!(seq(&a), seq(&b), "same seed must replay exactly");
        assert_ne!(seq(&a), seq(&c), "different seeds must decorrelate");
    }

    #[test]
    fn delay_caps_and_never_overflows() {
        let p = RetryPolicy::new(Duration::from_secs(1), u32::MAX, 3);
        let d = p.delay(200);
        assert!(d >= Duration::from_secs(30));
        assert!(d <= Duration::from_secs(45) + Duration::from_millis(1));
    }
}
