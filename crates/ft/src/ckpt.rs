//! Checkpoint wire-format primitives: a little-endian byte codec, CRC-32,
//! and the versioned, checksummed section container used by `feves-ckpt`
//! files.
//!
//! The format is a custom binary layout rather than JSON because checkpoint
//! payloads carry `f64::NAN` sentinels (uncharacterized [`PerfChar`] slots)
//! and megabytes of reconstructed plane data — both hostile to a text
//! codec. Layout, all little-endian:
//!
//! ```text
//! magic    [u8; 8]   "FEVESCKP"
//! version  u32       CKPT_VERSION
//! fprint   u64       job fingerprint (same encode ⇒ same fingerprint)
//! nsect    u32       section count
//! hcrc     u32       CRC-32 of the 24 header bytes above
//! section* {
//!   tag    [u8; 4]   ASCII section name, e.g. "PERF"
//!   len    u64       payload length in bytes
//!   body   [u8; len]
//!   crc    u32       CRC-32 of tag ‖ len ‖ body
//! }
//! ```
//!
//! Every failure mode a torn or bit-rotted file can exhibit — short read,
//! bad magic, unknown version, header/section CRC mismatch, truncated
//! section — maps to a typed [`FevesError`] checkpoint variant so callers
//! can fall back to the previous generation instead of crashing.
//!
//! [`PerfChar`]: ../../feves_sched/perfchar/struct.PerfChar.html

use crate::error::FevesError;

/// File magic for FEVES checkpoints.
pub const CKPT_MAGIC: [u8; 8] = *b"FEVESCKP";

/// Current checkpoint format version. Bump on any wire-format change.
/// v2: META gained the trailing `pipeline` flag.
/// v3: META gained the trailing `out_crc` artifact-prefix checksum.
pub const CKPT_VERSION: u32 = 3;

/// Initial state for the incremental CRC-32 ([`crc32_update`]).
pub const CRC32_INIT: u32 = 0xFFFF_FFFF;

/// Fold `bytes` into a running CRC-32 state. Start from [`CRC32_INIT`],
/// finish by complementing (`!state`) — [`crc32`] does both in one shot;
/// streaming writers (`ft::io::CrcFile`) keep the raw state across chunks.
pub fn crc32_update(mut crc: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    crc
}

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update(CRC32_INIT, bytes)
}

/// 64-bit FNV-1a hash, used for job fingerprints (not integrity — that is
/// CRC-32's job).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Append-only little-endian encoder for checkpoint payloads.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f64` by bit pattern (NaN-preserving).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append raw bytes with a length prefix.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Append a length-prefixed vector of `f64`.
    pub fn put_f64_slice(&mut self, xs: &[f64]) {
        self.put_u64(xs.len() as u64);
        for &x in xs {
            self.put_f64(x);
        }
    }

    /// Append a length-prefixed vector of `usize`.
    pub fn put_usize_slice(&mut self, xs: &[usize]) {
        self.put_u64(xs.len() as u64);
        for &x in xs {
            self.put_usize(x);
        }
    }
}

/// Bounds-checked little-endian decoder; every `take_*` fails with a typed
/// [`FevesError::CheckpointCorrupt`] instead of panicking on short input.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn corrupt(what: &str) -> FevesError {
    FevesError::CheckpointCorrupt(format!("truncated payload while reading {what}"))
}

impl<'a> ByteReader<'a> {
    /// Reader over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], FevesError> {
        if self.remaining() < n {
            return Err(corrupt(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn take_u8(&mut self) -> Result<u8, FevesError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, FevesError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, FevesError> {
        let b = self.take(8, "u64")?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read a `u64` and narrow it to `usize`.
    pub fn take_usize(&mut self) -> Result<usize, FevesError> {
        let v = self.take_u64()?;
        usize::try_from(v)
            .map_err(|_| FevesError::CheckpointCorrupt(format!("usize out of range: {v}")))
    }

    /// Read an `f64` from its bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, FevesError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Read a bool byte (strictly 0 or 1).
    pub fn take_bool(&mut self) -> Result<bool, FevesError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(FevesError::CheckpointCorrupt(format!(
                "invalid bool byte {b:#x}"
            ))),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, FevesError> {
        let n = self.take_usize()?;
        let b = self.take(n, "string body")?;
        String::from_utf8(b.to_vec())
            .map_err(|_| FevesError::CheckpointCorrupt("non-UTF-8 string".into()))
    }

    /// Read length-prefixed raw bytes.
    pub fn take_bytes(&mut self) -> Result<Vec<u8>, FevesError> {
        let n = self.take_usize()?;
        Ok(self.take(n, "byte buffer")?.to_vec())
    }

    /// Read a length-prefixed vector of `f64`.
    pub fn take_f64_vec(&mut self) -> Result<Vec<f64>, FevesError> {
        let n = self.take_usize()?;
        if self.remaining() < n.saturating_mul(8) {
            return Err(corrupt("f64 vector"));
        }
        (0..n).map(|_| self.take_f64()).collect()
    }

    /// Read a length-prefixed vector of `usize`.
    pub fn take_usize_vec(&mut self) -> Result<Vec<usize>, FevesError> {
        let n = self.take_usize()?;
        if self.remaining() < n.saturating_mul(8) {
            return Err(corrupt("usize vector"));
        }
        (0..n).map(|_| self.take_usize()).collect()
    }

    /// Require the reader to be fully consumed (catches trailing garbage
    /// from a mis-framed section).
    pub fn expect_end(&self, what: &str) -> Result<(), FevesError> {
        if self.remaining() != 0 {
            return Err(FevesError::CheckpointCorrupt(format!(
                "{} bytes of trailing garbage after {what}",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// In-memory checkpoint: version + job fingerprint + named CRC-protected
/// sections. [`to_bytes`] / [`from_bytes`] implement the file layout in the
/// module docs; durability (temp file + fsync + rename) is the caller's job.
///
/// [`to_bytes`]: CheckpointBlob::to_bytes
/// [`from_bytes`]: CheckpointBlob::from_bytes
#[derive(Clone, Debug)]
pub struct CheckpointBlob {
    /// Format version the blob was decoded from (or will encode as).
    pub version: u32,
    /// Job fingerprint: same input/config ⇒ same fingerprint across
    /// generations.
    pub fingerprint: u64,
    sections: Vec<([u8; 4], Vec<u8>)>,
}

impl CheckpointBlob {
    /// Fresh blob at [`CKPT_VERSION`] with the given job fingerprint.
    pub fn new(fingerprint: u64) -> Self {
        CheckpointBlob {
            version: CKPT_VERSION,
            fingerprint,
            sections: Vec::new(),
        }
    }

    /// Append a section. Tags should be unique; lookups return the first
    /// match.
    pub fn push_section(&mut self, tag: [u8; 4], payload: Vec<u8>) {
        self.sections.push((tag, payload));
    }

    /// Payload of the first section with `tag`, if present.
    pub fn section(&self, tag: [u8; 4]) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| p.as_slice())
    }

    /// Payload of section `tag`, or a typed corrupt error naming it.
    pub fn require_section(&self, tag: [u8; 4]) -> Result<&[u8], FevesError> {
        self.section(tag).ok_or_else(|| {
            FevesError::CheckpointCorrupt(format!(
                "missing section {:?}",
                String::from_utf8_lossy(&tag)
            ))
        })
    }

    /// Section tags in file order (diagnostics).
    pub fn tags(&self) -> Vec<[u8; 4]> {
        self.sections.iter().map(|(t, _)| *t).collect()
    }

    /// Serialize to the on-disk layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&CKPT_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let hcrc = crc32(&out);
        out.extend_from_slice(&hcrc.to_le_bytes());
        for (tag, payload) in &self.sections {
            let start = out.len();
            out.extend_from_slice(tag);
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(payload);
            let scrc = crc32(&out[start..]);
            out.extend_from_slice(&scrc.to_le_bytes());
        }
        out
    }

    /// Parse and fully validate an on-disk checkpoint image. Returns typed
    /// errors for every torn/corrupt/mismatched failure mode; a successful
    /// return means every section passed its CRC.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, FevesError> {
        if bytes.len() < 28 {
            return Err(FevesError::CheckpointCorrupt(format!(
                "file too short for header: {} bytes",
                bytes.len()
            )));
        }
        if bytes[..8] != CKPT_MAGIC {
            return Err(FevesError::CheckpointCorrupt(
                "bad magic (not a FEVES checkpoint)".into(),
            ));
        }
        let stored_hcrc = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
        if crc32(&bytes[..24]) != stored_hcrc {
            return Err(FevesError::CheckpointCorrupt("header CRC mismatch".into()));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != CKPT_VERSION {
            return Err(FevesError::CheckpointVersion {
                found: version,
                expected: CKPT_VERSION,
            });
        }
        let fingerprint = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
        let nsect = u32::from_le_bytes(bytes[20..24].try_into().unwrap()) as usize;

        let mut sections = Vec::with_capacity(nsect);
        let mut r = ByteReader::new(&bytes[28..]);
        for i in 0..nsect {
            let frame_start = 28 + (bytes.len() - 28 - r.remaining());
            let tag_bytes = r.take(4, "section tag")?;
            let tag: [u8; 4] = tag_bytes.try_into().unwrap();
            let name = String::from_utf8_lossy(&tag).into_owned();
            let len = r.take_usize()?;
            if r.remaining() < len + 4 {
                return Err(FevesError::CheckpointCorrupt(format!(
                    "section {name} ({i}) truncated: need {} bytes, have {}",
                    len + 4,
                    r.remaining()
                )));
            }
            let payload = r.take(len, "section payload")?.to_vec();
            let stored = r.take_u32()?;
            // The CRC covers the whole frame (tag ‖ len ‖ body) so flips in
            // the framing itself are also caught.
            if crc32(&bytes[frame_start..frame_start + 12 + len]) != stored {
                return Err(FevesError::CheckpointCorrupt(format!(
                    "section {name} CRC mismatch"
                )));
            }
            sections.push((tag, payload));
        }
        r.expect_end("last section")?;
        Ok(CheckpointBlob {
            version,
            fingerprint,
            sections,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn byte_codec_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_usize(12345);
        w.put_f64(f64::NAN);
        w.put_f64(-0.25);
        w.put_bool(true);
        w.put_str("hello δ");
        w.put_bytes(&[1, 2, 3]);
        w.put_f64_slice(&[1.0, f64::INFINITY, f64::NAN]);
        w.put_usize_slice(&[9, 8, 7]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX);
        assert_eq!(r.take_usize().unwrap(), 12345);
        assert!(r.take_f64().unwrap().is_nan(), "NaN must survive");
        assert_eq!(r.take_f64().unwrap(), -0.25);
        assert!(r.take_bool().unwrap());
        assert_eq!(r.take_str().unwrap(), "hello δ");
        assert_eq!(r.take_bytes().unwrap(), vec![1, 2, 3]);
        let fs = r.take_f64_vec().unwrap();
        assert_eq!(fs[0], 1.0);
        assert!(fs[1].is_infinite() && fs[2].is_nan());
        assert_eq!(r.take_usize_vec().unwrap(), vec![9, 8, 7]);
        r.expect_end("test payload").unwrap();
    }

    #[test]
    fn reader_errors_are_typed_not_panics() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(
            r.take_u64(),
            Err(FevesError::CheckpointCorrupt(_))
        ));
        // A declared length far beyond the buffer must not allocate or panic.
        let mut huge = ByteWriter::new();
        huge.put_u64(u64::MAX - 3);
        let bytes = huge.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.take_f64_vec().is_err());
        let mut r = ByteReader::new(&bytes);
        assert!(r.take_bytes().is_err());
    }

    fn sample_blob() -> CheckpointBlob {
        let mut b = CheckpointBlob::new(0x1234_5678_9ABC_DEF0);
        b.push_section(*b"PERF", vec![1, 2, 3, 4, 5]);
        b.push_section(*b"CURS", vec![]);
        b.push_section(*b"REFS", vec![0xAB; 1000]);
        b
    }

    #[test]
    fn blob_round_trip() {
        let b = sample_blob();
        let bytes = b.to_bytes();
        let back = CheckpointBlob::from_bytes(&bytes).unwrap();
        assert_eq!(back.version, CKPT_VERSION);
        assert_eq!(back.fingerprint, b.fingerprint);
        assert_eq!(back.section(*b"PERF").unwrap(), &[1, 2, 3, 4, 5]);
        assert_eq!(back.section(*b"CURS").unwrap(), &[] as &[u8]);
        assert_eq!(back.section(*b"REFS").unwrap().len(), 1000);
        assert!(back.section(*b"NOPE").is_none());
        assert!(back.require_section(*b"NOPE").is_err());
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = sample_blob().to_bytes();
        // Flipping any byte anywhere must fail validation: header flips hit
        // magic/header-CRC, payload flips hit a section CRC, length-field
        // flips hit framing checks.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                CheckpointBlob::from_bytes(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_at_any_point_is_detected() {
        let bytes = sample_blob().to_bytes();
        for n in 0..bytes.len() {
            assert!(
                CheckpointBlob::from_bytes(&bytes[..n]).is_err(),
                "truncation to {n} bytes went undetected"
            );
        }
    }

    #[test]
    fn version_mismatch_is_its_own_error() {
        let mut b = sample_blob();
        b.version = CKPT_VERSION + 1;
        let err = CheckpointBlob::from_bytes(&b.to_bytes()).unwrap_err();
        assert_eq!(
            err,
            FevesError::CheckpointVersion {
                found: CKPT_VERSION + 1,
                expected: CKPT_VERSION
            }
        );
    }
}
