//! Fault-injectable I/O layer.
//!
//! Every durable path in the workspace (checkpoints, the spool/done
//! protocol, flight/metrics/live/report outputs, encoded artifacts) routes
//! its filesystem side effects through an [`IoBackend`]. In production the
//! backend is [`RealIo`] — a thin veneer over `std::fs` whose only addition
//! is a `statvfs`-based free-space probe. Under test, [`inject`] overlays a
//! seeded [`FaultyIo`] on a path prefix and the same code paths experience
//! ENOSPC, transient and permanent EIO, short writes, torn renames, and
//! post-`fsync` bit-rot — deterministically enough that the storage chaos
//! harness can replay a schedule from a single seed.
//!
//! The seam is process-global but *scoped*: [`inject`] returns a
//! [`FaultScope`] guard that removes the overlay on drop, and overlays match
//! by path prefix, so parallel tests in one binary each fault only their own
//! scratch directory.

use std::collections::HashSet;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Duration;

use crate::ckpt::{crc32_update, CRC32_INIT};
use crate::retry::RetryPolicy;

/// A writable file handle produced by an [`IoBackend`].
///
/// `sync` takes `&self` (like `File::sync_all`) so callers holding a shared
/// reference through a `BufWriter` stack can still force durability.
pub trait IoFile: Write + Send {
    /// Flush file contents to stable storage (fsync).
    fn sync(&self) -> io::Result<()>;
}

impl IoFile for File {
    fn sync(&self) -> io::Result<()> {
        self.sync_all()
    }
}

/// The injectable filesystem seam. All durable writes in the workspace go
/// through one of these; see the module docs.
pub trait IoBackend: Send + Sync {
    /// Create (truncating) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn IoFile>>;
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically rename `from` onto `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Best-effort fsync of a directory (durability of renames within it).
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Free bytes available on the filesystem holding `dir`
    /// (`u64::MAX` when the platform offers no probe).
    fn free_space(&self, dir: &Path) -> io::Result<u64>;

    /// Convenience: create + write + fsync in one call.
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = self.create(path)?;
        f.write_all(bytes)?;
        f.sync()
    }
}

// ---------------------------------------------------------------------------
// Real backend
// ---------------------------------------------------------------------------

/// Production backend: plain `std::fs`, plus a `statvfs(3)` free-space probe
/// on Linux (mirroring the direct-FFI precedent of `serve`'s signal hook —
/// no external crates).
#[derive(Debug, Default)]
pub struct RealIo;

#[cfg(target_os = "linux")]
mod statvfs_ffi {
    /// glibc `struct statvfs` on 64-bit Linux: eleven unsigned-long fields
    /// then six spare ints.
    #[repr(C)]
    pub struct Statvfs {
        pub f_bsize: u64,
        pub f_frsize: u64,
        pub f_blocks: u64,
        pub f_bfree: u64,
        pub f_bavail: u64,
        pub f_files: u64,
        pub f_ffree: u64,
        pub f_favail: u64,
        pub f_fsid: u64,
        pub f_flag: u64,
        pub f_namemax: u64,
        pub f_spare: [i32; 6],
    }

    extern "C" {
        pub fn statvfs(path: *const u8, buf: *mut Statvfs) -> i32;
    }
}

#[cfg(target_os = "linux")]
fn platform_free_space(dir: &Path) -> io::Result<u64> {
    use std::os::unix::ffi::OsStrExt;
    let mut cpath = dir.as_os_str().as_bytes().to_vec();
    if cpath.contains(&0) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "path contains NUL",
        ));
    }
    cpath.push(0);
    let mut buf = std::mem::MaybeUninit::<statvfs_ffi::Statvfs>::uninit();
    // SAFETY: cpath is NUL-terminated and buf is sized for the glibc layout.
    let rc = unsafe { statvfs_ffi::statvfs(cpath.as_ptr(), buf.as_mut_ptr()) };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    let st = unsafe { buf.assume_init() };
    Ok(st.f_bavail.saturating_mul(st.f_frsize))
}

#[cfg(not(target_os = "linux"))]
fn platform_free_space(_dir: &Path) -> io::Result<u64> {
    Ok(u64::MAX)
}

impl IoBackend for RealIo {
    fn create(&self, path: &Path) -> io::Result<Box<dyn IoFile>> {
        Ok(Box::new(File::create(path)?))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        #[cfg(unix)]
        {
            File::open(dir)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            let _ = dir;
            Ok(())
        }
    }

    fn free_space(&self, dir: &Path) -> io::Result<u64> {
        platform_free_space(dir)
    }
}

// ---------------------------------------------------------------------------
// Fault classification + retry
// ---------------------------------------------------------------------------

/// Coarse classes the retry/degradation machinery cares about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoErrorClass {
    /// Disk full — retrying is pointless; shed load / pause admission.
    Enospc,
    /// Transient (EIO, interrupted, timed out) — worth a bounded retry.
    Transient,
    /// Everything else (permissions, missing dirs, …) — fail fast.
    Other,
}

/// Classify an `io::Error` for retry/degradation decisions.
pub fn classify(e: &io::Error) -> IoErrorClass {
    if e.raw_os_error() == Some(28) || e.kind() == io::ErrorKind::StorageFull {
        return IoErrorClass::Enospc;
    }
    match e.kind() {
        io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WriteZero => {
            IoErrorClass::Transient
        }
        // Injected / hardware EIO surfaces as raw os error 5.
        _ if e.raw_os_error() == Some(5) => IoErrorClass::Transient,
        _ => IoErrorClass::Other,
    }
}

/// Run `f`, retrying **transient** failures under `policy` (sleeping the
/// policy's jittered delay between attempts). ENOSPC and `Other` errors are
/// returned immediately. Returns the final result plus how many retries
/// were spent, so callers can account `io.retries`.
pub fn retry_io<T>(
    policy: &RetryPolicy,
    mut f: impl FnMut() -> io::Result<T>,
) -> (io::Result<T>, u32) {
    let mut attempt = 0u32;
    loop {
        match f() {
            Ok(v) => return (Ok(v), attempt),
            Err(e) => {
                if classify(&e) != IoErrorClass::Transient || !policy.allows(attempt) {
                    return (Err(e), attempt);
                }
                std::thread::sleep(policy.delay(attempt).min(Duration::from_millis(50)));
                attempt += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Path-prefix overlay router
// ---------------------------------------------------------------------------

static OVERLAYS: RwLock<Vec<(PathBuf, Arc<dyn IoBackend>)>> = RwLock::new(Vec::new());
static REAL: OnceLock<Arc<dyn IoBackend>> = OnceLock::new();

fn real_backend() -> Arc<dyn IoBackend> {
    REAL.get_or_init(|| Arc::new(RealIo)).clone()
}

/// Resolve the backend for `path`: the longest registered overlay prefix
/// wins, otherwise the shared [`RealIo`].
pub fn backend_for(path: &Path) -> Arc<dyn IoBackend> {
    let overlays = OVERLAYS.read().unwrap_or_else(|e| e.into_inner());
    overlays
        .iter()
        .filter(|(prefix, _)| path.starts_with(prefix))
        .max_by_key(|(prefix, _)| prefix.as_os_str().len())
        .map(|(_, b)| b.clone())
        .unwrap_or_else(|| {
            drop(overlays);
            real_backend()
        })
}

/// RAII guard deregistering an overlay installed by [`inject`].
#[must_use = "dropping the scope removes the fault overlay"]
pub struct FaultScope {
    prefix: PathBuf,
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        let mut overlays = OVERLAYS.write().unwrap_or_else(|e| e.into_inner());
        if let Some(i) = overlays.iter().position(|(p, _)| *p == self.prefix) {
            overlays.remove(i);
        }
    }
}

/// Overlay `backend` on every path under `prefix` until the returned scope
/// drops. Scoping by prefix keeps concurrently running tests (one process,
/// many scratch dirs) from faulting each other.
pub fn inject(prefix: impl Into<PathBuf>, backend: Arc<dyn IoBackend>) -> FaultScope {
    let prefix = prefix.into();
    OVERLAYS
        .write()
        .unwrap_or_else(|e| e.into_inner())
        .push((prefix.clone(), backend));
    FaultScope { prefix }
}

// ---------------------------------------------------------------------------
// Faulty backend
// ---------------------------------------------------------------------------

/// Per-mille fault rates for a [`FaultyIo`]. All draws come from a
/// SplitMix64 stream over `(seed, op-counter)`, so a given seed produces a
/// repeatable schedule for a serial caller and a statistically identical
/// mix for concurrent ones.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultPlan {
    pub seed: u64,
    /// Writes fail with ENOSPC.
    pub enospc_per_mille: u16,
    /// Operations fail once with EIO (retry succeeds).
    pub transient_eio_per_mille: u16,
    /// The touched path is poisoned: every later op on it fails with EIO.
    pub permanent_eio_per_mille: u16,
    /// A write persists only a prefix of the buffer, then errors.
    pub short_write_per_mille: u16,
    /// A rename leaves a torn half-copy at the destination and errors
    /// (source is left intact, as a crashed-then-recovered kernel would).
    pub torn_rename_per_mille: u16,
    /// After a successful fsync, one bit of the file is silently flipped.
    pub bitrot_per_mille: u16,
}

impl FaultPlan {
    /// A mixed transient schedule: some EIO, some short writes, some torn
    /// renames — the bread-and-butter chaos diet.
    pub fn transient(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_eio_per_mille: 120,
            short_write_per_mille: 60,
            torn_rename_per_mille: 60,
            ..FaultPlan::default()
        }
    }
}

/// Tallies of injected faults, for test assertions.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultCounts {
    pub enospc: u64,
    pub transient_eio: u64,
    pub permanent_eio: u64,
    pub short_writes: u64,
    pub torn_renames: u64,
    pub bitrot: u64,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

struct FaultyInner {
    plan: FaultPlan,
    op: AtomicU64,
    poisoned: Mutex<HashSet<PathBuf>>,
    forced_free: Mutex<Option<u64>>,
    counts: Mutex<FaultCounts>,
}

impl FaultyInner {
    /// One pseudo-random draw in `[0, 1000)` per call.
    fn roll(&self) -> u64 {
        let n = self.op.fetch_add(1, Ordering::Relaxed);
        splitmix64(self.plan.seed ^ n.wrapping_mul(0x2545_f491_4f6c_dd1d)) % 1000
    }

    fn hit(&self, per_mille: u16) -> bool {
        per_mille > 0 && self.roll() < u64::from(per_mille)
    }

    fn eio(msg: &str) -> io::Error {
        let e = io::Error::from_raw_os_error(5);
        io::Error::new(e.kind(), format!("{msg}: {e}"))
    }

    fn enospc(msg: &str) -> io::Error {
        let e = io::Error::from_raw_os_error(28);
        io::Error::new(e.kind(), format!("{msg}: {e}"))
    }

    /// Shared preamble for every op: poisoned-path check, then the
    /// permanent/transient/ENOSPC lottery.
    fn gate(&self, path: &Path, writes: bool) -> io::Result<()> {
        if self
            .poisoned
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains(path)
        {
            return Err(Self::eio("injected permanent fault"));
        }
        if self.hit(self.plan.permanent_eio_per_mille) {
            self.poisoned
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(path.to_path_buf());
            self.counts
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .permanent_eio += 1;
            return Err(Self::eio("injected permanent fault"));
        }
        if writes && self.hit(self.plan.enospc_per_mille) {
            self.counts.lock().unwrap_or_else(|e| e.into_inner()).enospc += 1;
            return Err(Self::enospc("injected disk-full"));
        }
        if self.hit(self.plan.transient_eio_per_mille) {
            self.counts
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .transient_eio += 1;
            return Err(Self::eio("injected transient fault"));
        }
        Ok(())
    }
}

/// Seeded fault-injecting backend. Wraps the real filesystem and corrupts
/// it on a pseudo-random schedule drawn from [`FaultPlan`].
pub struct FaultyIo {
    inner: Arc<FaultyInner>,
}

impl FaultyIo {
    pub fn new(plan: FaultPlan) -> Self {
        FaultyIo {
            inner: Arc::new(FaultyInner {
                plan,
                op: AtomicU64::new(0),
                poisoned: Mutex::new(HashSet::new()),
                forced_free: Mutex::new(None),
                counts: Mutex::new(FaultCounts::default()),
            }),
        }
    }

    /// Force `free_space` to report `bytes` (None restores the real probe).
    /// Drives the farm's disk-pressure state machine in tests.
    pub fn set_free_space(&self, bytes: Option<u64>) {
        *self
            .inner
            .forced_free
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = bytes;
    }

    /// Injected-fault tallies so far.
    pub fn counts(&self) -> FaultCounts {
        *self.inner.counts.lock().unwrap_or_else(|e| e.into_inner())
    }
}

struct FaultyFile {
    file: File,
    path: PathBuf,
    inner: Arc<FaultyInner>,
}

impl Write for FaultyFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner.gate(&self.path, true)?;
        if !buf.is_empty() && self.inner.hit(self.inner.plan.short_write_per_mille) {
            // Persist a torn prefix, then error — the on-disk state a real
            // short write + crash would leave behind.
            let half = buf.len() / 2;
            self.file.write_all(&buf[..half])?;
            self.inner
                .counts
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .short_writes += 1;
            return Err(FaultyInner::eio("injected short write"));
        }
        self.file.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }
}

impl IoFile for FaultyFile {
    fn sync(&self) -> io::Result<()> {
        self.inner.gate(&self.path, false)?;
        self.file.sync_all()?;
        if self.inner.hit(self.inner.plan.bitrot_per_mille) && rot_one_bit(&self.path).is_ok() {
            // Silent: the caller believes the fsync succeeded.
            self.inner
                .counts
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .bitrot += 1;
        }
        Ok(())
    }
}

/// Flip one bit of `path` in place (offset drawn from the file length).
fn rot_one_bit(path: &Path) -> io::Result<()> {
    let mut f = OpenOptions::new().read(true).write(true).open(path)?;
    let len = f.metadata()?.len();
    if len == 0 {
        return Ok(());
    }
    let off = splitmix64(len ^ 0x000b_1707) % len;
    let mut b = [0u8; 1];
    f.seek(SeekFrom::Start(off))?;
    f.read_exact(&mut b)?;
    b[0] ^= 0x10;
    f.seek(SeekFrom::Start(off))?;
    f.write_all(&b)?;
    f.sync_all()
}

impl IoBackend for FaultyIo {
    fn create(&self, path: &Path) -> io::Result<Box<dyn IoFile>> {
        self.inner.gate(path, true)?;
        Ok(Box::new(FaultyFile {
            file: File::create(path)?,
            path: path.to_path_buf(),
            inner: self.inner.clone(),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.gate(path, false)?;
        fs::read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.gate(to, true)?;
        if self.inner.hit(self.inner.plan.torn_rename_per_mille) {
            // Destination gets a torn half-copy; source survives so a retry
            // can re-run the whole write-then-rename sequence.
            if let Ok(bytes) = fs::read(from) {
                let _ = fs::write(to, &bytes[..bytes.len() / 2]);
            }
            self.inner
                .counts
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .torn_renames += 1;
            return Err(FaultyInner::eio("injected torn rename"));
        }
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.gate(path, false)?;
        fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.inner.gate(dir, false)?;
        RealIo.sync_dir(dir)
    }

    fn free_space(&self, dir: &Path) -> io::Result<u64> {
        if let Some(forced) = *self
            .inner
            .forced_free
            .lock()
            .unwrap_or_else(|e| e.into_inner())
        {
            return Ok(forced);
        }
        RealIo.free_space(dir)
    }
}

// ---------------------------------------------------------------------------
// Streaming-CRC file
// ---------------------------------------------------------------------------

/// A writable file that maintains a running CRC-32 of every byte *intended*
/// for it. The CRC is computed on the write path — before any backend fault
/// or post-fsync rot can touch the platters — so re-reading the artifact
/// and comparing checksums detects silent corruption instead of hashing it
/// in.
pub struct CrcFile {
    inner: Box<dyn IoFile>,
    state: u32,
    bytes: u64,
}

impl CrcFile {
    /// Create `path` (through its routed backend) with a fresh CRC.
    pub fn create(path: &Path) -> io::Result<Self> {
        let inner = backend_for(path).create(path)?;
        Ok(CrcFile {
            inner,
            state: CRC32_INIT,
            bytes: 0,
        })
    }

    /// Wrap an already-positioned file (resume): `prefix_crc`/`prefix_len`
    /// seed the running checksum with the artifact bytes already on disk.
    pub fn resume(file: File, prefix_crc_state: u32, prefix_len: u64) -> Self {
        CrcFile {
            inner: Box::new(file),
            state: prefix_crc_state,
            bytes: prefix_len,
        }
    }

    /// Finalized CRC-32 of all bytes written (plus any seeded prefix).
    pub fn crc(&self) -> u32 {
        !self.state
    }

    /// Raw running state (pass back into [`CrcFile::resume`]).
    pub fn crc_state(&self) -> u32 {
        self.state
    }

    /// Bytes written (plus any seeded prefix length).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// fsync the underlying file.
    pub fn sync(&self) -> io::Result<()> {
        self.inner.sync()
    }
}

impl Write for CrcFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.state = crc32_update(self.state, &buf[..n]);
        self.bytes += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ckpt::crc32;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("feves-ftio-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_backend_round_trips_and_reports_free_space() {
        let dir = scratch("real");
        let p = dir.join("a.bin");
        let b = backend_for(&p);
        b.write_file(&p, b"hello").unwrap();
        assert_eq!(b.read(&p).unwrap(), b"hello");
        let free = b.free_space(&dir).unwrap();
        assert!(free > 0, "free-space probe returned zero");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overlay_routes_by_longest_prefix_and_unregisters_on_drop() {
        let dir = scratch("route");
        let faulty = Arc::new(FaultyIo::new(FaultPlan {
            seed: 1,
            enospc_per_mille: 1000,
            ..FaultPlan::default()
        }));
        {
            let _scope = inject(&dir, faulty.clone());
            let err = backend_for(&dir.join("x"))
                .write_file(&dir.join("x"), b"boom")
                .unwrap_err();
            assert_eq!(classify(&err), IoErrorClass::Enospc);
            // Paths outside the prefix still hit the real disk.
            let other = scratch("route-other");
            backend_for(&other.join("y"))
                .write_file(&other.join("y"), b"fine")
                .unwrap();
            fs::remove_dir_all(&other).unwrap();
        }
        // Scope dropped: the prefix is healthy again.
        backend_for(&dir.join("x"))
            .write_file(&dir.join("x"), b"fine")
            .unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retry_io_retries_transient_but_not_enospc() {
        let policy = RetryPolicy::new(Duration::from_millis(1), 5, 7);
        let mut left = 2;
        let (res, retries) = retry_io(&policy, || {
            if left > 0 {
                left -= 1;
                Err(io::Error::from_raw_os_error(5))
            } else {
                Ok(42)
            }
        });
        assert_eq!(res.unwrap(), 42);
        assert_eq!(retries, 2);

        let (res, retries) = retry_io::<()>(&policy, || Err(io::Error::from_raw_os_error(28)));
        assert_eq!(classify(&res.unwrap_err()), IoErrorClass::Enospc);
        assert_eq!(retries, 0, "ENOSPC must not be retried");
    }

    #[test]
    fn faulty_backend_injects_each_class_deterministically() {
        let dir = scratch("classes");
        let faulty = FaultyIo::new(FaultPlan {
            seed: 3,
            enospc_per_mille: 200,
            transient_eio_per_mille: 200,
            short_write_per_mille: 200,
            torn_rename_per_mille: 200,
            bitrot_per_mille: 200,
            ..FaultPlan::default()
        });
        for i in 0..200 {
            let p = dir.join(format!("f{i}"));
            let t = dir.join(format!("f{i}.tmp"));
            let _ = faulty.write_file(&t, b"0123456789abcdef");
            let _ = faulty.rename(&t, &p);
        }
        let c = faulty.counts();
        assert!(c.enospc > 0, "no ENOSPC injected: {c:?}");
        assert!(c.transient_eio > 0, "no EIO injected: {c:?}");
        assert!(c.short_writes > 0, "no short writes injected: {c:?}");
        assert!(c.torn_renames > 0, "no torn renames injected: {c:?}");
        assert!(c.bitrot > 0, "no bit-rot injected: {c:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn permanent_fault_poisons_the_path_for_later_ops() {
        let dir = scratch("perm");
        let faulty = FaultyIo::new(FaultPlan {
            seed: 11,
            permanent_eio_per_mille: 300,
            ..FaultPlan::default()
        });
        let p = dir.join("victim");
        let mut poisoned = false;
        for _ in 0..64 {
            if faulty.write_file(&p, b"x").is_err() {
                poisoned = true;
                break;
            }
        }
        assert!(poisoned, "permanent fault never fired");
        for _ in 0..8 {
            assert!(faulty.write_file(&p, b"x").is_err(), "poison must persist");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn forced_free_space_overrides_the_probe() {
        let dir = scratch("free");
        let faulty = FaultyIo::new(FaultPlan::default());
        faulty.set_free_space(Some(123));
        assert_eq!(faulty.free_space(&dir).unwrap(), 123);
        faulty.set_free_space(None);
        assert!(faulty.free_space(&dir).unwrap() > 123);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc_file_streams_the_checksum_of_intended_bytes() {
        let dir = scratch("crc");
        let p = dir.join("artifact");
        let payload = b"the quick brown fox jumps over the lazy dog";
        let mut f = CrcFile::create(&p).unwrap();
        f.write_all(&payload[..20]).unwrap();
        f.write_all(&payload[20..]).unwrap();
        f.sync().unwrap();
        assert_eq!(f.crc(), crc32(payload));
        assert_eq!(f.bytes(), payload.len() as u64);

        // Resume from a prefix reproduces the same final CRC.
        let state = crc32_update(CRC32_INIT, &payload[..20]);
        let file = OpenOptions::new().append(true).open(&p).unwrap();
        let mut r = CrcFile::resume(file, state, 20);
        r.write_all(&payload[20..]).unwrap();
        assert_eq!(r.crc(), crc32(payload));
        fs::remove_dir_all(&dir).unwrap();
    }
}
