//! Sync-point deadlines.
//!
//! Algorithm 2's LP predicts the virtual times of the three FEVES sync
//! points — τ1 (end of interpolation / ME exchange), τ2 (end of SME) and
//! τtot (frame done). A healthy frame lands near its prediction; a device
//! that died or stalled blows one of them by orders of magnitude. The
//! detection rule is simply `measured > predicted × factor`, checked at the
//! earliest sync point first so the culprit is attributed as soon as
//! possible.

use std::fmt;

/// The three FEVES per-frame synchronization points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPoint {
    /// End of phase 1: ME on accelerators + interpolation on cores.
    Tau1,
    /// End of phase 2: SME over the interpolated reference.
    Tau2,
    /// Frame complete (includes R* reconstruction).
    TauTot,
}

impl fmt::Display for SyncPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncPoint::Tau1 => write!(f, "τ1"),
            SyncPoint::Tau2 => write!(f, "τ2"),
            SyncPoint::TauTot => write!(f, "τtot"),
        }
    }
}

/// Converts predicted sync-point times into deadlines.
#[derive(Clone, Copy, Debug)]
pub struct DeadlinePolicy {
    /// Deadline = prediction × factor. Must be > 1; the slack absorbs
    /// profile noise, LP rounding and benign perturbations (Fig. 7 uses
    /// ×0.5 slowdowns, so the default of 3 never trips on them).
    pub factor: f64,
}

impl Default for DeadlinePolicy {
    fn default() -> Self {
        DeadlinePolicy { factor: 3.0 }
    }
}

impl DeadlinePolicy {
    pub fn new(factor: f64) -> Self {
        DeadlinePolicy { factor }
    }

    /// Deadlines for one frame given predicted `(τ1, τ2, τtot)` seconds.
    pub fn deadlines(&self, predicted: (f64, f64, f64)) -> Deadlines {
        Deadlines {
            tau1: predicted.0 * self.factor,
            tau2: predicted.1 * self.factor,
            tau_tot: predicted.2 * self.factor,
        }
    }

    /// Deadlines for one *pipeline generation*. With inter-frame overlap
    /// two frames can be in flight, so a miss must name which generation's
    /// sync point blew — blaming "the current frame" is ambiguous while
    /// frame N's entropy coding drains under frame N+1's ME.
    pub fn for_generation(&self, gen: u64, predicted: (f64, f64, f64)) -> GenerationDeadlines {
        GenerationDeadlines {
            gen,
            deadlines: self.deadlines(predicted),
        }
    }
}

/// [`Deadlines`] tagged with the pipeline generation they guard.
#[derive(Clone, Copy, Debug)]
pub struct GenerationDeadlines {
    /// Frame generation (monotone submit counter) these deadlines apply to.
    pub gen: u64,
    /// The τ1/τ2/τtot deadlines for that generation.
    pub deadlines: Deadlines,
}

impl GenerationDeadlines {
    /// Checks one generation's measured sync points; a miss carries the
    /// generation so fault recovery drains the pipeline to *that* frame's
    /// boundary before re-solving on the reduced platform.
    pub fn check(&self, tau1: f64, tau2: f64, tau_tot: f64) -> Option<(u64, SyncPoint, f64)> {
        self.deadlines
            .check(tau1, tau2, tau_tot)
            .map(|(point, at)| (self.gen, point, at))
    }
}

/// Absolute (virtual-time) deadlines for one frame's sync points.
#[derive(Clone, Copy, Debug)]
pub struct Deadlines {
    pub tau1: f64,
    pub tau2: f64,
    pub tau_tot: f64,
}

impl Deadlines {
    /// Checks measured sync-point times against the deadlines and returns
    /// the earliest missed point together with the time at which the miss
    /// was detected (the deadline itself — the framework waits no longer).
    pub fn check(&self, tau1: f64, tau2: f64, tau_tot: f64) -> Option<(SyncPoint, f64)> {
        if tau1 > self.tau1 {
            Some((SyncPoint::Tau1, self.tau1))
        } else if tau2 > self.tau2 {
            Some((SyncPoint::Tau2, self.tau2))
        } else if tau_tot > self.tau_tot {
            Some((SyncPoint::TauTot, self.tau_tot))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_frame_passes() {
        let d = DeadlinePolicy::new(3.0).deadlines((1.0, 2.0, 3.0));
        assert!(d.check(1.2, 2.4, 3.6).is_none());
    }

    #[test]
    fn generation_tag_rides_along() {
        let policy = DeadlinePolicy::new(2.0);
        let g = policy.for_generation(7, (1.0, 2.0, 3.0));
        assert!(g.check(1.5, 3.0, 4.0).is_none());
        let (gen, point, at) = g.check(5.0, 5.0, 5.0).unwrap();
        assert_eq!(gen, 7);
        assert_eq!(point, SyncPoint::Tau1);
        assert!((at - 2.0).abs() < 1e-12);
    }

    #[test]
    fn earliest_miss_wins() {
        let d = DeadlinePolicy::new(2.0).deadlines((1.0, 2.0, 3.0));
        // τ1 blown: detected at the τ1 deadline even though τtot also blown.
        let (point, at) = d.check(10.0, 20.0, 30.0).unwrap();
        assert_eq!(point, SyncPoint::Tau1);
        assert!((at - 2.0).abs() < 1e-12);
        // Only the tail blown: attributed to τtot.
        let (point, at) = d.check(1.5, 3.0, 100.0).unwrap();
        assert_eq!(point, SyncPoint::TauTot);
        assert!((at - 6.0).abs() < 1e-12);
    }
}
