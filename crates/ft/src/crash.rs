//! Deterministic crash points for the process-kill chaos harness.
//!
//! A crash point is a named location in the encode/checkpoint path where
//! the process can be made to die *abruptly* — [`std::process::abort`], no
//! unwinding, no destructors, no buffered-writer flushes — which is the
//! closest in-process stand-in for `SIGKILL` and lets tests target places a
//! wall-clock kill cannot hit reliably (e.g. between a checkpoint temp-file
//! write and its rename).
//!
//! Activation is environment-driven so library code stays zero-cost in
//! production: set `FEVES_CRASH_AT=<name>` to abort on the first hit of
//! point `<name>`, or `FEVES_CRASH_AT=<name>@<n>` to abort on the n-th hit
//! (1-based). Points used by the workspace:
//!
//! | name              | location                                            |
//! |-------------------|-----------------------------------------------------|
//! | `frame`           | after frame *n* is written to the output bitstream  |
//! | `ckpt-mid-write`  | halfway through writing the checkpoint temp file    |
//! | `ckpt-temp`       | temp file written + fsynced, before the rename      |
//! | `ckpt-rename`     | after the atomic rename, before the directory fsync |

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Parsed `FEVES_CRASH_AT` spec: point name and 1-based hit index.
struct CrashSpec {
    point: String,
    nth: u64,
    hits: AtomicU64,
}

fn spec() -> Option<&'static CrashSpec> {
    static SPEC: OnceLock<Option<CrashSpec>> = OnceLock::new();
    SPEC.get_or_init(|| {
        let raw = std::env::var("FEVES_CRASH_AT").ok()?;
        let raw = raw.trim();
        if raw.is_empty() {
            return None;
        }
        let (point, nth) = match raw.split_once('@') {
            Some((p, n)) => (p, n.parse::<u64>().ok().filter(|&n| n > 0)?),
            None => (raw, 1),
        };
        Some(CrashSpec {
            point: point.to_string(),
            nth,
            hits: AtomicU64::new(0),
        })
    })
    .as_ref()
}

/// Announce a hit of crash point `name`; aborts the process if the
/// `FEVES_CRASH_AT` spec selects this hit. A no-op (one atomic add on the
/// matching name) otherwise.
pub fn crash_point(name: &str) {
    let Some(s) = spec() else { return };
    if s.point != name {
        return;
    }
    let hit = s.hits.fetch_add(1, Ordering::Relaxed) + 1;
    if hit == s.nth {
        eprintln!("FEVES_CRASH_AT: aborting at crash point `{name}` (hit {hit})");
        std::process::abort();
    }
}

/// Indexed variant: point `name` at occurrence `index` (e.g. the frame
/// loop announces `("frame", i)` once per frame). The env spec
/// `FEVES_CRASH_AT=frame@7` aborts when `index == 7`; a bare
/// `FEVES_CRASH_AT=frame` aborts at the first announced index.
pub fn crash_point_at(name: &str, index: u64) {
    let Some(s) = spec() else { return };
    if s.point != name {
        return;
    }
    let first = s.hits.fetch_add(1, Ordering::Relaxed) == 0;
    if index == s.nth || (first && s.nth == 1) {
        eprintln!("FEVES_CRASH_AT: aborting at crash point `{name}@{index}`");
        std::process::abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The abort path itself is exercised by tests/crash_recovery.rs, which
    // spawns the CLI in a child process; in-process we can only assert the
    // disarmed fast path (the test binary must not observe FEVES_CRASH_AT —
    // the harness never sets it for in-process tests).
    #[test]
    fn disarmed_points_are_noops() {
        for _ in 0..3 {
            crash_point("ckpt-temp");
            crash_point_at("frame", 4);
        }
    }
}
