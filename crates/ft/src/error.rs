//! Typed errors for the FEVES workspace.
//!
//! The important split is recoverable vs. fatal: a [`FevesError::Fault`]
//! names a single misbehaving device and the framework can re-dispatch its
//! rows and re-solve the distribution on the surviving platform; everything
//! else means the inputs or an internal invariant are broken and the encode
//! cannot proceed.

use crate::deadline::SyncPoint;
use std::fmt;

/// Why a device was declared faulty.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultCause {
    /// A sync point finished later than its deadline
    /// (deadline = LP prediction × configured factor).
    MissedDeadline(SyncPoint),
    /// An H2D or D2H transfer involving the device failed.
    TransferError,
    /// The device's stripe thread panicked during kernel execution.
    StripePanic,
}

impl fmt::Display for FaultCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultCause::MissedDeadline(p) => write!(f, "missed {p} deadline"),
            FaultCause::TransferError => write!(f, "transfer error"),
            FaultCause::StripePanic => write!(f, "stripe thread panic"),
        }
    }
}

/// A detected fault attributed to one device at one inter frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceFault {
    /// Platform device index (accelerators first, then cores).
    pub device: usize,
    /// 1-based inter-frame number at which the fault was detected.
    pub frame: usize,
    pub cause: FaultCause,
}

impl fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device {} at inter frame {}: {}",
            self.device, self.frame, self.cause
        )
    }
}

/// The workspace-wide error type.
///
/// Only [`FevesError::Fault`] is recoverable: the framework blacklists the
/// culprit device and continues on the reduced platform. All other variants
/// are terminal for the call that produced them.
#[derive(Clone, Debug, PartialEq)]
pub enum FevesError {
    /// Invalid encoder or platform configuration.
    Config(String),
    /// Malformed external input (platform JSON, fault spec, CLI argument).
    Parse(String),
    /// A working set that cannot fit the platform's device memory.
    Memory(String),
    /// An internal accounting invariant was violated (a bug, not bad input).
    Accounting(String),
    /// A single device misbehaved; the encode can continue without it.
    Fault(DeviceFault),
    /// The platform degraded below the minimum viable set (no host core
    /// left), or recovery itself failed.
    Unrecoverable(String),
    /// A checkpoint file is torn, bit-rotted, or structurally invalid
    /// (bad magic, CRC mismatch, truncated section). The caller should
    /// fall back to the previous generation.
    CheckpointCorrupt(String),
    /// A checkpoint was written by an incompatible format version.
    CheckpointVersion {
        /// Version found in the file header.
        found: u32,
        /// Version this binary understands.
        expected: u32,
    },
    /// A structurally valid checkpoint that does not match the present
    /// world: different job fingerprint, output bitstream shorter than the
    /// committed byte count, or input sequence changed underneath it.
    CheckpointStale(String),
}

impl FevesError {
    /// True when the framework can absorb the error by re-dispatching work
    /// away from the faulty device.
    pub fn is_recoverable(&self) -> bool {
        matches!(self, FevesError::Fault(_))
    }
}

impl fmt::Display for FevesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FevesError::Config(m) => write!(f, "configuration error: {m}"),
            FevesError::Parse(m) => write!(f, "parse error: {m}"),
            FevesError::Memory(m) => write!(f, "memory error: {m}"),
            FevesError::Accounting(m) => write!(f, "accounting error: {m}"),
            FevesError::Fault(d) => write!(f, "device fault: {d}"),
            FevesError::Unrecoverable(m) => write!(f, "unrecoverable: {m}"),
            FevesError::CheckpointCorrupt(m) => write!(f, "checkpoint corrupt: {m}"),
            FevesError::CheckpointVersion { found, expected } => write!(
                f,
                "checkpoint version mismatch: file is v{found}, this build reads v{expected}"
            ),
            FevesError::CheckpointStale(m) => write!(f, "checkpoint stale: {m}"),
        }
    }
}

impl std::error::Error for FevesError {}

impl From<DeviceFault> for FevesError {
    fn from(fault: DeviceFault) -> Self {
        FevesError::Fault(fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recoverability_split() {
        let fault = FevesError::Fault(DeviceFault {
            device: 1,
            frame: 4,
            cause: FaultCause::TransferError,
        });
        assert!(fault.is_recoverable());
        assert!(!FevesError::Config("bad".into()).is_recoverable());
        assert!(!FevesError::Unrecoverable("gone".into()).is_recoverable());
    }

    #[test]
    fn display_is_informative() {
        let e = FevesError::Fault(DeviceFault {
            device: 0,
            frame: 7,
            cause: FaultCause::MissedDeadline(SyncPoint::Tau1),
        });
        let msg = e.to_string();
        assert!(msg.contains("device 0"));
        assert!(msg.contains("frame 7"));
        assert!(msg.contains("τ1"));
    }
}
