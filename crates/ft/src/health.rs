//! Per-device health tracking: the recovery state machine.
//!
//! ```text
//!            fault                    backoff expires
//! Healthy ─────────▶ Blacklisted ─────────────────────▶ Probation
//!    ▲                    ▲                                 │
//!    │                    │ fault (backoff doubles)         │
//!    │                    └─────────────────────────────────┤
//!    └──────────────────────────────────────────────────────┘
//!                 M consecutive clean frames (backoff resets)
//! ```
//!
//! Blacklisted devices are excluded from load balancing and data transfers.
//! After an exponential backoff (in frames) the device is re-admitted on
//! *probation*: it gets work again, but one more fault re-blacklists it with
//! a doubled backoff, so a permanently dead device converges to near-zero
//! probe overhead while a transiently stalled one rejoins quickly.

/// Health state of one device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceHealth {
    /// Fully trusted.
    Healthy,
    /// Re-admitted after a blacklist; trusted but watched.
    Probation,
    /// Excluded from scheduling until the backoff expires.
    Blacklisted,
}

/// Tracks every device's health across the sequence.
#[derive(Clone, Debug)]
pub struct HealthTracker {
    state: Vec<DeviceHealth>,
    /// Frame at which a blacklisted device is re-admitted for a probe.
    readmit_at: Vec<usize>,
    /// Current backoff in frames; doubles on every fault, resets on full
    /// recovery.
    backoff: Vec<usize>,
    /// Clean frames still needed to graduate from probation.
    probation_left: Vec<usize>,
    faults: Vec<u64>,
    base_backoff: usize,
    probation_frames: usize,
    /// When set, re-admission times carry a deterministic jitter in
    /// `[0, backoff/2]` so concurrent sessions sharing a platform do not
    /// re-probe a recovered device in lockstep (thundering herd). `None`
    /// (the default) keeps the historical exact timing. Derived state, not
    /// part of [`HealthSnapshot`] — restorers re-apply it from their config.
    jitter_seed: Option<u64>,
}

/// Backoff is capped so a flapping device still gets probed occasionally.
const MAX_BACKOFF_FRAMES: usize = 64;

/// SplitMix64 finalizer: a strong, dependency-free 64-bit mix. Used to hash
/// `(seed, device, fault_count)` into a jitter offset — pure, so a restored
/// tracker reproduces the exact same re-admission timeline.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl HealthTracker {
    /// `base_backoff`: frames a device sits out after its first fault.
    /// `probation_frames`: clean frames required to regain full health.
    pub fn new(n_devices: usize, base_backoff: usize, probation_frames: usize) -> Self {
        HealthTracker {
            state: vec![DeviceHealth::Healthy; n_devices],
            readmit_at: vec![0; n_devices],
            backoff: vec![base_backoff.max(1); n_devices],
            probation_left: vec![0; n_devices],
            faults: vec![0; n_devices],
            base_backoff: base_backoff.max(1),
            probation_frames: probation_frames.max(1),
            jitter_seed: None,
        }
    }

    /// Enable (`Some`) or disable (`None`) deterministic re-admission
    /// jitter. The jitter of each fault is a pure function of
    /// `(seed, device, fault count)`, so two trackers with the same seed
    /// replay identical timelines — and a checkpoint-restored tracker
    /// continues the original one exactly.
    pub fn set_jitter_seed(&mut self, seed: Option<u64>) {
        self.jitter_seed = seed;
    }

    /// The configured jitter seed, if any.
    pub fn jitter_seed(&self) -> Option<u64> {
        self.jitter_seed
    }

    pub fn len(&self) -> usize {
        self.state.len()
    }

    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    pub fn state(&self, device: usize) -> DeviceHealth {
        self.state[device]
    }

    /// Total faults recorded against `device`.
    pub fn fault_count(&self, device: usize) -> u64 {
        self.faults[device]
    }

    /// True when the device may be scheduled (healthy or on probation).
    pub fn is_available(&self, device: usize) -> bool {
        self.state[device] != DeviceHealth::Blacklisted
    }

    /// Availability mask in platform device order.
    pub fn available(&self) -> Vec<bool> {
        (0..self.state.len())
            .map(|d| self.is_available(d))
            .collect()
    }

    /// Number of schedulable devices.
    pub fn n_available(&self) -> usize {
        self.state
            .iter()
            .filter(|s| **s != DeviceHealth::Blacklisted)
            .count()
    }

    /// Advances to inter frame `frame`: re-admits blacklisted devices whose
    /// backoff has expired, moving them to probation. Call once per frame
    /// before load balancing.
    pub fn tick(&mut self, frame: usize) {
        for d in 0..self.state.len() {
            if self.state[d] == DeviceHealth::Blacklisted && frame >= self.readmit_at[d] {
                self.state[d] = DeviceHealth::Probation;
                self.probation_left[d] = self.probation_frames;
            }
        }
    }

    /// Records a fault against `device` at inter frame `frame`: the device
    /// is blacklisted until `frame + backoff` (plus a deterministic jitter
    /// in `[0, backoff/2]` when a jitter seed is set), and the backoff
    /// doubles.
    pub fn record_fault(&mut self, device: usize, frame: usize) {
        self.faults[device] += 1;
        let jitter = match self.jitter_seed {
            Some(seed) => {
                let span = self.backoff[device] / 2 + 1;
                let h = splitmix64(seed ^ (device as u64).rotate_left(32) ^ self.faults[device]);
                (h % span as u64) as usize
            }
            None => 0,
        };
        self.state[device] = DeviceHealth::Blacklisted;
        self.readmit_at[device] = frame + self.backoff[device] + jitter;
        self.backoff[device] = (self.backoff[device] * 2).min(MAX_BACKOFF_FRAMES);
    }

    /// Records a clean frame for `device`. Probation devices graduate to
    /// healthy after `probation_frames` consecutive clean frames, which also
    /// resets their backoff.
    pub fn record_success(&mut self, device: usize) {
        if self.state[device] == DeviceHealth::Probation {
            self.probation_left[device] = self.probation_left[device].saturating_sub(1);
            if self.probation_left[device] == 0 {
                self.state[device] = DeviceHealth::Healthy;
                self.backoff[device] = self.base_backoff;
            }
        }
    }

    /// Devices currently blacklisted, in device order.
    pub fn blacklisted(&self) -> Vec<usize> {
        (0..self.state.len())
            .filter(|&d| self.state[d] == DeviceHealth::Blacklisted)
            .collect()
    }

    /// Frame at which blacklisted `device` will be re-admitted for a probe
    /// (meaningless while the device is not blacklisted).
    pub fn readmit_at(&self, device: usize) -> usize {
        self.readmit_at[device]
    }

    /// Current backoff (frames) `device` would sit out after its next fault.
    pub fn backoff(&self, device: usize) -> usize {
        self.backoff[device]
    }

    /// Full copy of the tracker state for checkpointing.
    pub fn snapshot(&self) -> HealthSnapshot {
        HealthSnapshot {
            state: self.state.clone(),
            readmit_at: self.readmit_at.clone(),
            backoff: self.backoff.clone(),
            probation_left: self.probation_left.clone(),
            faults: self.faults.clone(),
            base_backoff: self.base_backoff,
            probation_frames: self.probation_frames,
        }
    }

    /// Rebuild a tracker from a [`HealthSnapshot`]. Fails if the per-device
    /// vectors disagree in length (a corrupt snapshot).
    pub fn restore(snap: HealthSnapshot) -> Result<Self, String> {
        let n = snap.state.len();
        if [
            snap.readmit_at.len(),
            snap.backoff.len(),
            snap.probation_left.len(),
            snap.faults.len(),
        ]
        .iter()
        .any(|&l| l != n)
        {
            return Err("health snapshot vectors disagree in device count".into());
        }
        Ok(HealthTracker {
            state: snap.state,
            readmit_at: snap.readmit_at,
            backoff: snap.backoff,
            probation_left: snap.probation_left,
            faults: snap.faults,
            base_backoff: snap.base_backoff.max(1),
            probation_frames: snap.probation_frames.max(1),
            // Derived config, not snapshot state: the restorer re-applies
            // its own seed (see `FevesEncoder::restore`).
            jitter_seed: None,
        })
    }
}

/// Serializable state of a [`HealthTracker`] (checkpoint payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Per-device health state.
    pub state: Vec<DeviceHealth>,
    /// Per-device re-admission frame.
    pub readmit_at: Vec<usize>,
    /// Per-device current backoff in frames.
    pub backoff: Vec<usize>,
    /// Per-device clean frames left to graduate probation.
    pub probation_left: Vec<usize>,
    /// Per-device lifetime fault count.
    pub faults: Vec<u64>,
    /// Configured base backoff.
    pub base_backoff: usize,
    /// Configured probation length.
    pub probation_frames: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_blacklists_and_backoff_readmits() {
        let mut h = HealthTracker::new(3, 2, 2);
        h.record_fault(1, 5);
        assert_eq!(h.state(1), DeviceHealth::Blacklisted);
        assert!(!h.is_available(1));
        assert_eq!(h.available(), vec![true, false, true]);

        h.tick(6); // backoff (2) not yet expired
        assert_eq!(h.state(1), DeviceHealth::Blacklisted);
        h.tick(7); // 5 + 2 → probation
        assert_eq!(h.state(1), DeviceHealth::Probation);
        assert!(h.is_available(1));
    }

    #[test]
    fn probation_graduates_after_clean_frames() {
        let mut h = HealthTracker::new(2, 2, 2);
        h.record_fault(0, 1);
        h.tick(3);
        assert_eq!(h.state(0), DeviceHealth::Probation);
        h.record_success(0);
        assert_eq!(h.state(0), DeviceHealth::Probation);
        h.record_success(0);
        assert_eq!(h.state(0), DeviceHealth::Healthy);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut h = HealthTracker::new(1, 2, 1);
        let mut frame = 1;
        let mut last_gap = 0;
        for _ in 0..10 {
            h.record_fault(0, frame);
            let gap = h.readmit_at[0] - frame;
            assert!(gap >= last_gap, "backoff must not shrink");
            assert!(gap <= MAX_BACKOFF_FRAMES);
            last_gap = gap;
            frame = h.readmit_at[0];
            h.tick(frame);
        }
        assert_eq!(last_gap, MAX_BACKOFF_FRAMES);
    }

    #[test]
    fn recovery_resets_backoff() {
        let mut h = HealthTracker::new(1, 2, 1);
        h.record_fault(0, 1); // backoff now 4
        h.record_fault(0, 3); // backoff now 8
        h.tick(11);
        assert_eq!(h.state(0), DeviceHealth::Probation);
        h.record_success(0);
        assert_eq!(h.state(0), DeviceHealth::Healthy);
        // Next fault sits out only the base backoff again.
        h.record_fault(0, 20);
        assert_eq!(h.readmit_at[0], 22);
        assert_eq!(h.fault_count(0), 3);
    }

    #[test]
    fn snapshot_restore_preserves_the_state_machine_mid_backoff() {
        let mut h = HealthTracker::new(2, 2, 2);
        h.record_fault(1, 5); // blacklisted until 7, backoff doubled to 4
        let restored = HealthTracker::restore(h.snapshot()).unwrap();
        assert_eq!(restored.state(1), DeviceHealth::Blacklisted);
        assert_eq!(restored.readmit_at(1), 7);
        assert_eq!(restored.backoff(1), 4);
        assert_eq!(restored.fault_count(1), 1);
        // The restored tracker continues the exact same timeline.
        let mut a = h.clone();
        let mut b = restored;
        for frame in 6..12 {
            a.tick(frame);
            b.tick(frame);
            assert_eq!(a.state(1), b.state(1), "diverged at frame {frame}");
            a.record_success(1);
            b.record_success(1);
        }
        assert_eq!(a.state(1), DeviceHealth::Healthy);
        assert_eq!(b.state(1), DeviceHealth::Healthy);
    }

    #[test]
    fn restore_rejects_mismatched_vectors() {
        let h = HealthTracker::new(2, 2, 2);
        let mut snap = h.snapshot();
        snap.faults.pop();
        assert!(HealthTracker::restore(snap).is_err());
    }
}
