//! Prediction-drift detection over per-device LP residuals.
//!
//! A *fault* announces itself: a deadline blows past `deadline_factor ×`
//! the prediction, a transfer errors out, a stripe panics. *Drift* is
//! quieter — the device still finishes every frame, just consistently
//! slower (or faster) than the characterization says it should. The
//! [`DriftDetector`] watches the signed per-device prediction residual
//!
//! ```text
//! residual% = (measured − predicted) / predicted · 100
//! ```
//!
//! and fires when a device stays outside `±band_pct` for `k` consecutive
//! frames. The framework consumes the firing as a `sched.drift` event and
//! resets that device's performance characterization, which sends the
//! balancer back through an equidistant probe frame — closing the paper's
//! initialization ↔ iterative feedback loop.
//!
//! Devices with no residual this frame (idle, blacklisted, or not yet
//! characterized) pass `None`, which resets their streak: drift must be
//! *consecutive* evidence, and blacklisted devices are a fault-domain
//! problem, not a model problem.

/// Configuration for [`DriftDetector`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftConfig {
    /// Residual band in percent: a frame counts toward a drift streak when
    /// `|residual%| > band_pct`.
    pub band_pct: f64,
    /// Consecutive out-of-band frames required before the detector fires.
    pub k: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        // 25 % is well above the LP's rounding noise on small row counts,
        // and 3 frames filters one-off scheduling hiccups.
        DriftConfig {
            band_pct: 25.0,
            k: 3,
        }
    }
}

impl DriftConfig {
    /// Validate the configuration (band must be positive and finite,
    /// `k ≥ 1`).
    pub fn validate(&self) -> Result<(), String> {
        if !(self.band_pct > 0.0 && self.band_pct.is_finite()) {
            return Err(format!(
                "drift band must be a positive finite percentage, got {}",
                self.band_pct
            ));
        }
        if self.k == 0 {
            return Err("drift window k must be ≥ 1".into());
        }
        Ok(())
    }
}

/// Per-device consecutive-residual tracker. See the module docs.
#[derive(Clone, Debug)]
pub struct DriftDetector {
    cfg: DriftConfig,
    /// Consecutive out-of-band frames per device.
    streak: Vec<usize>,
    /// Sticky "currently drifting" flag per device, cleared by [`clear`]
    /// (e.g. after re-characterization).
    ///
    /// [`clear`]: DriftDetector::clear
    flagged: Vec<bool>,
}

impl DriftDetector {
    /// Detector for `n_devices` devices.
    pub fn new(n_devices: usize, cfg: DriftConfig) -> Self {
        DriftDetector {
            cfg,
            streak: vec![0; n_devices],
            flagged: vec![false; n_devices],
        }
    }

    /// Active configuration.
    pub fn config(&self) -> DriftConfig {
        self.cfg
    }

    /// Feed one frame of signed residuals (`None` = no evidence this frame,
    /// resets the device's streak). Returns the devices whose streak reached
    /// `k` *this* frame — each fires at most once until [`clear`]ed.
    ///
    /// [`clear`]: DriftDetector::clear
    pub fn update(&mut self, residual_pct: &[Option<f64>]) -> Vec<usize> {
        let mut fired = Vec::new();
        for (d, r) in residual_pct.iter().enumerate() {
            if d >= self.streak.len() {
                break;
            }
            match r {
                Some(pct) if pct.is_finite() && pct.abs() > self.cfg.band_pct => {
                    self.streak[d] += 1;
                    if self.streak[d] >= self.cfg.k && !self.flagged[d] {
                        self.flagged[d] = true;
                        fired.push(d);
                    }
                }
                _ => self.streak[d] = 0,
            }
        }
        fired
    }

    /// True while device `d` is in a fired drift state (set on firing,
    /// cleared by [`clear`]).
    ///
    /// [`clear`]: DriftDetector::clear
    pub fn is_flagged(&self, d: usize) -> bool {
        self.flagged.get(d).copied().unwrap_or(false)
    }

    /// Reset device `d`'s streak and flag — call after re-characterizing it.
    pub fn clear(&mut self, d: usize) {
        if let Some(s) = self.streak.get_mut(d) {
            *s = 0;
        }
        if let Some(f) = self.flagged.get_mut(d) {
            *f = false;
        }
    }

    /// Current streak length for device `d` (diagnostics).
    pub fn streak(&self, d: usize) -> usize {
        self.streak.get(d).copied().unwrap_or(0)
    }

    /// Copy of the mutable detector state for checkpointing (the config is
    /// rebuilt from `EncoderConfig` on resume).
    pub fn snapshot(&self) -> DriftSnapshot {
        DriftSnapshot {
            streak: self.streak.clone(),
            flagged: self.flagged.clone(),
        }
    }

    /// Overwrite the mutable state from a [`DriftSnapshot`]. Fails if the
    /// snapshot was taken for a different device count.
    pub fn restore_state(&mut self, snap: DriftSnapshot) -> Result<(), String> {
        if snap.streak.len() != self.streak.len() || snap.flagged.len() != self.flagged.len() {
            return Err(format!(
                "drift snapshot is for {} devices, detector has {}",
                snap.streak.len(),
                self.streak.len()
            ));
        }
        self.streak = snap.streak;
        self.flagged = snap.flagged;
        Ok(())
    }
}

/// Serializable mutable state of a [`DriftDetector`] (checkpoint payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DriftSnapshot {
    /// Consecutive out-of-band frames per device.
    pub streak: Vec<usize>,
    /// Sticky fired flag per device.
    pub flagged: Vec<bool>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(k: usize) -> DriftDetector {
        DriftDetector::new(2, DriftConfig { band_pct: 25.0, k })
    }

    #[test]
    fn fires_after_k_consecutive_out_of_band_frames() {
        let mut d = det(3);
        assert!(d.update(&[Some(40.0), Some(5.0)]).is_empty());
        assert!(d.update(&[Some(-60.0), Some(5.0)]).is_empty());
        // Third consecutive frame outside ±25 % fires device 0 only.
        assert_eq!(d.update(&[Some(30.0), Some(5.0)]), vec![0]);
        assert!(d.is_flagged(0));
        assert!(!d.is_flagged(1));
        // Fires once, not every subsequent frame.
        assert!(d.update(&[Some(30.0), Some(5.0)]).is_empty());
    }

    #[test]
    fn in_band_or_missing_evidence_resets_the_streak() {
        let mut d = det(3);
        d.update(&[Some(40.0), None]);
        d.update(&[Some(40.0), None]);
        // An in-band frame breaks device 0's run.
        d.update(&[Some(1.0), None]);
        d.update(&[Some(40.0), None]);
        d.update(&[Some(40.0), None]);
        assert!(d.update(&[Some(10.0), None]).is_empty());
        assert!(!d.is_flagged(0));
        // None (blacklisted / idle) also resets.
        let mut e = det(3);
        e.update(&[Some(99.0), Some(99.0)]);
        e.update(&[Some(99.0), None]);
        assert_eq!(e.update(&[Some(99.0), Some(99.0)]), vec![0]);
        assert_eq!(e.streak(1), 1, "device 1's streak restarted after None");
        assert!(!e.is_flagged(1));
    }

    #[test]
    fn clear_rearms_the_detector() {
        let mut d = det(3);
        d.update(&[Some(50.0)]);
        assert_eq!(d.update(&[Some(50.0)]), Vec::<usize>::new());
        assert_eq!(d.update(&[Some(50.0)]), vec![0]);
        d.clear(0);
        assert!(!d.is_flagged(0));
        assert_eq!(d.streak(0), 0);
        d.update(&[Some(50.0)]);
        d.update(&[Some(50.0)]);
        assert_eq!(d.update(&[Some(50.0)]), vec![0]);
    }

    #[test]
    fn nan_residuals_reset_like_missing_evidence() {
        let mut d = det(3);
        d.update(&[Some(99.0)]);
        d.update(&[Some(f64::NAN)]);
        d.update(&[Some(99.0)]);
        assert_eq!(d.streak(0), 1, "NaN is no evidence: streak restarted");
        assert!(!d.is_flagged(0));
    }

    #[test]
    fn config_validation() {
        assert!(DriftConfig::default().validate().is_ok());
        assert!(DriftConfig {
            band_pct: 0.0,
            k: 3
        }
        .validate()
        .is_err());
        assert!(DriftConfig {
            band_pct: f64::NAN,
            k: 3
        }
        .validate()
        .is_err());
        assert!(DriftConfig {
            band_pct: 25.0,
            k: 0
        }
        .validate()
        .is_err());
    }
}
