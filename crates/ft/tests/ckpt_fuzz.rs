//! Adversarial fuzz of the checkpoint wire format: any truncated or
//! bit-flipped image must surface as a typed `CheckpointCorrupt` — never a
//! panic, never a silent success. This extends the per-section CRC unit
//! tests to proptest-generated mutations.

use feves_ft::ckpt::{crc32, ByteReader, CheckpointBlob};
use feves_ft::error::FevesError;
use proptest::prelude::*;

/// A structurally valid checkpoint image built from arbitrary sections.
fn valid_blob(sections: &[(u8, Vec<u8>)], fingerprint: u64) -> Vec<u8> {
    let mut blob = CheckpointBlob::new(fingerprint);
    for (i, (tag_seed, payload)) in sections.iter().enumerate() {
        // Distinct printable 4-byte tags.
        let tag = [b'A' + (tag_seed % 26), b'A' + ((i as u8) % 26), b'0', b'1'];
        blob.push_section(tag, payload.clone());
    }
    blob.to_bytes()
}

proptest! {
    /// Decoding arbitrary garbage never panics.
    #[test]
    fn from_bytes_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = CheckpointBlob::from_bytes(&bytes);
    }

    /// Every single-bit flip of a valid image is rejected with a typed
    /// corrupt error — the header CRC covers the header, each section CRC
    /// covers tag‖len‖body, and the CRC fields themselves self-invalidate.
    #[test]
    fn any_bit_flip_yields_checkpoint_corrupt(
        sections in proptest::collection::vec((any::<u8>(), proptest::collection::vec(any::<u8>(), 0..64)), 1..4),
        fingerprint in any::<u64>(),
        flip_pos in any::<u64>(),
        flip_bit in 0u8..8,
    ) {
        let good = valid_blob(&sections, fingerprint);
        prop_assert!(CheckpointBlob::from_bytes(&good).is_ok());

        let mut bad = good.clone();
        let idx = (flip_pos % bad.len() as u64) as usize;
        bad[idx] ^= 1 << flip_bit;
        match CheckpointBlob::from_bytes(&bad) {
            Err(FevesError::CheckpointCorrupt(_)) => {}
            Err(other) => prop_assert!(false, "wrong error class for flipped byte {idx}: {other}"),
            Ok(_) => prop_assert!(false, "bit flip at byte {idx} bit {flip_bit} decoded silently"),
        }
    }

    /// Every proper prefix of a valid image is rejected, never panics.
    #[test]
    fn any_truncation_yields_checkpoint_corrupt(
        sections in proptest::collection::vec((any::<u8>(), proptest::collection::vec(any::<u8>(), 0..64)), 1..4),
        fingerprint in any::<u64>(),
        cut in any::<u64>(),
    ) {
        let good = valid_blob(&sections, fingerprint);
        let len = (cut % good.len() as u64) as usize; // strictly < full length
        match CheckpointBlob::from_bytes(&good[..len]) {
            Err(FevesError::CheckpointCorrupt(_)) => {}
            Err(other) => prop_assert!(false, "wrong error class truncating to {len}: {other}"),
            Ok(_) => prop_assert!(false, "truncation to {len} bytes decoded silently"),
        }
    }

    /// ByteReader take_* ops on arbitrary buffers return typed errors on
    /// exhaustion — no panics, no out-of-bounds.
    #[test]
    fn byte_reader_never_panics(
        buf in proptest::collection::vec(any::<u8>(), 0..256),
        ops in proptest::collection::vec(0u8..9, 1..64),
    ) {
        let mut r = ByteReader::new(&buf);
        for op in ops {
            let res: Result<(), FevesError> = match op {
                0 => r.take_u8().map(|_| ()),
                1 => r.take_u32().map(|_| ()),
                2 => r.take_u64().map(|_| ()),
                3 => r.take_usize().map(|_| ()),
                4 => r.take_f64().map(|_| ()),
                5 => r.take_bool().map(|_| ()),
                6 => r.take_str().map(|_| ()),
                7 => r.take_bytes().map(|_| ()),
                _ => r.take_f64_vec().map(|_| ()),
            };
            if res.is_err() {
                break;
            }
        }
        // Whatever remains, expect_end never panics either.
        let _ = r.expect_end("fuzz");
        // And the checksum of the scanned region is stable (smoke-check the
        // crc32 helpers against slicing).
        prop_assert_eq!(crc32(&buf), crc32(&buf.clone()));
    }
}
