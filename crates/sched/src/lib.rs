#![warn(missing_docs)]
//! Scheduling and load balancing for FEVES (paper §III-C).
//!
//! - [`perfchar`] — on-the-fly performance characterization: per-device,
//!   per-module processing rates and per-buffer, per-direction transfer
//!   rates, updated after every frame;
//! - [`bounds`] — the `MS_BOUNDS` / `LS_BOUNDS` routines (eqs. 16–17)
//!   quantifying shared-buffer data reuse;
//! - [`algorithm2`] — the load-balancing linear program (Algorithm 2),
//!   GPU-centric and CPU-centric, single- and dual-copy-engine aware;
//! - [`rstar`] — Dijkstra-based mapping of the R\* group to the best device;
//! - [`distribution`] — the resulting `m`/`l`/`s`/`Δ`/`σ` vectors with
//!   integer rounding and invariant checks;
//! - [`balancers`] — Algorithm 2 plus the baselines it is evaluated against
//!   (equidistant \[8\], per-module proportional \[9\], single device).

pub mod algorithm2;
pub mod balancers;
pub mod bounds;
pub mod completion;
pub mod distribution;
pub mod greedy;
pub mod perfchar;
pub mod rstar;

pub use algorithm2::{Centric, LbError};
pub use balancers::{
    BalanceInput, EquidistantBalancer, FevesBalancer, LoadBalancer, ProportionalBalancer,
    SingleDeviceBalancer,
};
pub use completion::CompletionTracker;
pub use distribution::{DevicePrediction, Distribution, PredictedTimes};
pub use greedy::GreedyBalancer;
pub use perfchar::{Ewma, PerfChar};
