//! The FEVES Load Balancing routine (paper Algorithm 2): a linear program
//! that distributes ME/INT/SME rows across all devices so that the total
//! inter-frame time τtot is minimized, subject to per-device compute and
//! copy-engine occupancy constraints at the synchronization points τ1/τ2 of
//! Fig 4 and the buffer states of Fig 5.
//!
//! Variable map (per device `i`, all ≥ 0): `m_i`, `l_i`, `s_i`; globally
//! τ1, τ2, τtot. For accelerators additionally the linearized extra-transfer
//! amounts `Δ^m_i = a↑_i + a↓_i`, `Δ^l_i = b↑_i + b↓_i` (eqs. 16/17 become
//! `a↑_i ≥ M_{i−1} − S_{i−1}`, `a↓_i ≥ S_i − M_i`, etc., with `M`, `S`
//! prefix sums in enumeration order — exact because the Δ terms only appear
//! on the *load* side of ≤-constraints under a minimized objective), and for
//! non-R\* accelerators the deferred-SF split `σ_i`, `σʳ_i` (eqs. 14/15,
//! with the MIN linearized as two upper bounds and σ pulled up by a small
//! negative objective weight).
//!
//! Dual-copy-engine accelerators get their occupancy constraints split per
//! direction — the §III-A "transfers in different directions can overlap"
//! refinement.

use crate::distribution::{round_preserving_sum, DevicePrediction, Distribution, PredictedTimes};
use crate::perfchar::PerfChar;
use feves_hetsim::device::{CopyEngines, DeviceKind};
use feves_hetsim::platform::Platform;
use feves_hetsim::timeline::{Dir, TransferTag};
use feves_lp::{Problem, Relation, Sense, VarId};

/// Where the `R*` group executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Centric {
    /// `R*` on one accelerator (the paper's primary configuration).
    Gpu(usize),
    /// `R*` on the CPU cores.
    Cpu,
}

/// Errors from the LP balancer.
#[derive(Debug, PartialEq)]
pub enum LbError {
    /// Performance characterization incomplete (run the equidistant frame
    /// first — Algorithm 1 line 3).
    NotCharacterized,
    /// The LP could not be solved.
    Lp(feves_lp::LpError),
}

impl std::fmt::Display for LbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LbError::NotCharacterized => write!(f, "performance characterization incomplete"),
            LbError::Lp(e) => write!(f, "load-balancing LP failed: {e}"),
        }
    }
}

impl std::error::Error for LbError {}

/// Transfer-rate lookup with graceful fallbacks: unmeasured directions
/// borrow the opposite direction's rate, unmeasured buffers borrow a
/// same-sized buffer's rate (RF ↔ CF stripes have identical layout).
fn xfer(perf: &PerfChar, d: usize, tag: TransferTag, dir: Dir) -> f64 {
    let direct = perf.k_transfer(d, tag, dir);
    if let Some(v) = direct {
        return v;
    }
    let flip = |dir: Dir| match dir {
        Dir::H2d => Dir::D2h,
        Dir::D2h => Dir::H2d,
    };
    let alias = match tag {
        TransferTag::Rf => Some(TransferTag::Cf),
        TransferTag::Cf => Some(TransferTag::Rf),
        _ => None,
    };
    perf.k_transfer(d, tag, flip(dir))
        .or_else(|| alias.and_then(|a| perf.k_transfer(d, a, dir)))
        .or_else(|| alias.and_then(|a| perf.k_transfer(d, a, flip(dir))))
        .unwrap_or(1e-6) // last resort: ~free (measurement arrives next frame)
}

/// Solve Algorithm 2. `sigma_rem_prev[i]` is last frame's `σʳ` (the
/// `σ^{r−1}` input), `centric` fixes the R\* mapping (chosen beforehand by
/// the Dijkstra routine, paper §III-B).
pub fn solve(
    n_rows: usize,
    platform: &Platform,
    perf: &PerfChar,
    centric: Centric,
    sigma_rem_prev: &[usize],
) -> Result<Distribution, LbError> {
    let _span = feves_obs::span!(feves_obs::global(), "algorithm2");
    let nd = platform.len();
    assert_eq!(sigma_rem_prev.len(), nd);
    if !perf.is_complete() {
        return Err(LbError::NotCharacterized);
    }
    let n = n_rows as f64;
    let rstar_device = match centric {
        Centric::Gpu(g) => g,
        // CPU-centric: R* collectively on cores; use the first core as the
        // representative index in the Distribution.
        Centric::Cpu => platform.n_accel,
    };

    let mut lp = Problem::new(Sense::Minimize);
    // Globals. Tiny weights keep τ1/τ2 tight (unique optimum) without
    // perturbing τtot.
    let tau1 = lp.add_var("tau1", 1e-6);
    let tau2 = lp.add_var("tau2", 1e-6);
    let tau_tot = lp.add_var("tau_tot", 1.0);

    let m: Vec<VarId> = (0..nd).map(|i| lp.add_var(format!("m{i}"), 0.0)).collect();
    let l: Vec<VarId> = (0..nd).map(|i| lp.add_var(format!("l{i}"), 0.0)).collect();
    let s: Vec<VarId> = (0..nd).map(|i| lp.add_var(format!("s{i}"), 0.0)).collect();

    // (1) distribution sums.
    for v in [&m, &l, &s] {
        let terms: Vec<_> = v.iter().map(|&x| (x, 1.0)).collect();
        lp.add_constraint(&terms, Relation::Eq, n);
    }

    // Δ linearization for accelerators: Δ^m_i = a↑ + a↓ with
    // a↑ ≥ Σ_{j<i} m_j − Σ_{j<i} s_j and a↓ ≥ Σ_{j≤i} s_j − Σ_{j≤i} m_j.
    let mut delta_m_terms: Vec<Vec<(VarId, f64)>> = Vec::with_capacity(nd);
    let mut delta_l_terms: Vec<Vec<(VarId, f64)>> = Vec::with_capacity(nd);
    for i in 0..platform.n_accel {
        let mk = |lp: &mut Problem, name: String| lp.add_var(name, 0.0);
        let (am_up, am_dn) = (
            mk(&mut lp, format!("dm_up{i}")),
            mk(&mut lp, format!("dm_dn{i}")),
        );
        let (al_up, al_dn) = (
            mk(&mut lp, format!("dl_up{i}")),
            mk(&mut lp, format!("dl_dn{i}")),
        );
        // a↑ ≥ M_{i−1} − S_{i−1}  ⇔  Σ_{j<i}(m_j − s_j) − a↑ ≤ 0.
        let mut t: Vec<(VarId, f64)> = Vec::new();
        for j in 0..i {
            t.push((m[j], 1.0));
            t.push((s[j], -1.0));
        }
        t.push((am_up, -1.0));
        lp.add_constraint(&t, Relation::Le, 0.0);
        // a↓ ≥ S_i − M_i  ⇔  Σ_{j≤i}(s_j − m_j) − a↓ ≤ 0.
        let mut t: Vec<(VarId, f64)> = Vec::new();
        for j in 0..=i {
            t.push((s[j], 1.0));
            t.push((m[j], -1.0));
        }
        t.push((am_dn, -1.0));
        lp.add_constraint(&t, Relation::Le, 0.0);
        // Same pair for Δ^l against the INT prefix sums.
        let mut t: Vec<(VarId, f64)> = Vec::new();
        for j in 0..i {
            t.push((l[j], 1.0));
            t.push((s[j], -1.0));
        }
        t.push((al_up, -1.0));
        lp.add_constraint(&t, Relation::Le, 0.0);
        let mut t: Vec<(VarId, f64)> = Vec::new();
        for j in 0..=i {
            t.push((s[j], 1.0));
            t.push((l[j], -1.0));
        }
        t.push((al_dn, -1.0));
        lp.add_constraint(&t, Relation::Le, 0.0);

        delta_m_terms.push(vec![(am_up, 1.0), (am_dn, 1.0)]);
        delta_l_terms.push(vec![(al_up, 1.0), (al_dn, 1.0)]);
    }
    for _ in platform.n_accel..nd {
        delta_m_terms.push(Vec::new());
        delta_l_terms.push(Vec::new());
    }

    // Per-device constraints.
    for i in 0..nd {
        let dev = &platform.devices[i];
        let km = perf.k_me(i).unwrap();
        let kl = perf.k_int(i).unwrap();
        let ks = perf.k_sme(i).unwrap();
        match dev.kind {
            DeviceKind::CpuCore => {
                // (2): m_i·K^m + l_i·K^l ≤ τ1.
                lp.add_constraint(&[(m[i], km), (l[i], kl), (tau1, -1.0)], Relation::Le, 0.0);
                // (3): τ1 + s_i·K^s ≤ τ2.
                lp.add_constraint(&[(tau1, 1.0), (s[i], ks), (tau2, -1.0)], Relation::Le, 0.0);
            }
            DeviceKind::Accelerator(engines) => {
                let k_cf_hd = xfer(perf, i, TransferTag::Cf, Dir::H2d);
                let k_rf_hd = xfer(perf, i, TransferTag::Rf, Dir::H2d);
                let k_rf_dh = xfer(perf, i, TransferTag::Rf, Dir::D2h);
                let k_sf_hd = xfer(perf, i, TransferTag::Sf, Dir::H2d);
                let k_sf_dh = xfer(perf, i, TransferTag::Sf, Dir::D2h);
                let k_mv_hd = xfer(perf, i, TransferTag::Mv, Dir::H2d);
                let k_mv_dh = xfer(perf, i, TransferTag::Mv, Dir::D2h);
                let dm = &delta_m_terms[i];
                let dl = &delta_l_terms[i];
                let is_rstar = matches!(centric, Centric::Gpu(g) if g == i);

                // Helper to extend a term list with Δ terms at a coefficient.
                let with = |base: Vec<(VarId, f64)>, extra: &[(VarId, f64)], coeff: f64| {
                    let mut t = base;
                    for &(v, c) in extra {
                        t.push((v, c * coeff));
                    }
                    t
                };

                if is_rstar {
                    // (4): CF up + ME kernel + MV down, sequenced ≤ τ1.
                    lp.add_constraint(
                        &[(m[i], k_cf_hd + km + k_mv_dh), (tau1, -1.0)],
                        Relation::Le,
                        0.0,
                    );
                    // (5): INT kernel + SF down + CF up (own + Δ) + MV down ≤ τ1.
                    let t = with(
                        vec![
                            (l[i], kl + k_sf_dh),
                            (m[i], k_cf_hd + k_mv_dh),
                            (tau1, -1.0),
                        ],
                        dm,
                        k_cf_hd,
                    );
                    lp.add_constraint(&t, Relation::Le, 0.0);
                    // (6): copy-engine occupancy ≤ τ1.
                    match engines {
                        CopyEngines::Single => {
                            let t = with(
                                vec![(m[i], k_cf_hd + k_mv_dh), (l[i], k_sf_dh), (tau1, -1.0)],
                                dm,
                                k_cf_hd,
                            );
                            lp.add_constraint(&t, Relation::Le, 0.0);
                        }
                        CopyEngines::Dual => {
                            let t = with(vec![(m[i], k_cf_hd), (tau1, -1.0)], dm, k_cf_hd);
                            lp.add_constraint(&t, Relation::Le, 0.0);
                            lp.add_constraint(
                                &[(m[i], k_mv_dh), (l[i], k_sf_dh), (tau1, -1.0)],
                                Relation::Le,
                                0.0,
                            );
                        }
                    }
                    // (7): τ1 + Δl·K^sf_hd + Δm·K^mv_hd + SME ≤ τ2.
                    let t = {
                        let t = with(vec![(tau1, 1.0), (s[i], ks), (tau2, -1.0)], dl, k_sf_hd);
                        with(t, dm, k_mv_hd)
                    };
                    lp.add_constraint(&t, Relation::Le, 0.0);
                    // (8): remaining CF+SF for MC fetched within τ2:
                    // τ1 + Δl·K^sf_hd + (N−m−Δm)K^cf_hd + (N−l−Δl)K^sf_hd
                    //    + Δm·K^mv_hd ≤ τ2.
                    let mut t = vec![
                        (tau1, 1.0),
                        (m[i], -k_cf_hd),
                        (l[i], -k_sf_hd),
                        (tau2, -1.0),
                    ];
                    for &(v, c) in dm {
                        t.push((v, c * (k_mv_hd - k_cf_hd)));
                    }
                    // Δl appears as +K^sf_hd (prefetch) and −K^sf_hd (already
                    // counted in the remaining-SF term): they cancel.
                    lp.add_constraint(&t, Relation::Le, -(n * (k_cf_hd + k_sf_hd)));
                    // (9): τ2 + (N−s)K^mv_hd + T^{R*} + N·K^rf_dh ≤ τtot.
                    let t_rstar = perf.estimate_rstar(i).unwrap_or(0.0);
                    lp.add_constraint(
                        &[(tau2, 1.0), (s[i], -k_mv_hd), (tau_tot, -1.0)],
                        Relation::Le,
                        -(n * k_mv_hd + t_rstar + n * k_rf_dh),
                    );
                } else {
                    let sig_prev = sigma_rem_prev[i] as f64;
                    // (10): RF up + CF up + ME + MV down ≤ τ1.
                    lp.add_constraint(
                        &[(m[i], k_cf_hd + km + k_mv_dh), (tau1, -1.0)],
                        Relation::Le,
                        -(n * k_rf_hd),
                    );
                    // (11): RF up + INT + SF down + σ^{r−1} up + ΔmCF up + MV down ≤ τ1.
                    let t = with(
                        vec![(l[i], kl + k_sf_dh), (m[i], k_mv_dh), (tau1, -1.0)],
                        dm,
                        k_cf_hd,
                    );
                    lp.add_constraint(&t, Relation::Le, -(n * k_rf_hd + sig_prev * k_sf_hd));
                    // (12): copy-engine occupancy ≤ τ1.
                    match engines {
                        CopyEngines::Single => {
                            let t = with(
                                vec![(m[i], k_cf_hd + k_mv_dh), (l[i], k_sf_dh), (tau1, -1.0)],
                                dm,
                                k_cf_hd,
                            );
                            lp.add_constraint(
                                &t,
                                Relation::Le,
                                -(n * k_rf_hd + sig_prev * k_sf_hd),
                            );
                        }
                        CopyEngines::Dual => {
                            let t = with(vec![(m[i], k_cf_hd), (tau1, -1.0)], dm, k_cf_hd);
                            lp.add_constraint(
                                &t,
                                Relation::Le,
                                -(n * k_rf_hd + sig_prev * k_sf_hd),
                            );
                            lp.add_constraint(
                                &[(m[i], k_mv_dh), (l[i], k_sf_dh), (tau1, -1.0)],
                                Relation::Le,
                                0.0,
                            );
                        }
                    }
                    // (13): τ1 + Δl·K^sf_hd + Δm·K^mv_hd + s(K^s + K^mv_dh) ≤ τ2.
                    let t = {
                        let t = with(
                            vec![(tau1, 1.0), (s[i], ks + k_mv_dh), (tau2, -1.0)],
                            dl,
                            k_sf_hd,
                        );
                        with(t, dm, k_mv_hd)
                    };
                    lp.add_constraint(&t, Relation::Le, 0.0);
                    // (14)/(15): σ_i = MIN(N − l_i − Δl_i, (τtot − τ2)/K^sf_hd),
                    // σʳ_i = N − l_i − Δl_i − σ_i ≥ 0. Linearized: σ bounded
                    // by both terms, pulled upward by the objective.
                    let sigma = lp.add_var(format!("sigma{i}"), -1e-9);
                    let t = with(vec![(sigma, 1.0), (l[i], 1.0)], dl, 1.0);
                    lp.add_constraint(&t, Relation::Le, n);
                    lp.add_constraint(
                        &[(sigma, k_sf_hd), (tau2, 1.0), (tau_tot, -1.0)],
                        Relation::Le,
                        0.0,
                    );
                }
            }
        }
    }

    // CPU-centric R*: the cores run MC+TQ+TQ⁻¹+DBL after τ2.
    if matches!(centric, Centric::Cpu) {
        let core0 = platform.n_accel;
        let t_rstar = perf.estimate_rstar(core0).unwrap_or(0.0);
        lp.add_constraint(&[(tau2, 1.0), (tau_tot, -1.0)], Relation::Le, -t_rstar);
    }

    let sol = lp.solve().map_err(LbError::Lp)?;

    // Round to integer MB rows preserving sums, then rebuild the dependent
    // quantities (Δ, σ, σʳ) from the *rounded* vectors so the Distribution
    // is self-consistent.
    let mf: Vec<f64> = m.iter().map(|&v| sol.value(v)).collect();
    let lf: Vec<f64> = l.iter().map(|&v| sol.value(v)).collect();
    let sf: Vec<f64> = s.iter().map(|&v| sol.value(v)).collect();
    let me = round_preserving_sum(&mf, n_rows);
    let li = round_preserving_sum(&lf, n_rows);
    let sm = round_preserving_sum(&sf, n_rows);

    let predicted = PredictedTimes {
        tau1: sol.value(tau1),
        tau2: sol.value(tau2),
        tau_tot: sol.value(tau_tot),
    };
    // σ budget per device: how many SF rows fit into τtot − τ2 (accelerators
    // not running R*); everything eagerly for the rest.
    let budget: Vec<usize> = (0..nd)
        .map(|i| {
            let dev = &platform.devices[i];
            let is_rstar_gpu = matches!(centric, Centric::Gpu(g) if g == i);
            if dev.is_accelerator() && !is_rstar_gpu {
                let k_sf_hd = xfer(perf, i, TransferTag::Sf, Dir::H2d);
                let window = (predicted.tau_tot - predicted.tau2).max(0.0);
                (window / k_sf_hd).floor() as usize
            } else {
                usize::MAX
            }
        })
        .collect();
    // Per-device predictions from the *rounded* rows × characterized rates:
    // what each device should be busy for if its characterization holds.
    let predicted_device: Vec<DevicePrediction> = (0..nd)
        .map(|i| DevicePrediction {
            phase1: me[i] as f64 * perf.k_me(i).unwrap() + li[i] as f64 * perf.k_int(i).unwrap(),
            phase2: sm[i] as f64 * perf.k_sme(i).unwrap(),
            rstar: if i == rstar_device {
                perf.estimate_rstar(i).unwrap_or(0.0)
            } else {
                0.0
            },
        })
        .collect();
    let mut dist = Distribution::from_rows(me, li, sm, rstar_device, &budget, Some(predicted));
    dist.predicted_device = Some(predicted_device);
    dist.lp_iterations = Some(sol.iterations());
    debug_assert!(dist.validate(n_rows).is_ok());
    Ok(dist)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::perfchar::Ewma;
    use feves_codec::types::Module;

    /// Characterize a platform from its *true* profiles (as if an
    /// equidistant frame had been measured noise-free).
    pub fn perfect_perfchar(platform: &Platform, me_units_per_row: f64) -> PerfChar {
        let mut pc = PerfChar::new(platform.len(), Ewma(1.0));
        let mb_cols = 120.0;
        for (i, dev) in platform.devices.iter().enumerate() {
            let t_me = dev.compute_time(Module::Me, me_units_per_row, 1.0);
            let t_int = dev.compute_time(Module::Interp, mb_cols, 1.0);
            let t_sme = dev.compute_time(Module::Sme, mb_cols, 1.0);
            pc.record_compute(i, Module::Me, 1, t_me);
            pc.record_compute(i, Module::Interp, 1, t_int);
            pc.record_compute(i, Module::Sme, 1, t_sme);
            let t_rstar: f64 = [Module::Mc, Module::Tq, Module::Itq, Module::Dbl]
                .iter()
                .map(|&m| dev.compute_time(m, mb_cols * 68.0, 1.0))
                .sum();
            pc.record_rstar(i, t_rstar);
            if let Some(link) = dev.link {
                use feves_codec::workload::bytes_per_row as bpr;
                for (tag, bytes) in [
                    (TransferTag::Cf, bpr::cf(1920)),
                    (TransferTag::Rf, bpr::rf(1920)),
                    (TransferTag::Sf, bpr::sf(1920)),
                    (TransferTag::Mv, bpr::mv(1920)),
                ] {
                    pc.record_transfer(i, tag, Dir::H2d, 1, link.transfer_time(bytes, true));
                    pc.record_transfer(i, tag, Dir::D2h, 1, link.transfer_time(bytes, false));
                }
            }
        }
        pc
    }

    fn me_units(sa: u16, n_ref: usize) -> f64 {
        120.0 * (sa as f64) * (sa as f64) * n_ref as f64
    }

    #[test]
    fn requires_characterization() {
        let p = Platform::sys_hk();
        let pc = PerfChar::new(p.len(), Ewma(1.0));
        let r = solve(68, &p, &pc, Centric::Gpu(0), &vec![0; p.len()]);
        assert_eq!(r.unwrap_err(), LbError::NotCharacterized);
    }

    #[test]
    fn syshk_distribution_is_valid_and_gpu_heavy() {
        let p = Platform::sys_hk();
        let pc = perfect_perfchar(&p, me_units(32, 1));
        let d = solve(68, &p, &pc, Centric::Gpu(0), &vec![0; p.len()]).unwrap();
        d.validate(68).unwrap();
        // The GPU is ~3x the whole CPU: it must take the lion's share.
        assert!(d.me[0] > 40, "GPU should take most ME rows, got {:?}", d.me);
        // The CPU cores collectively contribute a real share (the LP may
        // leave an individual core empty at a degenerate vertex).
        assert!(
            d.me[1..].iter().sum::<usize>() >= 8,
            "cores barely used: {:?}",
            d.me
        );
        let pred = d.predicted.unwrap();
        assert!(pred.tau1 > 0.0 && pred.tau1 <= pred.tau2 && pred.tau2 <= pred.tau_tot);
    }

    #[test]
    fn per_device_predictions_match_rows_times_rates() {
        let p = Platform::sys_hk();
        let pc = perfect_perfchar(&p, me_units(32, 1));
        let d = solve(68, &p, &pc, Centric::Gpu(0), &vec![0; p.len()]).unwrap();
        let pd = d.predicted_device.as_ref().expect("LP fills predictions");
        assert_eq!(pd.len(), p.len());
        for (i, pdi) in pd.iter().enumerate() {
            let phase1 =
                d.me[i] as f64 * pc.k_me(i).unwrap() + d.interp[i] as f64 * pc.k_int(i).unwrap();
            let phase2 = d.sme[i] as f64 * pc.k_sme(i).unwrap();
            assert!((pdi.phase1 - phase1).abs() < 1e-12, "device {i} phase1");
            assert!((pdi.phase2 - phase2).abs() < 1e-12, "device {i} phase2");
            if i == d.rstar_device {
                assert!(pdi.rstar > 0.0, "R* device carries T^R*");
            } else {
                assert_eq!(pdi.rstar, 0.0);
            }
            assert!(pdi.busy().is_finite() && pdi.busy() >= 0.0);
        }
        // A device's predicted busy never exceeds the global τtot prediction
        // (it is a lower bound by construction — no waits included).
        let tau_tot = d.predicted.unwrap().tau_tot;
        for (i, p) in pd.iter().enumerate() {
            assert!(
                p.phase1 + p.phase2 <= tau_tot + 1e-9,
                "device {i} busier than the frame: {} > {tau_tot}",
                p.busy()
            );
        }
    }

    #[test]
    fn predicted_time_beats_single_device() {
        // τtot of the collaborative solution must undercut the GPU-only
        // frame time (that is the whole point of the framework).
        let p = Platform::sys_hk();
        let pc = perfect_perfchar(&p, me_units(32, 1));
        let d = solve(68, &p, &pc, Centric::Gpu(0), &vec![0; p.len()]).unwrap();
        let gpu_alone: f64 =
            68.0 * (pc.k_me(0).unwrap() + pc.k_int(0).unwrap() + pc.k_sme(0).unwrap());
        let pred = d.predicted.unwrap();
        assert!(
            pred.tau_tot < gpu_alone,
            "collaboration ({:.1} ms) must beat GPU-only compute ({:.1} ms)",
            pred.tau_tot * 1e3,
            gpu_alone * 1e3
        );
    }

    #[test]
    fn faster_device_gets_more_rows() {
        let p = Platform::sys_nff();
        let pc = perfect_perfchar(&p, me_units(32, 1));
        let d = solve(68, &p, &pc, Centric::Gpu(0), &vec![0; p.len()]).unwrap();
        d.validate(68).unwrap();
        // Each GPU_F beats a CPU_N core by a wide margin.
        assert!(d.me[0] + d.me[1] > d.me[2..].iter().sum::<usize>());
    }

    #[test]
    fn cpu_centric_variant_solves() {
        let p = Platform::sys_nf();
        let pc = perfect_perfchar(&p, me_units(32, 1));
        let d = solve(68, &p, &pc, Centric::Cpu, &vec![0; p.len()]).unwrap();
        d.validate(68).unwrap();
        assert_eq!(d.rstar_device, p.n_accel);
    }

    #[test]
    fn sigma_rem_carries_load_into_next_frame() {
        // With two accelerators, the non-R* one defers SF rows when the
        // τtot − τ2 window is short; its σ + σʳ bookkeeping must hold.
        let p = Platform::sys_nff();
        let pc = perfect_perfchar(&p, me_units(32, 1));
        let d = solve(68, &p, &pc, Centric::Gpu(0), &vec![0; p.len()]).unwrap();
        d.validate(68).unwrap();
        // Feeding σʳ back as the next frame's input must also solve.
        let d2 = solve(68, &p, &pc, Centric::Gpu(0), &d.sigma_rem).unwrap();
        d2.validate(68).unwrap();
    }

    #[test]
    fn heavier_me_load_shifts_work_to_gpu() {
        let p = Platform::sys_hk();
        let pc32 = perfect_perfchar(&p, me_units(32, 1));
        let pc256 = perfect_perfchar(&p, me_units(256, 1));
        let d32 = solve(68, &p, &pc32, Centric::Gpu(0), &vec![0; p.len()]).unwrap();
        let d256 = solve(68, &p, &pc256, Centric::Gpu(0), &vec![0; p.len()]).unwrap();
        let pred32 = d32.predicted.unwrap().tau_tot;
        let pred256 = d256.predicted.unwrap().tau_tot;
        assert!(
            pred256 > pred32 * 20.0,
            "256² SA must be far slower: {pred32} vs {pred256}"
        );
    }
}
