//! Load-balancer implementations behind a common trait: the FEVES LP
//! (Algorithm 2), the equidistant baseline (initialization phase / the
//! multi-GPU related work \[8\]), the per-module proportional baseline
//! (the authors' earlier synchronous scheme \[9\]), and a single-device
//! passthrough for the CPU-only / GPU-only comparison points.

use crate::algorithm2::{self, Centric, LbError};
use crate::distribution::Distribution;
use crate::perfchar::PerfChar;
use crate::rstar::choose_rstar;
use feves_hetsim::platform::Platform;

/// Context handed to a balancer each frame.
pub struct BalanceInput<'a> {
    /// MB rows in the frame (`N`).
    pub n_rows: usize,
    /// The platform being scheduled.
    pub platform: &'a Platform,
    /// Measured rates so far.
    pub perf: &'a PerfChar,
    /// Last frame's distribution (None for the first inter-frame).
    pub prev: Option<&'a Distribution>,
}

/// A per-frame workload distribution policy.
pub trait LoadBalancer: Send {
    /// Balancer name for reports.
    fn name(&self) -> &'static str;

    /// Produce the distribution for the next frame.
    fn distribute(&mut self, input: &BalanceInput<'_>) -> Distribution;
}

/// The paper's Algorithm 2: LP over measured rates, R\* via Dijkstra.
/// Falls back to [`ProportionalBalancer`] while uncharacterized or if the
/// LP is infeasible (never observed in practice; belt and braces).
#[derive(Debug, Default)]
pub struct FevesBalancer {
    /// Pin the R\* mapping instead of re-running Dijkstra every frame.
    pub fixed_centric: Option<Centric>,
}

impl LoadBalancer for FevesBalancer {
    fn name(&self) -> &'static str {
        "feves-lp"
    }

    fn distribute(&mut self, input: &BalanceInput<'_>) -> Distribution {
        let expected_sme: Vec<usize> = match input.prev {
            Some(d) => d.sme.clone(),
            None => feves_video::geometry::equidistant(input.n_rows, input.platform.len()),
        };
        let centric = self.fixed_centric.unwrap_or_else(|| {
            choose_rstar(input.platform, input.perf, input.n_rows, &expected_sme)
        });
        let sigma_rem_prev: Vec<usize> = match input.prev {
            Some(d) => d.sigma_rem.clone(),
            None => vec![0; input.platform.len()],
        };
        match algorithm2::solve(
            input.n_rows,
            input.platform,
            input.perf,
            centric,
            &sigma_rem_prev,
        ) {
            Ok(d) => d,
            Err(LbError::NotCharacterized) | Err(LbError::Lp(_)) => {
                ProportionalBalancer.distribute(input)
            }
        }
    }
}

/// Equidistant partitioning of every module over all devices — what the
/// paper uses for the very first inter-frame and what homogeneous multi-GPU
/// approaches \[8\] use throughout.
#[derive(Debug, Default)]
pub struct EquidistantBalancer;

impl LoadBalancer for EquidistantBalancer {
    fn name(&self) -> &'static str {
        "equidistant"
    }

    fn distribute(&mut self, input: &BalanceInput<'_>) -> Distribution {
        let rstar = if input.platform.n_accel > 0 {
            0
        } else {
            input.platform.n_accel // first core
        };
        Distribution::equidistant(input.n_rows, input.platform.len(), rstar)
    }
}

/// Per-module proportional balancing (the synchronous per-module scheme of
/// the authors' prior work \[9\]): each module's rows are split ∝ measured
/// per-device speed for *that module alone*, with no cross-module or
/// communication term. Falls back to equidistant while uncharacterized.
#[derive(Debug, Default)]
pub struct ProportionalBalancer;

impl LoadBalancer for ProportionalBalancer {
    fn name(&self) -> &'static str {
        "proportional"
    }

    fn distribute(&mut self, input: &BalanceInput<'_>) -> Distribution {
        let p = input.platform;
        let nd = p.len();
        if !input.perf.is_complete() {
            return EquidistantBalancer.distribute(input);
        }
        let share = |k: &dyn Fn(usize) -> f64| -> Vec<usize> {
            let speeds: Vec<f64> = (0..nd).map(|d| 1.0 / k(d)).collect();
            crate::distribution::round_preserving_sum(&speeds, input.n_rows)
        };
        let me = share(&|d| input.perf.k_me(d).unwrap());
        let li = share(&|d| input.perf.k_int(d).unwrap());
        let sm = share(&|d| input.perf.k_sme(d).unwrap());
        let rstar = if p.n_accel > 0 { 0 } else { p.n_accel };
        let budget = vec![usize::MAX; nd];
        Distribution::from_rows(me, li, sm, rstar, &budget, None)
    }
}

/// Everything on one fixed device — the single-device comparison points
/// (`CPU_N`, `CPU_H`, `GPU_F`, `GPU_K` in Fig 6). For a multi-core CPU pass
/// `device = None` to spread over all cores (a CPU chip *is* its cores).
#[derive(Debug)]
pub struct SingleDeviceBalancer {
    /// Accelerator index, or None for "all CPU cores".
    pub device: Option<usize>,
}

impl LoadBalancer for SingleDeviceBalancer {
    fn name(&self) -> &'static str {
        "single-device"
    }

    fn distribute(&mut self, input: &BalanceInput<'_>) -> Distribution {
        let p = input.platform;
        match self.device {
            Some(d) => Distribution::single_device(input.n_rows, p.len(), d),
            None => {
                // Spread over the CPU cores only; accelerators get nothing.
                let mut rows = vec![0usize; p.len()];
                let per_core = feves_video::geometry::equidistant(input.n_rows, p.n_cores.max(1));
                for (c, &r) in per_core.iter().enumerate() {
                    rows[p.n_accel + c] = r;
                }
                let budget = vec![usize::MAX; p.len()];
                Distribution::from_rows(rows.clone(), rows.clone(), rows, p.n_accel, &budget, None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm2::tests::perfect_perfchar;
    use crate::perfchar::Ewma;

    fn input<'a>(p: &'a Platform, pc: &'a PerfChar) -> BalanceInput<'a> {
        BalanceInput {
            n_rows: 68,
            platform: p,
            perf: pc,
            prev: None,
        }
    }

    #[test]
    fn equidistant_splits_evenly() {
        let p = Platform::sys_hk();
        let pc = PerfChar::new(p.len(), Ewma(1.0));
        let d = EquidistantBalancer.distribute(&input(&p, &pc));
        d.validate(68).unwrap();
        let max = *d.me.iter().max().unwrap();
        let min = *d.me.iter().min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn proportional_respects_speed_ratios() {
        let p = Platform::sys_hk();
        let pc = perfect_perfchar(&p, 120.0 * 1024.0);
        let d = ProportionalBalancer.distribute(&input(&p, &pc));
        d.validate(68).unwrap();
        // GPU_K ME rate ≫ one CPU_H core's: GPU share must dominate.
        assert!(d.me[0] > d.me[1] * 3, "{:?}", d.me);
    }

    #[test]
    fn feves_falls_back_when_uncharacterized() {
        let p = Platform::sys_hk();
        let pc = PerfChar::new(p.len(), Ewma(1.0));
        let mut b = FevesBalancer::default();
        let d = b.distribute(&input(&p, &pc));
        d.validate(68).unwrap(); // equidistant fallback
    }

    #[test]
    fn feves_balances_when_characterized() {
        let p = Platform::sys_hk();
        let pc = perfect_perfchar(&p, 120.0 * 1024.0);
        let mut b = FevesBalancer::default();
        let d = b.distribute(&input(&p, &pc));
        d.validate(68).unwrap();
        assert!(d.predicted.is_some(), "LP path must be taken");
    }

    #[test]
    fn single_device_cpu_spreads_over_cores() {
        let p = Platform::sys_hk();
        let pc = PerfChar::new(p.len(), Ewma(1.0));
        let mut b = SingleDeviceBalancer { device: None };
        let d = b.distribute(&input(&p, &pc));
        d.validate(68).unwrap();
        assert_eq!(d.me[0], 0, "accelerator must be idle");
        assert_eq!(d.me[1..].iter().sum::<usize>(), 68);
    }

    #[test]
    fn single_device_gpu_gets_everything() {
        let p = Platform::sys_hk();
        let pc = PerfChar::new(p.len(), Ewma(1.0));
        let mut b = SingleDeviceBalancer { device: Some(0) };
        let d = b.distribute(&input(&p, &pc));
        d.validate(68).unwrap();
        assert_eq!(d.me[0], 68);
    }
}
