//! `MS_BOUNDS` / `LS_BOUNDS` (paper eqs. (16), (17)): the additional rows a
//! device must receive when two modules' distributions address the same
//! buffer but cover different stripes of it.
//!
//! With consecutive per-device stripes in enumeration order, device `i`'s
//! SME stripe is `[S_{i−1}, S_i)` while its ME stripe (the CF data it
//! already holds) is `[M_{i−1}, M_i)`; the extra CF rows to fetch are the
//! part of the SME stripe not covered by the ME stripe — an upper and a
//! lower leftover. Identically for INT vs SME on the SF buffer, and for the
//! ME-produced MVs the SME stage consumes.

use feves_video::geometry::{ranges_from_counts, RowRange};

/// Extra rows (above + below) device `i` needs from the `have` distribution
/// to cover its stripe of the `need` distribution.
pub fn extra_rows(have: &RowRange, need: &RowRange) -> usize {
    let (above, below) = need.difference(have);
    above.len() + below.len()
}

/// `MS_BOUNDS(m, s)`: per-device extra CF/MV rows for SME given the ME
/// distribution (`Δ^m` in Algorithm 2). Computed for *all* devices; the LP
/// and the data manager only charge transfers for accelerators.
pub fn ms_bounds(m: &[usize], s: &[usize]) -> Vec<usize> {
    delta(m, s)
}

/// `LS_BOUNDS(l, s)`: per-device extra SF rows for SME given the INT
/// distribution (`Δ^l` in Algorithm 2).
pub fn ls_bounds(l: &[usize], s: &[usize]) -> Vec<usize> {
    delta(l, s)
}

fn delta(have: &[usize], need: &[usize]) -> Vec<usize> {
    assert_eq!(have.len(), need.len(), "distribution lengths differ");
    let hr = ranges_from_counts(have);
    let nr = ranges_from_counts(need);
    hr.iter().zip(&nr).map(|(h, n)| extra_rows(h, n)).collect()
}

/// The regions (above, below) of `need`'s stripe for device `i` that are not
/// in `have`'s stripe — the two separate transfers Fig 5 shows.
pub fn extra_ranges(have: &[usize], need: &[usize], i: usize) -> (RowRange, RowRange) {
    let hr = ranges_from_counts(have);
    let nr = ranges_from_counts(need);
    nr[i].difference(&hr[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_need_nothing() {
        let d = vec![10, 20, 38];
        assert_eq!(ms_bounds(&d, &d), vec![0, 0, 0]);
    }

    #[test]
    fn shifted_distributions_produce_two_sided_deltas() {
        // m = [30, 38], s = [20, 48]:
        // device 0: SME [0,20) ⊂ ME [0,30) → 0 extra.
        // device 1: SME [20,68) vs ME [30,68) → needs [20,30) = 10 rows.
        let m = vec![30, 38];
        let s = vec![20, 48];
        assert_eq!(ms_bounds(&m, &s), vec![0, 10]);
        let (above, below) = extra_ranges(&m, &s, 1);
        assert_eq!(above, RowRange::new(20, 30));
        assert!(below.is_empty());
    }

    #[test]
    fn disjoint_stripes_need_everything() {
        // Device 0 does all ME, device 1 does all SME.
        let m = vec![68, 0];
        let s = vec![0, 68];
        assert_eq!(ms_bounds(&m, &s), vec![0, 68]);
    }

    #[test]
    fn overlap_on_both_sides() {
        // m = [10, 48, 10], s = [20, 28, 20]:
        // device 1: SME [20,48) vs ME [10,58): contained → 0.
        // device 0: SME [0,20) vs ME [0,10) → 10 below.
        // device 2: SME [48,68) vs ME [58,68) → 10 above.
        let m = vec![10, 48, 10];
        let s = vec![20, 28, 20];
        assert_eq!(ms_bounds(&m, &s), vec![10, 0, 10]);
        let (above0, below0) = extra_ranges(&m, &s, 0);
        assert!(above0.is_empty());
        assert_eq!(below0, RowRange::new(10, 20));
    }

    #[test]
    fn fig5_style_interior_device() {
        // Fig 5(a): an interior accelerator whose SME stripe sticks out both
        // above and below its ME stripe → two separate CF transfers.
        let m = vec![20, 20, 28];
        let s = vec![10, 40, 18];
        // device 1: SME [10,50) vs ME [20,40) → above [10,20), below [40,50).
        assert_eq!(ms_bounds(&m, &s)[1], 20);
        let (above, below) = extra_ranges(&m, &s, 1);
        assert_eq!(above, RowRange::new(10, 20));
        assert_eq!(below, RowRange::new(40, 50));
    }
}
