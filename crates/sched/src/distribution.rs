//! Workload distributions: the output of the Load Balancing block.

use crate::bounds::{ls_bounds, ms_bounds};
use feves_ft::FevesError;
use serde::{Deserialize, Serialize};

/// Predicted synchronization times from the LP (paper Fig 4).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PredictedTimes {
    /// ME+INT complete (incl. their transfers).
    pub tau1: f64,
    /// SME complete.
    pub tau2: f64,
    /// Inter-frame complete (R\* done, RF returned).
    pub tau_tot: f64,
}

/// Per-device compute-time predictions implied by the LP solution: the rows
/// assigned to the device multiplied by its characterized rates, split by
/// sync-point window. Seconds. This is the prediction side the audit layer
/// compares against measured busy time — residuals here point at a *device*
/// whose characterization has drifted, where the global
/// [`PredictedTimes`] can only say *something* drifted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DevicePrediction {
    /// Work before τ1: `m_i·K^m + l_i·K^l`.
    pub phase1: f64,
    /// Work between τ1 and τ2: `s_i·K^s`.
    pub phase2: f64,
    /// `T^{R*}` when this device runs the R\* group, 0 otherwise.
    pub rstar: f64,
}

impl DevicePrediction {
    /// Total predicted compute-busy seconds over the frame.
    pub fn busy(&self) -> f64 {
        self.phase1 + self.phase2 + self.rstar
    }
}

/// A complete per-frame workload distribution: the paper's `m`, `l`, `s`
/// vectors (MB rows per device, in device enumeration order), the derived
/// extra-transfer amounts `Δ^m`, `Δ^l`, the deferred-SF split `σ` / `σʳ`,
/// and the device mapped to the `R*` group.
///
/// ```
/// use feves_sched::Distribution;
/// // 68 MB rows (1080p) split evenly over 5 devices, R* on device 0.
/// let d = Distribution::equidistant(68, 5, 0);
/// assert_eq!(d.me.iter().sum::<usize>(), 68);
/// d.validate(68).unwrap();
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Distribution {
    /// ME rows per device (`m`).
    pub me: Vec<usize>,
    /// INT rows per device (`l`).
    pub interp: Vec<usize>,
    /// SME rows per device (`s`).
    pub sme: Vec<usize>,
    /// Extra CF/MV rows each device fetches for SME (`Δ^m`, eq. 16).
    pub delta_m: Vec<usize>,
    /// Extra SF rows each device fetches for SME (`Δ^l`, eq. 17).
    pub delta_l: Vec<usize>,
    /// SF rows transferable to each accelerator within this frame (`σ`).
    pub sigma: Vec<usize>,
    /// SF rows deferred to the next frame's τ1 (`σʳ`).
    pub sigma_rem: Vec<usize>,
    /// Device index running MC+TQ+TQ⁻¹+DBL.
    pub rstar_device: usize,
    /// LP-predicted times (None for heuristic balancers).
    pub predicted: Option<PredictedTimes>,
    /// LP-implied per-device compute predictions, in device enumeration
    /// order (None for heuristic balancers) — the audit layer's prediction
    /// side.
    pub predicted_device: Option<Vec<DevicePrediction>>,
    /// Simplex iterations the LP solve spent producing this distribution
    /// (None for heuristic balancers) — feeds the `lp.iterations` metric.
    pub lp_iterations: Option<usize>,
}

impl Distribution {
    /// Build from the three row vectors; derives `Δ` from the bounds
    /// routines and splits the remaining SF into `σ`/`σʳ` given a per-device
    /// cap of `sigma_budget_rows` (how many SF rows fit into τtot − τ2; use
    /// `usize::MAX` to transfer everything eagerly).
    pub fn from_rows(
        me: Vec<usize>,
        interp: Vec<usize>,
        sme: Vec<usize>,
        rstar_device: usize,
        sigma_budget_rows: &[usize],
        predicted: Option<PredictedTimes>,
    ) -> Self {
        let n = me.len();
        assert_eq!(interp.len(), n);
        assert_eq!(sme.len(), n);
        assert_eq!(sigma_budget_rows.len(), n);
        let total: usize = me.iter().sum();
        let delta_m = ms_bounds(&me, &sme);
        let delta_l = ls_bounds(&interp, &sme);
        let mut sigma = vec![0usize; n];
        let mut sigma_rem = vec![0usize; n];
        for i in 0..n {
            // SF rows this device still misses after INT (own stripe) and
            // the Δl top-up for SME.
            let missing = total.saturating_sub(interp[i] + delta_l[i]);
            sigma[i] = missing.min(sigma_budget_rows[i]);
            sigma_rem[i] = missing - sigma[i];
        }
        Distribution {
            me,
            interp,
            sme,
            delta_m,
            delta_l,
            sigma,
            sigma_rem,
            rstar_device,
            predicted,
            predicted_device: None,
            lp_iterations: None,
        }
    }

    /// The paper's initialization-phase distribution: every module split
    /// equidistantly over all devices, `R*` on `rstar_device`, all missing
    /// SF transferred eagerly.
    pub fn equidistant(n_rows: usize, n_devices: usize, rstar_device: usize) -> Self {
        let e = feves_video::geometry::equidistant(n_rows, n_devices);
        let budget = vec![usize::MAX; n_devices];
        Distribution::from_rows(e.clone(), e.clone(), e, rstar_device, &budget, None)
    }

    /// Everything on one device (single-device baselines).
    pub fn single_device(n_rows: usize, n_devices: usize, device: usize) -> Self {
        let mut rows = vec![0usize; n_devices];
        rows[device] = n_rows;
        let budget = vec![usize::MAX; n_devices];
        Distribution::from_rows(rows.clone(), rows.clone(), rows, device, &budget, None)
    }

    /// Number of devices.
    pub fn n_devices(&self) -> usize {
        self.me.len()
    }

    /// Check structural invariants: all vectors sum to `n_rows`, `σ + σʳ`
    /// accounts exactly for the SF rows each device misses, and the R\*
    /// device index is in range.
    pub fn validate(&self, n_rows: usize) -> Result<(), FevesError> {
        let bad = |m: String| Err(FevesError::Accounting(m));
        let n = self.n_devices();
        for (name, v) in [("m", &self.me), ("l", &self.interp), ("s", &self.sme)] {
            let sum: usize = v.iter().sum();
            if sum != n_rows {
                return bad(format!("{name} sums to {sum}, expected {n_rows}"));
            }
            if v.len() != n {
                return bad(format!("{name} has wrong length"));
            }
        }
        if self.rstar_device >= n {
            return bad(format!("rstar device {} out of range", self.rstar_device));
        }
        if ms_bounds(&self.me, &self.sme) != self.delta_m {
            return bad("delta_m inconsistent with m/s".into());
        }
        if ls_bounds(&self.interp, &self.sme) != self.delta_l {
            return bad("delta_l inconsistent with l/s".into());
        }
        for i in 0..n {
            let missing = n_rows.saturating_sub(self.interp[i] + self.delta_l[i]);
            if self.sigma[i] + self.sigma_rem[i] != missing {
                return bad(format!(
                    "device {i}: sigma {} + sigma_rem {} != missing SF rows {missing}",
                    self.sigma[i], self.sigma_rem[i]
                ));
            }
        }
        if let Some(p) = &self.predicted {
            if !(p.tau1 <= p.tau2 + 1e-9 && p.tau2 <= p.tau_tot + 1e-9) {
                return bad(format!(
                    "predicted times not ordered: {} {} {}",
                    p.tau1, p.tau2, p.tau_tot
                ));
            }
        }
        Ok(())
    }

    /// Project the distribution onto the devices where `keep[i]` is true,
    /// recomputing the derived `Δ`/`σ` quantities for the reduced device
    /// enumeration. Returns None when the R\* device is dropped (there is no
    /// meaningful projection — callers treat it like a missing previous
    /// frame).
    ///
    /// Used by fault recovery to hand the balancer last frame's state in
    /// reduced-platform coordinates.
    pub fn restrict(&self, keep: &[bool]) -> Option<Distribution> {
        assert_eq!(keep.len(), self.n_devices(), "mask length mismatch");
        if !keep[self.rstar_device] {
            return None;
        }
        let pick = |v: &[usize]| -> Vec<usize> {
            v.iter()
                .zip(keep)
                .filter(|(_, &k)| k)
                .map(|(&x, _)| x)
                .collect()
        };
        let rstar = keep[..self.rstar_device].iter().filter(|&&k| k).count();
        // The old σ caps still approximate what fits into τtot − τ2.
        let budget = pick(&self.sigma);
        let mut d = Distribution::from_rows(
            pick(&self.me),
            pick(&self.interp),
            pick(&self.sme),
            rstar,
            &budget,
            self.predicted,
        );
        d.predicted_device = self.predicted_device.as_ref().map(|pd| {
            pd.iter()
                .zip(keep)
                .filter(|(_, &k)| k)
                .map(|(&p, _)| p)
                .collect()
        });
        d.lp_iterations = self.lp_iterations;
        Some(d)
    }

    /// Scatter a reduced-platform distribution back to `n_devices` full
    /// platform slots: `map[j]` is the full index of reduced device `j`
    /// (as produced by `Platform::subset`). Unmapped devices get zero rows
    /// and a zero σ budget, and all derived quantities are recomputed for
    /// the full enumeration.
    pub fn expand(&self, map: &[usize], n_devices: usize) -> Distribution {
        assert_eq!(map.len(), self.n_devices(), "map length mismatch");
        let scatter = |v: &[usize]| -> Vec<usize> {
            let mut out = vec![0usize; n_devices];
            for (j, &full) in map.iter().enumerate() {
                out[full] = v[j];
            }
            out
        };
        let mut budget = vec![0usize; n_devices];
        for (j, &full) in map.iter().enumerate() {
            // Preserve the reduced solve's eager/deferred SF split intent.
            budget[full] = if self.sigma_rem[j] == 0 {
                usize::MAX
            } else {
                self.sigma[j]
            };
        }
        let mut d = Distribution::from_rows(
            scatter(&self.me),
            scatter(&self.interp),
            scatter(&self.sme),
            map[self.rstar_device],
            &budget,
            self.predicted,
        );
        d.predicted_device = self.predicted_device.as_ref().map(|pd| {
            // Unmapped devices run nothing: a zero prediction.
            let mut out = vec![DevicePrediction::default(); n_devices];
            for (j, &full) in map.iter().enumerate() {
                out[full] = pd[j];
            }
            out
        });
        d.lp_iterations = self.lp_iterations;
        d
    }
}

/// Round a fractional distribution to integers preserving the exact sum
/// (largest-remainder method; deterministic tie-break by device index).
pub fn round_preserving_sum(fractions: &[f64], total: usize) -> Vec<usize> {
    let n = fractions.len();
    assert!(n > 0);
    let clamped: Vec<f64> = fractions.iter().map(|&f| f.max(0.0)).collect();
    let fsum: f64 = clamped.iter().sum();
    let scaled: Vec<f64> = if fsum <= 1e-12 {
        // Degenerate input: fall back to equal shares.
        vec![total as f64 / n as f64; n]
    } else {
        clamped.iter().map(|&f| f * total as f64 / fsum).collect()
    };
    let mut floor: Vec<usize> = scaled.iter().map(|&f| f.floor() as usize).collect();
    let mut assigned: usize = floor.iter().sum();
    // Distribute the remainder to the largest fractional parts.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let fa = scaled[a] - scaled[a].floor();
        let fb = scaled[b] - scaled[b].floor();
        fb.partial_cmp(&fa).unwrap().then(a.cmp(&b))
    });
    let mut k = 0;
    while assigned < total {
        floor[order[k % n]] += 1;
        assigned += 1;
        k += 1;
    }
    // Over-assignment can only happen through floating error; trim from the
    // smallest fractional parts.
    let mut k = n;
    while assigned > total {
        k -= 1;
        let idx = order[k % n];
        if floor[idx] > 0 {
            floor[idx] -= 1;
            assigned -= 1;
        }
    }
    floor
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equidistant_is_valid() {
        let d = Distribution::equidistant(68, 5, 0);
        d.validate(68).unwrap();
        assert_eq!(d.me.iter().sum::<usize>(), 68);
        assert!(d.delta_m.iter().all(|&v| v == 0), "same split → no deltas");
    }

    #[test]
    fn single_device_is_valid() {
        let d = Distribution::single_device(68, 3, 1);
        d.validate(68).unwrap();
        assert_eq!(d.me[1], 68);
        assert_eq!(d.me[0], 0);
    }

    #[test]
    fn sigma_split_respects_budget() {
        // Device 0 interpolates 30 of 68 rows → misses 38 (Δl aside).
        let me = vec![30, 38];
        let l = vec![30, 38];
        let s = vec![30, 38];
        let d = Distribution::from_rows(me, l, s, 0, &[10, 10], None);
        d.validate(68).unwrap();
        assert_eq!(d.sigma[0], 10);
        assert_eq!(d.sigma_rem[0], 28);
    }

    #[test]
    fn validate_rejects_bad_sums() {
        let mut d = Distribution::equidistant(68, 4, 0);
        d.me[0] += 1;
        assert!(d.validate(68).is_err());
    }

    #[test]
    fn validate_rejects_stale_deltas() {
        let mut d = Distribution::equidistant(68, 4, 0);
        d.sme.swap(0, 3);
        // sme changed but delta_m was computed for the old sme.
        if d.me != d.sme {
            assert!(d.validate(68).is_err());
        }
    }

    #[test]
    fn restrict_projects_surviving_devices() {
        let d = Distribution::equidistant(68, 5, 0);
        let keep = [true, false, true, true, true];
        let r = d.restrict(&keep).unwrap();
        assert_eq!(r.n_devices(), 4);
        // The dropped device's rows vanish from the projection; what
        // remains is internally consistent at the reduced total.
        let kept_rows: usize =
            d.me.iter()
                .zip(keep)
                .filter(|(_, k)| *k)
                .map(|(&m, _)| m)
                .sum();
        assert_eq!(r.me.iter().sum::<usize>(), kept_rows);
        r.validate(kept_rows).unwrap();
        assert_eq!(r.rstar_device, 0);

        // A reduced-platform *solve* at the full row count expands back to
        // a valid full-platform distribution.
        let full = Distribution::equidistant(68, 4, 0).expand(&[0, 2, 3, 4], 5);
        full.validate(68).unwrap();
        assert_eq!(full.me[1], 0, "dropped device gets zero rows");
        assert_eq!(full.me.iter().sum::<usize>(), 68);
    }

    #[test]
    fn restrict_and_expand_project_device_predictions() {
        let mut d = Distribution::equidistant(68, 3, 0);
        d.predicted_device = Some(vec![
            DevicePrediction {
                phase1: 0.1,
                phase2: 0.2,
                rstar: 0.3,
            },
            DevicePrediction {
                phase1: 1.0,
                phase2: 2.0,
                rstar: 0.0,
            },
            DevicePrediction {
                phase1: 9.0,
                phase2: 9.0,
                rstar: 0.0,
            },
        ]);
        let r = d.restrict(&[true, false, true]).unwrap();
        let pd = r.predicted_device.as_ref().unwrap();
        assert_eq!(pd.len(), 2);
        assert_eq!(pd[0].rstar, 0.3);
        assert_eq!(pd[1].phase1, 9.0);
        assert!((pd[0].busy() - 0.6).abs() < 1e-12);

        let full = r.expand(&[0, 2], 3);
        let pd = full.predicted_device.as_ref().unwrap();
        assert_eq!(pd.len(), 3);
        assert_eq!(pd[1], DevicePrediction::default(), "dropped device zeroed");
        assert_eq!(pd[2].phase1, 9.0);
    }

    #[test]
    fn restrict_drops_when_rstar_masked() {
        let d = Distribution::equidistant(68, 4, 2);
        assert!(d.restrict(&[true, true, false, true]).is_none());
        assert!(d.restrict(&[false, true, true, true]).is_some());
    }

    #[test]
    fn expand_remaps_rstar_and_recomputes_sigma() {
        // Reduced platform of 3 devices mapped into a 5-device platform.
        let r = Distribution::equidistant(68, 3, 1);
        let map = vec![0, 2, 4];
        let full = r.expand(&map, 5);
        full.validate(68).unwrap();
        assert_eq!(full.rstar_device, 2);
        assert_eq!(full.me[1] + full.me[3], 0);
        // Masked devices defer all their missing SF rows.
        assert_eq!(full.sigma[1], 0);
        assert_eq!(full.sigma_rem[1], 68);
    }

    #[test]
    fn rounding_preserves_sum_exactly() {
        let f = vec![0.3, 0.3, 0.4];
        let r = round_preserving_sum(&f, 68);
        assert_eq!(r.iter().sum::<usize>(), 68);
        // 68·[0.3, 0.3, 0.4] = [20.4, 20.4, 27.2]: the leftover row goes to
        // the first of the tied largest remainders.
        assert_eq!(r, vec![21, 20, 27]);
    }

    #[test]
    fn rounding_handles_zero_and_negative() {
        let r = round_preserving_sum(&[0.0, -1.0, 0.0], 10);
        assert_eq!(r.iter().sum::<usize>(), 10);
        let r2 = round_preserving_sum(&[0.0, 5.0], 7);
        assert_eq!(r2, vec![0, 7]);
    }

    #[test]
    fn rounding_deterministic_ties() {
        let a = round_preserving_sum(&[1.0, 1.0, 1.0], 10);
        let b = round_preserving_sum(&[1.0, 1.0, 1.0], 10);
        assert_eq!(a, b);
        assert_eq!(a.iter().sum::<usize>(), 10);
    }
}
