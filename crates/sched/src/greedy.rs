//! Greedy earliest-finish-time (HEFT-class) list scheduling, adapted to the
//! row-distribution problem — a classic heterogeneous-scheduling baseline
//! between the naive per-module proportional split \[9\] and the paper's
//! global LP.
//!
//! Rows are handed out in chunks, each to the device that would finish it
//! earliest given its measured compute rate plus a first-order transfer
//! charge. Unlike Algorithm 2 it has no notion of copy-engine occupancy,
//! cross-module coupling through the τ points, or the Δ/σ data-reuse terms,
//! so it consistently trails the LP on communication-bound configurations —
//! which is precisely what the `ablations` experiment shows.

use crate::balancers::{BalanceInput, EquidistantBalancer, LoadBalancer};
use crate::distribution::Distribution;
use crate::perfchar::PerfChar;
use feves_hetsim::timeline::{Dir, TransferTag};

/// Greedy earliest-finish-time balancer.
#[derive(Debug)]
pub struct GreedyBalancer {
    /// Rows assigned per decision (1 = finest, slower; 4 = good default).
    pub chunk: usize,
}

impl Default for GreedyBalancer {
    fn default() -> Self {
        GreedyBalancer { chunk: 2 }
    }
}

fn xfer_or_zero(perf: &PerfChar, d: usize, tag: TransferTag, dir: Dir) -> f64 {
    perf.k_transfer(d, tag, dir).unwrap_or(0.0)
}

impl GreedyBalancer {
    /// Assign `n_rows` in chunks by earliest finish on `busy`, where device
    /// `d` spends `cost_per_row[d]` seconds per row.
    fn assign(&self, n_rows: usize, busy: &mut [f64], cost_per_row: &[f64], out: &mut [usize]) {
        let mut remaining = n_rows;
        while remaining > 0 {
            let take = self.chunk.min(remaining);
            let (best, _) = busy
                .iter()
                .enumerate()
                .map(|(d, &b)| (d, b + take as f64 * cost_per_row[d]))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .expect("at least one device");
            busy[best] += take as f64 * cost_per_row[best];
            out[best] += take;
            remaining -= take;
        }
    }
}

impl LoadBalancer for GreedyBalancer {
    fn name(&self) -> &'static str {
        "greedy-eft"
    }

    fn distribute(&mut self, input: &BalanceInput<'_>) -> Distribution {
        let p = input.platform;
        let nd = p.len();
        if !input.perf.is_complete() {
            return EquidistantBalancer.distribute(input);
        }
        let perf = input.perf;

        // Phase 1 (to τ1): ME and INT compete for the same device time.
        let me_cost: Vec<f64> = (0..nd)
            .map(|d| {
                perf.k_me(d).unwrap()
                    + xfer_or_zero(perf, d, TransferTag::Cf, Dir::H2d)
                    + xfer_or_zero(perf, d, TransferTag::Mv, Dir::D2h)
            })
            .collect();
        let int_cost: Vec<f64> = (0..nd)
            .map(|d| perf.k_int(d).unwrap() + xfer_or_zero(perf, d, TransferTag::Sf, Dir::D2h))
            .collect();
        let mut busy = vec![0.0f64; nd];
        let mut me = vec![0usize; nd];
        let mut li = vec![0usize; nd];
        self.assign(input.n_rows, &mut busy, &me_cost, &mut me);
        self.assign(input.n_rows, &mut busy, &int_cost, &mut li);

        // Phase 2 (τ1 → τ2): SME starts after the barrier.
        let tau1 = busy.iter().copied().fold(0.0f64, f64::max);
        let sme_cost: Vec<f64> = (0..nd)
            .map(|d| perf.k_sme(d).unwrap() + xfer_or_zero(perf, d, TransferTag::Mv, Dir::D2h))
            .collect();
        let mut busy2 = vec![tau1; nd];
        let mut sm = vec![0usize; nd];
        self.assign(input.n_rows, &mut busy2, &sme_cost, &mut sm);

        let rstar = crate::rstar::naive_fastest_rstar(p, perf);
        let rstar_device = match rstar {
            crate::algorithm2::Centric::Gpu(g) => g,
            crate::algorithm2::Centric::Cpu => p.n_accel,
        };
        let budget = vec![usize::MAX; nd];
        Distribution::from_rows(me, li, sm, rstar_device, &budget, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm2::tests::perfect_perfchar;
    use feves_hetsim::platform::Platform;

    fn input<'a>(p: &'a Platform, pc: &'a PerfChar) -> BalanceInput<'a> {
        BalanceInput {
            n_rows: 68,
            platform: p,
            perf: pc,
            prev: None,
        }
    }

    #[test]
    fn produces_valid_distribution() {
        let p = Platform::sys_nff();
        let pc = perfect_perfchar(&p, 120.0 * 1024.0);
        let d = GreedyBalancer::default().distribute(&input(&p, &pc));
        d.validate(68).unwrap();
    }

    #[test]
    fn fast_devices_get_more_rows() {
        let p = Platform::sys_hk();
        let pc = perfect_perfchar(&p, 120.0 * 1024.0);
        let d = GreedyBalancer::default().distribute(&input(&p, &pc));
        // GPU_K vastly outruns a single CPU_H core.
        assert!(d.me[0] > d.me[1] * 2, "{:?}", d.me);
        assert!(d.sme[0] > d.sme[1], "{:?}", d.sme);
    }

    #[test]
    fn chunk_size_one_is_finest_and_valid() {
        let p = Platform::sys_nf();
        let pc = perfect_perfchar(&p, 120.0 * 1024.0);
        let d = GreedyBalancer { chunk: 1 }.distribute(&input(&p, &pc));
        d.validate(68).unwrap();
    }

    #[test]
    fn uncharacterized_falls_back_to_equidistant() {
        let p = Platform::sys_hk();
        let pc = PerfChar::new(p.len(), crate::perfchar::Ewma(1.0));
        let d = GreedyBalancer::default().distribute(&input(&p, &pc));
        d.validate(68).unwrap();
        let max = *d.me.iter().max().unwrap();
        let min = *d.me.iter().min().unwrap();
        assert!(max - min <= 1);
    }
}
