//! Per-device completion tracking for the inter-frame pipeline.
//!
//! The lockstep control loop only ever needed the *global* barrier time
//! τtot — every device waits at the frame boundary for the slowest one.
//! The submit/reap pipeline instead needs to know, per device, *when* it
//! went idle: a device that finished its frame-N stripes early has an idle
//! tail (its τ-sync stall) that frame N+1's ME/INT phase can fill. This
//! module owns that bookkeeping so the framework and the pipeline state
//! machine agree on one definition of "finished".
//!
//! All times are virtual-clock seconds on the frame-local timeline (0 =
//! frame start, τtot = slowest device done).

/// Per-device completion times of one simulated frame, replacing the
/// single global-barrier view.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CompletionTracker {
    /// Finish time of each device's *last* task this frame (compute,
    /// R\* parts and copy-engine transfers all count — a device is not
    /// idle while its DMA engine still feeds a peer). Devices with no
    /// tasks stay at 0.0: idle from frame start.
    finish: Vec<f64>,
    /// Finish time of each device's last τ1-phase task (ME/INT kernels and
    /// the transfers that feed them). This is the span frame N+1 would
    /// need to pull forward into frame N's idle tail.
    phase1: Vec<f64>,
    /// The frame's global barrier (τtot) — the lockstep reap point.
    tau_tot: f64,
}

impl CompletionTracker {
    /// Empty tracker for `n_devices` devices.
    pub fn new(n_devices: usize) -> Self {
        CompletionTracker {
            finish: vec![0.0; n_devices],
            phase1: vec![0.0; n_devices],
            tau_tot: 0.0,
        }
    }

    /// Record that `device`'s task finished at `at` seconds; `in_phase1`
    /// marks tasks that complete at or before the τ1 barrier. Monotone:
    /// later observations only ever push the completion time out.
    pub fn record(&mut self, device: usize, at: f64, in_phase1: bool) {
        assert!(device < self.finish.len(), "device index in range");
        assert!(at.is_finite() && at >= 0.0, "completion times are causal");
        if at > self.finish[device] {
            self.finish[device] = at;
        }
        if in_phase1 && at > self.phase1[device] {
            self.phase1[device] = at;
        }
        if at > self.tau_tot {
            self.tau_tot = at;
        }
    }

    /// Pin the global barrier explicitly (the τtot barrier task can sit
    /// marginally past the last measured task). Never shrinks.
    pub fn set_barrier(&mut self, tau_tot: f64) {
        assert!(tau_tot.is_finite() && tau_tot >= 0.0);
        if tau_tot > self.tau_tot {
            self.tau_tot = tau_tot;
        }
    }

    /// Devices tracked.
    pub fn n_devices(&self) -> usize {
        self.finish.len()
    }

    /// The frame's global barrier time.
    pub fn tau_tot(&self) -> f64 {
        self.tau_tot
    }

    /// Finish time of `device`'s last task.
    pub fn finish_of(&self, device: usize) -> f64 {
        self.finish[device]
    }

    /// Finish time of `device`'s last τ1-phase task.
    pub fn phase1_of(&self, device: usize) -> f64 {
        self.phase1[device]
    }

    /// Per-device τ-sync stall: how long each device idles between its own
    /// last task and the global barrier. This is exactly the time the
    /// pipeline can hand to the next frame's ME/INT phase.
    pub fn stalls(&self) -> Vec<f64> {
        self.finish
            .iter()
            .map(|&f| (self.tau_tot - f).max(0.0))
            .collect()
    }

    /// Devices in completion order (earliest finisher first, index breaks
    /// ties) — the order the pipeline offers them frame-N+1 work in.
    pub fn completion_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.finish.len()).collect();
        order.sort_by(|&a, &b| {
            self.finish[a]
                .partial_cmp(&self.finish[b])
                .expect("finite completion times")
                .then(a.cmp(&b))
        });
        order
    }

    /// The per-device phase-1 spans, as a slice.
    pub fn phase1(&self) -> &[f64] {
        &self.phase1
    }

    /// The per-device finish times, as a slice.
    pub fn finishes(&self) -> &[f64] {
        &self.finish
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stalls_measure_the_idle_tail() {
        let mut t = CompletionTracker::new(3);
        t.record(0, 4.0, true);
        t.record(1, 10.0, false);
        t.record(2, 7.0, true);
        assert_eq!(t.tau_tot(), 10.0);
        assert_eq!(t.stalls(), vec![6.0, 0.0, 3.0]);
        // A device with no tasks stalls the whole frame.
        let t2 = {
            let mut t2 = CompletionTracker::new(2);
            t2.record(0, 5.0, false);
            t2
        };
        assert_eq!(t2.stalls(), vec![0.0, 5.0]);
    }

    #[test]
    fn completion_is_monotone_and_phase1_is_separate() {
        let mut t = CompletionTracker::new(2);
        t.record(0, 3.0, true);
        t.record(0, 2.0, false); // earlier observation cannot rewind
        assert_eq!(t.finish_of(0), 3.0);
        assert_eq!(t.phase1_of(0), 3.0);
        t.record(0, 5.0, false); // later non-phase1 work extends finish only
        assert_eq!(t.finish_of(0), 5.0);
        assert_eq!(t.phase1_of(0), 3.0);
    }

    #[test]
    fn barrier_never_shrinks_and_orders_devices() {
        let mut t = CompletionTracker::new(3);
        t.record(2, 1.0, false);
        t.record(0, 6.0, false);
        t.record(1, 6.0, false);
        t.set_barrier(4.0); // below the measured max: ignored
        assert_eq!(t.tau_tot(), 6.0);
        t.set_barrier(8.0);
        assert_eq!(t.tau_tot(), 8.0);
        // Ties resolve by device index.
        assert_eq!(t.completion_order(), vec![2, 0, 1]);
    }
}
