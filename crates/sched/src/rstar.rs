//! R\* device mapping via shortest path (paper §III-B: "the entire workload
//! of the R\* modules is assigned to a single (fastest) device, by applying
//! the Dijkstra algorithm \[9\]").
//!
//! The choice is modelled as a shortest path through a small layered graph:
//! `source → gather(d) → compute(d) → publish(d) → sink` for every candidate
//! device `d`, where the gather edge carries the cost of moving the inputs
//! (missing SF/CF stripes and the SME motion vectors) to `d`, the compute
//! edge the measured `T^{R*}`, and the publish edge the cost of returning
//! the reconstructed RF to the host. Running Dijkstra over this graph picks
//! the device with the cheapest end-to-end R\* round trip — a device with a
//! blazing kernel but a saturated link can lose to a slower device with
//! cheap data access, which is exactly why the mapping is not simply
//! "fastest kernel".

use crate::algorithm2::Centric;
use crate::perfchar::PerfChar;

use feves_hetsim::platform::Platform;
use feves_hetsim::timeline::{Dir, TransferTag};

/// A tiny adjacency-list graph with non-negative edge weights.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    adj: Vec<Vec<(usize, f64)>>,
}

impl Graph {
    /// Create a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Add a directed edge `u → v` with weight `w ≥ 0`.
    pub fn edge(&mut self, u: usize, v: usize, w: f64) {
        assert!(w >= 0.0, "Dijkstra needs non-negative weights");
        self.adj[u].push((v, w));
    }

    /// Dijkstra from `src`: returns per-node distance and predecessor.
    pub fn dijkstra(&self, src: usize) -> (Vec<f64>, Vec<usize>) {
        let n = self.adj.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        let mut visited = vec![false; n];
        dist[src] = 0.0;
        // O(n²) scan — the graph has a handful of nodes.
        for _ in 0..n {
            let u = (0..n)
                .filter(|&u| !visited[u] && dist[u].is_finite())
                .min_by(|&a, &b| dist[a].partial_cmp(&dist[b]).unwrap());
            let Some(u) = u else { break };
            visited[u] = true;
            for &(v, w) in &self.adj[u] {
                if dist[u] + w < dist[v] {
                    dist[v] = dist[u] + w;
                    prev[v] = u;
                }
            }
        }
        (dist, prev)
    }
}

/// Choose the R\* mapping for the next frame.
///
/// `expected_sme_rows[d]` is the anticipated SME share of each device (last
/// frame's `s` vector, or an equidistant guess) — it sets how much of the
/// SF/CF/MV data is already resident on each candidate.
pub fn choose_rstar(
    platform: &Platform,
    perf: &PerfChar,
    n_rows: usize,
    expected_sme_rows: &[usize],
) -> Centric {
    let nd = platform.len();
    assert_eq!(expected_sme_rows.len(), nd);
    // Nodes: 0 = source, 1 = sink, then per candidate: gather, compute,
    // publish chained. Candidates: every accelerator, plus one "CPU"
    // pseudo-candidate representing all cores.
    let mut candidates: Vec<Option<usize>> = platform.accelerators().map(|d| Some(d.0)).collect();
    if platform.n_cores > 0 {
        candidates.push(None); // the CPU option
    }
    let n_nodes = 2 + candidates.len() * 3;
    let mut g = Graph::new(n_nodes);
    let node = |c: usize, stage: usize| 2 + c * 3 + stage;

    for (c, cand) in candidates.iter().enumerate() {
        let (gather, compute, publish) = match cand {
            Some(d) => {
                let d = *d;
                let resident = expected_sme_rows[d].min(n_rows);
                let missing = (n_rows - resident) as f64;
                let k_sf_hd = perf
                    .k_transfer(d, TransferTag::Sf, Dir::H2d)
                    .unwrap_or(1e-6);
                let k_cf_hd = perf
                    .k_transfer(d, TransferTag::Cf, Dir::H2d)
                    .unwrap_or(1e-6);
                let k_mv_hd = perf
                    .k_transfer(d, TransferTag::Mv, Dir::H2d)
                    .unwrap_or(1e-6);
                let k_rf_dh = perf
                    .k_transfer(d, TransferTag::Rf, Dir::D2h)
                    .unwrap_or(1e-6);
                let gather = missing * (k_sf_hd + k_cf_hd) + n_rows as f64 * k_mv_hd;
                let compute = perf.estimate_rstar(d).unwrap_or(f64::INFINITY);
                let publish = n_rows as f64 * k_rf_dh;
                (gather, compute, publish)
            }
            None => {
                // CPU: data already in host memory; MVs computed on
                // accelerators arrive via the τ2 D2H transfers regardless.
                let core0 = platform.n_accel;
                let compute = perf.estimate_rstar(core0).unwrap_or(f64::INFINITY);
                (0.0, compute, 0.0)
            }
        };
        if !compute.is_finite() {
            continue; // uncharacterized candidate
        }
        g.edge(0, node(c, 0), 0.0);
        g.edge(node(c, 0), node(c, 1), gather);
        g.edge(node(c, 1), node(c, 2), compute);
        g.edge(node(c, 2), 1, publish);
    }

    let (dist, prev) = g.dijkstra(0);
    if !dist[1].is_finite() {
        // Nothing characterized yet: default to the paper's GPU-centric
        // choice (first accelerator) or CPU if there is none.
        return if platform.n_accel > 0 {
            Centric::Gpu(0)
        } else {
            Centric::Cpu
        };
    }
    // Walk back from the sink to find which candidate chain won.
    let mut at = prev[1];
    while at >= 2 && (at - 2) % 3 != 0 {
        at = prev[at];
    }
    let c = (at - 2) / 3;
    match candidates[c] {
        Some(d) => Centric::Gpu(d),
        None => Centric::Cpu,
    }
}

/// Pick the device with the lowest raw `T^{R*}` (no communication model) —
/// the naive mapping the ablation bench compares against.
pub fn naive_fastest_rstar(platform: &Platform, perf: &PerfChar) -> Centric {
    let mut best: Option<(f64, Centric)> = None;
    for d in platform.accelerators() {
        if let Some(t) = perf.estimate_rstar(d.0) {
            if best.is_none() || t < best.unwrap().0 {
                best = Some((t, Centric::Gpu(d.0)));
            }
        }
    }
    if platform.n_cores > 0 {
        if let Some(t) = perf.estimate_rstar(platform.n_accel) {
            if best.is_none() || t < best.unwrap().0 {
                best = Some((t, Centric::Cpu));
            }
        }
    }
    best.map(|(_, c)| c).unwrap_or(if platform.n_accel > 0 {
        Centric::Gpu(0)
    } else {
        Centric::Cpu
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfchar::Ewma;

    #[test]
    fn dijkstra_shortest_path_basic() {
        let mut g = Graph::new(4);
        g.edge(0, 1, 1.0);
        g.edge(1, 3, 1.0);
        g.edge(0, 2, 0.5);
        g.edge(2, 3, 3.0);
        let (dist, prev) = g.dijkstra(0);
        assert_eq!(dist[3], 2.0);
        assert_eq!(prev[3], 1);
    }

    #[test]
    fn dijkstra_unreachable_is_infinite() {
        let g = Graph::new(3);
        let (dist, _) = g.dijkstra(0);
        assert!(dist[2].is_infinite());
    }

    fn char_with(
        platform: &Platform,
        rstar: &[(usize, f64)],
        xfers: &[(usize, TransferTag, Dir, f64)],
    ) -> PerfChar {
        let mut pc = PerfChar::new(platform.len(), Ewma(1.0));
        for &(d, t) in rstar {
            pc.record_rstar(d, t);
        }
        for &(d, tag, dir, k) in xfers {
            pc.record_transfer(d, tag, dir, 1, k);
        }
        pc
    }

    #[test]
    fn fast_gpu_kernel_wins_when_links_are_cheap() {
        let p = Platform::sys_hk();
        let pc = char_with(
            &p,
            &[(0, 0.002), (1, 0.030)],
            &[
                (0, TransferTag::Sf, Dir::H2d, 1e-7),
                (0, TransferTag::Cf, Dir::H2d, 1e-7),
                (0, TransferTag::Mv, Dir::H2d, 1e-7),
                (0, TransferTag::Rf, Dir::D2h, 1e-7),
            ],
        );
        let c = choose_rstar(&p, &pc, 68, &[68, 0, 0, 0, 0]);
        assert_eq!(c, Centric::Gpu(0));
    }

    #[test]
    fn expensive_link_flips_choice_to_cpu() {
        // GPU kernel is 3x faster, but hauling the SF/CF over a terrible
        // link costs far more than the kernel saves.
        let p = Platform::sys_hk();
        let pc = char_with(
            &p,
            &[(0, 0.002), (1, 0.006)],
            &[
                (0, TransferTag::Sf, Dir::H2d, 5e-3), // 5 ms per missing row!
                (0, TransferTag::Cf, Dir::H2d, 1e-4),
                (0, TransferTag::Mv, Dir::H2d, 1e-4),
                (0, TransferTag::Rf, Dir::D2h, 1e-4),
            ],
        );
        // GPU holds almost nothing (SME done mostly on CPU).
        let c = choose_rstar(&p, &pc, 68, &[2, 20, 20, 16, 10]);
        assert_eq!(c, Centric::Cpu, "link cost must dominate the choice");
    }

    #[test]
    fn resident_data_reduces_gather_cost() {
        // Same platform/rates; when the GPU already holds the whole frame
        // (expected_sme_rows = N), its gather cost shrinks and it wins.
        let p = Platform::sys_hk();
        let pc = char_with(
            &p,
            &[(0, 0.002), (1, 0.006)],
            &[
                (0, TransferTag::Sf, Dir::H2d, 5e-3),
                (0, TransferTag::Cf, Dir::H2d, 1e-4),
                (0, TransferTag::Mv, Dir::H2d, 1e-5),
                (0, TransferTag::Rf, Dir::D2h, 1e-5),
            ],
        );
        let c = choose_rstar(&p, &pc, 68, &[68, 0, 0, 0, 0]);
        assert_eq!(c, Centric::Gpu(0));
    }

    #[test]
    fn uncharacterized_defaults_to_gpu_centric() {
        let p = Platform::sys_hk();
        let pc = PerfChar::new(p.len(), Ewma(1.0));
        assert_eq!(choose_rstar(&p, &pc, 68, &[0; 5]), Centric::Gpu(0));
    }

    #[test]
    fn naive_mapping_ignores_links() {
        let p = Platform::sys_hk();
        let pc = char_with(
            &p,
            &[(0, 0.002), (1, 0.006)],
            &[(0, TransferTag::Sf, Dir::H2d, 5e-3)],
        );
        // Naive picks the GPU despite the terrible link.
        assert_eq!(naive_fastest_rstar(&p, &pc), Centric::Gpu(0));
    }
}
