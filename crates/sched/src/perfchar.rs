//! On-the-fly performance characterization (paper §III-C).
//!
//! Maintains, per device, the measured processing time per MB row for the
//! balanced modules (`K^m`, `K^l`, `K^s`), the measured transfer time per MB
//! row for each buffer and direction (`K^{cf·hd}`, `K^{rf·hd}`, `K^{rf·dh}`,
//! `K^{sf·hd}`, `K^{sf·dh}`, `K^{mv·hd}`, `K^{mv·dh}`) and the whole-`R*`
//! time `T^{R*}`. Values are updated after every encoded frame from the
//! times the Video Coding Manager records — this is what lets the framework
//! react "to the current state of the platform (e.g., load fluctuations,
//! multi-user time sharing, operating system actions)" within one frame.

use feves_codec::types::Module;
use feves_ft::{ByteReader, ByteWriter, FevesError};
use feves_hetsim::timeline::{Dir, TransferTag};
use serde::{Deserialize, Serialize};

/// Exponentially-weighted update: `new = α·sample + (1−α)·old`.
///
/// α = 1 reproduces the paper's last-sample behaviour (fastest reaction to
/// performance changes — what makes the Fig 7 recovery take a single frame);
/// smaller α smooths noisy measurements at the cost of reaction time. The
/// ablation bench sweeps this.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Ewma(pub f64);

impl Default for Ewma {
    fn default() -> Self {
        Ewma(1.0)
    }
}

impl Ewma {
    fn fold(&self, old: f64, sample: f64) -> f64 {
        if old.is_nan() {
            sample
        } else {
            self.0 * sample + (1.0 - self.0) * old
        }
    }
}

/// Per-device measured rates. All fields are seconds per MB row (or seconds
/// for `t_rstar`) and start as NaN ("not yet characterized").
///
/// ```
/// use feves_sched::{Ewma, PerfChar};
/// use feves_codec::types::Module;
/// let mut pc = PerfChar::new(2, Ewma(1.0));
/// pc.record_compute(0, Module::Me, 10, 0.5); // 10 rows in 0.5 s
/// assert_eq!(pc.k_me(0), Some(0.05));
/// assert_eq!(pc.k_me(1), None); // device 1 not characterized yet
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PerfChar {
    n_devices: usize,
    alpha: Ewma,
    k_me: Vec<f64>,
    k_int: Vec<f64>,
    k_sme: Vec<f64>,
    // Transfer rates indexed [tag][dir][device].
    k_xfer: [[Vec<f64>; 2]; 4],
    t_rstar: Vec<f64>,
}

fn tag_index(tag: TransferTag) -> usize {
    match tag {
        TransferTag::Cf => 0,
        TransferTag::Rf => 1,
        TransferTag::Sf => 2,
        TransferTag::Mv => 3,
    }
}

fn dir_index(dir: Dir) -> usize {
    match dir {
        Dir::H2d => 0,
        Dir::D2h => 1,
    }
}

impl PerfChar {
    /// Fresh, fully uncharacterized state for `n_devices`.
    pub fn new(n_devices: usize, alpha: Ewma) -> Self {
        let nan = vec![f64::NAN; n_devices];
        PerfChar {
            n_devices,
            alpha,
            k_me: nan.clone(),
            k_int: nan.clone(),
            k_sme: nan.clone(),
            k_xfer: std::array::from_fn(|_| [nan.clone(), nan.clone()]),
            t_rstar: nan,
        }
    }

    /// Number of devices tracked.
    pub fn n_devices(&self) -> usize {
        self.n_devices
    }

    /// Record a compute measurement: `module` processed `rows` MB rows on
    /// `device` in `seconds`. Zero-row samples are ignored.
    pub fn record_compute(&mut self, device: usize, module: Module, rows: usize, seconds: f64) {
        if rows == 0 {
            return;
        }
        let per_row = seconds / rows as f64;
        let slot = match module {
            Module::Me => &mut self.k_me[device],
            Module::Interp => &mut self.k_int[device],
            Module::Sme => &mut self.k_sme[device],
            // R* modules are recorded through `record_rstar`.
            _ => return,
        };
        *slot = self.alpha.fold(*slot, per_row);
    }

    /// Record a transfer measurement (`rows` MB rows moved in `seconds`).
    pub fn record_transfer(
        &mut self,
        device: usize,
        tag: TransferTag,
        dir: Dir,
        rows: usize,
        seconds: f64,
    ) {
        if rows == 0 {
            return;
        }
        let per_row = seconds / rows as f64;
        let slot = &mut self.k_xfer[tag_index(tag)][dir_index(dir)][device];
        *slot = self.alpha.fold(*slot, per_row);
    }

    /// Record a whole-`R*` execution on `device`.
    pub fn record_rstar(&mut self, device: usize, seconds: f64) {
        let slot = &mut self.t_rstar[device];
        *slot = self.alpha.fold(*slot, seconds);
    }

    /// `K^m` (ME seconds per MB row) of `device`, if characterized.
    pub fn k_me(&self, device: usize) -> Option<f64> {
        val(self.k_me[device])
    }

    /// `K^l` (INT seconds per MB row).
    pub fn k_int(&self, device: usize) -> Option<f64> {
        val(self.k_int[device])
    }

    /// `K^s` (SME seconds per MB row).
    pub fn k_sme(&self, device: usize) -> Option<f64> {
        val(self.k_sme[device])
    }

    /// Transfer seconds per MB row for (`tag`, `dir`) on `device`.
    pub fn k_transfer(&self, device: usize, tag: TransferTag, dir: Dir) -> Option<f64> {
        val(self.k_xfer[tag_index(tag)][dir_index(dir)][device])
    }

    /// Measured `T^{R*}` of `device`, if it ever ran the R\* group.
    pub fn t_rstar(&self, device: usize) -> Option<f64> {
        val(self.t_rstar[device])
    }

    /// Estimate `T^{R*}` for a device that never ran it, by scaling a
    /// measured device's time with the ratio of their SME rates (R\* kernels
    /// scale with general per-MB throughput like SME does).
    pub fn estimate_rstar(&self, device: usize) -> Option<f64> {
        if let Some(t) = self.t_rstar(device) {
            return Some(t);
        }
        let my_sme = self.k_sme(device)?;
        // Any device with both measurements anchors the estimate.
        (0..self.n_devices).find_map(|d| {
            let t = self.t_rstar(d)?;
            let their_sme = self.k_sme(d)?;
            Some(t * my_sme / their_sme)
        })
    }

    /// True once every device has compute rates for all balanced modules
    /// (i.e. after the equidistant first inter-frame).
    pub fn is_complete(&self) -> bool {
        (0..self.n_devices)
            .all(|d| self.k_me(d).is_some() && self.k_int(d).is_some() && self.k_sme(d).is_some())
    }

    /// Forget device `d`'s compute and R\* characterization (back to NaN),
    /// forcing `is_complete()` false until the device is re-measured — the
    /// re-characterization hook the drift detector pulls. The balancer chain
    /// reacts by falling back to an equidistant probe frame (Algorithm 1's
    /// initialization phase), which re-measures every module on every
    /// device. Transfer rates are kept: drift is a compute-throughput
    /// phenomenon (throttling, co-tenancy), and the EWMA refreshes transfer
    /// rates every frame anyway.
    pub fn reset_device(&mut self, d: usize) {
        self.k_me[d] = f64::NAN;
        self.k_int[d] = f64::NAN;
        self.k_sme[d] = f64::NAN;
        self.t_rstar[d] = f64::NAN;
    }

    /// Serialize to the checkpoint byte codec. JSON is unusable here — the
    /// NaN "uncharacterized" sentinels have no JSON representation — so the
    /// rates are written by bit pattern.
    pub fn to_ckpt_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_usize(self.n_devices);
        w.put_f64(self.alpha.0);
        w.put_f64_slice(&self.k_me);
        w.put_f64_slice(&self.k_int);
        w.put_f64_slice(&self.k_sme);
        for tag in &self.k_xfer {
            for dir in tag {
                w.put_f64_slice(dir);
            }
        }
        w.put_f64_slice(&self.t_rstar);
        w.into_bytes()
    }

    /// Decode a [`to_ckpt_bytes`] payload, validating that every rate vector
    /// matches the stored device count.
    ///
    /// [`to_ckpt_bytes`]: PerfChar::to_ckpt_bytes
    pub fn from_ckpt_bytes(bytes: &[u8]) -> Result<Self, FevesError> {
        let mut r = ByteReader::new(bytes);
        let n_devices = r.take_usize()?;
        let alpha = Ewma(r.take_f64()?);
        let mut vecs = || -> Result<Vec<f64>, FevesError> {
            let v = r.take_f64_vec()?;
            if v.len() != n_devices {
                return Err(FevesError::CheckpointCorrupt(format!(
                    "perfchar rate vector has {} entries for {} devices",
                    v.len(),
                    n_devices
                )));
            }
            Ok(v)
        };
        let k_me = vecs()?;
        let k_int = vecs()?;
        let k_sme = vecs()?;
        let mut xfer_flat = Vec::with_capacity(8);
        for _ in 0..8 {
            xfer_flat.push(vecs()?);
        }
        let t_rstar = vecs()?;
        r.expect_end("perfchar payload")?;
        let mut it = xfer_flat.into_iter();
        let k_xfer = std::array::from_fn(|_| std::array::from_fn(|_| it.next().unwrap()));
        Ok(PerfChar {
            n_devices,
            alpha,
            k_me,
            k_int,
            k_sme,
            k_xfer,
            t_rstar,
        })
    }

    /// Project the characterization onto the devices where `keep[i]` is
    /// true (reduced-platform enumeration). Rates survive blacklisting, so
    /// a re-admitted device is scheduled from its last known speeds instead
    /// of re-probing from scratch.
    pub fn subset(&self, keep: &[bool]) -> PerfChar {
        assert_eq!(keep.len(), self.n_devices, "mask length mismatch");
        let pick = |v: &[f64]| -> Vec<f64> {
            v.iter()
                .zip(keep)
                .filter(|(_, &k)| k)
                .map(|(&x, _)| x)
                .collect()
        };
        PerfChar {
            n_devices: keep.iter().filter(|&&k| k).count(),
            alpha: self.alpha,
            k_me: pick(&self.k_me),
            k_int: pick(&self.k_int),
            k_sme: pick(&self.k_sme),
            k_xfer: std::array::from_fn(|t| std::array::from_fn(|d| pick(&self.k_xfer[t][d]))),
            t_rstar: pick(&self.t_rstar),
        }
    }
}

fn val(v: f64) -> Option<f64> {
    if v.is_nan() {
        None
    } else {
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_uncharacterized() {
        let pc = PerfChar::new(3, Ewma::default());
        assert!(!pc.is_complete());
        assert_eq!(pc.k_me(0), None);
        assert_eq!(pc.t_rstar(2), None);
        assert_eq!(pc.estimate_rstar(1), None);
    }

    #[test]
    fn last_sample_mode_tracks_exactly() {
        let mut pc = PerfChar::new(2, Ewma(1.0));
        pc.record_compute(0, Module::Me, 10, 0.5);
        assert_eq!(pc.k_me(0), Some(0.05));
        pc.record_compute(0, Module::Me, 20, 2.0);
        assert_eq!(pc.k_me(0), Some(0.1), "α=1 keeps only the last sample");
    }

    #[test]
    fn ewma_smooths() {
        let mut pc = PerfChar::new(1, Ewma(0.5));
        pc.record_compute(0, Module::Sme, 10, 1.0); // 0.1 per row
        pc.record_compute(0, Module::Sme, 10, 2.0); // sample 0.2
        let k = pc.k_sme(0).unwrap();
        assert!((k - 0.15).abs() < 1e-12);
    }

    #[test]
    fn zero_rows_ignored() {
        let mut pc = PerfChar::new(1, Ewma(1.0));
        pc.record_compute(0, Module::Me, 0, 1.0);
        assert_eq!(pc.k_me(0), None);
        pc.record_transfer(0, TransferTag::Sf, Dir::H2d, 0, 1.0);
        assert_eq!(pc.k_transfer(0, TransferTag::Sf, Dir::H2d), None);
    }

    #[test]
    fn transfer_rates_keyed_by_tag_and_dir() {
        let mut pc = PerfChar::new(1, Ewma(1.0));
        pc.record_transfer(0, TransferTag::Sf, Dir::H2d, 4, 0.4);
        pc.record_transfer(0, TransferTag::Sf, Dir::D2h, 4, 0.8);
        assert_eq!(pc.k_transfer(0, TransferTag::Sf, Dir::H2d), Some(0.1));
        assert_eq!(pc.k_transfer(0, TransferTag::Sf, Dir::D2h), Some(0.2));
        assert_eq!(pc.k_transfer(0, TransferTag::Cf, Dir::H2d), None);
    }

    #[test]
    fn rstar_estimation_scales_by_sme_ratio() {
        let mut pc = PerfChar::new(2, Ewma(1.0));
        pc.record_rstar(0, 0.010);
        pc.record_compute(0, Module::Sme, 10, 0.1); // 0.01 / row
        pc.record_compute(1, Module::Sme, 10, 0.2); // 0.02 / row (2x slower)
        let est = pc.estimate_rstar(1).unwrap();
        assert!((est - 0.020).abs() < 1e-12, "estimate {est}");
        // Measured value wins over estimation.
        pc.record_rstar(1, 0.5);
        assert_eq!(pc.estimate_rstar(1), Some(0.5));
    }

    #[test]
    fn r_star_modules_not_recorded_as_compute() {
        let mut pc = PerfChar::new(1, Ewma(1.0));
        pc.record_compute(0, Module::Dbl, 10, 1.0);
        assert!(pc.k_me(0).is_none() && pc.k_int(0).is_none() && pc.k_sme(0).is_none());
    }

    #[test]
    fn subset_keeps_rates_of_surviving_devices() {
        let mut pc = PerfChar::new(3, Ewma(1.0));
        for d in 0..3 {
            pc.record_compute(d, Module::Me, 10, (d + 1) as f64);
            pc.record_compute(d, Module::Interp, 10, 1.0);
            pc.record_compute(d, Module::Sme, 10, 1.0);
        }
        pc.record_transfer(2, TransferTag::Sf, Dir::H2d, 4, 0.4);
        pc.record_rstar(1, 0.25);

        let sub = pc.subset(&[true, false, true]);
        assert_eq!(sub.n_devices(), 2);
        assert!(sub.is_complete());
        assert_eq!(sub.k_me(0), pc.k_me(0));
        assert_eq!(sub.k_me(1), pc.k_me(2), "device 2 becomes reduced index 1");
        assert_eq!(
            sub.k_transfer(1, TransferTag::Sf, Dir::H2d),
            pc.k_transfer(2, TransferTag::Sf, Dir::H2d)
        );
        assert_eq!(sub.t_rstar(0), None);
    }

    #[test]
    fn reset_device_forces_recharacterization() {
        let mut pc = PerfChar::new(2, Ewma(1.0));
        for d in 0..2 {
            pc.record_compute(d, Module::Me, 10, 1.0);
            pc.record_compute(d, Module::Interp, 10, 1.0);
            pc.record_compute(d, Module::Sme, 10, 1.0);
        }
        pc.record_rstar(1, 0.25);
        pc.record_transfer(1, TransferTag::Sf, Dir::H2d, 4, 0.4);
        assert!(pc.is_complete());
        pc.reset_device(1);
        assert!(!pc.is_complete(), "reset must force the equidistant probe");
        assert_eq!(pc.k_me(1), None);
        assert_eq!(pc.t_rstar(1), None);
        // Other devices and transfer rates survive.
        assert!(pc.k_me(0).is_some());
        assert!(pc.k_transfer(1, TransferTag::Sf, Dir::H2d).is_some());
        // Fresh measurements re-complete it.
        pc.record_compute(1, Module::Me, 10, 2.0);
        pc.record_compute(1, Module::Interp, 10, 2.0);
        pc.record_compute(1, Module::Sme, 10, 2.0);
        assert!(pc.is_complete());
        assert_eq!(pc.k_me(1), Some(0.2), "NaN-folded EWMA takes the sample");
    }

    #[test]
    fn ckpt_bytes_round_trip_preserves_nan_sentinels() {
        let mut pc = PerfChar::new(3, Ewma(0.5));
        pc.record_compute(0, Module::Me, 10, 0.5);
        pc.record_compute(1, Module::Sme, 4, 0.2);
        pc.record_transfer(2, TransferTag::Sf, Dir::D2h, 4, 0.8);
        pc.record_rstar(1, 0.25);
        // Device 2's compute slots are still NaN — the round trip must keep
        // them "uncharacterized", not turn them into 0.
        let back = PerfChar::from_ckpt_bytes(&pc.to_ckpt_bytes()).unwrap();
        assert_eq!(back.n_devices(), 3);
        assert_eq!(back.k_me(0), pc.k_me(0));
        assert_eq!(back.k_sme(1), pc.k_sme(1));
        assert_eq!(back.k_me(2), None);
        assert_eq!(
            back.k_transfer(2, TransferTag::Sf, Dir::D2h),
            pc.k_transfer(2, TransferTag::Sf, Dir::D2h)
        );
        assert_eq!(back.t_rstar(1), Some(0.25));
        assert_eq!(back.is_complete(), pc.is_complete());
    }

    #[test]
    fn ckpt_bytes_reject_truncation_and_bad_counts() {
        let pc = PerfChar::new(2, Ewma(1.0));
        let bytes = pc.to_ckpt_bytes();
        assert!(PerfChar::from_ckpt_bytes(&bytes[..bytes.len() - 3]).is_err());
        let mut grown = bytes.clone();
        grown.push(0);
        assert!(PerfChar::from_ckpt_bytes(&grown).is_err(), "trailing bytes");
    }

    #[test]
    fn completeness_requires_all_modules_all_devices() {
        let mut pc = PerfChar::new(2, Ewma(1.0));
        for d in 0..2 {
            pc.record_compute(d, Module::Me, 1, 0.1);
            pc.record_compute(d, Module::Interp, 1, 0.1);
        }
        assert!(!pc.is_complete());
        pc.record_compute(0, Module::Sme, 1, 0.1);
        assert!(!pc.is_complete());
        pc.record_compute(1, Module::Sme, 1, 0.1);
        assert!(pc.is_complete());
    }
}
