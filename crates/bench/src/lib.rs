#![warn(missing_docs)]
//! Experiment harness shared by the figure-regeneration binaries.
//!
//! Every table and figure of the paper's §IV has a binary in `src/bin/`
//! that prints the same rows/series the paper plots and drops a JSON record
//! under `target/experiments/` for `EXPERIMENTS.md`:
//!
//! | paper artefact | binary |
//! |---|---|
//! | Fig 6(a) — fps vs search-area size | `fig6a` |
//! | Fig 6(b) — fps vs number of RFs (+ §IV speedup claims) | `fig6b` |
//! | Fig 7(a)/(b) — per-frame adaptive traces | `fig7` |
//! | §II module breakdown (ME+INT+SME ≈ 90 %) | `breakdown` |
//! | §IV scheduling overhead < 2 ms | `overhead` |
//! | design ablations (balancer, data reuse, copy engines, R\* mapping, EWMA) | `ablations` |

use feves_core::prelude::*;
use serde::Serialize;
use std::path::PathBuf;

/// The seven evaluated configurations of Fig 6 (four single-device bars +
/// three CPU+GPU systems).
pub fn standard_configs() -> Vec<(&'static str, Platform, BalancerKind)> {
    use feves_hetsim::profiles::*;
    vec![
        (
            "CPU_N",
            Platform::cpu_only(cpu_nehalem(), 4),
            BalancerKind::CpuOnly,
        ),
        (
            "CPU_H",
            Platform::cpu_only(cpu_haswell(), 4),
            BalancerKind::CpuOnly,
        ),
        (
            "GPU_F",
            Platform::gpu_only(gpu_fermi()),
            BalancerKind::SingleAccelerator(0),
        ),
        (
            "GPU_K",
            Platform::gpu_only(gpu_kepler()),
            BalancerKind::SingleAccelerator(0),
        ),
        ("SysNF", Platform::sys_nf(), BalancerKind::Feves),
        ("SysNFF", Platform::sys_nff(), BalancerKind::Feves),
        ("SysHK", Platform::sys_hk(), BalancerKind::Feves),
    ]
}

/// Encoder config for a 1080p timing run at (`sa`, `n_ref`).
pub fn hd_config(sa: u16, n_ref: usize, balancer: BalancerKind) -> EncoderConfig {
    let params = EncodeParams {
        search_area: SearchArea(sa),
        n_ref,
        ..Default::default()
    };
    let mut cfg = EncoderConfig::full_hd(params);
    cfg.balancer = balancer;
    cfg
}

/// Run `frames` timing-only inter-frames and return the report.
pub fn run_hd(platform: Platform, cfg: EncoderConfig, frames: usize) -> EncodeReport {
    let mut enc = FevesEncoder::new(platform, cfg).expect("valid experiment config");
    enc.run_timing(frames)
}

/// Steady-state fps for a configuration (skips init + RF ramp).
pub fn steady_fps(platform: Platform, balancer: BalancerKind, sa: u16, n_ref: usize) -> f64 {
    let frames = 14 + n_ref;
    run_hd(platform, hd_config(sa, n_ref, balancer), frames).steady_fps(n_ref + 3)
}

/// Where experiment JSON records land.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Serialize an experiment record to `target/experiments/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = experiments_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serializable record");
    // Atomic (temp + rename): a crash mid-run never leaves a torn record
    // for the compare gate to choke on.
    feves_obs::write_atomic(&path, json).expect("write experiment record");
    eprintln!("(wrote {})", path.display());
}

/// Mark values that clear the paper's real-time bar.
pub fn rt_mark(fps: f64) -> &'static str {
    if fps >= 25.0 {
        "*"
    } else {
        " "
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_configs_cover_fig6() {
        let c = standard_configs();
        assert_eq!(c.len(), 7);
        let names: Vec<&str> = c.iter().map(|(n, _, _)| *n).collect();
        assert_eq!(
            names,
            vec!["CPU_N", "CPU_H", "GPU_F", "GPU_K", "SysNF", "SysNFF", "SysHK"]
        );
    }

    #[test]
    fn rt_mark_threshold() {
        assert_eq!(rt_mark(25.0), "*");
        assert_eq!(rt_mark(24.9), " ");
    }
}
