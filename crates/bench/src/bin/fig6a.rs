//! Regenerates **Fig 6(a)**: encoding speed (fps) for 1080p sequences vs
//! search-area size (1 reference frame), for the four single devices and
//! the three CPU+GPU systems.
//!
//! ```sh
//! cargo run -p feves-bench --release --bin fig6a
//! ```

use feves_bench::{hd_config, rt_mark, run_hd, standard_configs, steady_fps, write_json};
use feves_core::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    config: String,
    sa: u16,
    fps: f64,
    realtime: bool,
}

fn main() {
    let sas = [32u16, 64, 128, 256];
    println!("Fig 6(a): 1080p encoding speed [fps] vs SA size, 1 RF ('*' = ≥25 fps)\n");
    print!("{:>8}", "config");
    for sa in sas {
        print!(" {:>9}", format!("{sa}x{sa}"));
    }
    println!();
    let mut records = Vec::new();
    for (name, platform, balancer) in standard_configs() {
        print!("{name:>8}");
        for sa in sas {
            let fps = steady_fps(platform.clone(), balancer, sa, 1);
            print!(" {:>8.1}{}", fps, rt_mark(fps));
            records.push(Record {
                config: name.into(),
                sa,
                fps,
                realtime: fps >= 25.0,
            });
        }
        println!();
    }
    write_json("fig6a", &records);
    let rep = run_hd(
        Platform::sys_hk(),
        hd_config(32, 1, BalancerKind::Feves),
        17,
    );
    if let Some(r) = rep.tau_tot_rollup() {
        println!(
            "\nSysHK 32x32/1RF per-frame rollup: p50 {:.1} / p95 {:.1} / p99 {:.1} ms",
            r.p50, r.p95, r.p99
        );
    }
    println!(
        "\npaper shape: fps roughly quarters per SA step (ME quadruples);\n\
         both GPUs and all three systems real-time at 32x32; SysHK also at 64x64."
    );
}
