//! Behavioural reproduction of the §III-A copy-engine discussion (Fig 4):
//! with a **single** copy engine, H2D and D2H transfers serialize; with a
//! **dual** engine, `SF(RF)→SME` (D2H) overlaps `CF→SME` (H2D). This binary
//! shows the resulting frame-time difference for otherwise identical
//! platforms, across the transfer-heavy parameter corner.
//!
//! ```sh
//! cargo run -p feves-bench --release --bin fig_overlap
//! ```

use feves_bench::{hd_config, write_json};
use feves_core::prelude::*;
use feves_hetsim::device::{CopyEngines, DeviceKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    platform: String,
    engines: String,
    sa: u16,
    n_ref: usize,
    frame_ms: f64,
}

fn frame_ms(platform: Platform, sa: u16, rf: usize) -> f64 {
    let mut cfg = hd_config(sa, rf, BalancerKind::Feves);
    cfg.noise_amp = 0.0;
    let mut enc = FevesEncoder::new(platform, cfg).unwrap();
    let rep = enc.run_timing(12 + rf);
    let steady: Vec<f64> = rep.inter_frames().skip(rf + 4).map(|f| f.tau_tot).collect();
    steady.iter().sum::<f64>() / steady.len() as f64 * 1e3
}

/// Divide every accelerator link's bandwidth by `factor` (e.g. a PCIe x16
/// card electrically running at x4, a common desktop misconfiguration).
fn narrow_links(mut p: Platform, factor: f64) -> Platform {
    for d in 0..p.n_accel {
        if let Some(link) = &mut p.devices[d].link {
            link.h2d_bytes_per_sec /= factor;
            link.d2h_bytes_per_sec /= factor;
        }
    }
    p
}

fn with_engines(mut p: Platform, e: CopyEngines) -> Platform {
    for d in 0..p.n_accel {
        p.devices[d].kind = DeviceKind::Accelerator(e);
    }
    p
}

fn main() {
    println!("Copy-engine concurrency (Fig 4 behaviour): frame time [ms]\n");
    println!(
        "{:>8} {:>6} {:>5} {:>12} {:>12} {:>8}",
        "system", "SA", "RFs", "single [ms]", "dual [ms]", "gain"
    );
    let mut rows = Vec::new();
    for (name, base) in [
        ("SysHK", Platform::sys_hk()),
        ("SysNFF", Platform::sys_nff()),
    ] {
        for (sa, rf) in [(32u16, 1usize), (32, 4), (64, 1)] {
            let single = frame_ms(with_engines(base.clone(), CopyEngines::Single), sa, rf);
            let dual = frame_ms(with_engines(base.clone(), CopyEngines::Dual), sa, rf);
            println!(
                "{name:>8} {sa:>6} {rf:>5} {single:>12.2} {dual:>12.2} {:>7.2}%",
                (single - dual) / single * 100.0
            );
            for (engines, ms) in [("single", single), ("dual", dual)] {
                rows.push(Row {
                    platform: name.into(),
                    engines: engines.into(),
                    sa,
                    n_ref: rf,
                    frame_ms: ms,
                });
            }
        }
    }
    println!(
        "\nAt nominal PCIe bandwidths the transfers hide under the kernels, so\n\
         both engine layouts coincide — the schedule absorbs the serialization\n\
         (this is itself a faithful reproduction: the paper presents the\n\
         engine distinction as a scheduling-correctness configuration).\n\n\
         The effect becomes visible when the interconnect is the bottleneck\n\
         (links narrowed 6x, e.g. a x16 card electrically at x4 + contention):\n"
    );
    println!(
        "{:>8} {:>6} {:>5} {:>12} {:>12} {:>8}",
        "system", "SA", "RFs", "single [ms]", "dual [ms]", "gain"
    );
    for (name, base) in [
        ("SysHK", Platform::sys_hk()),
        ("SysNFF", Platform::sys_nff()),
    ] {
        for (sa, rf) in [(32u16, 1usize), (32, 4)] {
            let single = frame_ms(
                narrow_links(with_engines(base.clone(), CopyEngines::Single), 6.0),
                sa,
                rf,
            );
            let dual = frame_ms(
                narrow_links(with_engines(base.clone(), CopyEngines::Dual), 6.0),
                sa,
                rf,
            );
            println!(
                "{name:>8} {sa:>6} {rf:>5} {single:>12.2} {dual:>12.2} {:>7.2}%",
                (single - dual) / single * 100.0
            );
            for (engines, ms) in [("single-x4", single), ("dual-x4", dual)] {
                rows.push(Row {
                    platform: name.into(),
                    engines: engines.into(),
                    sa,
                    n_ref: rf,
                    frame_ms: ms,
                });
            }
        }
    }
    write_json("fig_overlap", &rows);
    println!("\ndual engines overlap H2D with D2H (SF down ∥ CF up), trimming τ1.");
}
