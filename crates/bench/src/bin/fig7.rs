//! Regenerates **Fig 7**: per-frame encoding time of the first 100
//! inter-frames on SysHK with the adaptive load balancer —
//! (a) SA 64×64 with 1–2 RFs, (b) SA 32×32 with 1–5 RFs, including the
//! paper's "sudden change in the system performance" events (frames 76/81
//! for 1 RF, frames 31/71/92 for 2 RFs) and the one-frame recovery.
//!
//! ```sh
//! cargo run -p feves-bench --release --bin fig7
//! ```

use feves_bench::{hd_config, write_json};
use feves_core::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Trace {
    panel: &'static str,
    n_ref: usize,
    times_ms: Vec<f64>,
    perturbed_frames: Vec<usize>,
}

fn trace(sa: u16, n_ref: usize, perturb: &[usize], panel: &'static str) -> Trace {
    let mut cfg = hd_config(sa, n_ref, BalancerKind::Feves);
    cfg.noise_seed ^= n_ref as u64; // distinct jitter per curve, like reality
    let mut enc = FevesEncoder::new(Platform::sys_hk(), cfg).unwrap();
    // The paper's transient events: "other processes started running" — a
    // one-frame 2.5x slowdown of the CPU cores.
    for &f in perturb {
        for core in 1..=4 {
            enc.add_perturbation(Perturbation {
                device: core,
                frames: f..f + 1,
                factor: 0.4,
            });
        }
    }
    let rep = enc.run_timing(100);
    Trace {
        panel,
        n_ref,
        times_ms: rep.inter_frames().map(|f| f.tau_tot * 1e3).collect(),
        perturbed_frames: perturb.to_vec(),
    }
}

fn print_trace(t: &Trace) {
    println!(
        "\n{} — {} RF (encoding time per frame [ms]):",
        t.panel, t.n_ref
    );
    for (i, ms) in t.times_ms.iter().enumerate() {
        let frame = i + 1;
        if frame <= 8
            || frame % 10 == 0
            || t.perturbed_frames
                .iter()
                .any(|&p| frame >= p && frame <= p + 2)
        {
            let mark = if t.perturbed_frames.contains(&frame) {
                "  <- perturbation"
            } else {
                ""
            };
            let bar: String = std::iter::repeat_n('#', (ms / 2.5).round() as usize).collect();
            println!("  f{frame:03} {ms:7.2} |{bar}{mark}");
        }
    }
    let steady: f64 = t.times_ms[10..].iter().sum::<f64>() / (t.times_ms.len() - 10) as f64;
    println!(
        "  equidistant frame 1: {:.1} ms; steady state: {:.1} ms ({} real-time)",
        t.times_ms[0],
        steady,
        if steady <= 40.0 { "is" } else { "NOT" }
    );
    if let Some(r) = Rollup::from_values(t.times_ms.clone()) {
        println!(
            "  rollup: p50 {:.1} / p95 {:.1} / p99 {:.1} ms",
            r.p50, r.p95, r.p99
        );
    }
}

fn main() {
    println!("Fig 7: adaptive load balancing on SysHK, 1080p, first 100 inter-frames");
    println!("(real-time bound = 40 ms/frame)");

    // Panel (a): SA 64x64, 1-2 RFs, no injected events (the paper's (a)
    // shows near-constant curves).
    let mut traces = Vec::new();
    for rf in [1usize, 2] {
        let t = trace(64, rf, &[], "Fig 7(a) SA 64x64");
        print_trace(&t);
        traces.push(t);
    }

    // Panel (b): SA 32x32, 1-5 RFs; events at the paper's frames.
    for rf in 1..=5usize {
        let perturb: &[usize] = match rf {
            1 => &[76, 81],
            2 => &[31, 71, 92],
            _ => &[],
        };
        let t = trace(32, rf, perturb, "Fig 7(b) SA 32x32");
        print_trace(&t);
        // Quantify the paper's "single inter-frame to converge".
        for &p in perturb {
            let before = t.times_ms[p - 2]; // frame p-1 (0-based p-2)
            let hit = t.times_ms[p - 1];
            let after = t.times_ms[p + 1]; // two frames later
            println!(
                "    event @f{p}: {before:.1} -> {hit:.1} (hit) -> {after:.1} ms (recovered: {})",
                if after < before * 1.2 { "yes" } else { "NO" }
            );
        }
        traces.push(t);
    }
    write_json("fig7", &traces);
    println!(
        "\npaper shape: equidistant frame 1 is slow, frame 2 already balanced;\n\
         RF ramp-up produces rising slopes over the first n_ref frames (b);\n\
         perturbation spikes recover within one frame."
    );
}
