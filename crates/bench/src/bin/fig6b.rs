//! Regenerates **Fig 6(b)**: encoding speed (fps) for 1080p sequences vs
//! number of reference frames (32×32 SA), plus the §IV speedup claims
//! (SysHK ≈1.3× GPU_K / ≈3× CPU_H; SysNFF up to 2.2× GPU_F / 5× CPU_N;
//! CPU_H ≈1.7× CPU_N; GPU_K ≈2× GPU_F).
//!
//! ```sh
//! cargo run -p feves-bench --release --bin fig6b
//! ```

use feves_bench::{hd_config, rt_mark, run_hd, standard_configs, steady_fps, write_json};
use feves_core::prelude::*;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct Record {
    config: String,
    n_ref: usize,
    fps: f64,
    realtime: bool,
}

fn main() {
    let rfs: Vec<usize> = (1..=8).collect();
    println!("Fig 6(b): 1080p encoding speed [fps] vs number of RFs, SA 32x32 ('*' = ≥25 fps)\n");
    print!("{:>8}", "config");
    for rf in &rfs {
        print!(" {:>8}", format!("{rf} RF"));
    }
    println!();
    let mut records = Vec::new();
    let mut table: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for (name, platform, balancer) in standard_configs() {
        print!("{name:>8}");
        let mut row = Vec::new();
        for &rf in &rfs {
            let fps = steady_fps(platform.clone(), balancer, 32, rf);
            print!(" {:>7.1}{}", fps, rt_mark(fps));
            row.push(fps);
            records.push(Record {
                config: name.into(),
                n_ref: rf,
                fps,
                realtime: fps >= 25.0,
            });
        }
        table.insert(name.to_string(), row);
        println!();
    }
    write_json("fig6b", &records);

    // §IV speedup summary (averaged over all RF counts, as the text does).
    let avg_ratio = |a: &str, b: &str| -> f64 {
        let (ra, rb) = (&table[a], &table[b]);
        ra.iter().zip(rb).map(|(x, y)| x / y).sum::<f64>() / ra.len() as f64
    };
    let max_ratio = |a: &str, b: &str| -> f64 {
        table[a]
            .iter()
            .zip(&table[b])
            .map(|(x, y)| x / y)
            .fold(0.0, f64::max)
    };
    println!("\n§IV speedups (paper → measured):");
    println!(
        "  SysHK vs GPU_K : ~1.3 avg → {:.2} avg",
        avg_ratio("SysHK", "GPU_K")
    );
    println!(
        "  SysHK vs CPU_H : ~3   avg → {:.2} avg",
        avg_ratio("SysHK", "CPU_H")
    );
    println!(
        "  SysNFF vs GPU_F: ≤2.2 max → {:.2} max",
        max_ratio("SysNFF", "GPU_F")
    );
    println!(
        "  SysNFF vs CPU_N: ≤5   max → {:.2} max",
        max_ratio("SysNFF", "CPU_N")
    );
    println!(
        "  CPU_H vs CPU_N : ~1.7     → {:.2} avg",
        avg_ratio("CPU_H", "CPU_N")
    );
    println!(
        "  GPU_K vs GPU_F : ~2       → {:.2} avg",
        avg_ratio("GPU_K", "GPU_F")
    );
    let speedups: BTreeMap<&str, f64> = BTreeMap::from([
        ("syshk_vs_gpuk_avg", avg_ratio("SysHK", "GPU_K")),
        ("syshk_vs_cpuh_avg", avg_ratio("SysHK", "CPU_H")),
        ("sysnff_vs_gpuf_max", max_ratio("SysNFF", "GPU_F")),
        ("sysnff_vs_cpun_max", max_ratio("SysNFF", "CPU_N")),
        ("cpuh_vs_cpun_avg", avg_ratio("CPU_H", "CPU_N")),
        ("gpuk_vs_gpuf_avg", avg_ratio("GPU_K", "GPU_F")),
    ]);
    write_json("fig6b_speedups", &speedups);

    let rep = run_hd(
        Platform::sys_hk(),
        hd_config(32, 2, BalancerKind::Feves),
        18,
    );
    if let (Some(tau), Some(sched)) = (rep.tau_tot_rollup(), rep.sched_overhead_rollup()) {
        println!(
            "\nSysHK 32x32/2RF per-frame rollup: tau_tot p50 {:.1} / p95 {:.1} / p99 {:.1} ms; \
             sched overhead p99 {:.2} ms",
            tau.p50, tau.p95, tau.p99, sched.p99
        );
    }
}
