//! Regenerates the §II module-share claims (from the authors' technical
//! report [4] that the grouping decision rests on): ME+INT+SME take ≈90 %
//! of the inter-loop encoding time on both CPU and GPU, and MC+TQ+TQ⁻¹
//! take <3 % — the rationale for balancing the former and pinning the
//! latter (plus DBL) to one device.
//!
//! ```sh
//! cargo run -p feves-bench --release --bin breakdown
//! ```

use feves_codec::types::{EncodeParams, Module, SearchArea};
use feves_codec::workload::units_per_frame;
use feves_hetsim::profiles;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct Share {
    device: String,
    module: String,
    milliseconds: f64,
    share: f64,
}

fn main() {
    let params = EncodeParams {
        search_area: SearchArea(32),
        n_ref: 1,
        ..Default::default()
    };
    println!("Module time breakdown, 1080p, SA 32x32, 1 RF (module kernel times)\n");
    let devices = [
        profiles::cpu_nehalem(),
        profiles::cpu_haswell(),
        profiles::gpu_fermi(),
        profiles::gpu_kepler(),
    ];
    let mut records = Vec::new();
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} | {:>9} {:>9}",
        "device", "ME", "INT", "SME", "MC", "TQ", "TQ-1", "DBL", "heavy%", "MC+TQs%"
    );
    for dev in devices {
        let t = |m: Module| dev.compute_time(m, units_per_frame(m, &params, 120, 68), 1.0) * 1e3;
        let times: BTreeMap<&str, f64> = BTreeMap::from([
            ("ME", t(Module::Me)),
            ("INT", t(Module::Interp)),
            ("SME", t(Module::Sme)),
            ("MC", t(Module::Mc)),
            ("TQ", t(Module::Tq)),
            ("TQ-1", t(Module::Itq)),
            ("DBL", t(Module::Dbl)),
        ]);
        let total: f64 = times.values().sum();
        let heavy = (times["ME"] + times["INT"] + times["SME"]) / total * 100.0;
        let mctq = (times["MC"] + times["TQ"] + times["TQ-1"]) / total * 100.0;
        println!(
            "{:>8} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} | {:>8.1}% {:>8.1}%",
            dev.name,
            times["ME"],
            times["INT"],
            times["SME"],
            times["MC"],
            times["TQ"],
            times["TQ-1"],
            times["DBL"],
            heavy,
            mctq
        );
        for (m, ms) in &times {
            records.push(Share {
                device: dev.name.clone(),
                module: m.to_string(),
                milliseconds: *ms,
                share: ms / total,
            });
        }
    }
    feves_bench::write_json("breakdown", &records);
    println!("\npaper: ME+INT+SME ≈ 90% on CPU and GPU [4]; MC+TQ+TQ⁻¹ < 3%.");
    println!("(times in ms per frame; on GPUs INT runs concurrently with ME,");
    println!(" the shares above are of summed kernel time as in [4])");
}
