//! Ablation study over the design choices DESIGN.md calls out:
//!
//! 1. **Load balancing** — Algorithm 2 LP vs per-module proportional \[9\]
//!    vs equidistant \[8\];
//! 2. **Data reuse** — the Δ/σ communication-minimization machinery of
//!    Fig 5 vs wholesale retransfers;
//! 3. **Computation/communication overlap** — Fig 4 scheduling vs
//!    synchronous module phases;
//! 4. **R\* mapping** — Dijkstra cost-model choice vs pinned GPU-centric vs
//!    pinned CPU-centric;
//! 5. **Performance characterization** — last-sample (paper) vs EWMA
//!    smoothing under platform perturbations.
//!
//! ```sh
//! cargo run -p feves-bench --release --bin ablations
//! ```

use feves_bench::{hd_config, write_json};
use feves_core::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    ablation: String,
    variant: String,
    fps: f64,
}

fn fps_with(cfg: EncoderConfig, platform: Platform, frames: usize, skip: usize) -> f64 {
    let mut enc = FevesEncoder::new(platform, cfg).unwrap();
    enc.run_timing(frames).steady_fps(skip)
}

fn fps_perturbed(cfg: EncoderConfig, platform: Platform) -> f64 {
    let mut enc = FevesEncoder::new(platform, cfg).unwrap();
    // A noisy neighbour hammers the GPU every 7th frame.
    for f in (7..60).step_by(7) {
        enc.add_perturbation(Perturbation {
            device: 0,
            frames: f..f + 2,
            factor: 0.5,
        });
    }
    enc.run_timing(60).steady_fps(5)
}

fn main() {
    let mut rows = Vec::new();
    let mut emit = |ablation: &str, variant: &str, fps: f64| {
        println!("{ablation:>16} | {variant:<28} {fps:6.1} fps");
        rows.push(Row {
            ablation: ablation.into(),
            variant: variant.into(),
            fps,
        });
    };
    println!("All runs: 1080p, SysNFF unless noted, SA 32x32, 2 RFs\n");

    // 1. Balancer.
    for (variant, kind) in [
        ("feves LP (Alg 2)", BalancerKind::Feves),
        ("greedy EFT (HEFT)", BalancerKind::Greedy),
        ("proportional [9]", BalancerKind::Proportional),
        ("equidistant [8]", BalancerKind::Equidistant),
    ] {
        let fps = fps_with(hd_config(32, 2, kind), Platform::sys_nff(), 16, 5);
        emit("balancing", variant, fps);
    }

    // 2. Data reuse.
    for (variant, reuse) in [("Δ/σ reuse (Fig 5)", true), ("full retransfer", false)] {
        let mut cfg = hd_config(32, 2, BalancerKind::Feves);
        cfg.data_reuse = reuse;
        emit(
            "data reuse",
            variant,
            fps_with(cfg, Platform::sys_nff(), 16, 5),
        );
    }

    // 3. Overlap.
    for (variant, overlap) in [("overlapped (Fig 4)", true), ("synchronous phases", false)] {
        let mut cfg = hd_config(32, 2, BalancerKind::Feves);
        cfg.overlap = overlap;
        emit(
            "comm overlap",
            variant,
            fps_with(cfg, Platform::sys_nff(), 16, 5),
        );
    }

    // 4. R* mapping.
    for (variant, kind) in [
        ("dijkstra (auto)", BalancerKind::Feves),
        (
            "pinned GPU-centric",
            BalancerKind::FevesFixed(Centric::Gpu(0)),
        ),
        ("pinned CPU-centric", BalancerKind::FevesFixed(Centric::Cpu)),
    ] {
        let fps = fps_with(hd_config(32, 2, kind), Platform::sys_nff(), 16, 5);
        emit("R* mapping", variant, fps);
    }

    // 5. Performance characterization under perturbations.
    for (variant, alpha) in [
        ("last-sample (α=1, paper)", 1.0),
        ("EWMA α=0.5", 0.5),
        ("EWMA α=0.2", 0.2),
    ] {
        let mut cfg = hd_config(32, 2, BalancerKind::Feves);
        cfg.ewma = feves_sched::Ewma(alpha);
        emit("perf char", variant, fps_perturbed(cfg, Platform::sys_hk()));
    }

    write_json("ablations", &rows);
    println!(
        "\nexpected ordering: LP ≥ proportional ≫ equidistant; reuse > retransfer;\n\
         overlap ≥ synchronous; auto R* ≥ pinned; fast α recovers best under\n\
         perturbations (the paper's single-frame convergence needs α→1)."
    );
}
