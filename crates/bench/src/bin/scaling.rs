//! Multi-GPU scaling study (the paper's motivation for going beyond the
//! one-GPU related work \[5–7\]: "these approaches offer a limited
//! scalability since only one GPU device can be efficiently employed").
//!
//! Sweeps 1–6 Fermi-class GPUs beside the quad-core CPU and reports the
//! FEVES throughput, the parallel efficiency vs a perfect-scaling ideal,
//! and the equidistant baseline that homogeneous multi-GPU schemes \[8\]
//! would use. Also reports the LP-vs-oracle gap: how close Algorithm 2's
//! model-based optimum gets to a schedule-level local optimum.
//!
//! ```sh
//! cargo run -p feves-bench --release --bin scaling
//! ```

use feves_bench::{hd_config, run_hd, write_json};
use feves_core::prelude::*;
use feves_core::vcm::FrameGeometry;
use feves_core::OracleBalancer;
use feves_hetsim::profiles::{cpu_nehalem, gpu_fermi};
use feves_sched::{BalanceInput, Ewma, FevesBalancer, LoadBalancer, PerfChar};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    gpus: usize,
    feves_fps: f64,
    equidistant_fps: f64,
    efficiency: f64,
}

fn perfchar(platform: &Platform) -> PerfChar {
    use feves_codec::types::Module;
    use feves_codec::workload::bytes_per_row as bpr;
    use feves_hetsim::timeline::{Dir, TransferTag};
    let mut pc = PerfChar::new(platform.len(), Ewma(1.0));
    for (i, dev) in platform.devices.iter().enumerate() {
        pc.record_compute(
            i,
            Module::Me,
            1,
            dev.compute_time(Module::Me, 120.0 * 1024.0, 1.0),
        );
        pc.record_compute(
            i,
            Module::Interp,
            1,
            dev.compute_time(Module::Interp, 120.0, 1.0),
        );
        pc.record_compute(i, Module::Sme, 1, dev.compute_time(Module::Sme, 120.0, 1.0));
        let rstar: f64 = Module::RSTAR
            .iter()
            .map(|&m| dev.compute_time(m, 120.0 * 68.0, 1.0))
            .sum();
        pc.record_rstar(i, rstar);
        if let Some(link) = dev.link {
            for (tag, bytes) in [
                (TransferTag::Cf, bpr::cf(1920)),
                (TransferTag::Rf, bpr::rf(1920)),
                (TransferTag::Sf, bpr::sf(1920)),
                (TransferTag::Mv, bpr::mv(1920)),
            ] {
                pc.record_transfer(i, tag, Dir::H2d, 1, link.transfer_time(bytes, true));
                pc.record_transfer(i, tag, Dir::D2h, 1, link.transfer_time(bytes, false));
            }
        }
    }
    pc
}

fn main() {
    println!("Multi-GPU scaling: CPU_N + n × GPU_F, 1080p, SA 32x32, 1 RF\n");
    println!(
        "{:>5} {:>10} {:>14} {:>12}",
        "GPUs", "FEVES fps", "equidist. fps", "efficiency"
    );
    // Single-GPU FEVES as the scaling unit.
    let mut rows = Vec::new();
    let mut base_fps = 0.0;
    for n in 1..=6usize {
        let gpus = vec![gpu_fermi(); n];
        let platform = Platform::build(gpus, &cpu_nehalem(), 4).named(format!("CPU_N+{n}xGPU_F"));
        let feves =
            run_hd(platform.clone(), hd_config(32, 1, BalancerKind::Feves), 14).steady_fps(4);
        let equi = run_hd(platform, hd_config(32, 1, BalancerKind::Equidistant), 14).steady_fps(4);
        if n == 1 {
            base_fps = feves;
        }
        // Ideal: base + (n-1) extra GPU_F worth of throughput.
        let gpu_f_fps = 26.0;
        let ideal = base_fps + (n - 1) as f64 * gpu_f_fps;
        let eff = feves / ideal;
        println!("{n:>5} {feves:>10.1} {equi:>14.1} {:>11.0}%", eff * 100.0);
        rows.push(Row {
            gpus: n,
            feves_fps: feves,
            equidistant_fps: equi,
            efficiency: eff,
        });
    }
    write_json("scaling", &rows);

    // Shared-PCIe contention: the realistic desktop case where all GPUs sit
    // behind one host interconnect.
    println!("\nshared host interconnect (all GPUs behind one PCIe root):\n");
    println!(
        "{:>5} {:>14} {:>12} {:>8}",
        "GPUs", "dedicated fps", "shared fps", "loss"
    );
    for n in [2usize, 4, 6] {
        let gpus = vec![gpu_fermi(); n];
        let dedicated = Platform::build(gpus.clone(), &cpu_nehalem(), 4);
        let shared = Platform::build(gpus, &cpu_nehalem(), 4).with_shared_host_link();
        let fd = run_hd(dedicated, hd_config(32, 1, BalancerKind::Feves), 14).steady_fps(4);
        let fs = run_hd(shared, hd_config(32, 1, BalancerKind::Feves), 14).steady_fps(4);
        println!(
            "{n:>5} {fd:>14.1} {fs:>12.1} {:>7.1}%",
            (fd - fs) / fd * 100.0
        );
    }

    println!("\nLP vs schedule-level oracle (makespan, lower is better):\n");
    println!(
        "{:>8} {:>10} {:>10} {:>7}",
        "system", "LP [ms]", "oracle[ms]", "gap"
    );
    let geometry = FrameGeometry {
        mb_cols: 120,
        n_rows: 68,
        width: 1920,
    };
    let params = EncodeParams::default();
    for (name, platform) in [
        ("SysNF", Platform::sys_nf()),
        ("SysNFF", Platform::sys_nff()),
        ("SysHK", Platform::sys_hk()),
    ] {
        let perf = perfchar(&platform);
        let input = BalanceInput {
            n_rows: 68,
            platform: &platform,
            perf: &perf,
            prev: None,
        };
        let mut lp = FevesBalancer::default();
        let lp_dist = lp.distribute(&input);
        let mut oracle = OracleBalancer::new(params, geometry, 6);
        let lp_t = oracle.evaluate(&lp_dist, &platform) * 1e3;
        let o_dist = oracle.distribute(&input);
        let o_t = oracle.evaluate(&o_dist, &platform) * 1e3;
        println!(
            "{name:>8} {lp_t:>10.2} {o_t:>10.2} {:>6.2}%",
            (lp_t - o_t) / o_t * 100.0
        );
    }
    println!(
        "\nexpected: FEVES scales with diminishing returns (PCIe + R* serial\n\
         part), equidistant collapses (slowest device dominates), and the LP\n\
         lands within a few percent of the hill-climbed schedule optimum."
    );
}
