//! Resolution generality sweep (beyond the paper's 1080p-only evaluation):
//! the same framework at 720p, 1080p, 1440p and 4K, with the real-time
//! verdict and the memory-feasibility check per platform.
//!
//! ```sh
//! cargo run -p feves-bench --release --bin resolution_sweep
//! ```

use feves_bench::{rt_mark, write_json};
use feves_core::dam::DataManager;
use feves_core::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    platform: String,
    resolution: String,
    fps: f64,
    realtime: bool,
}

fn main() {
    let resolutions = [
        ("720p", Resolution::HD720),
        ("1080p", Resolution::FULL_HD),
        ("1440p", Resolution::new(2560, 1440)),
        ("2160p", Resolution::new(3840, 2160)),
    ];
    println!("Resolution sweep — SA 32x32, 1 RF, FEVES balancer ('*' = ≥25 fps)\n");
    print!("{:>8}", "system");
    for (name, _) in &resolutions {
        print!(" {name:>9}");
    }
    println!();
    let mut rows = Vec::new();
    for (pname, platform) in [
        ("SysNF", Platform::sys_nf as fn() -> Platform),
        ("SysNFF", Platform::sys_nff),
        ("SysHK", Platform::sys_hk),
    ] {
        print!("{pname:>8}");
        for (rname, res) in &resolutions {
            let params = EncodeParams::default();
            let mut cfg = EncoderConfig::full_hd(params);
            cfg.resolution = *res;
            let p = platform();
            // Memory feasibility first (4K SFs are large).
            let padded = res.padded();
            if DataManager::check_memory(&p, padded.height / 16, padded.width, params.n_ref)
                .is_err()
            {
                print!(" {:>9}", "OOM");
                continue;
            }
            let mut enc = FevesEncoder::new(p, cfg).unwrap();
            let fps = enc.run_timing(12).steady_fps(4);
            print!(" {:>8.1}{}", fps, rt_mark(fps));
            rows.push(Row {
                platform: pname.into(),
                resolution: rname.to_string(),
                fps,
                realtime: fps >= 25.0,
            });
        }
        println!();
    }
    write_json("resolution_sweep", &rows);
    println!(
        "\nthroughput scales ≈ inversely with pixel count (ME per MB is\n\
         resolution-independent); 4K at FSBM 32x32 needs ~4x the 1080p work."
    );
}
