//! Regenerates the §IV scheduling-overhead claim: "the scheduling
//! overheads (introduced by the proposed framework) take, on average, less
//! than 2 ms per inter-frame encoding".
//!
//! Measured here as the wall-clock time of the Load Balancing block
//! (Dijkstra R\* mapping + Algorithm 2 LP + rounding) per frame, across
//! the three platforms and several parameter points.
//!
//! ```sh
//! cargo run -p feves-bench --release --bin overhead
//! ```

use feves_bench::{hd_config, run_hd, write_json};
use feves_core::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    platform: String,
    sa: u16,
    n_ref: usize,
    avg_ms: f64,
    max_ms: f64,
}

fn main() {
    println!("Scheduling overhead per inter-frame (wall clock of the LB block)\n");
    println!(
        "{:>8} {:>8} {:>6} {:>10} {:>10}",
        "system", "SA", "RFs", "avg [ms]", "max [ms]"
    );
    let mut rows = Vec::new();
    for (platform, name) in [
        (Platform::sys_nf(), "SysNF"),
        (Platform::sys_nff(), "SysNFF"),
        (Platform::sys_hk(), "SysHK"),
    ] {
        for (sa, rf) in [(32u16, 1usize), (32, 4), (64, 2), (128, 1)] {
            let rep = run_hd(platform.clone(), hd_config(sa, rf, BalancerKind::Feves), 25);
            let overheads: Vec<f64> = rep.inter_frames().map(|f| f.sched_overhead).collect();
            let avg = overheads.iter().sum::<f64>() / overheads.len() as f64 * 1e3;
            let max = overheads.iter().fold(0.0f64, |a, &b| a.max(b)) * 1e3;
            println!("{name:>8} {sa:>8} {rf:>6} {avg:>10.4} {max:>10.4}");
            rows.push(Row {
                platform: name.into(),
                sa,
                n_ref: rf,
                avg_ms: avg,
                max_ms: max,
            });
        }
    }
    let worst = rows.iter().map(|r| r.avg_ms).fold(0.0f64, f64::max);
    println!(
        "\nworst average: {worst:.4} ms — paper bound: < 2 ms per inter-frame ({})",
        if worst < 2.0 { "HOLDS" } else { "VIOLATED" }
    );
    write_json("overhead", &rows);
}
