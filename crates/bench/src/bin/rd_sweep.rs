//! Rate–distortion sweep: functional encodes across the QP range, showing
//! the codec's RD behaviour (bits ↓, PSNR ↓ as QP grows — the VCEG-common-
//! conditions axis the paper's QP {27, 28} point sits on).
//!
//! Uses CIF synthetic content so the real kernels finish quickly; FSBM makes
//! encoding *time* content-independent, but *rate* is what this sweep shows.
//!
//! ```sh
//! cargo run -p feves-bench --release --bin rd_sweep
//! ```

use feves_bench::write_json;
use feves_core::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    qp: u8,
    kbits_per_frame: f64,
    kbits_per_frame_cabac: f64,
    psnr_y: f64,
}

fn main() {
    let mut synth = SynthConfig::rolling_tomatoes();
    synth.resolution = Resolution::CIF;
    let frames = SynthSequence::new(synth).take_frames(6);

    println!("RD sweep — CIF synthetic, 6 frames (1 I + 5 P), SA 32x32, 1 RF\n");
    println!(
        "{:>4} {:>16} {:>16} {:>10}",
        "QP", "EG kbit/frame", "CABAC kbit/frame", "PSNR-Y[dB]"
    );
    let mut points = Vec::new();
    for qp in [16u8, 20, 24, 28, 32, 36, 40, 44] {
        let params = EncodeParams {
            search_area: SearchArea(32),
            n_ref: 1,
            qp,
            qp_intra: qp.saturating_sub(1),
        };
        let mut kbits = [0.0f64; 2];
        let mut psnr = f64::NAN;
        for (i, backend) in [
            feves_codec::cabac::EntropyBackend::ExpGolomb,
            feves_codec::cabac::EntropyBackend::Cabac,
        ]
        .into_iter()
        .enumerate()
        {
            let mut cfg = EncoderConfig::full_hd(params);
            cfg.resolution = Resolution::CIF;
            cfg.mode = ExecutionMode::Functional;
            cfg.entropy = backend;
            let mut enc = FevesEncoder::new(Platform::sys_hk(), cfg).unwrap();
            let rep = enc.encode_sequence(&frames);
            kbits[i] = rep.total_bits() as f64 / rep.frames.len() as f64 / 1000.0;
            psnr = rep.mean_psnr().unwrap_or(f64::NAN);
        }
        println!("{qp:>4} {:>16.1} {:>16.1} {psnr:>10.2}", kbits[0], kbits[1]);
        points.push(Point {
            qp,
            kbits_per_frame: kbits[0],
            kbits_per_frame_cabac: kbits[1],
            psnr_y: psnr,
        });
    }
    write_json("rd_sweep", &points);

    // Sanity: RD monotonicity.
    let mono_rate = points
        .windows(2)
        .all(|w| w[1].kbits_per_frame <= w[0].kbits_per_frame * 1.02);
    let mono_psnr = points.windows(2).all(|w| w[1].psnr_y <= w[0].psnr_y + 0.2);
    println!(
        "\nrate monotone: {} | distortion monotone: {}",
        if mono_rate { "yes" } else { "NO" },
        if mono_psnr { "yes" } else { "NO" }
    );
}
