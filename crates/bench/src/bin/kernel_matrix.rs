//! Scalar-vs-fast kernel benchmark matrix with built-in bit-exactness
//! verification.
//!
//! Runs every dispatched hot-kernel family (`FEVES_KERNELS=scalar|fast`)
//! across block sizes and resolutions, first *verifying* that both
//! implementations produce identical outputs (any mismatch exits non-zero —
//! this is the differential gate CI runs), then timing them and emitting
//! machine-readable baselines:
//!
//! * `BENCH_kernels.json` — per-kernel per-case ns/iter for both families
//!   plus the speedup ratio;
//! * `BENCH_e2e.json` — functional QCIF encode under both families with the
//!   output-signature equality result and end-to-end speedup.
//!
//! ```sh
//! cargo run -p feves-bench --release --bin kernel_matrix -- [--quick] [--out-dir DIR]
//! ```
//!
//! `--quick` cuts iteration counts ~10× and skips the ≥1.5× speedup gate
//! (used by the CI `bench-smoke` job, where absolute timings are noisy);
//! the full run enforces the gate for the 16×16 SAD grid and interpolation.

use feves_codec::interp::interpolate;
use feves_codec::kernels::{self, KernelKind};
use feves_codec::quant::{dequantize_4x4, quantize_4x4};
use feves_codec::sad::{row_sad, sad_grid_16x16};
use feves_core::prelude::*;
use feves_video::plane::Plane;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct KernelRecord {
    kernel: String,
    case: String,
    iters: u64,
    scalar_ns_per_iter: f64,
    fast_ns_per_iter: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct E2eRecord {
    resolution: String,
    frames: usize,
    scalar_ms: f64,
    fast_ms: f64,
    speedup: f64,
    outputs_identical: bool,
    /// Virtual-clock idle attribution (percent of device-time spent waiting
    /// at τ-sync barriers) under `--pipeline off`. Deterministic: the timing
    /// model runs with noise disabled, so this is machine-independent.
    idle_pct_lockstep: f64,
    /// Same attribution under `--pipeline on` — the submit/reap overlap
    /// must pull this strictly below the lockstep figure.
    idle_pct_pipelined: f64,
    /// Total τ-sync stall time the pipeline recovered across the run (ms,
    /// virtual clock).
    overlap_recovered_ms: f64,
    /// Functional encode produced byte-identical bits + reconstruction
    /// under both pipeline modes (the differential gate CI runs).
    pipeline_outputs_identical: bool,
}

fn plane_from_fn(w: usize, h: usize, f: impl Fn(usize, usize) -> u8) -> Plane<u8> {
    let mut p = Plane::new(w, h);
    for y in 0..h {
        for x in 0..w {
            p.set(x, y, f(x, y));
        }
    }
    p
}

fn textured(w: usize, h: usize, seed: usize) -> Plane<u8> {
    plane_from_fn(w, h, |x, y| ((x * 31) ^ (y * 17) ^ seed) as u8)
}

/// Time `f` under both kernel families and return (scalar_ns, fast_ns).
fn time_both(iters: u64, mut f: impl FnMut()) -> (f64, f64) {
    let mut out = [0f64; 2];
    for (slot, kind) in [(0usize, KernelKind::Scalar), (1, KernelKind::Fast)] {
        kernels::force_kind(kind);
        // Warmup: a few iterations to touch caches and settle dispatch.
        for _ in 0..iters.div_ceil(10).max(1) {
            f();
        }
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        out[slot] = t0.elapsed().as_nanos() as f64 / iters as f64;
    }
    out.into()
}

// ---------------------------------------------------------------------------
// Differential verification (the part CI gates on)
// ---------------------------------------------------------------------------

/// Run every fast path against the scalar reference over deterministic
/// sweeps; returns the number of mismatches (0 = bit-exact).
fn verify_differentials() -> usize {
    let mut bad = 0usize;
    let mut check = |name: &str, ok: bool| {
        if !ok {
            eprintln!("DIFFERENTIAL FAILURE: {name}");
            bad += 1;
        }
    };

    // row_sad across lengths (SWAR tail paths).
    for len in 0..96usize {
        let a: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
        let b: Vec<u8> = (0..len).map(|i| (i * 101 + 63) as u8).collect();
        check(
            &format!("row_sad len {len}"),
            kernels::scalar::row_sad(&a, &b) == kernels::fast::row_sad(&a, &b),
        );
    }

    // SAD grid: inside positions and every border-clamp direction.
    let cur = textured(64, 64, 7);
    let rf = textured(64, 64, 91);
    for ry in (-20..=68isize).step_by(4) {
        for rx in (-20..=68isize).step_by(4) {
            check(
                &format!("sad_grid ref ({rx},{ry})"),
                kernels::scalar::sad_grid_16x16(&cur, 16, 16, &rf, rx, ry)
                    == kernels::fast::sad_grid_16x16(&cur, 16, 16, &rf, rx, ry),
            );
        }
    }

    // Quantizer sweep over all QPs, both dead-zones.
    for qp in 0..=51u8 {
        for intra in [false, true] {
            let base: [i32; 16] =
                core::array::from_fn(|i| ((qp as i32 * 977 + i as i32 * 613) % 4001) - 2000);
            let mut a = base;
            let mut b = base;
            kernels::scalar::quantize_4x4(&mut a, qp, intra);
            kernels::fast::quantize_4x4(&mut b, qp, intra);
            check(&format!("quantize qp {qp} intra {intra}"), a == b);
            let mut da = base;
            let mut db = base;
            kernels::scalar::dequantize_4x4(&mut da, qp);
            kernels::fast::dequantize_4x4(&mut db, qp);
            check(&format!("dequantize qp {qp}"), da == db);
        }
    }

    // Interpolation through the public API under force_kind (covers the
    // whole band kernel incl. border halos at several sizes).
    for &(w, h) in &[(17usize, 13usize), (48, 32), (176, 144)] {
        let src = textured(w, h, 23);
        kernels::force_kind(KernelKind::Scalar);
        let a = interpolate(&src);
        kernels::force_kind(KernelKind::Fast);
        let b = interpolate(&src);
        check(&format!("interpolate {w}x{h}"), a == b);
    }

    bad
}

// ---------------------------------------------------------------------------
// Benchmark matrix
// ---------------------------------------------------------------------------

fn bench_kernels(quick: bool) -> Vec<KernelRecord> {
    let div = if quick { 10 } else { 1 };
    let mut records = Vec::new();
    let mut push = |kernel: &str, case: &str, iters: u64, (s, f): (f64, f64)| {
        println!(
            "{kernel:>16} {case:>12}: scalar {s:>10.1} ns  fast {f:>10.1} ns  speedup {:>5.2}x",
            s / f
        );
        records.push(KernelRecord {
            kernel: kernel.into(),
            case: case.into(),
            iters,
            scalar_ns_per_iter: s,
            fast_ns_per_iter: f,
            speedup: s / f,
        });
    };

    // row_sad across representative row widths (4x4 block row → 1080p row).
    for &w in &[16usize, 64, 352, 1920] {
        let a: Vec<u8> = (0..w).map(|i| (i * 73 + 5) as u8).collect();
        let b: Vec<u8> = (0..w).map(|i| (i * 29 + 141) as u8).collect();
        let iters = (2_000_000 / div as u64).max(1) / (w as u64 / 16).max(1);
        let t = time_both(iters, || {
            std::hint::black_box(row_sad(std::hint::black_box(&a), std::hint::black_box(&b)));
        });
        push("row_sad", &format!("w{w}"), iters, t);
    }

    // The ME workhorse: 16x16 SAD grid, inside and border-clamped.
    let cur = textured(128, 128, 3);
    let rf = textured(128, 128, 57);
    let iters = 400_000 / div as u64;
    let t = time_both(iters, || {
        std::hint::black_box(sad_grid_16x16(
            std::hint::black_box(&cur),
            48,
            48,
            std::hint::black_box(&rf),
            52,
            44,
        ));
    });
    push("sad_grid_16x16", "inside", iters, t);
    let t = time_both(iters / 4, || {
        std::hint::black_box(sad_grid_16x16(
            std::hint::black_box(&cur),
            0,
            0,
            std::hint::black_box(&rf),
            -7,
            -5,
        ));
    });
    push("sad_grid_16x16", "border", iters / 4, t);

    // Full-frame interpolation at three resolutions.
    for &(name, w, h) in &[
        ("qcif", 176usize, 144usize),
        ("cif", 352, 288),
        ("720p", 1280, 720),
    ] {
        let src = textured(w, h, 11);
        let iters = (40u64 * (1280 * 720) as u64 / (w * h) as u64 / div as u64).max(1);
        let t = time_both(iters, || {
            std::hint::black_box(interpolate(std::hint::black_box(&src)));
        });
        push("interpolate", name, iters, t);
    }

    // Quantizer round trip over a batch of blocks (TQ/TQ⁻¹ inner loops).
    let blocks: Vec<[i32; 16]> = (0..256)
        .map(|s: i32| core::array::from_fn(|i| ((s * 389 + i as i32 * 71) % 2001) - 1000))
        .collect();
    let iters = 20_000 / div as u64;
    let t = time_both(iters, || {
        for b in &blocks {
            let mut w = *b;
            quantize_4x4(&mut w, 28, false);
            dequantize_4x4(&mut w, 28);
            std::hint::black_box(w);
        }
    });
    push("quant_roundtrip", "256blk", iters, t);

    records
}

// ---------------------------------------------------------------------------
// End-to-end functional encode
// ---------------------------------------------------------------------------

fn functional_run(
    frames: &[feves_video::Frame],
    pipeline: bool,
) -> (f64, Vec<Option<u64>>, Vec<u8>) {
    let mut cfg = EncoderConfig::full_hd(EncodeParams {
        search_area: SearchArea(16),
        n_ref: 2,
        ..Default::default()
    });
    cfg.resolution = Resolution::QCIF;
    cfg.mode = ExecutionMode::Functional;
    cfg.pipeline = pipeline;
    let mut enc = FevesEncoder::new(Platform::sys_hk(), cfg).unwrap();
    let t0 = Instant::now();
    let rep = enc.encode_sequence(frames);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let bits = rep.inter_frames().map(|f| f.bits).collect();
    let recon = enc.last_reconstruction().unwrap().as_slice().to_vec();
    (ms, bits, recon)
}

/// Virtual-clock idle attribution under one pipeline mode. Returns the
/// fleet idle percentage (device-time waiting at τ-sync barriers over the
/// reported frame windows) and the total stall time the pipeline recovered
/// (ms). The timing model runs with noise disabled, so both figures are
/// deterministic and the committed baseline is machine-independent.
fn idle_attribution(pipeline: bool, frames: usize) -> (f64, f64) {
    let mut cfg = EncoderConfig::full_hd(EncodeParams::default());
    cfg.noise_amp = 0.0;
    cfg.pipeline = pipeline;
    let rec = std::sync::Arc::new(feves_obs::MemoryRecorder::new());
    let mut enc = FevesEncoder::new(Platform::sys_hk(), cfg).unwrap();
    enc.set_recorder(rec.clone());
    enc.enable_flight(frames + 4);
    let rep = enc.run_timing(frames);
    let window_ms: f64 = rep.inter_frames().map(|f| f.tau_tot).sum::<f64>() * 1e3;
    let records = enc.flight().expect("flight enabled").to_vec();
    let n_dev = records.first().map_or(1, |r| r.devices.len()).max(1);
    let busy_ms: f64 = records
        .iter()
        .flat_map(|r| r.devices.iter())
        .map(|d| d.compute_busy_ms + d.transfer_busy_ms)
        .sum();
    let idle_pct = (100.0 * (1.0 - busy_ms / (n_dev as f64 * window_ms.max(1e-9)))).max(0.0f64);
    let recovered_ms = rec.histogram(feves_obs::Metric::PipelineOverlapUs).sum() / 1e3;
    (idle_pct, recovered_ms)
}

fn bench_e2e(quick: bool) -> (E2eRecord, bool) {
    let n = if quick { 3 } else { 8 };
    let mut synth = SynthConfig::tiny_test();
    synth.resolution = Resolution::QCIF;
    let frames = SynthSequence::new(synth).take_frames(n);

    kernels::force_kind(KernelKind::Scalar);
    let (scalar_ms, bits_s, recon_s) = functional_run(&frames, false);
    kernels::force_kind(KernelKind::Fast);
    let (fast_ms, bits_f, recon_f) = functional_run(&frames, false);
    // The pipeline differential, under the production (fast) kernels: the
    // submit/reap overlap is scheduling-only and must not move a single
    // output byte.
    let (_, bits_p, recon_p) = functional_run(&frames, true);

    let identical = bits_s == bits_f && recon_s == recon_f;
    let pipeline_identical = bits_f == bits_p && recon_f == recon_p;

    // Virtual clock: cheap even at full length, and keeping --quick on the
    // same frame count makes the deterministic idle figures comparable
    // against the committed full-run baseline.
    let timing_frames = 12;
    let (idle_pct_lockstep, _) = idle_attribution(false, timing_frames);
    let (idle_pct_pipelined, overlap_recovered_ms) = idle_attribution(true, timing_frames);

    let rec = E2eRecord {
        resolution: "qcif".into(),
        frames: n,
        scalar_ms,
        fast_ms,
        speedup: scalar_ms / fast_ms,
        outputs_identical: identical,
        idle_pct_lockstep,
        idle_pct_pipelined,
        overlap_recovered_ms,
        pipeline_outputs_identical: pipeline_identical,
    };
    println!(
        "{:>16} {:>12}: scalar {scalar_ms:>8.1} ms  fast {fast_ms:>8.1} ms  speedup {:>5.2}x  identical: {identical}",
        "e2e_encode", "qcif", scalar_ms / fast_ms
    );
    println!(
        "{:>16} {:>12}: lockstep {idle_pct_lockstep:>6.2}%  pipelined {idle_pct_pipelined:>6.2}%  \
         recovered {overlap_recovered_ms:>7.2} ms  identical: {pipeline_identical}",
        "idle_attribution", "sys_hk"
    );
    (rec, identical && pipeline_identical)
}

fn write_json_to<T: Serialize>(dir: &std::path::Path, name: &str, value: &T) {
    let path = dir.join(name);
    let json = serde_json::to_string_pretty(value).expect("serializable record");
    feves_obs::write_atomic(&path, json)
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("(wrote {})", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir = args
        .iter()
        .position(|a| a == "--out-dir")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));

    println!("kernel matrix: verifying fast == scalar (bit-exactness)...");
    let mismatches = verify_differentials();
    if mismatches != 0 {
        eprintln!("{mismatches} differential check(s) FAILED — fast kernels are not bit-exact");
        std::process::exit(1);
    }
    println!("all differential checks passed\n");

    let records = bench_kernels(quick);
    let (e2e, identical) = bench_e2e(quick);
    if !identical {
        eprintln!("e2e outputs differ (FEVES_KERNELS scalar vs fast, or --pipeline off vs on)");
        std::process::exit(1);
    }
    // The overlap win is deterministic (virtual clock, noise off), so it
    // gates even under --quick: pipelined idle must be strictly lower.
    if e2e.idle_pct_pipelined >= e2e.idle_pct_lockstep {
        eprintln!(
            "IDLE GATE FAILED: pipelined idle {:.3}% is not below lockstep {:.3}%",
            e2e.idle_pct_pipelined, e2e.idle_pct_lockstep
        );
        std::process::exit(1);
    }

    write_json_to(&out_dir, "BENCH_kernels.json", &records);
    write_json_to(&out_dir, "BENCH_e2e.json", &e2e);

    if !quick {
        // Acceptance gate: the ME grid and interpolation fast paths must be
        // ≥ 1.5× the scalar baseline (skipped under --quick: CI smoke runs
        // are too noisy for absolute perf assertions).
        let mut gate_ok = true;
        for r in &records {
            let gated =
                (r.kernel == "sad_grid_16x16" && r.case == "inside") || r.kernel == "interpolate";
            if gated && r.speedup < 1.5 {
                eprintln!(
                    "SPEEDUP GATE FAILED: {} {} at {:.2}x (< 1.5x)",
                    r.kernel, r.case, r.speedup
                );
                gate_ok = false;
            }
        }
        if !gate_ok {
            std::process::exit(2);
        }
        println!("\nspeedup gate passed (grid + interpolation ≥ 1.5x)");
    }
}
