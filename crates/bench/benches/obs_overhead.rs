//! Observability overhead bench: recording metrics and spans must not eat
//! into the paper's < 2 ms scheduling-overhead budget.
//!
//! Two measurements:
//!
//! 1. A criterion group timing the recorder hot path (counter + histogram +
//!    span) against the `NoopRecorder` baseline — the per-event cost.
//! 2. An end-to-end acceptance check: a full SysHK timing run with a
//!    `MemoryRecorder` attached still reports per-frame scheduling overhead
//!    below 2 ms (both the wall-clock report and the recorded
//!    `sched.overhead_us` histogram). The bench exits non-zero on failure.
//! 3. The same acceptance run with the full live path enabled — session
//!    scope, telemetry bus, drain thread and periodic snapshot writes — to
//!    prove live monitoring stays inside the same budget. The bus's own
//!    enqueue/drain self-metering is printed alongside.
//! 4. The same run again with a causal-trace sink attached, so the span
//!    emission in the per-frame hot loop is held to the identical budget.

use criterion::{criterion_group, BenchmarkId, Criterion};
use feves_bench::hd_config;
use feves_core::prelude::*;
use feves_obs::{
    hub, BusController, LiveConfig, LiveSnapshot, MemoryRecorder, Metric, NoopRecorder, Recorder,
};
use std::sync::Arc;
use std::time::Duration;

fn bench_recorder_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_event");
    let recorders: [(&str, Arc<dyn Recorder>); 2] = [
        ("noop", Arc::new(NoopRecorder)),
        ("memory", Arc::new(MemoryRecorder::new())),
    ];
    for (name, rec) in recorders {
        group.bench_with_input(BenchmarkId::from_parameter(name), &rec, |b, r| {
            b.iter(|| {
                let _span = feves_obs::span!(r.clone(), "bench.span");
                r.add(Metric::FramesEncoded, 1);
                r.observe(Metric::FrameTau1Ms, 12.5);
                std::hint::black_box(r.enabled())
            });
        });
    }
    group.finish();
}

/// Budget from §IV of the paper: scheduling must stay under 2 ms per
/// inter-frame, recording enabled.
const BUDGET_US: f64 = 2_000.0;

fn acceptance_check() {
    let rec = Arc::new(MemoryRecorder::new());
    let mut enc = FevesEncoder::new(Platform::sys_hk(), hd_config(32, 2, BalancerKind::Feves))
        .expect("valid bench config");
    enc.set_recorder(rec.clone());
    let report = enc.run_timing(16);

    let wall_max_us = report.max_sched_overhead() * 1e6;
    let hist = rec.histogram(Metric::SchedOverheadUs);
    let hist_max_us = hist.max();
    println!(
        "acceptance: sched overhead with recording enabled — wall max {:.1} us, \
         recorded max {:.1} us over {} frames (budget {} us)",
        wall_max_us,
        hist_max_us,
        hist.count(),
        BUDGET_US
    );
    assert!(
        hist.count() > 0,
        "recorder saw no sched.overhead_us samples"
    );
    let pass = wall_max_us < BUDGET_US && hist_max_us < BUDGET_US;
    println!("acceptance: {}", if pass { "PASS" } else { "FAIL" });
    assert!(
        pass,
        "scheduling overhead exceeded the 2 ms budget with recording enabled"
    );
}

/// The tentpole gate: the *live* path — session scope, bounded bus, drain
/// thread and periodic atomic snapshot writes — must keep per-frame
/// scheduling overhead inside the same 2 ms budget as plain recording.
fn live_acceptance_check() {
    let dir = std::env::temp_dir().join(format!("feves-obs-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let live_path = dir.join("live.json");

    let scope = hub().session("bench-live");
    let mut ctl = BusController::start(
        1 << 16,
        Some(LiveConfig {
            path: live_path.clone(),
            period: Duration::from_millis(25),
        }),
    );
    assert!(scope.attach_bus(ctl.bus()));
    let bus = ctl.bus();

    let mut enc = FevesEncoder::new(Platform::sys_hk(), hd_config(32, 2, BalancerKind::Feves))
        .expect("valid bench config");
    enc.set_scope(scope.clone());
    let report = enc.run_timing(16);
    ctl.stop();

    let wall_max_us = report.max_sched_overhead() * 1e6;
    let metrics = scope.metrics();
    let hist = metrics.histogram(Metric::SchedOverheadUs);
    let stats = bus.stats();
    println!(
        "live acceptance: sched overhead with live bus — wall max {:.1} us, \
         recorded max {:.1} us over {} frames (budget {} us)",
        wall_max_us,
        hist.max(),
        hist.count(),
        BUDGET_US
    );
    println!(
        "live acceptance: bus published {} · dropped {} · enqueue p99 {:.0} ns \
         (n={}) · drain batch mean {:.1} us · max {:.1} us",
        stats.published,
        stats.dropped,
        stats.enqueue_ns.p99,
        stats.enqueue_ns.count,
        stats.drain_batch_us.mean,
        stats.drain_batch_us.max,
    );
    assert!(
        hist.count() > 0,
        "live path saw no sched.overhead_us samples"
    );
    assert_eq!(
        scope.dropped_events(),
        0,
        "a 64Ki bus must not drop at 16-frame volume"
    );
    // The final snapshot the drain thread wrote at stop must parse.
    let text = std::fs::read_to_string(&live_path).expect("final live snapshot exists");
    let snap = LiveSnapshot::parse(&text).expect("final live snapshot parses");
    assert!(snap.seq() > 0);
    std::fs::remove_dir_all(&dir).ok();

    let pass = wall_max_us < BUDGET_US && hist.max() < BUDGET_US;
    println!("live acceptance: {}", if pass { "PASS" } else { "FAIL" });
    assert!(
        pass,
        "scheduling overhead exceeded the 2 ms budget with the live bus enabled"
    );
}

/// Causal tracing rides the same budget: a timing run with a `TraceSink`
/// attached must keep per-frame scheduling overhead under the same 2 ms,
/// and the sink must actually have collected the per-frame span tree.
fn trace_acceptance_check() {
    use feves_obs::{TraceCollector, TraceCtx, TraceSink};
    let collector = Arc::new(TraceCollector::new());
    let ctx = TraceCtx::for_job("bench-trace");
    let root_sink = TraceSink::new(
        collector.clone(),
        TraceCtx {
            trace_id: ctx.trace_id,
            parent_span: 0,
        },
        std::time::Instant::now(),
    );
    let root = root_sink.record("job:bench-trace", "job", 0.0, 0.0);

    let rec = Arc::new(MemoryRecorder::new());
    let mut enc = FevesEncoder::new(Platform::sys_hk(), hd_config(32, 2, BalancerKind::Feves))
        .expect("valid bench config");
    enc.set_recorder(rec.clone());
    enc.set_trace(root_sink.under(root));
    let report = enc.run_timing(16);

    let wall_max_us = report.max_sched_overhead() * 1e6;
    let hist = rec.histogram(Metric::SchedOverheadUs);
    let spans = collector.snapshot().spans.len();
    println!(
        "trace acceptance: sched overhead with tracing enabled — wall max {:.1} us, \
         recorded max {:.1} us, {} span(s) collected (budget {} us)",
        wall_max_us,
        hist.max(),
        spans,
        BUDGET_US
    );
    assert!(spans > 0, "tracing run collected no spans");
    let pass = wall_max_us < BUDGET_US && hist.max() < BUDGET_US;
    println!("trace acceptance: {}", if pass { "PASS" } else { "FAIL" });
    assert!(
        pass,
        "scheduling overhead exceeded the 2 ms budget with tracing enabled"
    );
}

criterion_group!(benches, bench_recorder_hot_path);

fn main() {
    // `cargo test` runs harness-less bench binaries with `--test`; the
    // acceptance run alone would add seconds to the suite.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    benches();
    acceptance_check();
    live_acceptance_check();
    trace_acceptance_check();
}
