//! Observability overhead bench: recording metrics and spans must not eat
//! into the paper's < 2 ms scheduling-overhead budget.
//!
//! Two measurements:
//!
//! 1. A criterion group timing the recorder hot path (counter + histogram +
//!    span) against the `NoopRecorder` baseline — the per-event cost.
//! 2. An end-to-end acceptance check: a full SysHK timing run with a
//!    `MemoryRecorder` attached still reports per-frame scheduling overhead
//!    below 2 ms (both the wall-clock report and the recorded
//!    `sched.overhead_us` histogram). The bench exits non-zero on failure.

use criterion::{criterion_group, BenchmarkId, Criterion};
use feves_bench::hd_config;
use feves_core::prelude::*;
use feves_obs::{MemoryRecorder, Metric, NoopRecorder, Recorder};
use std::sync::Arc;

fn bench_recorder_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_event");
    let recorders: [(&str, Arc<dyn Recorder>); 2] = [
        ("noop", Arc::new(NoopRecorder)),
        ("memory", Arc::new(MemoryRecorder::new())),
    ];
    for (name, rec) in recorders {
        group.bench_with_input(BenchmarkId::from_parameter(name), &rec, |b, r| {
            b.iter(|| {
                let _span = feves_obs::span!(r.clone(), "bench.span");
                r.add(Metric::FramesEncoded, 1);
                r.observe(Metric::FrameTau1Ms, 12.5);
                std::hint::black_box(r.enabled())
            });
        });
    }
    group.finish();
}

/// Budget from §IV of the paper: scheduling must stay under 2 ms per
/// inter-frame, recording enabled.
const BUDGET_US: f64 = 2_000.0;

fn acceptance_check() {
    let rec = Arc::new(MemoryRecorder::new());
    let mut enc = FevesEncoder::new(Platform::sys_hk(), hd_config(32, 2, BalancerKind::Feves))
        .expect("valid bench config");
    enc.set_recorder(rec.clone());
    let report = enc.run_timing(16);

    let wall_max_us = report.max_sched_overhead() * 1e6;
    let hist = rec.histogram(Metric::SchedOverheadUs);
    let hist_max_us = hist.max();
    println!(
        "acceptance: sched overhead with recording enabled — wall max {:.1} us, \
         recorded max {:.1} us over {} frames (budget {} us)",
        wall_max_us,
        hist_max_us,
        hist.count(),
        BUDGET_US
    );
    assert!(
        hist.count() > 0,
        "recorder saw no sched.overhead_us samples"
    );
    let pass = wall_max_us < BUDGET_US && hist_max_us < BUDGET_US;
    println!("acceptance: {}", if pass { "PASS" } else { "FAIL" });
    assert!(
        pass,
        "scheduling overhead exceeded the 2 ms budget with recording enabled"
    );
}

criterion_group!(benches, bench_recorder_hot_path);

fn main() {
    // `cargo test` runs harness-less bench binaries with `--test`; the
    // acceptance run alone would add seconds to the suite.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    benches();
    acceptance_check();
}
