//! Criterion benches of the platform simulator and the whole per-frame
//! framework iteration (balance → plan → graph → simulate → characterize):
//! the framework's own cost must stay negligible next to the encoding
//! work it orchestrates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use feves_core::prelude::*;

fn bench_frame_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("framework_frame_iteration");
    for (name, platform) in [
        ("SysNF", Platform::sys_nf()),
        ("SysNFF", Platform::sys_nff()),
        ("SysHK", Platform::sys_hk()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &platform, |b, p| {
            let params = EncodeParams {
                search_area: SearchArea(32),
                n_ref: 2,
                ..Default::default()
            };
            let mut enc = FevesEncoder::new(p.clone(), EncoderConfig::full_hd(params)).unwrap();
            enc.run_timing(3); // warm characterization
            b.iter(|| std::hint::black_box(enc.encode_inter_timing()));
        });
    }
    group.finish();
}

fn bench_lp_solver(c: &mut Criterion) {
    use feves_lp::{Problem, Relation, Sense};
    c.bench_function("simplex_makespan_12dev", |b| {
        b.iter(|| {
            let mut lp = Problem::new(Sense::Minimize);
            let tau = lp.add_var("tau", 1.0);
            let vars: Vec<_> = (0..12).map(|i| lp.add_var(format!("m{i}"), 0.0)).collect();
            let all: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
            lp.add_constraint(&all, Relation::Eq, 68.0);
            for (i, &v) in vars.iter().enumerate() {
                lp.add_constraint(&[(v, 0.5 + i as f64 * 0.3), (tau, -1.0)], Relation::Le, 0.0);
            }
            std::hint::black_box(lp.solve().unwrap())
        });
    });
}

criterion_group!(benches, bench_frame_iteration, bench_lp_solver);
criterion_main!(benches);
