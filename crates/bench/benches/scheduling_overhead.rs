//! Criterion bench for the §IV scheduling-overhead claim: one full Load
//! Balancing invocation (Dijkstra R\* mapping + Algorithm 2 LP + integer
//! rounding) must average well under 2 ms per inter-frame.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use feves_codec::types::Module;
use feves_hetsim::platform::Platform;
use feves_hetsim::timeline::{Dir, TransferTag};
use feves_sched::{BalanceInput, Ewma, FevesBalancer, LoadBalancer, PerfChar};

/// Characterize a platform from its true profiles (noise-free equivalent of
/// the equidistant first frame).
fn perfchar_for(platform: &Platform) -> PerfChar {
    let mut pc = PerfChar::new(platform.len(), Ewma(1.0));
    for (i, dev) in platform.devices.iter().enumerate() {
        pc.record_compute(
            i,
            Module::Me,
            1,
            dev.compute_time(Module::Me, 120.0 * 1024.0, 1.0),
        );
        pc.record_compute(
            i,
            Module::Interp,
            1,
            dev.compute_time(Module::Interp, 120.0, 1.0),
        );
        pc.record_compute(i, Module::Sme, 1, dev.compute_time(Module::Sme, 120.0, 1.0));
        let rstar: f64 = [Module::Mc, Module::Tq, Module::Itq, Module::Dbl]
            .iter()
            .map(|&m| dev.compute_time(m, 120.0 * 68.0, 1.0))
            .sum();
        pc.record_rstar(i, rstar);
        if let Some(link) = dev.link {
            use feves_codec::workload::bytes_per_row as bpr;
            for (tag, bytes) in [
                (TransferTag::Cf, bpr::cf(1920)),
                (TransferTag::Rf, bpr::rf(1920)),
                (TransferTag::Sf, bpr::sf(1920)),
                (TransferTag::Mv, bpr::mv(1920)),
            ] {
                pc.record_transfer(i, tag, Dir::H2d, 1, link.transfer_time(bytes, true));
                pc.record_transfer(i, tag, Dir::D2h, 1, link.transfer_time(bytes, false));
            }
        }
    }
    pc
}

fn bench_load_balancing(c: &mut Criterion) {
    let mut group = c.benchmark_group("load_balancing_per_frame");
    for (name, platform) in [
        ("SysNF", Platform::sys_nf()),
        ("SysNFF", Platform::sys_nff()),
        ("SysHK", Platform::sys_hk()),
    ] {
        let perf = perfchar_for(&platform);
        group.bench_with_input(BenchmarkId::from_parameter(name), &platform, |b, p| {
            let mut balancer = FevesBalancer::default();
            b.iter(|| {
                let d = balancer.distribute(&BalanceInput {
                    n_rows: 68,
                    platform: p,
                    perf: &perf,
                    prev: None,
                });
                std::hint::black_box(d)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_load_balancing);
criterion_main!(benches);
