//! Criterion benches of the encoding-library kernels (the real compute the
//! functional mode runs): full-search ME, sub-pixel interpolation, SME
//! refinement, transform/quantization and deblocking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use feves_codec::interp::{interpolate, SubpelFrame};
use feves_codec::me::{motion_estimate_mb, MbMotion};
use feves_codec::quant::{itq_block, tq_block};
use feves_codec::sme::sme_mb;
use feves_codec::types::{EncodeParams, SearchArea};
use feves_video::geometry::RowRange;
use feves_video::plane::Plane;

fn textured_plane(w: usize, h: usize, seed: u8) -> Plane<u8> {
    let mut p = Plane::new(w, h);
    for y in 0..h {
        for x in 0..w {
            p.set(x, y, ((x * 31) ^ (y * 17) ^ seed as usize) as u8);
        }
    }
    p
}

fn bench_me(c: &mut Criterion) {
    let mut group = c.benchmark_group("me_fsbm_per_mb");
    let cf = textured_plane(128, 128, 1);
    let rf = textured_plane(128, 128, 2);
    for sa in [16u16, 32, 64] {
        let params = EncodeParams {
            search_area: SearchArea(sa),
            n_ref: 1,
            ..Default::default()
        };
        group.throughput(Throughput::Elements(sa as u64 * sa as u64));
        group.bench_with_input(BenchmarkId::from_parameter(sa), &params, |b, p| {
            b.iter(|| std::hint::black_box(motion_estimate_mb(&cf, &[&rf], p, 2, 2)));
        });
    }
    group.finish();
}

fn bench_interp(c: &mut Criterion) {
    let rf = textured_plane(352, 288, 3);
    c.bench_function("interp_cif_frame", |b| {
        b.iter(|| std::hint::black_box(interpolate(&rf)));
    });
    let mut sf = SubpelFrame::new(352, 288);
    c.bench_function("interp_cif_mb_row", |b| {
        b.iter(|| {
            sf.interpolate_rows(&rf, RowRange::new(4, 5));
            std::hint::black_box(&sf);
        });
    });
}

fn bench_sme(c: &mut Criterion) {
    let cf = textured_plane(128, 128, 1);
    let rf = textured_plane(128, 128, 2);
    let sf = interpolate(&rf);
    let params = EncodeParams {
        search_area: SearchArea(16),
        n_ref: 1,
        ..Default::default()
    };
    let me: MbMotion = motion_estimate_mb(&cf, &[&rf], &params, 2, 2);
    c.bench_function("sme_refine_per_mb", |b| {
        b.iter(|| std::hint::black_box(sme_mb(&cf, &[&sf], &me, 2, 2)));
    });
}

fn bench_tq(c: &mut Criterion) {
    let residual: [i16; 16] = core::array::from_fn(|i| (i as i16 * 13 - 90) % 120);
    c.bench_function("tq_block_4x4", |b| {
        b.iter(|| std::hint::black_box(tq_block(&residual, 28, false)));
    });
    let levels = tq_block(&residual, 28, false);
    c.bench_function("itq_block_4x4", |b| {
        b.iter(|| std::hint::black_box(itq_block(&levels, 28)));
    });
}

fn bench_dbl(c: &mut Criterion) {
    use feves_codec::dbl::{deblock_frame, deblock_frame_wavefront};
    use feves_codec::mc::ModeField;
    use feves_codec::recon::CoeffField;
    use feves_codec::sme::SmeBlockMv;
    use feves_codec::types::QpelMv;
    let (mb_cols, mb_rows) = (22, 18); // CIF
    let mut modes = ModeField::new(mb_cols, mb_rows);
    let mut coeffs = CoeffField::new(mb_cols, mb_rows);
    for mby in 0..mb_rows {
        for mbx in 0..mb_cols {
            modes.mb_mut(mbx, mby).mvs = [SmeBlockMv {
                rf: 0,
                mv: QpelMv::new((mbx as i16 * 7) % 30 - 15, (mby as i16 * 5) % 20 - 10),
                cost: 0,
            }; 16];
            coeffs.mb_mut(mbx, mby).coded_mask = ((mbx * 31 + mby * 17) % 65536) as u16;
        }
    }
    let base = textured_plane(mb_cols * 16, mb_rows * 16, 9);
    let mut group = c.benchmark_group("deblock_cif_frame");
    group.bench_function("raster", |b| {
        b.iter(|| {
            let mut p = base.clone();
            deblock_frame(&mut p, &modes, &coeffs, 32);
            std::hint::black_box(p)
        });
    });
    group.bench_function("wavefront", |b| {
        b.iter(|| {
            let mut p = base.clone();
            deblock_frame_wavefront(&mut p, &modes, &coeffs, 32);
            std::hint::black_box(p)
        });
    });
    group.finish();
}

/// Scalar vs fast (SWAR) dispatch families head-to-head: the 16×16 SAD
/// grid driving full-search ME and the sub-pixel interpolation frame pass.
/// Calls the `kernels::scalar`/`kernels::fast` entry points directly so
/// both variants are measured regardless of `FEVES_KERNELS`.
fn bench_kernel_dispatch(c: &mut Criterion) {
    use feves_codec::kernels;

    let cur = textured_plane(128, 128, 1);
    let rf = textured_plane(128, 128, 2);
    let mut group = c.benchmark_group("sad_grid_16x16");
    group.throughput(Throughput::Elements(256));
    group.bench_function("scalar", |b| {
        b.iter(|| std::hint::black_box(kernels::scalar::sad_grid_16x16(&cur, 48, 48, &rf, 52, 44)));
    });
    group.bench_function("fast", |b| {
        b.iter(|| std::hint::black_box(kernels::fast::sad_grid_16x16(&cur, 48, 48, &rf, 52, 44)));
    });
    group.finish();

    let src = textured_plane(352, 288, 5);
    let mut sf = SubpelFrame::new(352, 288);
    let mut group = c.benchmark_group("interp_cif_dispatch");
    group.bench_function("scalar", |b| {
        kernels::force_kind(kernels::KernelKind::Scalar);
        b.iter(|| {
            sf.interpolate_rows(&src, RowRange::new(0, 18));
            std::hint::black_box(&sf);
        });
    });
    group.bench_function("fast", |b| {
        kernels::force_kind(kernels::KernelKind::Fast);
        b.iter(|| {
            sf.interpolate_rows(&src, RowRange::new(0, 18));
            std::hint::black_box(&sf);
        });
    });
    group.finish();
}

fn bench_entropy(c: &mut Criterion) {
    use feves_codec::entropy::{encode_block, BitWriter};
    let residual: [i16; 16] = core::array::from_fn(|i| (i as i16 * 13 - 90) % 120);
    let levels = tq_block(&residual, 28, false);
    c.bench_function("entropy_block_4x4", |b| {
        b.iter(|| {
            let mut w = BitWriter::new();
            encode_block(&mut w, &levels);
            std::hint::black_box(w.finish())
        });
    });
}

criterion_group!(
    benches,
    bench_me,
    bench_interp,
    bench_sme,
    bench_tq,
    bench_kernel_dispatch,
    bench_dbl,
    bench_entropy
);
criterion_main!(benches);
