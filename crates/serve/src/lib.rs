#![warn(missing_docs)]
//! # feves-serve — service mode for the FEVES encoder
//!
//! The paper's framework drives *one* encode session on one heterogeneous
//! platform. This crate turns that into an operable service: a supervised
//! encode farm that accepts jobs over a spool directory, multiplexes them
//! across the shared platform via fleet-level device leases (a partitioner
//! *above* the per-frame Algorithm-2 LP — see [`partition`]), and survives
//! the failure modes a long-running daemon actually meets:
//!
//! - **Admission control** — a bounded queue with a high-watermark reject
//!   line and a typed [`ServeError::QueueFull`] ([`queue`]).
//! - **Backpressure** — in-flight session credits cap concurrency.
//! - **Fault isolation** — each session runs on its own worker thread
//!   behind `catch_unwind`; a dying session blacklists its attributed
//!   device in a fleet-level health machine and is retried under a
//!   budgeted, jittered backoff, resuming bit-exactly from its last
//!   durable checkpoint ([`farm`], [`session`]).
//! - **Graceful drain** — `SIGTERM`/`SIGINT` (or a `ctl/drain` marker)
//!   stops admission, preempts in-flight sessions into durable
//!   checkpoints, flushes the final live telemetry snapshot, and exits
//!   zero with zero lost jobs ([`signal`]).
//!
//! The invariant everything hangs on: a job encoded under the farm is
//! **byte-identical** to the same job encoded by a single `feves encode`,
//! whatever leases, faults, retries or drains happened along the way.

pub mod farm;
pub mod job;
pub mod partition;
pub mod queue;
pub mod session;
pub mod signal;

pub use farm::{DrainReport, FarmConfig, DEFAULT_CHECKPOINT_EVERY};
pub use job::{JobSpec, JobStatus};
pub use queue::JobQueue;
pub use session::{verify_artifact, SessionFailure, SessionReport};

use std::fmt;

/// Typed errors of the service layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Admission refused: the queue reached its high watermark.
    QueueFull {
        /// Jobs queued at the moment of refusal.
        depth: usize,
        /// The reject line the queue enforces.
        high_watermark: usize,
    },
    /// A malformed or unusable job spec.
    BadJob(String),
    /// Spool / output filesystem trouble.
    Io(String),
    /// A control file or artifact failed its integrity check (checksum
    /// trailer mismatch, torn write, bit-rot). Rejected, never crashed on.
    Corrupt(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull {
                depth,
                high_watermark,
            } => write!(
                f,
                "queue full: {depth} queued >= high watermark {high_watermark}"
            ),
            ServeError::BadJob(m) => write!(f, "bad job: {m}"),
            ServeError::Io(m) => write!(f, "io: {m}"),
            ServeError::Corrupt(m) => write!(f, "corrupt: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}
