//! Minimal async-signal-safe shutdown flag.
//!
//! The workspace vendors no `libc`/`signal-hook`, so the daemon binds the
//! C `signal(2)` entry point directly. The handler does the only thing an
//! async-signal-safe handler may do here: store into a static atomic. The
//! farm loop and the CLI encode loop poll [`shutdown_requested`] at frame
//! granularity and run the graceful-drain / checkpoint protocol themselves.

use std::sync::atomic::{AtomicBool, Ordering};

/// `SIGINT` (Ctrl-C) on every Unix.
pub const SIGINT: i32 = 2;
/// `SIGTERM` — what process supervisors send first.
pub const SIGTERM: i32 = 15;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_sig: i32) {
        super::SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(super::SIGTERM, on_signal as *const () as usize);
            signal(super::SIGINT, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    // Non-Unix hosts keep the default dispositions; the flag can still be
    // raised programmatically via `request_shutdown`.
    pub fn install() {}
}

/// Route `SIGTERM` and `SIGINT` into the shutdown flag. Idempotent;
/// process-wide.
pub fn install_handlers() {
    imp::install();
}

/// True once a shutdown signal arrived (or [`request_shutdown`] was called).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Raise the shutdown flag without a signal (tests, programmatic drain).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clear the flag — the process-wide static would otherwise leak a stale
/// shutdown across unit tests sharing one test binary.
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trip() {
        reset();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset();
        assert!(!shutdown_requested());
    }

    #[test]
    fn install_is_idempotent() {
        install_handlers();
        install_handlers();
    }
}
