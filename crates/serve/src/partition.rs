//! Fleet-level device partitioner — the layer *above* the per-frame
//! Algorithm-2 LP.
//!
//! The paper's load balancer divides one frame across the devices a single
//! encoder session can see. When the daemon multiplexes several sessions
//! over one physical platform, something has to decide which devices each
//! session sees at all; that is the lease mask computed here. The split is
//! deliberately simple and deterministic:
//!
//! - **CPU cores are shared by every session.** The simulator timeslices
//!   them, a session without at least one host core cannot run the control
//!   loop, and `FevesEncoder::apply_lease` enforces that invariant anyway.
//! - **Healthy accelerators are dealt round-robin** across the active
//!   sessions, in device order, so each session gets a fair, disjoint
//!   accelerator share and the per-frame LP load-balances within it.
//!
//! A device the fleet health machine has blacklisted (a session died and
//! attributed it) is excluded from every lease until its backoff expires —
//! fault isolation at the farm level. Leases restrict scheduling only;
//! functional output bytes are independent of the device split, which is
//! what makes farm output byte-identical to single-session output.

/// Per-session lease masks over the shared platform.
///
/// `accel[d]` says whether platform device `d` is an accelerator;
/// `fleet_avail[d]` is the fleet health machine's availability verdict.
/// Returns one full-length mask per session (empty when `n_sessions == 0`).
pub fn fair_leases(accel: &[bool], fleet_avail: &[bool], n_sessions: usize) -> Vec<Vec<bool>> {
    assert_eq!(accel.len(), fleet_avail.len(), "mask lengths must match");
    if n_sessions == 0 {
        return Vec::new();
    }
    // Host cores are always shared; accelerators start excluded.
    let base: Vec<bool> = accel.iter().map(|&is_accel| !is_accel).collect();
    let mut leases = vec![base; n_sessions];
    let healthy_accels = accel
        .iter()
        .zip(fleet_avail)
        .enumerate()
        .filter(|(_, (&is_accel, &avail))| is_accel && avail)
        .map(|(d, _)| d);
    for (slot, device) in healthy_accels.enumerate() {
        leases[slot % n_sessions][device] = true;
    }
    leases
}

#[cfg(test)]
mod tests {
    use super::*;

    // SysHK-shaped platform: two accelerators then four host cores.
    const ACCEL: [bool; 6] = [true, true, false, false, false, false];

    #[test]
    fn single_session_gets_the_whole_healthy_platform() {
        let leases = fair_leases(&ACCEL, &[true; 6], 1);
        assert_eq!(leases, vec![vec![true; 6]]);
    }

    #[test]
    fn accelerators_deal_round_robin_cores_shared() {
        let leases = fair_leases(&ACCEL, &[true; 6], 2);
        assert_eq!(leases[0], [true, false, true, true, true, true]);
        assert_eq!(leases[1], [false, true, true, true, true, true]);
    }

    #[test]
    fn more_sessions_than_accelerators_still_all_runnable() {
        let leases = fair_leases(&ACCEL, &[true; 6], 3);
        // Sessions 0 and 1 take the two accelerators; session 2 is CPU-only
        // but still holds every host core, so it can run.
        assert_eq!(leases[2], [false, false, true, true, true, true]);
        for lease in &leases {
            assert!(
                lease[2..].iter().all(|&c| c),
                "every session must keep the shared host cores"
            );
        }
    }

    #[test]
    fn blacklisted_accelerator_is_leased_to_nobody() {
        let avail = [false, true, true, true, true, true];
        let leases = fair_leases(&ACCEL, &avail, 2);
        assert!(
            leases.iter().all(|l| !l[0]),
            "dead device must not be leased"
        );
        // The surviving accelerator still goes to exactly one session.
        assert_eq!(leases.iter().filter(|l| l[1]).count(), 1);
    }

    #[test]
    fn zero_sessions_is_empty() {
        assert!(fair_leases(&ACCEL, &[true; 6], 0).is_empty());
    }
}
