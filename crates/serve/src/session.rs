//! One supervised encode session: the library-side twin of the CLI's
//! `feves encode` / `feves resume` path.
//!
//! Bit-exactness is the contract here: a job run under the farm must
//! produce output byte-identical to the same job run as a single
//! `feves encode`. That is why this module mirrors the CLI's
//! platform/config reconstruction, checkpoint protocol and resume
//! truncation logic step for step — the only deliberate differences are
//! that a farm session is quiet (no per-frame printing), carries a
//! [`feves_core::SessionCtl`] so the supervisor can preempt it at frame
//! boundaries, and seeds the health-backoff jitter from the job id
//! (scheduling timing only; never functional bytes).

use crate::job::JobSpec;
use crate::ServeError;
use feves_codec::types::{EncodeParams, SearchArea};
use feves_core::{
    load_latest, BalancerKind, CheckpointManager, EncoderConfig, ExecutionMode, FevesEncoder,
    FrameworkState, ResumeContext, SessionCtl,
};
use feves_ft::ckpt::{crc32, crc32_update, fnv1a64, CRC32_INIT};
use feves_ft::io::{backend_for, CrcFile};
use feves_ft::{FaultSchedule, FevesError};
use feves_hetsim::platform::Platform;
use feves_hetsim::profiles;
use feves_obs::{NoopRecorder, SessionScope, TraceSink};
use feves_video::frame::Frame;
use feves_video::y4m::{Y4mHeader, Y4mReader, Y4mWriter};
use std::io::{BufWriter, Seek, SeekFrom};
use std::path::Path;
use std::sync::Arc;

/// What a session that ran to a clean stop reports back.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionReport {
    /// Frames durably on disk (all of them unless interrupted).
    pub frames_done: usize,
    /// Total frames in the input.
    pub n_frames: usize,
    /// Committed output bytes.
    pub out_bytes: u64,
    /// CRC-32 of the output, streamed on the write path — what the bytes
    /// *should* be, independent of what the disk later returns. Zero when
    /// interrupted (the checkpoint carries the prefix CRC instead).
    pub artifact_crc: u32,
    /// True when the supervisor's stop request ended the session early —
    /// a durable checkpoint was committed first.
    pub interrupted: bool,
}

/// Check a completed artifact against its streamed size + CRC by
/// re-reading it from disk. This is the farm's verify-before-`completed`
/// gate: bit-rot between fsync and report, or a torn write the session
/// missed, surfaces here as a typed message instead of a corrupt
/// "completed" artifact.
pub fn verify_artifact(path: &str, bytes: u64, crc: u32) -> Result<(), String> {
    let p = Path::new(path);
    let raw = backend_for(p).read(p).map_err(|e| format!("{path}: {e}"))?;
    if raw.len() as u64 != bytes {
        return Err(format!(
            "{path}: artifact is {} bytes, session wrote {bytes}",
            raw.len()
        ));
    }
    let got = crc32(&raw);
    if got != crc {
        return Err(format!(
            "{path}: artifact checksum {got:08x} != streamed {crc:08x} (corrupt artifact)"
        ));
    }
    Ok(())
}

/// A session that died: the message plus the attributed device, when the
/// fault had one, so the supervisor can blacklist it fleet-wide.
#[derive(Clone, Debug)]
pub struct SessionFailure {
    /// Human-readable cause.
    pub message: String,
    /// Platform device index to blame, if attribution was possible.
    pub culprit: Option<usize>,
}

impl SessionFailure {
    fn new(message: impl ToString) -> Self {
        SessionFailure {
            message: message.to_string(),
            culprit: None,
        }
    }

    fn from_feves(e: FevesError) -> Self {
        let culprit = match &e {
            FevesError::Fault(f) => Some(f.device),
            _ => None,
        };
        SessionFailure {
            message: e.to_string(),
            culprit,
        }
    }
}

/// Resolve a named platform exactly as the CLI does.
pub(crate) fn platform_of(name: &str) -> Result<(Platform, BalancerKind), String> {
    Ok(match name {
        "syshk" => (Platform::sys_hk(), BalancerKind::Feves),
        "sysnf" => (Platform::sys_nf(), BalancerKind::Feves),
        "sysnff" => (Platform::sys_nff(), BalancerKind::Feves),
        "cpu-n" => (
            Platform::cpu_only(profiles::cpu_nehalem(), 4),
            BalancerKind::CpuOnly,
        ),
        "cpu-h" => (
            Platform::cpu_only(profiles::cpu_haswell(), 4),
            BalancerKind::CpuOnly,
        ),
        "gpu-f" => (
            Platform::gpu_only(profiles::gpu_fermi()),
            BalancerKind::SingleAccelerator(0),
        ),
        "gpu-k" => (
            Platform::gpu_only(profiles::gpu_kepler()),
            BalancerKind::SingleAccelerator(0),
        ),
        other => {
            return Err(format!(
                "unknown platform '{other}' (see `feves platforms`)"
            ))
        }
    })
}

/// The fleet platform the partitioner and fleet health machine size against.
pub fn fleet_platform(name: &str) -> Result<Platform, ServeError> {
    platform_of(name)
        .map(|(p, _)| p)
        .map_err(ServeError::BadJob)
}

/// Build the platform + functional encoder config a job describes —
/// the same reconstruction the CLI's `JobSpec::build` performs, so farm
/// and single-session runs of one job are configured identically.
fn build_job_config(
    job: &JobSpec,
    resolution: feves_video::geometry::Resolution,
) -> Result<(Platform, EncoderConfig), String> {
    // Kernel dispatch is process-global (FEVES_KERNELS); the simulated CPU
    // profiles must match whatever family the host actually runs.
    let kernel_kind = feves_codec::kernels::active_kind();
    let (mut platform, default_balancer) = platform_of(&job.platform)?;
    platform.devices = platform
        .devices
        .drain(..)
        .map(|d| profiles::scaled_for_kernels(d, kernel_kind))
        .collect();
    let params = EncodeParams {
        search_area: SearchArea(job.sa),
        n_ref: job.refs,
        qp: job.qp,
        qp_intra: job.qp.saturating_sub(1),
    };
    let mut cfg = EncoderConfig::full_hd(params);
    cfg.resolution = resolution;
    cfg.balancer = match job.balancer.as_str() {
        "feves" => default_balancer,
        "proportional" => BalancerKind::Proportional,
        "equidistant" => BalancerKind::Equidistant,
        other => return Err(format!("unknown balancer '{other}'")),
    };
    cfg.faults = FaultSchedule::parse(&job.faults)
        .map_err(|e| e.to_string())?
        .specs;
    cfg.mode = ExecutionMode::Functional;
    // Decorrelate concurrent sessions' re-admission probes of a shared
    // recovered device. Timing only — functional bytes are unaffected.
    cfg.health_jitter = Some(job.seed());
    cfg.pipeline = job.pipeline;
    cfg.trace = job.trace;
    Ok((platform, cfg))
}

/// Read the job's input, returning its fingerprint, header and frames.
fn read_input(input: &str) -> Result<(u64, Y4mHeader, Vec<Frame>), SessionFailure> {
    let raw = std::fs::read(input).map_err(|e| SessionFailure::new(format!("{input}: {e}")))?;
    let fp = fnv1a64(&raw);
    let mut reader = Y4mReader::new(std::io::Cursor::new(raw))
        .map_err(|e| SessionFailure::new(format!("{input}: {e}")))?;
    let header = reader.header();
    let frames = reader
        .read_all()
        .map_err(|e| SessionFailure::new(format!("{input}: {e}")))?;
    Ok((fp, header, frames))
}

/// A usable checkpoint to continue from, if one exists and still matches
/// the input and output on disk. Any mismatch or corruption falls back to
/// a fresh encode — re-encoding from frame 0 is always bit-safe, so the
/// farm prefers it over refusing the job.
fn usable_checkpoint(
    job: &JobSpec,
    input_fp: u64,
    n_frames: usize,
) -> Option<(ResumeContext, FrameworkState, u32)> {
    let dir = job.ckpt_dir();
    if !dir.is_dir() {
        return None;
    }
    let (_path, ctx, state, _warnings) = load_latest(&dir).ok()?;
    if ctx.input_fingerprint != input_fp || ctx.n_frames != n_frames {
        return None;
    }
    // A frame-0 checkpoint (preempted before any work) carries no output —
    // not even the Y4M header. Starting fresh is identical and simpler.
    if ctx.frames_done == 0 {
        return None;
    }
    let out = Path::new(&ctx.output);
    let raw = backend_for(out).read(out).ok()?;
    if (raw.len() as u64) < ctx.out_bytes {
        return None;
    }
    // The committed prefix must still hash to what the checkpoint claims:
    // bit-rot in already-durable bytes must never be extended into a
    // "complete" artifact.
    let crc_state = crc32_update(CRC32_INIT, &raw[..ctx.out_bytes as usize]);
    if !crc_state != ctx.out_crc {
        return None;
    }
    Some((ctx, state, crc_state))
}

/// Flush + fsync the output so the frame boundary is durable, then commit
/// a checkpoint claiming it — the CLI's protocol, verbatim.
fn commit_checkpoint(
    writer: &mut Y4mWriter<BufWriter<CrcFile>>,
    out_path: &str,
    enc: &mut FevesEncoder,
    mgr: &CheckpointManager,
    ctx: &mut ResumeContext,
    done: usize,
    trace: Option<&TraceSink>,
) -> Result<(), SessionFailure> {
    let ckpt_start = trace.map(|t| t.now_us());
    let io_fail = |e: &dyn std::fmt::Display| SessionFailure::new(format!("{out_path}: {e}"));
    writer.flush().map_err(|e| io_fail(&e))?;
    let file = writer.get_ref().get_ref();
    file.sync().map_err(|e| io_fail(&e))?;
    ctx.frames_done = done;
    ctx.out_bytes = file.bytes();
    // The checkpoint claims the CRC of the bytes it just made durable; a
    // retry refuses to resume atop a prefix that no longer hashes to this.
    ctx.out_crc = file.crc();
    // Checkpoints only commit at quiesced frame boundaries: drain any
    // in-flight pipeline generation before snapshotting.
    enc.quiesce_pipeline();
    let state = enc.snapshot();
    mgr.write(ctx, &state, &NoopRecorder)
        .map_err(|e| SessionFailure::new(format!("checkpoint {}: {e}", mgr.dir().display())))?;
    // One wall-clock checkpoint span under the attempt, named by the frame
    // boundary it committed — the anchor a retry's resume edge points at.
    if let (Some(t), Some(start)) = (trace, ckpt_start) {
        t.record(
            &format!("ckpt{done}"),
            "checkpoint",
            start,
            t.now_us() - start,
        );
    }
    Ok(())
}

/// Run one job to completion, a preemption checkpoint, or failure.
///
/// `attempt` is 0 on first dispatch and counts up across supervisor
/// retries; the [`JobSpec::chaos_kill_at`] hook only fires on attempt 0,
/// so a retried job proves the checkpointed-recovery path.
pub fn run_session(
    job: &JobSpec,
    ctl: &Arc<SessionCtl>,
    scope: SessionScope,
    attempt: u32,
    trace: Option<TraceSink>,
) -> Result<SessionReport, SessionFailure> {
    let (input_fp, header, frames) = read_input(&job.input)?;
    let n_frames = frames.len();
    if n_frames == 0 {
        return Err(SessionFailure::new(format!("{}: empty input", job.input)));
    }
    let (platform, cfg) = build_job_config(job, header.resolution).map_err(SessionFailure::new)?;
    let every = if job.checkpoint_every > 0 {
        job.checkpoint_every
    } else {
        crate::farm::DEFAULT_CHECKPOINT_EVERY
    };

    // Fresh start, or resume from the newest checkpoint that still matches
    // the on-disk input and output.
    let resume = usable_checkpoint(job, input_fp, n_frames);
    let out_path = job.output.clone();
    let (mut enc, mut writer, mut ctx) = match resume {
        Some((mut ctx, state, prefix_crc_state)) => {
            // Everything past the committed boundary is a torn frame from
            // the previous attempt: truncate it away.
            let open_fail =
                |e: &dyn std::fmt::Display| SessionFailure::new(format!("{out_path}: {e}"));
            let mut file = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(&out_path)
                .map_err(|e| open_fail(&e))?;
            file.set_len(ctx.out_bytes).map_err(|e| open_fail(&e))?;
            file.seek(SeekFrom::End(0)).map_err(|e| open_fail(&e))?;
            let enc =
                FevesEncoder::restore(platform, cfg, state).map_err(SessionFailure::from_feves)?;
            // Seed the streaming CRC with the verified prefix so the final
            // artifact checksum covers the whole file, both attempts.
            let crc_file = CrcFile::resume(file, prefix_crc_state, ctx.out_bytes);
            let writer = Y4mWriter::resume(BufWriter::new(crc_file), header);
            ctx.every = every;
            // The job spec, not the checkpoint, owns the scheduling mode:
            // resuming lockstep work pipelined (or vice versa) is bit-safe.
            ctx.pipeline = job.pipeline;
            (enc, writer, ctx)
        }
        None => {
            let enc = FevesEncoder::new(platform, cfg).map_err(SessionFailure::from_feves)?;
            let file = CrcFile::create(Path::new(&out_path))
                .map_err(|e| SessionFailure::new(format!("{out_path}: {e}")))?;
            let writer = Y4mWriter::new(BufWriter::new(file), header);
            let ctx = ResumeContext {
                input: job.input.clone(),
                output: out_path.clone(),
                platform: job.platform.clone(),
                platform_json: None,
                sa: job.sa,
                refs: job.refs,
                qp: job.qp,
                balancer: job.balancer.clone(),
                kernels: None,
                faults: job.faults.clone(),
                deadline_factor: None,
                flight_out: None,
                metrics_out: None,
                every,
                keep: 2,
                frames_done: 0,
                n_frames,
                out_bytes: 0,
                input_fingerprint: input_fp,
                pipeline: job.pipeline,
                out_crc: 0,
            };
            (enc, writer, ctx)
        }
    };
    enc.set_scope(scope);
    enc.set_ctl(ctl.clone());
    if let Some(sink) = &trace {
        // Frame/phase/kernel spans parent under the farm's attempt span.
        enc.set_trace(sink.clone());
    }
    let trace = trace.as_ref();
    let mgr = CheckpointManager::new(job.ckpt_dir(), ctx.keep);

    let start = ctx.frames_done;
    for (i, f) in frames.iter().enumerate().skip(start) {
        if ctl.stop_requested() {
            // Preemption lands only at frame boundaries; commit a durable
            // checkpoint here regardless of the cadence, so the drain
            // loses zero frames of work.
            commit_checkpoint(&mut writer, &out_path, &mut enc, &mgr, &mut ctx, i, trace)?;
            return Ok(SessionReport {
                frames_done: i,
                n_frames,
                out_bytes: ctx.out_bytes,
                artifact_crc: 0,
                interrupted: true,
            });
        }
        if attempt == 0 && job.chaos_kill_at == Some(i) {
            panic!(
                "chaos: injected session kill before frame {i} of job '{}'",
                job.id
            );
        }
        enc.encode_frame(f);
        let (y, u, v) = enc
            .last_reconstruction_yuv()
            .ok_or_else(|| SessionFailure::new("functional encode produced no reconstruction"))?;
        let mut rf = f.clone();
        rf.y_mut().copy_from(y);
        rf.u_mut().copy_from(u);
        rf.v_mut().copy_from(v);
        writer
            .write_frame(&rf)
            .map_err(|e| SessionFailure::new(format!("{out_path}: {e}")))?;
        let done = i + 1;
        // Under disk pressure the supervisor sheds cadence checkpoints —
        // progress durability trades away, bit-exactness does not.
        // Preemption and final commits are never shed.
        if ctx.every > 0 && done % ctx.every == 0 && done < n_frames && !ctl.ckpt_shed() {
            commit_checkpoint(
                &mut writer,
                &out_path,
                &mut enc,
                &mgr,
                &mut ctx,
                done,
                trace,
            )?;
        }
    }
    let buf = writer
        .finish()
        .map_err(|e| SessionFailure::new(format!("{out_path}: {e}")))?;
    let file = buf
        .into_inner()
        .map_err(|e| SessionFailure::new(format!("{out_path}: {e}")))?;
    // A job is only ever reported complete after its artifact fsyncs; the
    // streamed CRC is what the farm verifies the on-disk bytes against.
    file.sync()
        .map_err(|e| SessionFailure::new(format!("{out_path}: {e}")))?;
    Ok(SessionReport {
        frames_done: n_frames,
        n_frames,
        out_bytes: file.bytes(),
        artifact_crc: file.crc(),
        interrupted: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use feves_obs::hub;
    use feves_video::geometry::Resolution;
    use feves_video::synth::{SynthConfig, SynthSequence};
    use std::path::{Path, PathBuf};

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("feves-serve-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_input(path: &Path, n_frames: usize) {
        let mut seq = SynthSequence::new(SynthConfig {
            resolution: Resolution::QCIF,
            seed: 7,
            objects: 4,
            pan: (1.0, 0.5),
            noise: 2,
        });
        let frames = seq.take_frames(n_frames);
        let header = Y4mHeader {
            resolution: frames[0].resolution(),
            fps: (25, 1),
        };
        let mut w = Y4mWriter::new(Vec::new(), header);
        for f in &frames {
            w.write_frame(f).unwrap();
        }
        std::fs::write(path, w.finish().unwrap()).unwrap();
    }

    fn job(dir: &Path, id: &str) -> JobSpec {
        JobSpec {
            id: id.into(),
            input: dir.join("in.y4m").to_string_lossy().into_owned(),
            output: dir.join(format!("{id}.y4m")).to_string_lossy().into_owned(),
            sa: 16,
            refs: 2,
            checkpoint_every: 2,
            ..JobSpec::default()
        }
    }

    #[test]
    fn completes_and_is_deterministic() {
        let dir = scratch("session-det");
        write_input(&dir.join("in.y4m"), 6);
        let ctl = Arc::new(SessionCtl::new());
        let a = run_session(&job(&dir, "a"), &ctl, hub().session("a"), 0, None).unwrap();
        assert_eq!((a.frames_done, a.interrupted), (6, false));
        let b = run_session(&job(&dir, "b"), &ctl, hub().session("b"), 0, None).unwrap();
        let bytes_a = std::fs::read(job(&dir, "a").output).unwrap();
        let bytes_b = std::fs::read(job(&dir, "b").output).unwrap();
        assert_eq!(a.out_bytes, b.out_bytes);
        assert_eq!(
            bytes_a, bytes_b,
            "two runs of one job must be bit-identical"
        );
    }

    #[test]
    fn stop_request_checkpoints_and_resume_is_bit_exact() {
        let dir = scratch("session-stop");
        write_input(&dir.join("in.y4m"), 6);
        let baseline = job(&dir, "base");
        let ctl = Arc::new(SessionCtl::new());
        run_session(&baseline, &ctl, hub().session("base"), 0, None).unwrap();

        // Stop before the session starts: it must checkpoint frame 0 work
        // (none) durably and report interrupted.
        let j = job(&dir, "stopped");
        let ctl = Arc::new(SessionCtl::new());
        ctl.request_stop();
        let rep = run_session(&j, &ctl, hub().session("stopped"), 0, None).unwrap();
        assert!(rep.interrupted);
        assert!(rep.frames_done < rep.n_frames);
        assert!(j.ckpt_dir().is_dir(), "preemption must leave a checkpoint");

        // A later attempt resumes from it and finishes byte-identical.
        let ctl = Arc::new(SessionCtl::new());
        let rep = run_session(&j, &ctl, hub().session("stopped-2"), 1, None).unwrap();
        assert_eq!((rep.frames_done, rep.interrupted), (6, false));
        assert_eq!(
            std::fs::read(&j.output).unwrap(),
            std::fs::read(&baseline.output).unwrap(),
            "resumed session must be bit-identical to an uninterrupted one"
        );
    }

    #[test]
    fn chaos_kill_fires_only_on_attempt_zero() {
        let dir = scratch("session-chaos");
        write_input(&dir.join("in.y4m"), 6);
        let mut j = job(&dir, "chaos");
        j.chaos_kill_at = Some(3);
        let ctl = Arc::new(SessionCtl::new());
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_session(&j, &ctl, hub().session("chaos"), 0, None)
        }));
        assert!(panicked.is_err(), "attempt 0 must hit the chaos kill");
        // Attempt 1 resumes from the frame-2 checkpoint and completes.
        let rep = run_session(&j, &ctl, hub().session("chaos-2"), 1, None).unwrap();
        assert_eq!((rep.frames_done, rep.interrupted), (6, false));
        let baseline = job(&dir, "cbase");
        run_session(&baseline, &ctl, hub().session("cbase"), 0, None).unwrap();
        assert_eq!(
            std::fs::read(&j.output).unwrap(),
            std::fs::read(&baseline.output).unwrap(),
            "chaos-killed + retried output must match the clean run"
        );
    }

    #[test]
    fn missing_input_fails_without_culprit() {
        let dir = scratch("session-missing");
        let j = job(&dir, "missing");
        let ctl = Arc::new(SessionCtl::new());
        let err = run_session(&j, &ctl, hub().session("missing"), 0, None).unwrap_err();
        assert!(err.culprit.is_none());
        assert!(err.message.contains("in.y4m"));
    }
}
