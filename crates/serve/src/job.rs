//! Job specs and done-file records for the spool protocol.
//!
//! A job is one JSON file in the spool directory, written atomically by
//! `feves submit` (temp + rename, so the daemon can never read a torn
//! spec). The daemon reports every accepted or rejected job's terminal
//! state as `<spool>/done/<id>.json`. Spool files for jobs that have not
//! reached a *successful* terminal state survive a drain, which is what
//! makes the zero-lost-jobs guarantee checkable from the outside: after
//! `feves drain`, every submitted job is either in `done/` as `completed`
//! or still sitting in the spool (queued, or `checkpointed` mid-encode)
//! for the next daemon to pick up.

//! Every control file (spool spec, done record) carries a trailing
//! `#crc32=XXXXXXXX` integrity line over the JSON body. Readers verify it
//! with [`unframe_control`] and surface a typed [`ServeError::Corrupt`] on
//! mismatch — a bit-rotted or torn control file is rejected (and
//! quarantined by the daemon), never crashed on. Files without the trailer
//! (pre-framing daemons) are accepted as-is.

use crate::ServeError;
use feves_ft::ckpt::{crc32, fnv1a64};
use feves_ft::io::backend_for;
use feves_obs::write_atomic;
use serde::Value;
use std::path::{Path, PathBuf};

/// Prefix of the integrity trailer line on framed control files.
const CRC_TRAILER: &str = "#crc32=";

/// Frame a control-file body with its integrity trailer: the body
/// (newline-terminated) followed by one `#crc32=XXXXXXXX` line covering
/// every byte before it.
pub fn frame_control(text: &str) -> String {
    let body = if text.ends_with('\n') {
        text.to_string()
    } else {
        format!("{text}\n")
    };
    let crc = crc32(body.as_bytes());
    format!("{body}{CRC_TRAILER}{crc:08x}\n")
}

/// Verify and strip a control file's integrity trailer, returning the
/// body. Files without a trailer are legacy-accepted verbatim; a present
/// but wrong trailer is a typed [`ServeError::Corrupt`].
pub fn unframe_control(text: &str) -> Result<&str, ServeError> {
    let trimmed = text.trim_end_matches('\n');
    let (body_end, last) = match trimmed.rfind('\n') {
        Some(pos) => (pos + 1, &trimmed[pos + 1..]),
        None => (0, trimmed),
    };
    if !last.starts_with(CRC_TRAILER) {
        return Ok(text);
    }
    let want = u32::from_str_radix(&last[CRC_TRAILER.len()..], 16)
        .map_err(|_| ServeError::Corrupt(format!("unparseable integrity trailer '{last}'")))?;
    let body = &text[..body_end];
    let got = crc32(body.as_bytes());
    if got != want {
        return Err(ServeError::Corrupt(format!(
            "control-file checksum mismatch: trailer {want:08x}, content {got:08x}"
        )));
    }
    Ok(body)
}

/// One encode job, as carried by a spool file.
///
/// The fields mirror the `feves encode` flag set so a farm job and a
/// single-session CLI encode of the same input are the *same* job — the
/// chaos suite compares their outputs byte for byte. Kernels are
/// process-global (`FEVES_KERNELS`), so there is no per-job kernel choice.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Unique job id; names the spool file and the done record.
    pub id: String,
    /// Input `.y4m` path.
    pub input: String,
    /// Output (reconstruction) path.
    pub output: String,
    /// Named platform (`syshk`, `sysnf`, …) — see `feves platforms`.
    pub platform: String,
    /// Motion-estimation search area.
    pub sa: u16,
    /// Reference frames.
    pub refs: usize,
    /// Inter QP (intra is derived as `qp - 1`, as everywhere else).
    pub qp: u8,
    /// Balancer name (`feves`, `proportional`, `equidistant`).
    pub balancer: String,
    /// Injected device-fault specs (`0:death@5`, …).
    pub faults: Vec<String>,
    /// Durable checkpoint cadence in frames (0 = the farm default).
    pub checkpoint_every: usize,
    /// Chaos hook: panic the session right before this frame index, on
    /// attempt 0 only — proves fault isolation + checkpointed retry.
    pub chaos_kill_at: Option<usize>,
    /// Chaos hook: the device a chaos kill is attributed to, so the
    /// supervisor's fleet health machine has a culprit to blacklist.
    pub chaos_device: Option<usize>,
    /// Run the session with inter-frame pipelining (`--pipeline on`).
    /// Scheduling-only: the output bytes are identical either way.
    pub pipeline: bool,
    /// Record this job into the farm's causal-trace log (when the daemon
    /// runs with `--trace-out`). Defaults on — tracing is observational
    /// only; `feves submit --no-trace` opts a job out.
    pub trace: bool,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            id: String::new(),
            input: String::new(),
            output: String::new(),
            platform: "syshk".into(),
            sa: 32,
            refs: 1,
            qp: 28,
            balancer: "feves".into(),
            faults: Vec::new(),
            checkpoint_every: 0,
            chaos_kill_at: None,
            chaos_device: None,
            pipeline: false,
            trace: true,
        }
    }
}

impl JobSpec {
    /// Deterministic per-job seed (health-backoff jitter decorrelation).
    pub fn seed(&self) -> u64 {
        fnv1a64(self.id.as_bytes())
    }

    /// The job's checkpoint directory — same default as `feves encode`.
    pub fn ckpt_dir(&self) -> PathBuf {
        PathBuf::from(format!("{}.ckpt", self.output))
    }

    /// Render as the spool-file JSON document.
    pub fn to_value(&self) -> Value {
        let s = |v: &str| Value::Str(v.to_string());
        let n = |v: u64| Value::UInt(v);
        let opt = |v: Option<usize>| match v {
            Some(x) => Value::UInt(x as u64),
            None => Value::Null,
        };
        Value::Object(vec![
            ("id".into(), s(&self.id)),
            ("input".into(), s(&self.input)),
            ("output".into(), s(&self.output)),
            ("platform".into(), s(&self.platform)),
            ("sa".into(), n(self.sa as u64)),
            ("refs".into(), n(self.refs as u64)),
            ("qp".into(), n(self.qp as u64)),
            ("balancer".into(), s(&self.balancer)),
            (
                "faults".into(),
                Value::Array(self.faults.iter().map(|f| s(f)).collect()),
            ),
            ("checkpoint_every".into(), n(self.checkpoint_every as u64)),
            ("chaos_kill_at".into(), opt(self.chaos_kill_at)),
            ("chaos_device".into(), opt(self.chaos_device)),
            ("pipeline".into(), Value::Bool(self.pipeline)),
            ("trace".into(), Value::Bool(self.trace)),
        ])
    }

    /// Parse a spool-file document. `id`, `input` and `output` are
    /// required; everything else falls back to the encode defaults.
    pub fn from_value(v: &Value) -> Result<JobSpec, ServeError> {
        let bad = |m: &str| ServeError::BadJob(m.to_string());
        let obj = v
            .as_object()
            .ok_or_else(|| bad("job spec must be a JSON object"))?;
        let _ = obj;
        let req = |key: &str| -> Result<String, ServeError> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .filter(|s| !s.is_empty())
                .ok_or_else(|| bad(&format!("job spec needs a non-empty '{key}'")))
        };
        let num = |key: &str, default: u64| -> Result<u64, ServeError> {
            match v.get(key) {
                None | Some(Value::Null) => Ok(default),
                Some(x) => x
                    .as_u64()
                    .ok_or_else(|| bad(&format!("'{key}' must be a non-negative integer"))),
            }
        };
        let opt_num = |key: &str| -> Result<Option<usize>, ServeError> {
            match v.get(key) {
                None | Some(Value::Null) => Ok(None),
                Some(x) => x
                    .as_u64()
                    .map(|u| Some(u as usize))
                    .ok_or_else(|| bad(&format!("'{key}' must be a non-negative integer"))),
            }
        };
        let str_or = |key: &str, default: &str| -> String {
            v.get(key)
                .and_then(Value::as_str)
                .filter(|s| !s.is_empty())
                .unwrap_or(default)
                .to_string()
        };
        let pipeline = match v.get("pipeline") {
            None | Some(Value::Null) => false,
            Some(Value::Bool(b)) => *b,
            Some(_) => return Err(bad("'pipeline' must be a boolean")),
        };
        // Absent in pre-trace spool files: those jobs default to traced.
        let trace = match v.get("trace") {
            None | Some(Value::Null) => true,
            Some(Value::Bool(b)) => *b,
            Some(_) => return Err(bad("'trace' must be a boolean")),
        };
        let defaults = JobSpec::default();
        let qp = num("qp", defaults.qp as u64)?;
        if qp > 51 {
            return Err(bad("'qp' must be <= 51"));
        }
        let sa = num("sa", defaults.sa as u64)?;
        if sa > u16::MAX as u64 {
            return Err(bad("'sa' out of range"));
        }
        let faults = match v.get("faults") {
            None | Some(Value::Null) => Vec::new(),
            Some(x) => x
                .as_array()
                .ok_or_else(|| bad("'faults' must be an array of strings"))?
                .iter()
                .map(|f| {
                    f.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| bad("'faults' must be an array of strings"))
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        Ok(JobSpec {
            id: req("id")?,
            input: req("input")?,
            output: req("output")?,
            platform: str_or("platform", &defaults.platform),
            sa: sa as u16,
            refs: num("refs", defaults.refs as u64)? as usize,
            qp: qp as u8,
            balancer: str_or("balancer", &defaults.balancer),
            faults,
            checkpoint_every: num("checkpoint_every", 0)? as usize,
            chaos_kill_at: opt_num("chaos_kill_at")?,
            chaos_device: opt_num("chaos_device")?,
            pipeline,
            trace,
        })
    }

    /// Parse from JSON text.
    pub fn from_json(text: &str) -> Result<JobSpec, ServeError> {
        let v = serde_json::value_from_str(text)
            .map_err(|e| ServeError::BadJob(format!("malformed job spec: {e}")))?;
        JobSpec::from_value(&v)
    }

    /// Render as JSON text.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).unwrap_or_default()
    }
}

/// Terminal state of a job, as recorded in `done/<id>.json`.
#[derive(Clone, Debug, PartialEq)]
pub enum JobStatus {
    /// Output written, fsynced and verified; `bytes` is the final output
    /// size and `crc32` the checksum streamed on the write path (what
    /// `feves verify` checks the artifact against).
    Completed {
        /// Frames encoded.
        frames: usize,
        /// Final output size in bytes.
        bytes: u64,
        /// CRC-32 of the artifact, streamed as it was written.
        crc32: u32,
    },
    /// Drained mid-encode with a durable checkpoint committed; the spool
    /// file is left in place so the next daemon resumes it.
    Checkpointed {
        /// Frames committed by the last checkpoint.
        frames_done: usize,
    },
    /// Retry budget exhausted (or the spec was malformed).
    Failed {
        /// Human-readable cause.
        error: String,
        /// Attributed device index, when the fault had one.
        culprit: Option<usize>,
    },
    /// Refused at admission (queue at its high watermark).
    Rejected {
        /// The typed admission error, rendered.
        reason: String,
    },
}

impl JobStatus {
    /// The wire name of this status.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Completed { .. } => "completed",
            JobStatus::Checkpointed { .. } => "checkpointed",
            JobStatus::Failed { .. } => "failed",
            JobStatus::Rejected { .. } => "rejected",
        }
    }
}

/// Build the done-file document for a job outcome.
pub fn done_record(id: &str, status: &JobStatus, attempts: u32) -> Value {
    let mut fields = vec![
        ("id".to_string(), Value::Str(id.to_string())),
        ("status".to_string(), Value::Str(status.name().to_string())),
        ("attempts".to_string(), Value::UInt(attempts as u64)),
    ];
    match status {
        JobStatus::Completed {
            frames,
            bytes,
            crc32,
        } => {
            fields.push(("frames".into(), Value::UInt(*frames as u64)));
            fields.push(("bytes".into(), Value::UInt(*bytes)));
            fields.push(("crc32".into(), Value::Str(format!("{crc32:08x}"))));
        }
        JobStatus::Checkpointed { frames_done } => {
            fields.push(("frames_done".into(), Value::UInt(*frames_done as u64)));
        }
        JobStatus::Failed { error, culprit } => {
            fields.push(("error".into(), Value::Str(error.clone())));
            let c = match culprit {
                Some(d) => Value::UInt(*d as u64),
                None => Value::Null,
            };
            fields.push(("culprit".into(), c));
        }
        JobStatus::Rejected { reason } => {
            fields.push(("reason".into(), Value::Str(reason.clone())));
        }
    }
    Value::Object(fields)
}

/// The done directory of a spool.
pub fn done_dir(spool: &Path) -> PathBuf {
    spool.join("done")
}

/// The control directory of a spool (drain marker lives here).
pub fn ctl_dir(spool: &Path) -> PathBuf {
    spool.join("ctl")
}

/// The drain-marker path: its existence asks the daemon to drain.
pub fn drain_marker(spool: &Path) -> PathBuf {
    ctl_dir(spool).join("drain")
}

/// Quarantine directory for corrupt control files — kept for inspection,
/// never deleted by the daemon.
pub fn quarantine_dir(spool: &Path) -> PathBuf {
    spool.join("quarantine")
}

/// Move a corrupt control file into the quarantine directory.
pub fn quarantine(spool: &Path, path: &Path) -> Result<PathBuf, ServeError> {
    let dir = quarantine_dir(spool);
    std::fs::create_dir_all(&dir)?;
    let name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "corrupt".into());
    let dest = dir.join(name);
    backend_for(path).rename(path, &dest)?;
    Ok(dest)
}

/// Atomically write a job's terminal state to `done/<id>.json`.
pub fn write_done(
    spool: &Path,
    id: &str,
    status: &JobStatus,
    attempts: u32,
) -> Result<PathBuf, ServeError> {
    let dir = done_dir(spool);
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{id}.json"));
    let text = serde_json::to_string_pretty(&done_record(id, status, attempts))
        .map_err(|e| ServeError::Io(e.to_string()))?;
    write_atomic(&path, frame_control(&text))?;
    Ok(path)
}

/// Verify a control file's text end to end — integrity trailer, JSON
/// shape, schema — and say what it is (`feves verify`'s control-file
/// path). Done records are recognized by their `status` field; anything
/// else must parse as a spool spec.
pub fn verify_control(text: &str) -> Result<&'static str, ServeError> {
    let body = unframe_control(text)?;
    let v = serde_json::value_from_str(body)
        .map_err(|e| ServeError::Corrupt(format!("unparseable control JSON: {e}")))?;
    if v.get("status").and_then(Value::as_str).is_some() {
        return Ok("done record");
    }
    JobSpec::from_value(&v)?;
    Ok("spool spec")
}

/// Read and verify a spool spec: integrity trailer first, then the JSON
/// schema. A checksum mismatch is [`ServeError::Corrupt`], distinct from
/// the [`ServeError::BadJob`] a well-formed-but-invalid spec earns.
pub fn read_spec(path: &Path) -> Result<JobSpec, ServeError> {
    let bytes = backend_for(path)
        .read(path)
        .map_err(|e| ServeError::Io(format!("{}: {e}", path.display())))?;
    let text = String::from_utf8(bytes)
        .map_err(|_| ServeError::Corrupt(format!("{}: spec is not UTF-8", path.display())))?;
    JobSpec::from_json(unframe_control(&text)?)
}

/// Atomically write a job spec into the spool (the `feves submit` path).
/// Temp + rename means the daemon's scanner only ever sees complete specs.
pub fn write_job(spool: &Path, job: &JobSpec) -> Result<PathBuf, ServeError> {
    if job.id.is_empty() || job.id.contains(['/', '\\']) {
        return Err(ServeError::BadJob(format!(
            "job id '{}' must be a non-empty file-name-safe string",
            job.id
        )));
    }
    std::fs::create_dir_all(spool)?;
    let path = spool.join(format!("{}.json", job.id));
    write_atomic(&path, frame_control(&job.to_json()))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_json() {
        let job = JobSpec {
            id: "j1".into(),
            input: "in.y4m".into(),
            output: "out.y4m".into(),
            sa: 16,
            refs: 2,
            faults: vec!["0:death@3".into()],
            checkpoint_every: 2,
            chaos_kill_at: Some(5),
            chaos_device: Some(0),
            pipeline: true,
            trace: false,
            ..JobSpec::default()
        };
        let back = JobSpec::from_json(&job.to_json()).unwrap();
        assert_eq!(back, job);
    }

    #[test]
    fn defaults_fill_missing_fields() {
        let j = JobSpec::from_json(r#"{"id":"a","input":"i.y4m","output":"o.y4m"}"#).unwrap();
        assert_eq!(j.sa, 32);
        assert_eq!(j.refs, 1);
        assert_eq!(j.qp, 28);
        assert_eq!(j.balancer, "feves");
        assert_eq!(j.chaos_kill_at, None);
        assert_eq!(j.checkpoint_every, 0);
        assert!(!j.pipeline);
        assert!(j.trace, "pre-trace spool files default to traced");
    }

    #[test]
    fn rejects_missing_and_malformed_fields() {
        assert!(JobSpec::from_json("not json").is_err());
        assert!(JobSpec::from_json(r#"{"input":"i","output":"o"}"#).is_err());
        assert!(JobSpec::from_json(r#"{"id":"a","input":"i","output":"o","qp":99}"#).is_err());
        assert!(JobSpec::from_json(r#"{"id":"a","input":"i","output":"o","faults":"x"}"#).is_err());
    }

    #[test]
    fn seed_is_deterministic_per_id() {
        let a = JobSpec {
            id: "a".into(),
            ..JobSpec::default()
        };
        let b = JobSpec {
            id: "b".into(),
            ..JobSpec::default()
        };
        assert_eq!(a.seed(), a.clone().seed());
        assert_ne!(a.seed(), b.seed());
    }

    #[test]
    fn done_record_carries_typed_outcome() {
        let v = done_record(
            "j",
            &JobStatus::Failed {
                error: "boom".into(),
                culprit: Some(1),
            },
            3,
        );
        assert_eq!(v.get("status").and_then(Value::as_str), Some("failed"));
        assert_eq!(v.get("attempts").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("culprit").and_then(Value::as_u64), Some(1));
        let r = done_record(
            "j",
            &JobStatus::Rejected {
                reason: "full".into(),
            },
            0,
        );
        assert_eq!(r.get("status").and_then(Value::as_str), Some("rejected"));
    }

    #[test]
    fn framed_control_round_trips_and_rejects_corruption() {
        let text = "{\n  \"id\": \"j\"\n}";
        let framed = frame_control(text);
        assert!(framed.lines().last().unwrap().starts_with("#crc32="));
        assert_eq!(unframe_control(&framed).unwrap(), format!("{text}\n"));
        // Legacy unframed text passes through untouched.
        assert_eq!(unframe_control(text).unwrap(), text);
        // Any body flip under an intact trailer is a typed Corrupt.
        let rotted = framed.replacen("id", "iD", 1);
        match unframe_control(&rotted) {
            Err(ServeError::Corrupt(m)) => assert!(m.contains("checksum mismatch"), "{m}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // A garbled trailer is Corrupt too, not a panic.
        assert!(matches!(
            unframe_control("{}\n#crc32=zzzz\n"),
            Err(ServeError::Corrupt(_))
        ));
    }

    #[test]
    fn read_spec_verifies_spool_files_end_to_end() {
        let dir = std::env::temp_dir().join(format!("feves-readspec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let job = JobSpec {
            id: "rs".into(),
            input: "i.y4m".into(),
            output: "o.y4m".into(),
            ..JobSpec::default()
        };
        let path = write_job(&dir, &job).unwrap();
        assert_eq!(read_spec(&path).unwrap(), job);
        // Flip one byte of the body: the reader must reject, typed.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_spec(&path), Err(ServeError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_job_refuses_path_traversal_ids() {
        let job = JobSpec {
            id: "../evil".into(),
            input: "i".into(),
            output: "o".into(),
            ..JobSpec::default()
        };
        assert!(write_job(Path::new("/tmp"), &job).is_err());
    }
}
