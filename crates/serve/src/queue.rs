//! Bounded admission queue with a high-watermark reject line.
//!
//! Admission control is the first of the daemon's two backpressure layers
//! (the second is the in-flight credit cap in the supervisor): a submit
//! that arrives while `len >= high_watermark` is refused with the typed
//! [`ServeError::QueueFull`] rather than buffered without bound, so a
//! producer storm degrades into fast, attributable rejections instead of
//! unbounded memory growth and silently growing latency.

use crate::job::JobSpec;
use crate::ServeError;
use std::collections::VecDeque;

/// FIFO of admitted-but-not-yet-dispatched jobs.
#[derive(Debug)]
pub struct JobQueue {
    items: VecDeque<JobSpec>,
    capacity: usize,
    high_watermark: usize,
}

impl JobQueue {
    /// A queue holding at most `capacity` jobs, refusing admissions once
    /// `high_watermark` is reached. The watermark is clamped into
    /// `[1, capacity]`, so the hard bound always holds.
    pub fn new(capacity: usize, high_watermark: usize) -> Self {
        let capacity = capacity.max(1);
        JobQueue {
            items: VecDeque::new(),
            capacity,
            high_watermark: high_watermark.clamp(1, capacity),
        }
    }

    /// Admit a job, or refuse it with the typed queue-full error.
    pub fn admit(&mut self, job: JobSpec) -> Result<(), ServeError> {
        if self.items.len() >= self.high_watermark {
            return Err(ServeError::QueueFull {
                depth: self.items.len(),
                high_watermark: self.high_watermark,
            });
        }
        self.items.push_back(job);
        Ok(())
    }

    /// Take the oldest admitted job.
    pub fn pop(&mut self) -> Option<JobSpec> {
        self.items.pop_front()
    }

    /// Queued-job count.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The hard bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The admission reject line.
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: &str) -> JobSpec {
        JobSpec {
            id: id.into(),
            input: "i.y4m".into(),
            output: "o.y4m".into(),
            ..JobSpec::default()
        }
    }

    #[test]
    fn admits_in_fifo_order() {
        let mut q = JobQueue::new(4, 4);
        q.admit(job("a")).unwrap();
        q.admit(job("b")).unwrap();
        assert_eq!(q.pop().unwrap().id, "a");
        assert_eq!(q.pop().unwrap().id, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn rejects_at_high_watermark_with_typed_error() {
        let mut q = JobQueue::new(8, 2);
        q.admit(job("a")).unwrap();
        q.admit(job("b")).unwrap();
        let err = q.admit(job("c")).unwrap_err();
        assert_eq!(
            err,
            ServeError::QueueFull {
                depth: 2,
                high_watermark: 2
            }
        );
        assert_eq!(q.len(), 2, "rejected job must not be buffered");
        // Popping one re-opens admission.
        q.pop().unwrap();
        q.admit(job("c")).unwrap();
    }

    #[test]
    fn depth_never_exceeds_capacity_even_with_loose_watermark() {
        // A watermark above the capacity is clamped to it.
        let mut q = JobQueue::new(3, 100);
        assert_eq!(q.high_watermark(), 3);
        for i in 0..10 {
            let _ = q.admit(job(&format!("j{i}")));
            assert!(q.len() <= q.capacity(), "hard bound violated");
        }
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn zero_sizes_are_clamped_sane() {
        let q = JobQueue::new(0, 0);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.high_watermark(), 1);
    }
}
