//! The encode-farm supervisor behind `feves serve`.
//!
//! One long-running loop owns the whole farm:
//!
//! 1. **Spool scan** — new `<spool>/*.json` job specs are admitted into the
//!    bounded [`JobQueue`] or rejected at its high watermark with the typed
//!    queue-full error (recorded in `done/`, counted in
//!    `farm.admission_rejects`).
//! 2. **Dispatch** — up to `max_inflight` sessions run concurrently, each
//!    on its own worker thread behind `catch_unwind`, each holding a
//!    [`SessionCtl`] for preemption and a lease mask from the fleet
//!    partitioner ([`crate::partition`]).
//! 3. **Supervision** — a worker's death (panic or typed failure) never
//!    touches other sessions. An attributed culprit device is recorded in
//!    the *fleet* [`HealthTracker`] (jittered exponential backoff, same
//!    machine the encoder uses per-frame), excluding it from every lease
//!    until re-admission. The job itself retries under the
//!    [`RetryPolicy`]'s budgeted, jittered backoff, resuming from its last
//!    durable checkpoint — bit-exact by the session contract.
//! 4. **Drain** — `SIGTERM`/`SIGINT` or the `ctl/drain` marker stops
//!    admission, preempts in-flight sessions into durable checkpoints, and
//!    exits cleanly. Queued specs stay in the spool; nothing is lost.
//!
//! The farm itself is a telemetry session (label `farm`): queue depth,
//! rejects, retries, completions, failures and the drain latency all land
//! in the live snapshot `feves top` renders.

use crate::job::{self, JobSpec, JobStatus};
use crate::partition;
use crate::queue::JobQueue;
use crate::session::{fleet_platform, run_session, verify_artifact, SessionFailure, SessionReport};
use crate::signal;
use crate::ServeError;
use feves_core::SessionCtl;
use feves_ft::io::backend_for;
use feves_ft::{HealthTracker, RetryPolicy};
use feves_obs::{
    hub, sweep_orphans, write_atomic, BusController, EdgeKind, LiveConfig, Metric, Recorder,
    TraceCollector, TraceCtx, TraceSink,
};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Checkpoint cadence for jobs that did not choose one: frequent enough
/// that preemption and retry lose little work on short farm jobs.
pub const DEFAULT_CHECKPOINT_EVERY: usize = 4;

/// Everything `feves serve` configures.
#[derive(Clone, Debug)]
pub struct FarmConfig {
    /// Spool directory (created if missing).
    pub spool: PathBuf,
    /// Named fleet platform the partitioner and fleet health size against.
    pub platform: String,
    /// Hard bound on the admission queue.
    pub queue_cap: usize,
    /// Reject line (clamped into `[1, queue_cap]`).
    pub high_watermark: usize,
    /// In-flight session credits — the second backpressure layer.
    pub max_inflight: usize,
    /// Retries per job after its first attempt.
    pub retry_budget: u32,
    /// Base retry delay; doubles per attempt with decorrelating jitter.
    pub retry_base_ms: u64,
    /// Main-loop poll period (spool scan + event wait).
    pub poll_ms: u64,
    /// Checkpoint cadence for jobs that did not set one.
    pub checkpoint_every: usize,
    /// Exit once the spool, queue and workers are all empty (tests, CI).
    pub exit_when_idle: bool,
    /// Periodic atomic live snapshots for `feves top`.
    pub live_out: Option<PathBuf>,
    /// Snapshot period.
    pub live_every_ms: u64,
    /// Write the farm-wide causal-trace log (trace JSONL) here on exit.
    /// `None` disables tracing entirely — the sessions never see a sink.
    pub trace_out: Option<PathBuf>,
    /// Free-space low watermark (bytes) on the spool filesystem. Below it
    /// the farm enters disk-pressure mode: admission pauses, in-flight
    /// sessions shed cadence checkpoints, `farm.disk_pressure` gauges 1.
    /// Pressure clears automatically when free space recovers. 0 disables.
    pub disk_low_bytes: u64,
}

impl Default for FarmConfig {
    fn default() -> Self {
        FarmConfig {
            spool: PathBuf::from("spool"),
            platform: "syshk".into(),
            queue_cap: 64,
            high_watermark: 64,
            max_inflight: 2,
            retry_budget: 2,
            retry_base_ms: 100,
            poll_ms: 50,
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
            exit_when_idle: false,
            live_out: None,
            live_every_ms: 250,
            trace_out: None,
            disk_low_bytes: 0,
        }
    }
}

/// What the farm did over its lifetime, reported on exit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Jobs that completed (output finished, spool file removed).
    pub completed: usize,
    /// Jobs that exhausted their retry budget (or had malformed specs).
    pub failed: usize,
    /// Jobs refused at admission.
    pub rejected: usize,
    /// Retry dispatches performed.
    pub retried: usize,
    /// Jobs preempted into a durable checkpoint by the drain.
    pub checkpointed: usize,
    /// True when the exit was a drain (signal or marker), not idleness.
    pub drained: bool,
}

struct Worker {
    job: JobSpec,
    attempt: u32,
    ctl: Arc<SessionCtl>,
    handle: JoinHandle<()>,
}

struct PendingRetry {
    job: JobSpec,
    attempt: u32,
    at: Instant,
}

struct Event {
    id: String,
    result: Result<SessionReport, SessionFailure>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

fn spawn_worker(
    job: JobSpec,
    attempt: u32,
    tx: mpsc::Sender<Event>,
    trace: Option<TraceSink>,
) -> Worker {
    let ctl = Arc::new(SessionCtl::new());
    let scope = hub().session(&job.id);
    let thread_job = job.clone();
    let thread_ctl = ctl.clone();
    let handle = std::thread::spawn(move || {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_session(&thread_job, &thread_ctl, scope, attempt, trace.clone())
        }));
        let result = match outcome {
            Ok(r) => r,
            Err(payload) => {
                // A panicking session may take a device's blame with it:
                // the chaos hook attributes its kill explicitly.
                let culprit = if attempt == 0 && thread_job.chaos_kill_at.is_some() {
                    thread_job.chaos_device
                } else {
                    None
                };
                Err(SessionFailure {
                    message: format!("session panicked: {}", panic_message(payload)),
                    culprit,
                })
            }
        };
        // The supervisor owning the receiver may already be gone on a hard
        // teardown; a dead letter is fine then.
        let _ = tx.send(Event {
            id: thread_job.id,
            result,
        });
    });
    Worker {
        job,
        attempt,
        ctl,
        handle,
    }
}

/// Frames committed by a job's newest checkpoint (0 when none) — used for
/// the drain record of a job that was waiting to retry.
fn checkpointed_frames(job: &JobSpec) -> usize {
    feves_core::load_latest(&job.ckpt_dir())
        .map(|(_, ctx, _, _)| ctx.frames_done)
        .unwrap_or(0)
}

/// Per-job lifecycle state inside the farm tracer. The wall-clock cursor
/// walks forward through admission → queue → attempt/retry … → drain so
/// the lifecycle spans tile the job root span exactly — the invariant the
/// critical-path bucket accounting rests on.
struct JobTrace {
    /// Records the job root span (parents at the sentinel 0).
    root: TraceSink,
    /// Records lifecycle spans under the root.
    sink: TraceSink,
    /// Root span start (admission scan time), µs since the farm epoch.
    started_us: f64,
    /// End of the last lifecycle span emitted.
    cursor_us: f64,
    /// The in-flight attempt's deterministic span id.
    attempt_span: Option<u64>,
    /// When the in-flight attempt's worker spawned.
    attempt_started_us: f64,
    /// The in-flight attempt's span name (`attempt{n}`).
    attempt_name: String,
}

/// Farm-side causal tracing (`feves serve --trace-out`): mints each traced
/// job's deterministic [`TraceCtx`], emits the wall-clock lifecycle spans,
/// links the queue→admit and checkpoint→resume edges, and writes the
/// merged trace JSONL log at exit. Jobs submitted with `--no-trace` are
/// skipped entirely.
struct FarmTracer {
    collector: Arc<TraceCollector>,
    /// The farm epoch all wall-clock spans are relative to.
    epoch: Instant,
    out: PathBuf,
    jobs: HashMap<String, JobTrace>,
    spans: u64,
    edges: u64,
}

impl FarmTracer {
    fn new(out: PathBuf) -> Self {
        FarmTracer {
            collector: Arc::new(TraceCollector::new()),
            epoch: Instant::now(),
            out,
            jobs: HashMap::new(),
            spans: 0,
            edges: 0,
        }
    }

    /// A job cleared admission: open its trace and stamp the admission span.
    fn admitted(&mut self, job: &JobSpec) {
        if !job.trace {
            return;
        }
        let ctx = TraceCtx::for_job(&job.id);
        let root = TraceSink::new(
            self.collector.clone(),
            TraceCtx {
                trace_id: ctx.trace_id,
                parent_span: 0,
            },
            self.epoch,
        );
        let sink = root.under(ctx.parent_span);
        let now = root.now_us();
        sink.record("admission", "admission", now, 0.0);
        self.spans += 1;
        self.jobs.insert(
            job.id.clone(),
            JobTrace {
                root,
                sink,
                started_us: now,
                cursor_us: now,
                attempt_span: None,
                attempt_started_us: now,
                attempt_name: String::new(),
            },
        );
    }

    /// An attempt's worker is about to spawn: close the preceding queue (or
    /// retry-wait) span, link its causal edge, and hand back the sink the
    /// session's frame spans parent under.
    fn spawned(&mut self, job: &JobSpec, attempt: u32) -> Option<TraceSink> {
        let jt = self.jobs.get_mut(&job.id)?;
        let now = jt.sink.now_us();
        let name = format!("attempt{attempt}");
        let (attempt_id, _) = jt.sink.ctx.child(&name);
        if attempt == 0 {
            let q = jt
                .sink
                .record("queue", "queue", jt.cursor_us, now - jt.cursor_us);
            jt.sink.link(q, attempt_id, EdgeKind::QueueAdmit);
            self.spans += 1;
            self.edges += 1;
        } else {
            jt.sink.record(
                &format!("retry{attempt}"),
                "retry",
                jt.cursor_us,
                now - jt.cursor_us,
            );
            self.spans += 1;
            // The retry resumes from the newest durable checkpoint span;
            // a crash before any checkpoint falls back to the dead attempt
            // itself as the cause.
            let from = self
                .collector
                .last_span_of(jt.sink.ctx.trace_id, "checkpoint")
                .or(jt.attempt_span);
            if let Some(f) = from {
                jt.sink.link(f, attempt_id, EdgeKind::CheckpointResume);
                self.edges += 1;
            }
        }
        jt.attempt_started_us = now;
        jt.attempt_name = name;
        jt.attempt_span = Some(attempt_id);
        jt.cursor_us = now;
        Some(jt.sink.under(attempt_id))
    }

    /// An attempt's terminal event arrived: close its span.
    fn attempt_done(&mut self, job_id: &str) {
        let Some(jt) = self.jobs.get_mut(job_id) else {
            return;
        };
        let now = jt.sink.now_us();
        if jt.attempt_span.is_some() {
            jt.sink.record(
                &jt.attempt_name,
                "attempt",
                jt.attempt_started_us,
                now - jt.attempt_started_us,
            );
            self.spans += 1;
        }
        jt.cursor_us = now;
    }

    /// The job reached a terminal state (done record on disk): stamp the
    /// drain span and close the root.
    fn closed(&mut self, job_id: &str) {
        let Some(jt) = self.jobs.remove(job_id) else {
            return;
        };
        let now = jt.sink.now_us();
        jt.sink
            .record("drain", "drain", jt.cursor_us, now - jt.cursor_us);
        jt.root.record(
            &format!("job:{job_id}"),
            "job",
            jt.started_us,
            now - jt.started_us,
        );
        self.spans += 2;
    }

    /// Close any still-open traces, write the log, publish the counters.
    fn finish(&mut self, farm: &dyn Recorder) -> Result<(), ServeError> {
        let open: Vec<String> = self.jobs.keys().cloned().collect();
        for id in open {
            self.closed(&id);
        }
        write_atomic(&self.out, self.collector.to_jsonl())?;
        farm.add(Metric::TraceSpans, self.spans);
        farm.add(Metric::TraceEdges, self.edges);
        Ok(())
    }
}

/// Run the farm until drained (signal or `ctl/drain` marker) or — with
/// `exit_when_idle` — until there is nothing left to do.
pub fn run(cfg: FarmConfig) -> Result<DrainReport, ServeError> {
    signal::install_handlers();
    let spool = cfg.spool.clone();
    std::fs::create_dir_all(&spool)?;
    std::fs::create_dir_all(job::done_dir(&spool))?;
    std::fs::create_dir_all(job::ctl_dir(&spool))?;
    // A previous daemon that died mid-write leaves `.*.tmp` droppings from
    // the atomic-write protocol; sweep them before the first scan so they
    // never masquerade as control files.
    for dir in [&spool, &job::done_dir(&spool), &job::ctl_dir(&spool)] {
        let _ = sweep_orphans(dir);
    }

    let platform = fleet_platform(&cfg.platform)?;
    let accel: Vec<bool> = platform
        .devices
        .iter()
        .map(|d| d.is_accelerator())
        .collect();
    // Fleet health runs in dispatch rounds (one per poll), with jitter so a
    // farm restart does not re-probe a flaky device in lockstep with the
    // per-session trackers.
    let mut fleet_health = HealthTracker::new(platform.devices.len(), 4, 3);
    fleet_health.set_jitter_seed(Some(0xFA23));

    let farm_scope = hub().session("farm");
    let farm = farm_scope.metrics();
    let mut bus = cfg.live_out.clone().map(|path| {
        let ctl = BusController::start(
            1 << 12,
            Some(LiveConfig {
                path,
                period: Duration::from_millis(cfg.live_every_ms.max(1)),
            }),
        );
        farm_scope.attach_bus(ctl.bus());
        ctl
    });

    let mut tracer = cfg.trace_out.clone().map(FarmTracer::new);
    let mut queue = JobQueue::new(cfg.queue_cap, cfg.high_watermark);
    let mut seen: HashSet<String> = HashSet::new();
    let mut spool_file: HashMap<String, PathBuf> = HashMap::new();
    let mut workers: Vec<Worker> = Vec::new();
    let mut retries: Vec<PendingRetry> = Vec::new();
    let (tx, rx) = mpsc::channel::<Event>();
    let mut report = DrainReport::default();
    let mut draining = false;
    let mut drain_started: Option<Instant> = None;
    let mut disk_pressure = false;
    let mut round: usize = 0;

    let finish_spool_file = |spool_file: &mut HashMap<String, PathBuf>, id: &str| {
        if let Some(path) = spool_file.remove(id) {
            let _ = std::fs::remove_file(path);
        }
    };

    loop {
        round += 1;
        fleet_health.tick(round);

        if !draining && (signal::shutdown_requested() || job::drain_marker(&spool).exists()) {
            draining = true;
            drain_started = Some(Instant::now());
            // Stop admitting; preempt every in-flight session at its next
            // frame boundary. Queued specs stay on disk untouched.
            for w in &workers {
                w.ctl.request_stop();
            }
        }

        // ENOSPC-aware degradation: below the low watermark, stop admitting
        // new work and shed cadence checkpoints; in-flight jobs keep
        // encoding (their final commit and preemption checkpoints still
        // run). Pressure clears itself when free space recovers — queued
        // specs wait in the spool, nothing is lost either way.
        if cfg.disk_low_bytes > 0 {
            let free = backend_for(&spool).free_space(&spool).unwrap_or(u64::MAX);
            let pressured = free < cfg.disk_low_bytes;
            if pressured != disk_pressure {
                disk_pressure = pressured;
                farm.gauge(Metric::FarmDiskPressure, if pressured { 1.0 } else { 0.0 });
            }
        }

        if !draining && !disk_pressure {
            scan_spool(
                &spool,
                &mut seen,
                &mut spool_file,
                &mut queue,
                &mut report,
                farm.as_ref(),
                &mut tracer,
            )?;
            let now = Instant::now();
            while workers.len() < cfg.max_inflight.max(1) {
                if let Some(pos) = retries.iter().position(|r| r.at <= now) {
                    let r = retries.remove(pos);
                    report.retried += 1;
                    farm.add(Metric::FarmRetries, 1);
                    let sink = tracer.as_mut().and_then(|t| t.spawned(&r.job, r.attempt));
                    workers.push(spawn_worker(r.job, r.attempt, tx.clone(), sink));
                } else {
                    break;
                }
            }
            while workers.len() < cfg.max_inflight.max(1) {
                match queue.pop() {
                    Some(j) => {
                        let sink = tracer.as_mut().and_then(|t| t.spawned(&j, 0));
                        workers.push(spawn_worker(j, 0, tx.clone(), sink));
                    }
                    None => break,
                }
            }
        }

        // Re-lease on every round: arrivals, completions and fleet faults
        // all change the fair share, and recomputation is cheap.
        let leases = partition::fair_leases(&accel, &fleet_health.available(), workers.len());
        for (w, lease) in workers.iter().zip(leases) {
            w.ctl.set_lease(Some(lease));
            w.ctl.set_ckpt_shed(disk_pressure);
        }
        farm.gauge(Metric::FarmQueueDepth, queue.len() as f64);

        match rx.recv_timeout(Duration::from_millis(cfg.poll_ms.max(1))) {
            Ok(event) => {
                let Some(pos) = workers.iter().position(|w| w.job.id == event.id) else {
                    continue;
                };
                let worker = workers.remove(pos);
                let _ = worker.handle.join();
                if let Some(t) = tracer.as_mut() {
                    t.attempt_done(&worker.job.id);
                }
                // Verify-before-completed: a clean finish only counts once
                // the on-disk artifact re-reads byte-exact against the CRC
                // streamed on the write path. A mismatch (bit-rot, torn
                // write) is demoted to a session failure — the retry path
                // re-encodes rather than blessing a corrupt artifact.
                let result = match event.result {
                    Ok(rep) if !rep.interrupted => {
                        match verify_artifact(&worker.job.output, rep.out_bytes, rep.artifact_crc) {
                            Ok(()) => Ok(rep),
                            Err(msg) => {
                                farm.add(Metric::IoCorruptRejected, 1);
                                Err(SessionFailure {
                                    message: msg,
                                    culprit: None,
                                })
                            }
                        }
                    }
                    other => other,
                };
                match result {
                    Ok(rep) if rep.interrupted => {
                        job::write_done(
                            &spool,
                            &worker.job.id,
                            &JobStatus::Checkpointed {
                                frames_done: rep.frames_done,
                            },
                            worker.attempt + 1,
                        )?;
                        report.checkpointed += 1;
                        if let Some(t) = tracer.as_mut() {
                            t.closed(&worker.job.id);
                        }
                    }
                    Ok(rep) => {
                        job::write_done(
                            &spool,
                            &worker.job.id,
                            &JobStatus::Completed {
                                frames: rep.frames_done,
                                bytes: rep.out_bytes,
                                crc32: rep.artifact_crc,
                            },
                            worker.attempt + 1,
                        )?;
                        finish_spool_file(&mut spool_file, &worker.job.id);
                        report.completed += 1;
                        farm.add(Metric::FarmJobsCompleted, 1);
                        if let Some(t) = tracer.as_mut() {
                            t.closed(&worker.job.id);
                        }
                    }
                    Err(failure) => {
                        if let Some(device) = failure.culprit {
                            if device < accel.len() {
                                fleet_health.record_fault(device, round);
                            }
                        }
                        let policy = RetryPolicy::new(
                            Duration::from_millis(cfg.retry_base_ms),
                            cfg.retry_budget,
                            worker.job.seed(),
                        );
                        if policy.allows(worker.attempt) && !draining {
                            retries.push(PendingRetry {
                                job: worker.job,
                                attempt: worker.attempt + 1,
                                at: Instant::now() + policy.delay(worker.attempt),
                            });
                        } else {
                            job::write_done(
                                &spool,
                                &worker.job.id,
                                &JobStatus::Failed {
                                    error: failure.message,
                                    culprit: failure.culprit,
                                },
                                worker.attempt + 1,
                            )?;
                            finish_spool_file(&mut spool_file, &worker.job.id);
                            report.failed += 1;
                            farm.add(Metric::FarmJobsFailed, 1);
                            if let Some(t) = tracer.as_mut() {
                                t.closed(&worker.job.id);
                            }
                        }
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => unreachable!("farm holds a sender"),
        }

        if draining && workers.is_empty() {
            // Jobs waiting on a retry timer hold a durable checkpoint and
            // their spool file: record them as checkpointed for the next
            // daemon.
            for r in retries.drain(..) {
                job::write_done(
                    &spool,
                    &r.job.id,
                    &JobStatus::Checkpointed {
                        frames_done: checkpointed_frames(&r.job),
                    },
                    r.attempt,
                )?;
                report.checkpointed += 1;
                if let Some(t) = tracer.as_mut() {
                    t.closed(&r.job.id);
                }
            }
            report.drained = true;
            break;
        }
        if cfg.exit_when_idle
            && !draining
            // Never idle-exit under disk pressure: unscanned specs are
            // waiting in the spool for the pressure to clear.
            && !disk_pressure
            && workers.is_empty()
            && retries.is_empty()
            && queue.is_empty()
        {
            // One more scan so a submit racing the last completion wins.
            scan_spool(
                &spool,
                &mut seen,
                &mut spool_file,
                &mut queue,
                &mut report,
                farm.as_ref(),
                &mut tracer,
            )?;
            if queue.is_empty() {
                break;
            }
        }
    }

    if let Some(t0) = drain_started {
        farm.observe(Metric::FarmDrainMs, t0.elapsed().as_secs_f64() * 1e3);
    }
    if let Some(t) = tracer.as_mut() {
        t.finish(farm.as_ref())?;
    }
    farm.gauge(Metric::FarmQueueDepth, queue.len() as f64);
    if let Some(ctl) = bus.as_mut() {
        // Stops the drain thread, flushing the final live snapshot with the
        // farm counters and every retired session.
        ctl.stop();
    }
    Ok(report)
}

/// Pull new job specs out of the spool: admit, or reject with the typed
/// queue-full error. Scanning is name-sorted so admission order (and the
/// acceptance tests) are deterministic.
fn scan_spool(
    spool: &std::path::Path,
    seen: &mut HashSet<String>,
    spool_file: &mut HashMap<String, PathBuf>,
    queue: &mut JobQueue,
    report: &mut DrainReport,
    farm: &dyn Recorder,
    tracer: &mut Option<FarmTracer>,
) -> Result<(), ServeError> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(spool)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_file() && p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    for path in paths {
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n.to_string(),
            None => continue,
        };
        if !seen.insert(name.clone()) {
            continue;
        }
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => continue, // vanished between listing and read
        };
        match job::unframe_control(&text).and_then(JobSpec::from_json) {
            Err(e) => {
                // Reject, never crash: a corrupt spec (checksum mismatch)
                // is quarantined for inspection; a merely invalid one is
                // removed. Both get a typed `failed` done record.
                let corrupt = matches!(e, ServeError::Corrupt(_));
                let id = name.trim_end_matches(".json");
                job::write_done(
                    spool,
                    id,
                    &JobStatus::Failed {
                        error: e.to_string(),
                        culprit: None,
                    },
                    0,
                )?;
                if corrupt {
                    farm.add(Metric::IoCorruptRejected, 1);
                    let _ = job::quarantine(spool, &path);
                } else {
                    let _ = std::fs::remove_file(&path);
                }
                report.failed += 1;
                farm.add(Metric::FarmJobsFailed, 1);
            }
            Ok(spec) => {
                let id = spec.id.clone();
                spool_file.insert(id.clone(), path.clone());
                let admitted = spec.clone();
                match queue.admit(spec) {
                    Ok(()) => {
                        if let Some(t) = tracer.as_mut() {
                            t.admitted(&admitted);
                        }
                    }
                    Err(e) => {
                        job::write_done(
                            spool,
                            &id,
                            &JobStatus::Rejected {
                                reason: e.to_string(),
                            },
                            0,
                        )?;
                        spool_file.remove(&id);
                        let _ = std::fs::remove_file(&path);
                        report.rejected += 1;
                        farm.add(Metric::FarmAdmissionRejects, 1);
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use feves_video::geometry::Resolution;
    use feves_video::synth::{SynthConfig, SynthSequence};
    use feves_video::y4m::{Y4mHeader, Y4mWriter};
    use std::path::Path;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("feves-farm-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_input(path: &Path, n_frames: usize) {
        let mut seq = SynthSequence::new(SynthConfig {
            resolution: Resolution::QCIF,
            seed: 11,
            objects: 4,
            pan: (1.0, 0.5),
            noise: 2,
        });
        let frames = seq.take_frames(n_frames);
        let header = Y4mHeader {
            resolution: frames[0].resolution(),
            fps: (25, 1),
        };
        let mut w = Y4mWriter::new(Vec::new(), header);
        for f in &frames {
            w.write_frame(f).unwrap();
        }
        std::fs::write(path, w.finish().unwrap()).unwrap();
    }

    fn submit(dir: &Path, id: &str, chaos: Option<usize>) -> JobSpec {
        let job = JobSpec {
            id: id.into(),
            input: dir.join("in.y4m").to_string_lossy().into_owned(),
            output: dir.join(format!("{id}.y4m")).to_string_lossy().into_owned(),
            sa: 16,
            refs: 2,
            checkpoint_every: 2,
            chaos_kill_at: chaos,
            chaos_device: chaos.map(|_| 0),
            ..JobSpec::default()
        };
        job::write_job(&dir.join("spool"), &job).unwrap();
        job
    }

    fn farm_cfg(dir: &Path) -> FarmConfig {
        FarmConfig {
            spool: dir.join("spool"),
            exit_when_idle: true,
            poll_ms: 10,
            retry_base_ms: 10,
            ..FarmConfig::default()
        }
    }

    fn done_text(dir: &Path, id: &str) -> String {
        std::fs::read_to_string(job::done_dir(&dir.join("spool")).join(format!("{id}.json")))
            .unwrap()
    }

    #[test]
    fn farm_completes_jobs_and_matches_direct_session_output() {
        signal::reset();
        let dir = scratch("complete");
        write_input(&dir.join("in.y4m"), 6);
        let a = submit(&dir, "a", None);
        let b = submit(&dir, "b", None);
        let report = run(farm_cfg(&dir)).unwrap();
        assert_eq!(report.completed, 2, "{report:?}");
        assert_eq!(report.failed + report.rejected, 0);
        assert!(!report.drained);
        assert!(done_text(&dir, "a").contains("\"completed\""));
        // Outputs must be byte-identical to an unsupervised session.
        let direct = JobSpec {
            id: "direct".into(),
            output: dir.join("direct.y4m").to_string_lossy().into_owned(),
            ..a.clone()
        };
        let ctl = Arc::new(SessionCtl::new());
        run_session(&direct, &ctl, hub().session("direct"), 0, None).unwrap();
        assert_eq!(
            std::fs::read(&a.output).unwrap(),
            std::fs::read(&direct.output).unwrap()
        );
        assert_eq!(
            std::fs::read(&a.output).unwrap(),
            std::fs::read(&b.output).unwrap()
        );
        // Completed spool files are gone; the spool is clean.
        assert!(!dir.join("spool").join("a.json").exists());
    }

    #[test]
    fn chaos_killed_job_retries_to_bit_exact_completion() {
        signal::reset();
        let dir = scratch("chaos");
        write_input(&dir.join("in.y4m"), 6);
        let clean = submit(&dir, "clean", None);
        let chaotic = submit(&dir, "chaotic", Some(3));
        let report = run(farm_cfg(&dir)).unwrap();
        assert_eq!(report.completed, 2, "{report:?}");
        assert_eq!(report.retried, 1, "chaos kill must cost exactly one retry");
        let done = done_text(&dir, "chaotic");
        assert!(done.contains("\"completed\""));
        assert!(done.contains("\"attempts\": 2"), "{done}");
        assert_eq!(
            std::fs::read(&chaotic.output).unwrap(),
            std::fs::read(&clean.output).unwrap(),
            "retried output must be bit-identical to the clean job"
        );
    }

    #[test]
    fn exhausted_retry_budget_fails_with_culprit_attribution() {
        signal::reset();
        let dir = scratch("budget");
        write_input(&dir.join("in.y4m"), 6);
        // chaos_kill_at fires on attempt 0 only, so force budget 0 to make
        // the first death terminal.
        submit(&dir, "doomed", Some(1));
        let cfg = FarmConfig {
            retry_budget: 0,
            ..farm_cfg(&dir)
        };
        let report = run(cfg).unwrap();
        assert_eq!((report.completed, report.failed), (0, 1), "{report:?}");
        let done = done_text(&dir, "doomed");
        assert!(done.contains("\"failed\""), "{done}");
        assert!(done.contains("panicked"), "{done}");
        assert!(done.contains("\"culprit\": 0"), "{done}");
    }

    #[test]
    fn admission_rejects_above_high_watermark_with_done_records() {
        signal::reset();
        let dir = scratch("admission");
        write_input(&dir.join("in.y4m"), 4);
        for i in 0..5 {
            submit(&dir, &format!("j{i}"), None);
        }
        let cfg = FarmConfig {
            queue_cap: 2,
            high_watermark: 2,
            max_inflight: 1,
            ..farm_cfg(&dir)
        };
        let report = run(cfg).unwrap();
        // Name-sorted scan: j0 and j1 admitted, j2..j4 rejected before the
        // first dispatch can free a slot.
        assert_eq!((report.completed, report.rejected), (2, 3), "{report:?}");
        let done = done_text(&dir, "j2");
        assert!(done.contains("\"rejected\""), "{done}");
        assert!(done.contains("queue full"), "{done}");
    }

    #[test]
    fn trace_out_writes_a_valid_span_dag_with_resume_edges() {
        signal::reset();
        let dir = scratch("trace");
        write_input(&dir.join("in.y4m"), 6);
        submit(&dir, "clean", None);
        submit(&dir, "killed", Some(3));
        let cfg = FarmConfig {
            trace_out: Some(dir.join("trace.jsonl")),
            ..farm_cfg(&dir)
        };
        let report = run(cfg).unwrap();
        assert_eq!(report.completed, 2, "{report:?}");
        let text = std::fs::read_to_string(dir.join("trace.jsonl")).unwrap();
        assert!(feves_obs::TraceLog::sniff(&text));
        let log = feves_obs::TraceLog::parse_jsonl(&text).unwrap();
        feves_obs::validate_dag(&log).unwrap();
        assert_eq!(log.trace_ids().len(), 2, "one trace per job");
        // The chaos-killed job's retry must route through a resume edge.
        let killed = feves_obs::trace::fnv1a64(b"killed");
        assert!(
            log.edges
                .iter()
                .any(|e| e.trace_id == killed && e.kind == feves_obs::EdgeKind::CheckpointResume),
            "retried job must carry a checkpoint→resume edge"
        );
        // Sessions contributed frame spans under the attempts.
        assert!(log.spans.iter().any(|s| s.cat == "frame"));
        // Critical-path buckets tile each job's wall time.
        let crit = feves_obs::CriticalReport::from_log(&log).unwrap();
        for j in &crit.jobs {
            assert!(
                (j.bucket_sum_us() - j.wall_us).abs() <= j.wall_us * 0.01 + 1.0,
                "{}: buckets {} vs wall {}",
                j.name,
                j.bucket_sum_us(),
                j.wall_us
            );
        }
    }

    #[test]
    fn drain_marker_preempts_and_loses_nothing() {
        signal::reset();
        let dir = scratch("drain");
        write_input(&dir.join("in.y4m"), 6);
        let j = submit(&dir, "draining", None);
        // Pre-place the drain marker: the farm must stop admission, so the
        // job's spool file survives for the next daemon.
        std::fs::create_dir_all(job::ctl_dir(&dir.join("spool"))).unwrap();
        std::fs::write(job::drain_marker(&dir.join("spool")), "drain\n").unwrap();
        let cfg = FarmConfig {
            exit_when_idle: false,
            ..farm_cfg(&dir)
        };
        let report = run(cfg).unwrap();
        assert!(report.drained);
        assert_eq!(report.completed, 0);
        assert!(
            dir.join("spool").join("draining.json").exists(),
            "a queued job must survive the drain"
        );
        // A fresh daemon (marker removed) picks the job up and finishes it.
        std::fs::remove_file(job::drain_marker(&dir.join("spool"))).unwrap();
        let report = run(farm_cfg(&dir)).unwrap();
        assert_eq!(report.completed, 1, "{report:?}");
        assert!(std::fs::metadata(&j.output).unwrap().len() > 0);
    }
}
